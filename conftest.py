"""Pytest root configuration.

Ensures the ``src`` layout is importable even when the package has not been
installed (e.g. in fully offline environments where editable installs are
unavailable); an installed ``repro`` package takes precedence because the
path is appended, not prepended.
"""

import os
import sys

_SRC = os.path.join(os.path.dirname(__file__), "src")
if _SRC not in sys.path:
    sys.path.append(_SRC)
