"""Setuptools shim.

The canonical project metadata lives in ``pyproject.toml``; this file exists
so that editable installs keep working in offline environments whose pip
cannot build PEP 660 editable wheels (no ``wheel`` package available).
"""

from setuptools import setup

setup()
