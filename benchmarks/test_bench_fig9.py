"""Benchmark E6: regenerate Fig. 9 (layout and area breakdown)."""

from repro.experiments import fig9_area


def test_bench_fig9(benchmark, record_info):
    result = benchmark(fig9_area.run)
    assert 0.18 <= result.pe_gaussian_fraction <= 0.25
    record_info(
        benchmark,
        pe_gaussian_fraction=result.pe_gaussian_fraction,
        module_mm2=result.module.module_mm2,
        soc_overhead_percent=100 * result.soc_overhead_fraction,
    )
