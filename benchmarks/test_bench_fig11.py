"""Benchmark E8: regenerate Fig. 11 (end-to-end FPS with and without GauRast)."""

from repro.experiments import fig11_fps


def test_bench_fig11(benchmark, record_info):
    result = benchmark(fig11_fps.run)
    assert 20.0 <= result.mean_gaurast_fps("original") <= 30.0
    assert 40.0 <= result.mean_gaurast_fps("optimized") <= 55.0
    record_info(
        benchmark,
        fps_original=result.mean_gaurast_fps("original"),
        fps_optimized=result.mean_gaurast_fps("optimized"),
        speedup_original=result.mean_speedup("original"),
        speedup_optimized=result.mean_speedup("optimized"),
    )
