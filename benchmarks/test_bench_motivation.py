"""Benchmark E14: motivation comparison (desktop GPU vs edge SoC vs GauRast)."""

from repro.experiments import motivation_platforms


def test_bench_motivation(benchmark, record_info):
    result = benchmark(motivation_platforms.run)
    assert result.desktop.mean_fps >= 30.0
    assert result.edge.mean_fps <= 5.5
    record_info(
        benchmark,
        desktop_fps=result.desktop.mean_fps,
        edge_fps=result.edge.mean_fps,
        edge_with_gaurast_fps=result.edge_with_gaurast.mean_fps,
    )
