"""Benchmark E7: regenerate Fig. 10 (speedup and energy-efficiency improvement)."""

from repro.experiments import fig10_speedup


def test_bench_fig10(benchmark, record_info):
    result = benchmark(fig10_speedup.run)
    assert 20.0 <= result.mean_speedup("original") <= 27.0
    record_info(
        benchmark,
        mean_speedup_original=result.mean_speedup("original"),
        mean_energy_original=result.mean_energy_improvement("original"),
        mean_speedup_optimized=result.mean_speedup("optimized"),
        mean_energy_optimized=result.mean_energy_improvement("optimized"),
    )
