"""Benchmark E11 (ablation): CUDA-collaborative vs serial scheduling."""

from repro.experiments import scheduling_ablation


def test_bench_scheduling(benchmark, record_info):
    result = benchmark(scheduling_ablation.run)
    assert 1.0 <= result.mean_gain <= 2.0
    record_info(benchmark, mean_pipelining_gain=result.mean_gain)
