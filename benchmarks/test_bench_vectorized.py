"""Perf smoke benchmark: scalar vs vectorized rasterization backend.

Benchmarks Stage 3 (the backend-controlled stage) on the same prepared
synthetic frame with both backends and records the frame rate of each plus
the vectorized-over-scalar speedup in ``benchmark.extra_info``.  The
acceptance bar for the vectorized engine is a >= 3x speedup on this scene;
``tests/test_vectorized_equivalence.py`` guarantees the two backends are
bit-identical, so the speedup is free of accuracy trade-offs.
"""

import os

import pytest

from repro.gaussians.projection import preprocess
from repro.gaussians.rasterize import rasterize_tiles
from repro.gaussians.sorting import bin_and_sort
from repro.gaussians.synthetic import SyntheticConfig, make_synthetic_scene
from repro.gaussians.tiles import TileGrid

#: Mean per-round timings keyed by backend, shared between the two
#: benchmarks of this module so the vectorized one can report the speedup.
_MEAN_SECONDS = {}


@pytest.fixture(scope="module")
def raster_frame():
    """A prepared frame (projected Gaussians + tile lists) to rasterize."""
    config = SyntheticConfig(num_gaussians=1200, width=160, height=120, seed=0)
    scene = make_synthetic_scene(config, name="bench-vectorized")
    camera = scene.default_camera
    projected, _ = preprocess(scene.cloud, camera)
    grid = TileGrid(width=camera.width, height=camera.height)
    binning = bin_and_sort(projected, grid)
    return projected, binning


def _bench_backend(benchmark, record_info, raster_frame, backend):
    projected, binning = raster_frame
    image, stats = benchmark(
        rasterize_tiles, projected, binning, backend=backend
    )
    assert stats.fragments_evaluated > 0
    if benchmark.stats is not None:  # None under --benchmark-disable
        mean = benchmark.stats.stats.mean
        _MEAN_SECONDS[backend] = mean
        record_info(benchmark, backend=backend, raster_fps=1.0 / mean)
    return image


def test_bench_raster_scalar(benchmark, record_info, raster_frame):
    _bench_backend(benchmark, record_info, raster_frame, "scalar")


def test_bench_raster_vectorized(benchmark, record_info, raster_frame):
    _bench_backend(benchmark, record_info, raster_frame, "vectorized")
    if "scalar" in _MEAN_SECONDS and "vectorized" in _MEAN_SECONDS:
        speedup = _MEAN_SECONDS["scalar"] / _MEAN_SECONDS["vectorized"]
        record_info(benchmark, speedup_vs_scalar=speedup)
        # Measured ~4.4x on a quiet machine; the bar leaves margin for noise
        # while still catching real regressions.  Oversubscribed shared CI
        # runners opt out via REPRO_RELAX_PERF_ASSERTS (see ci.yml) so a
        # noisy round cannot fail an unrelated change.
        if not os.environ.get("REPRO_RELAX_PERF_ASSERTS"):
            assert speedup >= 2.0
