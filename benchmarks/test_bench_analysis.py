"""Perf smoke benchmark for the invariant linter (``repro lint``).

The linter runs on every CI build over the whole tree, so its wall time is
part of the build budget.  Two scopes are timed: the ``src/repro`` package
alone (parse, all rules, cross-file ``RenderRequest`` + pipe-protocol
resolution, CFG construction for the dataflow rules), and the full CI
scope — src + examples + tests + benchmarks with the
deliberately-violating lint fixtures excluded.  Both assert the perf bar
*and* the CI gate property itself (zero findings on the live tree): a
benchmark that is fast but finds violations means a regression landed
without the lint gate catching it locally.

Acceptance bar: either run stays under ``MAX_SECONDS`` (measured ~1.6 s
for ~108 files and ~2.8 s for ~180 with the dataflow rules; the bound is
deliberately loose for slow CI runners, and
``REPRO_RELAX_PERF_ASSERTS=1`` relaxes it entirely).
"""

import os
from pathlib import Path

from repro.analysis import lint_paths

#: Upper bound on one full-tree lint, seconds (loose vs. the measured mean).
MAX_SECONDS = 5.0

_REPO_ROOT = Path(__file__).parent.parent

#: The package tree alone (the historical bar).
LINT_ROOT = str(_REPO_ROOT / "src" / "repro")

#: The full CI lint scope: package + examples + tests + benchmarks.
CI_SCOPE = [
    str(_REPO_ROOT / "src" / "repro"),
    str(_REPO_ROOT / "examples"),
    str(_REPO_ROOT / "tests"),
    str(_REPO_ROOT / "benchmarks"),
]


def _assert_bar(benchmark, record_info, num_files, findings):
    """Record throughput numbers and assert the wall-clock bar."""
    mean_seconds = benchmark.stats.stats.mean
    record_info(
        benchmark,
        files_linted=num_files,
        findings=len(findings),
        mean_ms=mean_seconds * 1e3,
        files_per_second=num_files / mean_seconds,
    )
    if not os.environ.get("REPRO_RELAX_PERF_ASSERTS"):
        assert mean_seconds < MAX_SECONDS


def test_bench_full_tree_lint(benchmark, record_info):
    """Lint all of src/repro: the per-build cost of the invariant gate."""
    findings, num_files = benchmark(lint_paths, [LINT_ROOT])

    assert findings == [], "live tree must lint clean"
    assert num_files >= 90
    _assert_bar(benchmark, record_info, num_files, findings)


def test_bench_ci_scope_lint(benchmark, record_info):
    """Lint the widened CI scope (tests + benchmarks, fixtures excluded).

    This is the exact per-build cost of the lint step after PR-10 grew
    the scope and added the CFG/dataflow rule families; it must stay
    under the same bar as the package-only run.
    """
    findings, num_files = benchmark(
        lint_paths, CI_SCOPE, exclude=("fixtures",)
    )

    assert findings == [], "full CI scope must lint clean"
    assert num_files >= 150
    _assert_bar(benchmark, record_info, num_files, findings)
