"""Perf smoke benchmark for the invariant linter (``repro lint``).

The linter runs on every CI build over the whole tree, so its wall time is
part of the build budget.  This benchmark lints the full ``src/repro``
package — parse, all rules, cross-file ``RenderRequest`` resolution — and
asserts both the perf bar and the CI gate property itself (zero findings
on the live tree): a benchmark that is fast but finds violations means a
regression landed without the lint gate catching it locally.

Acceptance bar: a full-tree run stays under ``MAX_SECONDS`` (measured
~0.5 s for ~100 files; the bound is deliberately loose for slow CI
runners, and ``REPRO_RELAX_PERF_ASSERTS=1`` relaxes it entirely).
"""

import os
from pathlib import Path

from repro.analysis import lint_paths

#: Upper bound on one full-tree lint, seconds (loose: ~10x the measured mean).
MAX_SECONDS = 5.0

#: The tree the CI gate lints.
LINT_ROOT = str(Path(__file__).parent.parent / "src" / "repro")


def test_bench_full_tree_lint(benchmark, record_info):
    """Lint all of src/repro: the per-build cost of the invariant gate."""
    findings, num_files = benchmark(lint_paths, [LINT_ROOT])

    assert findings == [], "live tree must lint clean"
    assert num_files >= 90

    mean_seconds = benchmark.stats.stats.mean
    record_info(
        benchmark,
        files_linted=num_files,
        findings=len(findings),
        mean_ms=mean_seconds * 1e3,
        files_per_second=num_files / mean_seconds,
    )
    if not os.environ.get("REPRO_RELAX_PERF_ASSERTS"):
        assert mean_seconds < MAX_SECONDS
