"""Benchmark E3: regenerate Fig. 5 (per-stage runtime breakdown)."""

from repro.experiments import fig5_breakdown


def test_bench_fig5(benchmark, record_info):
    result = benchmark(fig5_breakdown.run)
    assert result.mean_rasterize_fraction > 0.80
    record_info(
        benchmark,
        mean_rasterize_fraction=result.mean_rasterize_fraction,
        min_rasterize_fraction=min(
            b.rasterize_fraction for b in result.breakdowns
        ),
    )
