"""Quality-vs-throughput benchmark of the compression/LOD subsystem.

Serves the same request trace at every detail level of a quantized store
and records, per level: requests per second, the minimum PSNR against the
full-detail fp64 render, and the compressed footprint.  Two bars are
pinned:

* **quality floor** — every lossy level keeps PSNR >= 35 dB on the
  synthetic bench scenes (deterministic, asserted unconditionally);
* **throughput win** — the coarsest level serves measurably more req/s
  than full-detail serving (wall-clock, relaxed on shared CI runners via
  ``REPRO_RELAX_PERF_ASSERTS`` like the other perf bars).

The lossless (fp64) tier is additionally checked to serve frames
bit-identical to the uncompressed store — the compression counterpart of
the serving bit-identity contract in ``docs/ARCHITECTURE.md``.
"""

import dataclasses
import os
import time

import numpy as np
import pytest

from repro.compression import CompressedSceneStore
from repro.gaussians.metrics import compare_images
from repro.gaussians.pipeline import render
from repro.gaussians.synthetic import SyntheticConfig, make_synthetic_scene
from repro.serving import RenderService, SceneStore, generate_requests

#: Gaussians per bench scene (dense enough that importance pruning keeps
#: the lossy levels above the PSNR floor with margin).
NUM_GAUSSIANS = 500

#: Number of scenes and requests of the bench trace.
NUM_SCENES = 3
NUM_REQUESTS = 45

#: LOD pyramid shape of the bench store.
LEVELS = 3
KEEP_RATIO = 0.75

#: Pinned quality floor of every lossy level on the bench scenes.
MIN_PSNR_DB = 35.0

#: Mean per-level serve seconds, shared across benchmarks of this module.
_MEAN_SECONDS = {}


@pytest.fixture(scope="module")
def compression_workload():
    """Bench scenes, their plain and compressed stores, and the trace."""
    scenes = [
        make_synthetic_scene(
            SyntheticConfig(
                num_gaussians=NUM_GAUSSIANS, width=80, height=60, seed=seed
            ),
            name=f"bench-scene-{seed}",
            num_cameras=4,
        )
        for seed in range(NUM_SCENES)
    ]
    plain = SceneStore(scenes)
    compressed = CompressedSceneStore(
        scenes, codec="fp16", levels=LEVELS, keep_ratio=KEEP_RATIO
    )
    trace = generate_requests(plain, NUM_REQUESTS, pattern="uniform", seed=0)
    return plain, compressed, trace


def test_bench_lossless_tier_bit_identity(compression_workload):
    """fp64-compressed serving produces byte-for-byte the same frames."""
    plain, _, trace = compression_workload
    lossless = CompressedSceneStore.from_store(plain, codec="fp64", levels=1)
    reference = RenderService(plain).serve(trace)
    compressed = RenderService(lossless).serve(trace)
    for mine, ref in zip(compressed.responses, reference.responses):
        assert np.array_equal(mine.image, ref.image)


def test_bench_lod_quality_floor(record_info, compression_workload):
    """Each lossy level meets the pinned PSNR floor on every bench view.

    The reference is the *original uncompressed* render, so the floor
    covers both the fp16 codec loss (level 0) and the importance pruning
    (levels 1+).  Deterministic (pure fp64 pipeline), so no relax knob.
    """
    plain, compressed, _ = compression_workload
    worst = {}
    for index in range(len(compressed)):
        original = plain.get_scene(index)
        for camera in compressed.get_cameras(index):
            reference = render(original, camera=camera).image
            for level in range(compressed.num_levels(index)):
                test = render(
                    compressed.get_scene(index, level), camera=camera
                ).image
                psnr = compare_images(reference, test).psnr_db
                worst[level] = min(worst.get(level, float("inf")), psnr)
    for level, psnr in sorted(worst.items()):
        assert psnr >= MIN_PSNR_DB, (
            f"level {level} PSNR {psnr:.1f} dB below the {MIN_PSNR_DB} dB floor"
        )


def _serve_at_level(store, trace, level, rounds=3):
    """Mean cold-serve seconds of the trace pinned to one detail level."""
    pinned = [dataclasses.replace(request, level=level) for request in trace]
    seconds = []
    report = None
    for _ in range(rounds):
        service = RenderService(store)
        start = time.perf_counter()
        report = service.serve(pinned)
        seconds.append(time.perf_counter() - start)
    return sum(seconds) / len(seconds), report


def test_bench_full_detail_serving(benchmark, record_info, compression_workload):
    """Reference throughput: the whole trace at level 0 (full detail)."""
    _, compressed, trace = compression_workload
    pinned = [dataclasses.replace(request, level=0) for request in trace]

    def cold():
        return RenderService(compressed).serve(pinned)

    report = benchmark.pedantic(cold, rounds=3, iterations=1)
    assert report.num_requests == NUM_REQUESTS
    assert set(report.requests_by_level) == {0}
    if benchmark.stats is not None:
        mean = benchmark.stats.stats.mean
        _MEAN_SECONDS["full"] = mean
        record_info(benchmark, requests_per_second=NUM_REQUESTS / mean)


def test_bench_coarsest_level_serving(benchmark, record_info, compression_workload):
    """The coarsest level must serve measurably more req/s than level 0."""
    _, compressed, trace = compression_workload
    coarsest = LEVELS - 1
    pinned = [dataclasses.replace(request, level=coarsest) for request in trace]

    def cold():
        return RenderService(compressed).serve(pinned)

    report = benchmark.pedantic(cold, rounds=3, iterations=1)
    assert report.num_requests == NUM_REQUESTS
    assert set(report.requests_by_level) == {coarsest}
    if benchmark.stats is not None:
        mean = benchmark.stats.stats.mean
        _MEAN_SECONDS["coarsest"] = mean
        record_info(
            benchmark,
            requests_per_second=NUM_REQUESTS / mean,
            level_sizes=list(compressed.level_sizes(0)),
            compression_ratio=round(compressed.compression_ratio, 2),
        )
        if "full" in _MEAN_SECONDS:
            speedup = _MEAN_SECONDS["full"] / _MEAN_SECONDS["coarsest"]
            record_info(benchmark, speedup_vs_full_detail=speedup)
            # Measured ~1.3-1.4x on a quiet machine (44% fewer Gaussians);
            # shared CI runners opt out via REPRO_RELAX_PERF_ASSERTS.
            if not os.environ.get("REPRO_RELAX_PERF_ASSERTS"):
                assert speedup >= 1.1


def test_bench_per_level_quality_throughput_table(record_info, compression_workload):
    """Record the README table: req/s, min PSNR and footprint per level."""
    plain, compressed, trace = compression_workload
    table = {}
    for level in range(LEVELS):
        seconds, report = _serve_at_level(compressed, trace, level, rounds=2)
        worst_psnr = float("inf")
        for index in range(len(compressed)):
            camera = compressed.get_cameras(index)[0]
            reference = render(plain.get_scene(index), camera=camera).image
            test = render(
                compressed.get_scene(index, level), camera=camera
            ).image
            worst_psnr = min(
                worst_psnr, compare_images(reference, test).psnr_db
            )
        table[level] = {
            "requests_per_second": round(NUM_REQUESTS / seconds, 1),
            "min_psnr_db": (
                "inf" if worst_psnr == float("inf") else round(worst_psnr, 1)
            ),
            "gaussians": compressed.level_sizes(0)[level],
        }
        assert report.num_requests == NUM_REQUESTS
    # Printed so a local run can refresh the README numbers directly.
    print("\nper-level quality/throughput:", table)
