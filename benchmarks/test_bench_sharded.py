"""Hot-scene replication benchmark: replicated fleet vs static affinity.

The scenario ISSUE pins: a hotspot stream (one scene absorbs ~80% of the
requests) against a 4-worker fleet.  Under static scene affinity the hot
scene's one owner is the critical path while the other shards idle;
replicating the hot scene on ``k=2`` shards with load-aware dispatch splits
that traffic.

Two fleets serve the *same* trace in in-process mode (identical code path,
busy times clean on any host) with the frame cache disabled, so every
request costs real render work and the load split is honest:

* the per-shard **request-count spread** (max - min share) is a
  deterministic function of the stream and must strictly shrink under
  replication — asserted unconditionally;
* the **critical path** (slowest shard's busy time) and the modeled p95
  latency must improve too — time-based, so shared CI runners opt out via
  ``REPRO_RELAX_PERF_ASSERTS``;
* frames from both fleets are bit-identical to the single-worker serve —
  replication buys balance, never accuracy.
"""

import os

import numpy as np
import pytest

from repro.gaussians.synthetic import SyntheticConfig, make_synthetic_scene
from repro.serving import (
    RenderService,
    SceneStore,
    ShardedRenderService,
    generate_requests,
    popularity_priority,
)

#: Workers of the benchmark fleet.
NUM_WORKERS = 4

#: Requests in the hotspot bench trace.
NUM_REQUESTS = 64

#: Dispatch round size shared by both fleets (same routing cadence).
WINDOW = 8


@pytest.fixture(scope="module")
def hotspot_workload():
    """A 4-scene store plus a hotspot trace and its popularity model."""
    store = SceneStore(
        make_synthetic_scene(
            SyntheticConfig(num_gaussians=300, width=80, height=60, seed=seed),
            name=f"bench-scene-{seed}",
            # Enough distinct viewpoints that a dispatch round rarely
            # repeats one: in-batch memoization would otherwise collapse
            # the hot shard's queue and mask the balancing effect.
            num_cameras=16,
        )
        for seed in range(NUM_WORKERS)
    )
    trace = generate_requests(
        store, NUM_REQUESTS, pattern="hotspot", seed=2, hotspot_fraction=0.8
    )
    priority = popularity_priority(store, pattern="hotspot", seed=2)
    return store, trace, priority


def _serve(store, trace, priority, replication):
    """One cold serve through a fleet with the given replication factor."""
    with ShardedRenderService(
        store,
        num_workers=NUM_WORKERS,
        replication=replication,
        hot_scenes=priority if replication > 1 else None,
        use_processes=False,
        dispatch_window=WINDOW,
        frame_cache_bytes=0,  # every request pays its render: honest load
    ) as fleet:
        return fleet.serve(trace)


def _spread(report):
    """Max-minus-min per-shard request share (0 = perfectly balanced)."""
    counts = [shard.num_requests for shard in report.shards]
    return (max(counts) - min(counts)) / report.num_requests


def test_bench_replicated_vs_static_affinity(
    benchmark, record_info, hotspot_workload
):
    store, trace, priority = hotspot_workload

    static = _serve(store, trace, priority, replication=1)
    replicated = benchmark.pedantic(
        lambda: _serve(store, trace, priority, replication=2),
        rounds=2, iterations=1,
    )
    assert static.num_requests == NUM_REQUESTS
    assert replicated.num_requests == NUM_REQUESTS

    # The hot scene really is resident on 2 shards in the replicated fleet.
    hot = min(priority.hot_scenes)
    assert len(replicated.placement_map[hot]) == 2
    assert len(static.placement_map[hot]) == 1

    # Deterministic: load-aware dispatch over 2 owners must strictly shrink
    # the request-count spread vs static affinity pinning the hot scene.
    static_spread = _spread(static)
    replicated_spread = _spread(replicated)
    assert replicated_spread < static_spread
    hot_owner_max = max(s.num_requests for s in replicated.shards)
    assert hot_owner_max < max(s.num_requests for s in static.shards)

    # Bit-identity: replication never changes a frame.
    single = RenderService(store, frame_cache_bytes=0).serve(trace)
    for report in (static, replicated):
        for mine, ref in zip(report.responses, single.responses):
            assert np.array_equal(mine.image, ref.image)
            assert mine.frame_key == ref.frame_key

    static_p95 = static.latency_percentile(95)
    replicated_p95 = replicated.latency_percentile(95)
    balance_speedup = (
        static.critical_path_seconds / replicated.critical_path_seconds
    )
    if benchmark.stats is not None:
        record_info(
            benchmark,
            num_workers=NUM_WORKERS,
            hot_scene=hot,
            static_spread=static_spread,
            replicated_spread=replicated_spread,
            static_utilization=[round(u, 3) for u in static.utilization],
            replicated_utilization=[
                round(u, 3) for u in replicated.utilization
            ],
            static_p95_ms=static_p95 * 1e3,
            replicated_p95_ms=replicated_p95 * 1e3,
            critical_path_speedup=balance_speedup,
        )
    # Time-based: the hot shard's busy time was the fleet's critical path;
    # splitting it across two owners must shorten it and the tail latency.
    # Measured ~1.6x critical-path gain on a quiet machine; 1.15x leaves
    # margin.  Shared CI runners opt out via REPRO_RELAX_PERF_ASSERTS.
    if not os.environ.get("REPRO_RELAX_PERF_ASSERTS"):
        assert balance_speedup >= 1.15
        assert replicated_p95 <= static_p95


def test_bench_chaos_overhead(benchmark, record_info, hotspot_workload):
    """A mid-stream kill on a replicated fleet: overhead stays bounded.

    The killed shard's in-flight window is requeued to the surviving
    replica; the serve must not redo more than that window, so the extra
    work is at most one dispatch round.  Deterministic, so asserted
    unconditionally; wall time is recorded for the report.
    """
    from repro.serving import FailurePlan

    store, trace, priority = hotspot_workload
    plan = FailurePlan.at((NUM_REQUESTS // 2, 1))

    def chaotic():
        with ShardedRenderService(
            store, num_workers=NUM_WORKERS, replication=2,
            hot_scenes=priority, use_processes=False,
            dispatch_window=WINDOW, frame_cache_bytes=0,
        ) as fleet:
            return fleet.serve(trace, failure_plan=plan)

    report = benchmark.pedantic(chaotic, rounds=2, iterations=1)
    assert report.num_requests == NUM_REQUESTS
    assert report.dispatched == NUM_REQUESTS + report.requeued
    assert report.killed == (1,)
    assert report.requeued <= WINDOW
    if benchmark.stats is not None:
        record_info(
            benchmark,
            requeued=report.requeued,
            respawned=report.respawned,
            redo_fraction=report.requeued / NUM_REQUESTS,
        )
