"""Micro-benchmarks of the library's own kernels (not a paper artifact).

These benchmark the simulator building blocks themselves — the functional
3DGS render, the cycle-level instance simulation and the paper-scale
analytical evaluation — so regressions in the reproduction's performance are
visible alongside the experiment benchmarks.
"""

import pytest

from repro.core.gaurast import GauRastSystem
from repro.gaussians.pipeline import render
from repro.gaussians.synthetic import SyntheticConfig, make_synthetic_scene
from repro.hardware.config import GauRastConfig
from repro.hardware.rasterizer import GauRastInstance


@pytest.fixture(scope="module")
def bench_scene():
    config = SyntheticConfig(num_gaussians=300, width=96, height=64, seed=13)
    return make_synthetic_scene(config, name="bench")


@pytest.fixture(scope="module")
def bench_render(bench_scene):
    return render(bench_scene)


def test_bench_functional_render(benchmark, bench_scene):
    result = benchmark(render, bench_scene)
    assert result.fragments_evaluated > 0


def test_bench_instance_cycle_simulation(benchmark, bench_render):
    def simulate():
        instance = GauRastInstance(GauRastConfig(num_instances=1))
        return instance.rasterize_gaussians(bench_render.projected, bench_render.binning)

    _, report = benchmark(simulate)
    assert report.cycles > 0


def test_bench_paper_scale_evaluation(benchmark):
    system = GauRastSystem()
    summary = benchmark(system.summary, "original")
    assert summary["mean_raster_speedup"] > 20.0
