"""Benchmark-suite configuration.

Each benchmark regenerates one table or figure of the paper through the
experiment harness and records the headline numbers in
``benchmark.extra_info`` so they appear in the pytest-benchmark report.
"""

import pytest


@pytest.fixture
def record_info():
    """Helper to stash experiment headline numbers into the benchmark report."""

    def _record(benchmark, **info):
        for key, value in info.items():
            benchmark.extra_info[key] = round(value, 3) if isinstance(value, float) else value

    return _record
