"""Benchmark E9: regenerate the Section V-C comparison against GSCore."""

from repro.experiments import gscore_compare


def test_bench_gscore(benchmark, record_info):
    result = benchmark(gscore_compare.run)
    assert 15.0 <= result.area_efficiency_improvement <= 35.0
    record_info(
        benchmark,
        area_efficiency_improvement=result.area_efficiency_improvement,
        gaurast_added_area_mm2=result.gaurast_added_area_mm2,
        gaurast_instances=result.gaurast_instances,
    )
