"""Perf smoke benchmark: RenderService vs the naive per-request loop.

Serves the same 3-scene, 60-request trace two ways — a naive loop calling
``pipeline.render`` per request, and the :class:`RenderService` with
same-scene batching plus covariance/frame memoization — and records the
requests/sec of each plus the service-over-naive speedup in
``benchmark.extra_info``.  The responses are bit-identical to the naive
renders (guaranteed by ``tests/test_serving_service.py``), so the speedup is
free of accuracy trade-offs.  The acceptance bar is >= 2x.
"""

import os

import numpy as np
import pytest

from repro.gaussians.pipeline import render
from repro.gaussians.synthetic import SyntheticConfig, make_synthetic_scene
from repro.serving import RenderService, SceneStore, synthetic_request_trace

#: Number of requests in the bench trace.
NUM_REQUESTS = 60

#: Mean per-round seconds keyed by mode, shared between the two benchmarks
#: of this module so the serving one can report the speedup.
_MEAN_SECONDS = {}


@pytest.fixture(scope="module")
def serving_workload():
    """A 3-scene store plus a 60-request trace with popular-view reuse."""
    store = SceneStore(
        make_synthetic_scene(
            SyntheticConfig(num_gaussians=300, width=80, height=60, seed=seed),
            name=f"bench-scene-{seed}",
            num_cameras=4,
        )
        for seed in range(3)
    )
    trace = synthetic_request_trace(store, NUM_REQUESTS, seed=0)
    return store, trace


def test_bench_serve_naive_loop(benchmark, record_info, serving_workload):
    store, trace = serving_workload

    def naive():
        return [
            render(store.get_scene(request.scene_id), camera=request.camera)
            for request in trace
        ]

    results = benchmark.pedantic(naive, rounds=3, iterations=1)
    assert len(results) == NUM_REQUESTS
    if benchmark.stats is not None:  # None under --benchmark-disable
        mean = benchmark.stats.stats.mean
        _MEAN_SECONDS["naive"] = mean
        record_info(benchmark, requests_per_second=NUM_REQUESTS / mean)


def test_bench_serve_render_service(benchmark, record_info, serving_workload):
    store, trace = serving_workload

    # A fresh service per round: every round pays its own covariance
    # computations and frame renders, so the measured speedup is what one
    # cold trace gains from batching + within-trace memoization.
    report = benchmark.pedantic(
        lambda: RenderService(store).serve(trace), rounds=3, iterations=1
    )
    assert report.num_requests == NUM_REQUESTS

    # Spot-check bit-identity against the naive path on this very trace.
    probe = report.responses[-1]
    golden = render(
        store.get_scene(probe.scene_index), camera=probe.request.camera
    )
    assert np.array_equal(probe.image, golden.image)

    if benchmark.stats is not None:
        mean = benchmark.stats.stats.mean
        _MEAN_SECONDS["service"] = mean
        record_info(
            benchmark,
            requests_per_second=NUM_REQUESTS / mean,
            memoized_requests=report.num_cache_hits,
            num_batches=report.num_batches,
        )
        if "naive" in _MEAN_SECONDS:
            speedup = _MEAN_SECONDS["naive"] / _MEAN_SECONDS["service"]
            record_info(benchmark, speedup_vs_naive=speedup)
            # Measured ~4x on a quiet machine (60 requests over 12 distinct
            # viewpoints); the 2x bar leaves margin for noise.  Shared CI
            # runners opt out via REPRO_RELAX_PERF_ASSERTS (see ci.yml).
            if not os.environ.get("REPRO_RELAX_PERF_ASSERTS"):
                assert speedup >= 2.0
