"""Perf smoke benchmarks for the serving layer.

Three measurements over synthetic multi-scene traces:

1. the naive loop calling ``pipeline.render`` per request;
2. the single-worker :class:`RenderService` (same-scene batching plus
   covariance/frame memoization) — acceptance bar >= 2x over naive;
3. the :class:`ShardedRenderService` fleet at ``--workers 4`` — measured on
   a 4-scene trace against the single worker.  Shards share no state, so
   the fleet's per-shard *busy* times are measured in in-process mode
   (clean on any host) and the fleet throughput with one core per worker is
   ``num_requests / max(shard busy)``; the acceptance bar is >= 1.5x over
   the single worker's wall time.  On hosts with >= 4 cores the
   process-mode wall-clock speedup is measured and asserted too.

All speedups are free of accuracy trade-offs: the served frames are
bit-identical to per-request renders (asserted here and in
``tests/test_serving_service.py`` / ``tests/test_serving_sharded.py``).
"""

import os

import numpy as np
import pytest

from repro.gaussians.pipeline import render
from repro.gaussians.synthetic import SyntheticConfig, make_synthetic_scene
from repro.serving import (
    RenderService,
    SceneStore,
    ShardedRenderService,
    generate_requests,
    synthetic_request_trace,
)

#: Number of requests in the bench trace.
NUM_REQUESTS = 60

#: Workers of the sharded fleet benchmark.
NUM_WORKERS = 4

#: Requests of the sharded (4-scene) bench trace.
NUM_SHARDED_REQUESTS = 80

#: Mean per-round seconds keyed by mode, shared between the benchmarks of
#: this module so later ones can report speedups over earlier ones.
_MEAN_SECONDS = {}


@pytest.fixture(scope="module")
def serving_workload():
    """A 3-scene store plus a 60-request trace with popular-view reuse."""
    store = SceneStore(
        make_synthetic_scene(
            SyntheticConfig(num_gaussians=300, width=80, height=60, seed=seed),
            name=f"bench-scene-{seed}",
            num_cameras=4,
        )
        for seed in range(3)
    )
    trace = synthetic_request_trace(store, NUM_REQUESTS, seed=0)
    return store, trace


def test_bench_serve_naive_loop(benchmark, record_info, serving_workload):
    store, trace = serving_workload

    def naive():
        return [
            render(store.get_scene(request.scene_id), camera=request.camera)
            for request in trace
        ]

    results = benchmark.pedantic(naive, rounds=3, iterations=1)
    assert len(results) == NUM_REQUESTS
    if benchmark.stats is not None:  # None under --benchmark-disable
        mean = benchmark.stats.stats.mean
        _MEAN_SECONDS["naive"] = mean
        record_info(benchmark, requests_per_second=NUM_REQUESTS / mean)


def test_bench_serve_render_service(benchmark, record_info, serving_workload):
    store, trace = serving_workload

    # A fresh service per round: every round pays its own covariance
    # computations and frame renders, so the measured speedup is what one
    # cold trace gains from batching + within-trace memoization.
    report = benchmark.pedantic(
        lambda: RenderService(store).serve(trace), rounds=3, iterations=1
    )
    assert report.num_requests == NUM_REQUESTS

    # Spot-check bit-identity against the naive path on this very trace.
    probe = report.responses[-1]
    golden = render(
        store.get_scene(probe.scene_index), camera=probe.request.camera
    )
    assert np.array_equal(probe.image, golden.image)

    if benchmark.stats is not None:
        mean = benchmark.stats.stats.mean
        _MEAN_SECONDS["service"] = mean
        record_info(
            benchmark,
            requests_per_second=NUM_REQUESTS / mean,
            memoized_requests=report.num_cache_hits,
            num_batches=report.num_batches,
        )
        if "naive" in _MEAN_SECONDS:
            speedup = _MEAN_SECONDS["naive"] / _MEAN_SECONDS["service"]
            record_info(benchmark, speedup_vs_naive=speedup)
            # Measured ~4x on a quiet machine (60 requests over 12 distinct
            # viewpoints); the 2x bar leaves margin for noise.  Shared CI
            # runners opt out via REPRO_RELAX_PERF_ASSERTS (see ci.yml).
            if not os.environ.get("REPRO_RELAX_PERF_ASSERTS"):
                assert speedup >= 2.0


@pytest.fixture(scope="module")
def sharded_workload():
    """A 4-scene store plus an 80-request trace, one scene per worker."""
    store = SceneStore(
        make_synthetic_scene(
            SyntheticConfig(num_gaussians=300, width=80, height=60, seed=seed),
            name=f"bench-scene-{seed}",
            num_cameras=4,
        )
        for seed in range(NUM_WORKERS)
    )
    trace = generate_requests(
        store, NUM_SHARDED_REQUESTS, pattern="uniform", seed=0
    )
    return store, trace


def test_bench_serve_sharded_fleet(benchmark, record_info, sharded_workload):
    """ShardedRenderService at 4 workers vs the single-worker service."""
    store, trace = sharded_workload

    # Single-worker reference on the same trace, cold service per round.
    import time

    single_seconds = []
    single_report = None
    for _ in range(3):
        service = RenderService(store)
        start = time.perf_counter()
        single_report = service.serve(trace)
        single_seconds.append(time.perf_counter() - start)
    single_mean = sum(single_seconds) / len(single_seconds)

    # The fleet in in-process mode: identical routing/merge code path, and
    # shard busy times unpolluted by host-core timesharing.  Caches are
    # reset per round so every round serves a cold trace.
    fleet = ShardedRenderService(
        store, num_workers=NUM_WORKERS, use_processes=False
    )
    critical_paths = []

    def cold():
        fleet.reset_caches()
        report = fleet.serve(trace)
        critical_paths.append(report.critical_path_seconds)
        return report

    report = benchmark.pedantic(cold, rounds=3, iterations=1)
    assert report.num_requests == NUM_SHARDED_REQUESTS
    assert {len(s.scene_indices) for s in report.shards} == {1}

    # Bit-identity: every fleet response equals the single-worker one.
    for mine, ref in zip(report.responses, single_report.responses):
        assert np.array_equal(mine.image, ref.image)

    critical_mean = sum(critical_paths) / len(critical_paths)
    modeled_speedup = single_mean / critical_mean
    if benchmark.stats is not None:
        record_info(
            benchmark,
            num_workers=NUM_WORKERS,
            single_worker_requests_per_second=NUM_SHARDED_REQUESTS / single_mean,
            fleet_requests_per_second_one_core_per_worker=(
                NUM_SHARDED_REQUESTS / critical_mean
            ),
            speedup_vs_single_worker=modeled_speedup,
            utilization=[round(u, 3) for u in report.utilization],
        )
    # Balanced uniform traffic over one scene per shard: measured ~3.5x on a
    # quiet machine; 1.5x leaves margin for skew and noise.
    if not os.environ.get("REPRO_RELAX_PERF_ASSERTS"):
        assert modeled_speedup >= 1.5

    # On hosts with enough cores the multiprocessing fleet must also win on
    # raw wall clock; single-core hosts (where 4 workers timeshare 1 CPU)
    # record the number without asserting on it.
    with ShardedRenderService(store, num_workers=NUM_WORKERS) as mp_fleet:
        mp_fleet.reset_caches()
        start = time.perf_counter()
        mp_report = mp_fleet.serve(trace)
        mp_seconds = time.perf_counter() - start
    for mine, ref in zip(mp_report.responses, single_report.responses):
        assert np.array_equal(mine.image, ref.image)
    wall_speedup = single_mean / mp_seconds
    if benchmark.stats is not None:
        record_info(
            benchmark,
            process_fleet_requests_per_second=NUM_SHARDED_REQUESTS / mp_seconds,
            process_fleet_wall_speedup=wall_speedup,
        )
    available_cores = (
        len(os.sched_getaffinity(0))
        if hasattr(os, "sched_getaffinity")  # Linux-only API
        else (os.cpu_count() or 1)
    )
    if (
        not os.environ.get("REPRO_RELAX_PERF_ASSERTS")
        and available_cores >= NUM_WORKERS
    ):
        assert wall_speedup >= 1.3
