"""Benchmark E5: regenerate Table III (rasterization runtime w/ and w/o GauRast)."""

from repro.experiments import table3_runtime


def test_bench_table3(benchmark, record_info):
    result = benchmark(table3_runtime.run)
    assert 20.0 <= result.mean_speedup <= 27.0
    record_info(
        benchmark,
        mean_speedup=result.mean_speedup,
        bicycle_baseline_ms=result.baseline_ms["bicycle"],
        bicycle_gaurast_ms=result.gaurast_ms["bicycle"],
    )
