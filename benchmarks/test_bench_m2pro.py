"""Benchmark E10: regenerate the Section V-D Apple M2 Pro compatibility study."""

from repro.experiments import m2pro_compare


def test_bench_m2pro(benchmark, record_info):
    result = benchmark(m2pro_compare.run)
    assert 9.0 <= result.speedup <= 13.0
    record_info(
        benchmark,
        speedup=result.speedup,
        opensplat_ms=result.opensplat_time_s * 1e3,
        gaurast_ms=result.gaurast_time_s * 1e3,
    )
