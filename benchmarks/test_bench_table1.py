"""Benchmark E1: regenerate Table I (rendering methodology comparison)."""

from repro.experiments import table1_methods


def test_bench_table1(benchmark, record_info):
    result = benchmark(table1_methods.run)
    methods = result.by_method()
    assert set(methods) == {"Triangle Mesh", "NeRF", "3D Gaussian"}
    record_info(
        benchmark,
        triangle_ops_per_fragment=methods["Triangle Mesh"].ops_per_fragment,
        gaussian_ops_per_fragment=methods["3D Gaussian"].ops_per_fragment,
    )
