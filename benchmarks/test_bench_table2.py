"""Benchmark E4: regenerate Table II (computational primitives)."""

from repro.experiments import table2_primitives


def test_bench_table2(benchmark, record_info):
    result = benchmark(table2_primitives.run)
    assert result.triangle_needs_div
    assert result.gaussian_needs_exp
    record_info(
        benchmark,
        gaussian_add=result.gaussian_totals.get("add", 0),
        gaussian_mul=result.gaussian_totals.get("mul", 0),
        gaussian_exp=result.gaussian_totals.get("exp", 0),
        triangle_div=result.triangle_totals.get("div", 0),
    )
