"""Benchmark E12 (ablation): GauRast instance-count scaling sweep."""

from repro.experiments import scaling_sweep


def test_bench_scaling(benchmark, record_info):
    result = benchmark(scaling_sweep.run)
    design_point = result.point_for(15)
    assert design_point.total_pes == 240
    record_info(
        benchmark,
        design_point_speedup=design_point.raster_speedup,
        design_point_fps=design_point.end_to_end_fps,
        design_point_added_area_mm2=design_point.added_area_mm2,
    )
