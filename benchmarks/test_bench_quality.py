"""Benchmark E13: Section V-A hardware-vs-software output validation."""

from repro.experiments import quality_validation


def test_bench_quality(benchmark, record_info):
    result = benchmark.pedantic(
        quality_validation.run, kwargs={"num_gaussian_scenes": 1}, rounds=1, iterations=1
    )
    assert result.fp32_lossless
    record_info(
        benchmark,
        fp32_lossless=result.fp32_lossless,
        fp16_min_psnr_db=result.fp16_min_psnr_db,
    )
