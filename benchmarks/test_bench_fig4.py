"""Benchmark E2: regenerate Fig. 4 (baseline FPS on the Jetson Orin NX)."""

from repro.experiments import fig4_baseline_fps


def test_bench_fig4(benchmark, record_info):
    result = benchmark(fig4_baseline_fps.run)
    assert 3.0 <= result.mean_fps <= 5.0
    record_info(
        benchmark,
        mean_fps=result.mean_fps,
        bicycle_fps=result.fps_by_scene["bicycle"],
        bonsai_fps=result.fps_by_scene["bonsai"],
    )
