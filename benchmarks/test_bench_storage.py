"""Storage-tier benchmark: shared-memory and paged catalogs under a fleet.

The scenario ISSUE pins: a large synthetic catalog served by a 4-worker
fleet, comparing residency tiers.

* **Shared tier** — per-worker owned payload must be *flat* (zero) in the
  catalog size: every worker serves zero-copy views of the one hosted
  segment, where the plain store hands each worker a private sub-copy
  that grows linearly with its shard.  Asserted on exact byte accounting
  (deterministic on any host), with the catalog hosted at two sizes.
* **Paged tier** — the resident set stays under the configured byte
  budget for the whole serve (evictions do the bounding, and they must
  actually fire).
* **Bit-identity** — frames from every tier equal the single-worker
  in-memory serve; residency must never change a pixel.
* **Throughput** — the shared tier's serve must not regress beyond a
  generous tolerance vs the in-memory fleet (time-based, so shared CI
  runners opt out via ``REPRO_RELAX_PERF_ASSERTS``).

The tier-1 run exercises a small catalog; the ``slow``-marked sweep
scales the same assertions to a ~10k-scene catalog (CI's serving step
opts back in with ``-m "slow or not slow"``).
"""

import os

import numpy as np
import pytest

from repro.gaussians.scene import GaussianScene
from repro.gaussians.synthetic import SyntheticConfig, make_synthetic_scene
from repro.serving import (
    PagedSceneStore,
    RenderService,
    SceneStore,
    ShardedRenderService,
    SharedSceneStore,
    generate_requests,
    write_paged,
)

#: Workers of the benchmark fleet.
NUM_WORKERS = 4

#: Requests per serve.
NUM_REQUESTS = 64

#: Distinct base payloads tiled across the catalog.
NUM_BASE_SCENES = 8


def _catalog(num_scenes: int) -> SceneStore:
    """A catalog of ``num_scenes`` built by tiling a few base payloads.

    Tiling keeps construction fast at the 10k scale while the flat arrays
    still hold ``num_scenes`` distinct scene entries — residency cost is
    what the benchmark measures, and that depends on entry count and
    payload bytes, not payload variety.
    """
    base = [
        make_synthetic_scene(
            SyntheticConfig(num_gaussians=40, width=32, height=24, seed=seed),
            name=f"base-{seed}",
            num_cameras=2,
        )
        for seed in range(NUM_BASE_SCENES)
    ]
    store = SceneStore()
    for index in range(num_scenes):
        source = base[index % NUM_BASE_SCENES]
        store.add_scene(
            GaussianScene(
                cloud=source.cloud,
                cameras=source.cameras,
                name=f"scene-{index:05d}",
            )
        )
    return store


def _per_worker_owned_bytes(fleet) -> list:
    """Catalog payload bytes each in-process worker privately owns."""
    owned = []
    for service in fleet._services:
        store = service.store
        owned.append(getattr(store, "owned_bytes", store.capacity_bytes))
    return owned


def _serve_fleet(store, trace, **kwargs):
    """One cold in-process serve; returns (report, per-worker owned bytes)."""
    defaults = dict(
        num_workers=NUM_WORKERS, use_processes=False, frame_cache_bytes=0
    )
    defaults.update(kwargs)
    with ShardedRenderService(store, **defaults) as fleet:
        report = fleet.serve(trace)
        return report, _per_worker_owned_bytes(fleet)


def _assert_bit_identical(report, reference):
    for mine, ref in zip(report.responses, reference.responses):
        assert np.array_equal(mine.image, ref.image)


def _run_tier_comparison(store, trace, tmp_path, budget_scenes=4):
    """Serve one trace through every tier; return the per-tier reports.

    Returns ``(plain_report, plain_owned, shared_report, shared_owned,
    paged_report, paged_resident, budget)`` after asserting the residency
    contract; frames are asserted bit-identical to a single-worker serve.
    """
    single = RenderService(store, frame_cache_bytes=0).serve(trace)

    plain_report, plain_owned = _serve_fleet(store, trace)
    _assert_bit_identical(plain_report, single)

    with SharedSceneStore(
        store.get_scene(index) for index in range(len(store))
    ) as catalog:
        shared_report, shared_owned = _serve_fleet(catalog, trace)
    _assert_bit_identical(shared_report, single)
    # The heart of the tier: workers own no payload at all — residency
    # lives in the one shared segment, whatever the catalog size.
    assert shared_owned == [0] * NUM_WORKERS
    assert sum(plain_owned) >= store.nbytes

    budget = budget_scenes * store.scene_nbytes(0)
    paged = PagedSceneStore(
        write_paged(store, tmp_path / f"catalog-{len(store)}"),
        memory_budget=budget,
    )
    with ShardedRenderService(
        paged, num_workers=NUM_WORKERS, use_processes=False,
        frame_cache_bytes=0,
    ) as fleet:
        paged_report = fleet.serve(trace)
        resident = [
            service.store.resident_bytes for service in fleet._services
        ]
        evictions = sum(
            service.store.resident_stats().evictions
            for service in fleet._services
        )
    _assert_bit_identical(paged_report, single)
    # Bounded resident set, actually enforced by evictions.
    assert all(bytes_ <= budget for bytes_ in resident)
    assert evictions > 0
    return (
        plain_report, plain_owned, shared_report, shared_owned,
        paged_report, resident, budget,
    )


def test_bench_storage_tiers(benchmark, record_info, tmp_path):
    """Small-catalog tier comparison (tier-1): the full residency contract."""
    store = _catalog(48)
    trace = generate_requests(store, NUM_REQUESTS, pattern="zipf", seed=3)

    results = benchmark.pedantic(
        lambda: _run_tier_comparison(store, trace, tmp_path),
        rounds=2, iterations=1,
    )
    (plain_report, plain_owned, shared_report, _shared_owned,
     paged_report, resident, budget) = results

    if benchmark.stats is not None:
        record_info(
            benchmark,
            num_scenes=len(store),
            catalog_bytes=store.nbytes,
            plain_owned_bytes=sum(plain_owned),
            paged_budget=budget,
            paged_resident=max(resident),
            plain_rps=plain_report.requests_per_second,
            shared_rps=shared_report.requests_per_second,
            paged_rps=paged_report.requests_per_second,
        )
    # Zero-copy views cost no meaningful throughput.  Measured parity on a
    # quiet machine; 2x leaves wide margin for shared runners, which can
    # also opt out entirely.
    if not os.environ.get("REPRO_RELAX_PERF_ASSERTS"):
        assert shared_report.requests_per_second >= (
            plain_report.requests_per_second / 2.0
        )


@pytest.mark.slow
def test_bench_storage_10k_catalog_scaling(benchmark, record_info, tmp_path):
    """~10k-scene sweep: per-worker bytes stay flat as the catalog grows 4x."""
    small, large = 2500, 10000
    owned_by_size = {}
    plain_owned_by_size = {}
    reports = {}

    for num_scenes in (small, large):
        store = _catalog(num_scenes)
        trace = generate_requests(
            store, NUM_REQUESTS, pattern="zipf", seed=5
        )
        single = RenderService(store, frame_cache_bytes=0).serve(trace)

        plain_report, plain_owned = _serve_fleet(store, trace)
        _assert_bit_identical(plain_report, single)
        plain_owned_by_size[num_scenes] = sum(plain_owned)

        with SharedSceneStore(
            store.get_scene(index) for index in range(len(store))
        ) as catalog:
            if num_scenes == large:
                shared_report, shared_owned = benchmark.pedantic(
                    lambda c=catalog, t=trace: _serve_fleet(c, t),
                    rounds=2, iterations=1,
                )
            else:
                shared_report, shared_owned = _serve_fleet(catalog, trace)
        _assert_bit_identical(shared_report, single)
        owned_by_size[num_scenes] = sum(shared_owned)
        reports[num_scenes] = (plain_report, shared_report)

        if num_scenes == large:
            # Paged tier at the 10k scale: resident ≤ budget throughout.
            budget = 64 * store.scene_nbytes(0)
            paged = PagedSceneStore(
                write_paged(store, tmp_path / "catalog-10k"),
                memory_budget=budget,
            )
            with ShardedRenderService(
                paged, num_workers=NUM_WORKERS, use_processes=False,
                frame_cache_bytes=0,
            ) as fleet:
                paged_report = fleet.serve(trace)
                resident = [
                    s.store.resident_bytes for s in fleet._services
                ]
            _assert_bit_identical(paged_report, single)
            assert all(bytes_ <= budget for bytes_ in resident)

    # Flat per-worker residency: the catalog grew 4x, worker-owned payload
    # stayed exactly flat (zero) under the shared tier — while the plain
    # fleet's private sub-copies grew with it.
    assert owned_by_size[small] == owned_by_size[large] == 0
    assert plain_owned_by_size[large] >= 3 * plain_owned_by_size[small]

    if benchmark.stats is not None:
        plain_report, shared_report = reports[large]
        record_info(
            benchmark,
            small_catalog=small,
            large_catalog=large,
            plain_owned_small=plain_owned_by_size[small],
            plain_owned_large=plain_owned_by_size[large],
            shared_owned_any=0,
            plain_rps=plain_report.requests_per_second,
            shared_rps=shared_report.requests_per_second,
            paged_resident_max=max(resident),
            paged_budget=budget,
        )
    if not os.environ.get("REPRO_RELAX_PERF_ASSERTS"):
        plain_report, shared_report = reports[large]
        assert shared_report.requests_per_second >= (
            plain_report.requests_per_second / 2.0
        )


@pytest.mark.slow
def test_bench_shared_process_fleet_bit_identity(tmp_path):
    """Process-mode acceptance: 4 real workers attach to one segment.

    Every frame equals the in-memory single-worker serve and worker death
    plus close leaves ``/dev/shm`` clean (the chaos suite covers kill
    schedules; this is the at-scale end-to-end pass).
    """
    store = _catalog(512)
    trace = generate_requests(store, 32, pattern="hotspot", seed=9)
    single = RenderService(store, frame_cache_bytes=0).serve(trace)
    prefix = f"repro-shm-{os.getpid()}-"

    catalog = SharedSceneStore(
        store.get_scene(index) for index in range(len(store))
    )
    try:
        with ShardedRenderService(
            catalog, num_workers=NUM_WORKERS, use_processes=True,
            frame_cache_bytes=0,
        ) as fleet:
            report = fleet.serve(trace)
        _assert_bit_identical(report, single)
    finally:
        catalog.close()
    leaked = [
        name for name in os.listdir("/dev/shm") if name.startswith(prefix)
    ]
    assert leaked == []
