"""Perf smoke benchmark for the async render gateway.

The scenario the gateway exists for: a *burst* of concurrent requests,
duplicate-heavy because traffic is hotspot-skewed, arriving before any of
them has finished rendering.  The serial replay loop (the pre-gateway
dispatcher pattern: one ``service.submit`` per request, in order) renders
every request in that in-flight window — a frame-cache entry only exists
once the first render *completes*, so simultaneous duplicates cannot reuse
it.  The gateway's in-flight coalescing collapses those duplicates onto a
single render regardless of cache state.

To measure exactly that effect, both sides run with the cross-call frame
cache disabled (``frame_cache_bytes=0``) — the offline serial loop would
otherwise be answered by completed cache fills that a concurrent burst, by
definition, does not have yet.  Everything else about the two services is
identical, so the measured delta is purely coalescing plus batching:

1. serial replay: ``service.submit(request)`` per request, cold covariods;
2. the gateway serving the same burst — acceptance bar >= 1.5x req/s
   (measured ~4-5x: 80 requests collapse onto the distinct frames).

The speedup is free of accuracy trade-offs (frames pinned bit-identical to
the serial loop here and in ``tests/test_serving_gateway.py``), and the
``GatewayReport`` counters must reconcile exactly with the request stream:
every submitted request is completed or accounted as shed/rejected/expired,
and the coalesce count equals the stream's duplicate count.
"""

import os

import numpy as np
import pytest

from repro.serving import (
    RenderGateway,
    RenderService,
    SceneStore,
    generate_requests,
)
from repro.gaussians.synthetic import SyntheticConfig, make_synthetic_scene

#: Requests in the duplicate-heavy burst.
NUM_REQUESTS = 80

#: Mean per-round seconds keyed by mode, shared across this module's
#: benchmarks so later ones can report speedups over earlier ones.
_MEAN_SECONDS = {}


def _gateway_service(store):
    """The service config both sides measure under (no cross-call cache)."""
    return RenderService(store, frame_cache_bytes=0)


@pytest.fixture(scope="module")
def gateway_workload():
    """A 3-scene store plus an 80-request hotspot burst (few distinct frames)."""
    store = SceneStore(
        make_synthetic_scene(
            SyntheticConfig(num_gaussians=300, width=80, height=60, seed=seed),
            name=f"bench-scene-{seed}",
            num_cameras=4,
        )
        for seed in range(3)
    )
    trace = generate_requests(
        store, NUM_REQUESTS, pattern="hotspot", seed=1, hotspot_fraction=0.8
    )
    return store, trace


def _distinct_flights(store, trace):
    """Distinct (scene, camera) frames in the trace."""
    return len({
        (store.resolve_index(request.scene_id),
         request.camera.world_to_camera.tobytes())
        for request in trace
    })


def test_bench_gateway_serial_replay(benchmark, record_info, gateway_workload):
    """Baseline: the serial per-request dispatcher loop on the same burst."""
    store, trace = gateway_workload

    def serial():
        service = _gateway_service(store)
        return [service.submit(request) for request in trace]

    responses = benchmark.pedantic(serial, rounds=3, iterations=1)
    assert len(responses) == NUM_REQUESTS
    if benchmark.stats is not None:  # None under --benchmark-disable
        mean = benchmark.stats.stats.mean
        _MEAN_SECONDS["serial"] = mean
        record_info(benchmark, requests_per_second=NUM_REQUESTS / mean)


def test_bench_gateway_coalesced_burst(benchmark, record_info, gateway_workload):
    """The gateway on the same burst: >= 1.5x req/s over serial replay."""
    store, trace = gateway_workload
    distinct = _distinct_flights(store, trace)
    assert distinct < NUM_REQUESTS / 2, "the bench trace must be duplicate-heavy"

    # A fresh gateway per round: every round renders its distinct frames
    # cold, exactly like the serial baseline.
    def burst():
        gateway = RenderGateway(
            _gateway_service(store), queue_depth=NUM_REQUESTS
        )
        return gateway.serve(trace)

    report = benchmark.pedantic(burst, rounds=3, iterations=1)

    # Counters reconcile exactly with the request stream: nothing dropped
    # under the block policy, and every duplicate coalesced onto a flight.
    assert report.num_requests == NUM_REQUESTS
    assert report.num_completed == NUM_REQUESTS
    assert report.num_shed == report.num_rejected == report.num_expired == 0
    assert report.num_coalesced == NUM_REQUESTS - distinct
    assert report.coalesce_rate == pytest.approx(
        (NUM_REQUESTS - distinct) / NUM_REQUESTS
    )

    # Responses in request order, frames bit-identical to the serial loop.
    serial_service = _gateway_service(store)
    for position, response in enumerate(report.responses):
        assert response.request_id == position
        assert response.request is trace[position]
    for probe in (0, NUM_REQUESTS // 2, NUM_REQUESTS - 1):
        golden = serial_service.submit(trace[probe])
        assert np.array_equal(report.responses[probe].image, golden.image)

    if benchmark.stats is not None:
        mean = benchmark.stats.stats.mean
        _MEAN_SECONDS["gateway"] = mean
        record_info(
            benchmark,
            requests_per_second=NUM_REQUESTS / mean,
            distinct_flights=distinct,
            coalesce_rate=report.coalesce_rate,
            num_batches=report.num_batches,
            queue_depth_p95=report.queue_depth_percentile(95),
        )
        if "serial" in _MEAN_SECONDS:
            speedup = _MEAN_SECONDS["serial"] / _MEAN_SECONDS["gateway"]
            record_info(benchmark, speedup_vs_serial_replay=speedup)
            # Measured ~4.5x on a quiet machine (80 requests over ~12
            # distinct flights); the 1.5x bar leaves margin for noise.
            # Shared CI runners opt out via REPRO_RELAX_PERF_ASSERTS.
            if not os.environ.get("REPRO_RELAX_PERF_ASSERTS"):
                assert speedup >= 1.5


def test_bench_gateway_shedding_under_overload(record_info, gateway_workload, benchmark):
    """Shed-oldest under a tiny queue: drops are exact, never silent."""
    store, trace = gateway_workload
    gateway = RenderGateway(
        _gateway_service(store), queue_depth=4, overload_policy="shed-oldest"
    )
    report = benchmark.pedantic(
        lambda: gateway.serve(trace), rounds=1, iterations=1
    )
    assert (
        report.num_completed + report.num_shed + report.num_rejected
        + report.num_expired == NUM_REQUESTS
    )
    assert report.num_shed > 0
    # Every completed frame is still bit-identical to the serial loop.
    service = _gateway_service(store)
    completed = [r for r in report.responses if r.ok]
    probe = completed[len(completed) // 2]
    assert np.array_equal(probe.image, service.submit(probe.request).image)
    if benchmark.stats is not None:
        record_info(
            benchmark,
            completed=report.num_completed,
            shed=report.num_shed,
            queue_depth_p95=report.queue_depth_percentile(95),
        )
