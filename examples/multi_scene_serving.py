#!/usr/bin/env python
"""Multi-scene hosting and request serving with SceneStore + RenderService.

The scenario: one deployment hosts several trained 3DGS scenes and serves
render requests from many concurrent users, whose traffic concentrates on
popular viewpoints.  The example walks through the serving stack:

1. pack three synthetic scenes into a flattened :class:`SceneStore`,
2. persist the whole fleet to a single ``.npz`` archive and reload it,
3. serve a 60-request trace through the :class:`RenderService` (same-scene
   batching, covariance + frame memoization) and check every response is
   bit-identical to a standalone ``render`` call,
4. compare the serving throughput against the naive per-request loop,
5. replay the same trace on the cycle-level GauRast hardware model to see
   what memoization buys in rasterizer cycles.

Run with::

    python examples/multi_scene_serving.py

When one worker is no longer enough, ``examples/sharded_serving.py``
continues the scenario with the multi-process ``ShardedRenderService``.
"""

from __future__ import annotations

import tempfile
import time
from pathlib import Path

import numpy as np

from repro.core import GauRastSystem
from repro.gaussians import render
from repro.gaussians.synthetic import SyntheticConfig, make_synthetic_scene
from repro.serving import RenderService, SceneStore, synthetic_request_trace


def main() -> None:
    # ------------------------------------------------------------------ #
    # 1. Pack three scenes of different sizes and SH degrees into a store.
    # ------------------------------------------------------------------ #
    store = SceneStore()
    for index, (num_gaussians, sh_degree) in enumerate(
        [(500, 1), (800, 2), (650, 0)]
    ):
        config = SyntheticConfig(
            num_gaussians=num_gaussians, width=120, height=90,
            sh_degree=sh_degree, seed=index,
        )
        store.add_scene(
            make_synthetic_scene(config, name=f"scene-{index}", num_cameras=4)
        )
    print(f"store: {len(store)} scenes, {store.num_gaussians} Gaussians, "
          f"{store.num_cameras} cameras, "
          f"{store.nbytes / 1024:.0f} KiB in flattened arrays")

    # ------------------------------------------------------------------ #
    # 2. One archive holds the whole fleet.
    # ------------------------------------------------------------------ #
    with tempfile.TemporaryDirectory() as tmp:
        path = store.save(Path(tmp) / "fleet.npz")
        size_kib = path.stat().st_size / 1024
        store = SceneStore.load(path)
    print(f"persisted and reloaded the fleet from one archive "
          f"({size_kib:.0f} KiB compressed)")

    # ------------------------------------------------------------------ #
    # 3. Serve a request trace; responses are bit-identical to render().
    # ------------------------------------------------------------------ #
    trace = synthetic_request_trace(store, 60, seed=42)
    service = RenderService(store)
    report = service.serve(trace)
    for request, response in zip(trace, report.responses):
        golden = render(store.get_scene(response.scene_index),
                        camera=request.camera)
        if not np.array_equal(response.image, golden.image):
            raise SystemExit("served frame diverged from a standalone render")
    print(f"served {report.num_requests} requests in "
          f"{report.num_batches} same-scene batches: "
          f"{report.requests_per_second:.0f} req/s, "
          f"{report.num_cache_hits} answered by memoization, "
          f"all bit-identical to per-request renders")
    print(f"latency: mean {report.mean_latency_s * 1e3:.0f} ms, "
          f"p95 {report.latency_percentile(95) * 1e3:.0f} ms; "
          f"frame cache holds {report.frame_cache.entries} frames "
          f"({report.frame_cache.current_bytes / 1024:.0f} KiB)")

    # ------------------------------------------------------------------ #
    # 4. The naive loop renders every request from scratch.
    # ------------------------------------------------------------------ #
    start = time.perf_counter()
    for request in trace:
        render(store.get_scene(request.scene_id), camera=request.camera)
    naive_seconds = time.perf_counter() - start
    naive_rps = len(trace) / naive_seconds
    print(f"naive per-request loop: {naive_rps:.0f} req/s; "
          f"serving layer is {report.requests_per_second / naive_rps:.1f}x "
          f"faster on this trace")

    # ------------------------------------------------------------------ #
    # 5. The hardware model serves distinct frames once.
    # ------------------------------------------------------------------ #
    system = GauRastSystem()
    evaluation = system.evaluate_trace(store, trace)
    print(f"hardware model: {evaluation.naive_cycles} rasterizer cycles "
          f"naive vs {evaluation.served_cycles} served "
          f"({evaluation.hardware_speedup:.1f}x fewer), sustaining "
          f"{evaluation.requests_per_second:.0f} req/s at "
          f"{system.config.clock_hz / 1e6:.0f} MHz")


if __name__ == "__main__":
    main()
