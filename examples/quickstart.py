#!/usr/bin/env python
"""Quickstart: render a synthetic 3DGS scene with and without the GauRast model.

The example walks through the library's main entry points:

1. synthesise a small Gaussian scene,
2. render it with the functional (software) 3DGS pipeline and check that the
   scalar and vectorized rasterization backends agree bit-for-bit,
3. render a multi-camera batch with ``render_batch`` (shared scene-level
   preprocessing, stacked images, aggregated statistics),
4. render the scene again with the cycle-level GauRast hardware model and
   check the images agree (the paper's "RTL matches software" validation),
5. evaluate a paper-scale NeRF-360 scene with the analytical models and print
   the baseline-vs-GauRast comparison.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro.core import GauRastSystem
from repro.gaussians import make_synthetic_scene, render, render_batch
from repro.gaussians.synthetic import SyntheticConfig
from repro.hardware.config import GauRastConfig


def main() -> None:
    # ------------------------------------------------------------------ #
    # 1. Synthesise a scene small enough for the cycle-level simulator,
    #    with a few extra orbit cameras for the batch demo.
    # ------------------------------------------------------------------ #
    scene = make_synthetic_scene(
        SyntheticConfig(num_gaussians=800, width=160, height=120, seed=1),
        name="quickstart",
        num_cameras=3,
    )
    print(f"scene '{scene.name}': {scene.num_gaussians} Gaussians, "
          f"{scene.default_camera.width}x{scene.default_camera.height} pixels, "
          f"{len(scene.cameras)} cameras")

    # ------------------------------------------------------------------ #
    # 2. Software (golden) render; the two backends match bit-for-bit.
    # ------------------------------------------------------------------ #
    software = render(scene, backend="vectorized")
    scalar = render(scene, backend="scalar")
    if not np.array_equal(software.image, scalar.image):
        raise SystemExit("vectorized backend diverged from the scalar loop")
    print(f"functional render: {software.num_sort_keys} sort keys, "
          f"{software.fragments_evaluated} fragments evaluated, "
          f"rasterization dominates with "
          f"{software.binning.mean_gaussians_per_tile:.1f} Gaussians/tile "
          f"(scalar and vectorized backends bit-identical)")

    # ------------------------------------------------------------------ #
    # 3. Batched multi-camera render with shared preprocessing.
    # ------------------------------------------------------------------ #
    batch = render_batch(scene)
    print(f"batched render: {batch.images.shape[0]} cameras -> "
          f"stacked images {batch.images.shape}, "
          f"{batch.fragments_evaluated} fragments in total")

    # ------------------------------------------------------------------ #
    # 4. Hardware (cycle-level) render and validation.
    # ------------------------------------------------------------------ #
    system = GauRastSystem(config=GauRastConfig(num_instances=4))
    hw_image, report = system.render(scene)
    max_error = float(np.max(np.abs(hw_image - software.image)))
    print(f"hardware render: {report.frame_cycles} cycles on "
          f"{system.config.num_instances} instances "
          f"({report.runtime_seconds * 1e6:.1f} us at "
          f"{system.config.clock_hz / 1e9:.1f} GHz), "
          f"max pixel error vs software = {max_error:.2e}")
    if max_error > 1e-4:
        raise SystemExit("hardware model diverged from the software renderer")

    # ------------------------------------------------------------------ #
    # 5. Paper-scale evaluation of one NeRF-360 scene.
    # ------------------------------------------------------------------ #
    paper_system = GauRastSystem()
    evaluation = paper_system.evaluate_scene("bicycle", "original")
    raster = evaluation.rasterization
    end_to_end = evaluation.end_to_end
    print(
        "bicycle (original 3DGS): "
        f"rasterization {raster.baseline_time_s * 1e3:.0f} ms -> "
        f"{raster.gaurast_time_s * 1e3:.1f} ms "
        f"({raster.speedup:.1f}x faster, "
        f"{raster.energy_improvement:.1f}x more energy-efficient); "
        f"end-to-end {end_to_end.baseline_fps:.1f} -> "
        f"{end_to_end.gaurast_fps:.1f} FPS"
    )


if __name__ == "__main__":
    main()
