#!/usr/bin/env python
"""Robotics scenario: can an edge robot render its 3DGS map in real time?

The paper motivates GauRast with 3D-intelligent applications such as
robotics, where an on-board computer must render a reconstructed scene from
the robot's current viewpoint every control cycle.  This example simulates a
small differential-drive robot following a circular path through a synthetic
Gaussian scene:

* the whole trajectory is rendered as one multi-camera batch
  (``render_batch``, vectorized backend) so scene-level preprocessing is
  shared across waypoints and each viewpoint's workload statistics are
  measured in a single pass,
* the Jetson Orin NX baseline model and the GauRast model are evaluated on
  that workload, giving per-viewpoint frame times,
* the trajectory summary reports whether each platform sustains the robot's
  30 FPS perception target.

Run with::

    python examples/robotics_navigation.py
"""

from __future__ import annotations

import math

import numpy as np

from repro.baselines.jetson import JetsonOrinNX
from repro.experiments.common import fmt, format_table
from repro.gaussians.camera import Camera, look_at
from repro.gaussians.pipeline import render_batch
from repro.gaussians.synthetic import SyntheticConfig, make_gaussian_cloud
from repro.gaussians.scene import GaussianScene
from repro.hardware.config import SCALED_CONFIG
from repro.hardware.multi import ScaledGauRast
from repro.profiling.workload import WorkloadStatistics
from repro.scheduling.collaborative import steady_state_fps

#: Perception refresh target for the robot's planner.
TARGET_FPS = 30.0

#: Number of waypoints along the circular trajectory.
NUM_WAYPOINTS = 6

#: Ratio between the full-size map the robot would carry and the scaled-down
#: synthetic stand-in rendered here (the workload statistics are scaled back
#: up by this factor before the performance models are applied).
WORKLOAD_SCALE = 80.0


def build_map() -> GaussianScene:
    """The robot's reconstructed 3DGS map (synthetic stand-in)."""
    config = SyntheticConfig(
        num_gaussians=1500, width=160, height=120, num_clusters=10, seed=21
    )
    cloud = make_gaussian_cloud(config)
    camera = waypoint_camera(config, 0)
    return GaussianScene(cloud=cloud, cameras=[camera], name="robot-map")


def waypoint_camera(config: SyntheticConfig, index: int) -> Camera:
    """Camera pose of the robot at waypoint ``index`` on a circular path."""
    angle = 2.0 * math.pi * index / NUM_WAYPOINTS
    radius = config.extent * 0.5
    eye = (radius * math.cos(angle), -0.2 * config.extent, radius * math.sin(angle) + 0.2)
    target = (0.0, 0.0, config.extent * 1.5)
    pose = look_at(eye=eye, target=target)
    focal = 0.9 * config.width
    return Camera(width=config.width, height=config.height, fx=focal, fy=focal,
                  world_to_camera=pose)


def scaled_workload(result, name: str) -> WorkloadStatistics:
    """Scale the synthetic viewpoint's workload up to a full-size map."""
    measured = WorkloadStatistics.from_render(result, scene_name=name)
    return WorkloadStatistics(
        scene_name=name,
        algorithm="original",
        width=int(measured.width * math.sqrt(WORKLOAD_SCALE)),
        height=int(measured.height * math.sqrt(WORKLOAD_SCALE)),
        num_gaussians=int(measured.num_gaussians * WORKLOAD_SCALE),
        num_tiles=int(measured.num_tiles * WORKLOAD_SCALE),
        occupied_tiles=int(measured.occupied_tiles * WORKLOAD_SCALE),
        sort_keys=int(measured.sort_keys * WORKLOAD_SCALE),
        evaluated_fraction=measured.evaluated_fraction,
    )


def main() -> None:
    scene = build_map()
    config = SyntheticConfig(num_gaussians=1500, width=160, height=120, seed=21)
    baseline = JetsonOrinNX()
    rasterizer = ScaledGauRast(SCALED_CONFIG)

    waypoints = [waypoint_camera(config, index) for index in range(NUM_WAYPOINTS)]
    batch = render_batch(scene, cameras=waypoints, backend="vectorized")

    rows = []
    baseline_fps_values = []
    gaurast_fps_values = []
    for index, result in enumerate(batch.results):
        workload = scaled_workload(result, f"waypoint-{index}")

        stage_times = baseline.stage_times(workload)
        baseline_fps = stage_times.fps
        gaurast_raster = rasterizer.estimate_runtime(workload)
        gaurast_fps = steady_state_fps(stage_times.non_rasterize, gaurast_raster)

        baseline_fps_values.append(baseline_fps)
        gaurast_fps_values.append(gaurast_fps)
        rows.append(
            (
                index,
                workload.sort_keys,
                fmt(baseline_fps, 1),
                fmt(gaurast_fps, 1),
                "yes" if gaurast_fps >= TARGET_FPS else "no",
            )
        )

    print(f"Robot perception target: {TARGET_FPS:.0f} FPS\n")
    print(
        format_table(
            ["Waypoint", "Sort keys", "Baseline FPS", "GauRast FPS", "Meets target"],
            rows,
        )
    )
    print(
        f"\nbatched render: {batch.fragments_evaluated} fragments evaluated "
        f"across {len(batch)} waypoints "
        f"({batch.mean_fragments_per_camera:.0f} per viewpoint)"
    )
    mean_baseline = float(np.mean(baseline_fps_values))
    mean_gaurast = float(np.mean(gaurast_fps_values))
    print(
        f"\ntrajectory average: baseline {mean_baseline:.1f} FPS, "
        f"with GauRast {mean_gaurast:.1f} FPS "
        f"({mean_gaurast / mean_baseline:.1f}x)"
    )
    if mean_gaurast >= TARGET_FPS > mean_baseline:
        print("GauRast lifts the platform from below the perception target to above it.")


if __name__ == "__main__":
    main()
