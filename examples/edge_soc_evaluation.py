#!/usr/bin/env python
"""Edge-SoC evaluation: reproduce the paper's headline comparison tables.

Evaluates all seven NeRF-360 scenes with both rendering pipelines (original
3DGS and the Mini-Splatting efficiency-optimised variant) on the baseline
Jetson Orin NX model and on the same SoC with GauRast, then prints the
per-scene rasterization runtimes (Table III), the speedup/energy series
(Fig. 10) and the end-to-end FPS series (Fig. 11), plus the area headlines
(Fig. 9).

Run with::

    python examples/edge_soc_evaluation.py
"""

from __future__ import annotations

from repro.core import GauRastSystem
from repro.experiments import fig9_area, fig10_speedup, fig11_fps, table3_runtime
from repro.experiments.common import fmt, format_table


def print_table3(system: GauRastSystem) -> None:
    result = table3_runtime.run(system=system)
    print("Rasterization runtime per scene (original 3DGS):")
    print(table3_runtime.format_result(result))
    print(f"mean rasterization speedup: {result.mean_speedup:.1f}x\n")


def print_fig10_and_11(system: GauRastSystem) -> None:
    speedups = fig10_speedup.run(system=system)
    print("Rasterization speedup and energy-efficiency improvement:")
    print(fig10_speedup.format_result(speedups))
    print()

    fps = fig11_fps.run(system=system)
    print("End-to-end FPS with and without GauRast:")
    print(fig11_fps.format_result(fps))
    print()

    headers = ["Pipeline", "Mean FPS w/o", "Mean FPS w/", "Speedup"]
    rows = []
    for algorithm in ("original", "optimized"):
        rows.append(
            (
                algorithm,
                fmt(fps.mean_baseline_fps(algorithm), 1),
                fmt(fps.mean_gaurast_fps(algorithm), 1),
                fmt(fps.mean_speedup(algorithm), 1) + "x",
            )
        )
    print(format_table(headers, rows))
    print()


def print_area_headlines() -> None:
    area = fig9_area.run()
    print(
        "Area: the Gaussian-only logic adds "
        f"{100 * area.pe_gaussian_fraction:.1f}% to each PE and "
        f"{area.scaled_enhanced_mm2:.2f} mm^2 "
        f"({100 * area.soc_overhead_fraction:.2f}% of the SoC) "
        "for the scaled 15-instance design."
    )


def main() -> None:
    system = GauRastSystem()
    print(
        f"Evaluating GauRast ({system.config.num_instances} instances x "
        f"{system.config.pes_per_instance} PEs at "
        f"{system.config.clock_hz / 1e9:.1f} GHz, "
        f"{system.config.precision.value}) against "
        f"{system.baseline.name} ({system.baseline.power_limit_w:.0f} W)\n"
    )
    print_table3(system)
    print_fig10_and_11(system)
    print_area_headlines()


if __name__ == "__main__":
    main()
