#!/usr/bin/env python
"""Async render gateway: coalescing, backpressure and priority lanes.

The scenario: the offline serving loop meets *online* traffic.  Thousands
of users hit the deployment at once, most of them asking for the same hot
viewpoints, and bursts can outrun the renderer.  The
:class:`~repro.serving.gateway.RenderGateway` is the asyncio front end that
absorbs this: concurrent duplicates share one in-flight render, a bounded
admission queue applies an explicit overload policy instead of unbounded
buffering, and hotspot traffic rides a high-priority lane.  The walkthrough:

1. pack three synthetic scenes into a :class:`SceneStore` and draw a
   duplicate-heavy hotspot request burst,
2. serve it through the gateway and read the coalesce rate — most of the
   burst never touches the renderer,
3. check the frames are bit-identical to the synchronous
   :class:`RenderService` serve of the same stream, in request order,
4. overload a tiny queue under ``shed-oldest`` and ``reject`` and watch the
   drop counters reconcile exactly with the stream,
5. route hot-scene traffic onto the high-priority lane
   (:func:`~repro.serving.traffic.popularity_priority`) while background
   requests carry deadlines,
6. replay the gateway-served trace on the cycle-level hardware model.

Run with::

    python examples/async_gateway.py
"""

from __future__ import annotations

import numpy as np

from repro.core import GauRastSystem
from repro.gaussians.synthetic import SyntheticConfig, make_synthetic_scene
from repro.serving import (
    RenderGateway,
    RenderService,
    SceneStore,
    generate_requests,
    popularity_priority,
)

NUM_REQUESTS = 60


def main() -> None:
    # ------------------------------------------------------------------ #
    # 1. Three scenes, hotspot traffic: one scene absorbs ~80% of load.
    # ------------------------------------------------------------------ #
    store = SceneStore(
        make_synthetic_scene(
            SyntheticConfig(num_gaussians=400, width=96, height=72, seed=seed),
            name=f"scene-{seed}",
            num_cameras=4,
        )
        for seed in range(3)
    )
    trace = generate_requests(store, NUM_REQUESTS, pattern="hotspot", seed=5)
    distinct = len({
        (store.resolve_index(r.scene_id), r.camera.world_to_camera.tobytes())
        for r in trace
    })
    print(f"burst: {len(trace)} concurrent requests over {len(store)} scenes, "
          f"only {distinct} distinct frames (hotspot traffic)")

    # ------------------------------------------------------------------ #
    # 2. The gateway coalesces the duplicates in flight.
    # ------------------------------------------------------------------ #
    gateway = RenderGateway(RenderService(store), queue_depth=32)
    report = gateway.serve(trace)
    print(f"gateway: {report.num_completed}/{report.num_requests} completed "
          f"in {report.wall_seconds * 1e3:.0f} ms, coalesce rate "
          f"{report.coalesce_rate:.0%} ({report.num_coalesced} requests "
          f"shared an in-flight render), {report.num_batches} batches, "
          f"queue depth p95 {report.queue_depth_percentile(95):.0f}")

    # ------------------------------------------------------------------ #
    # 3. Frames are bit-identical to the synchronous path, in order.
    # ------------------------------------------------------------------ #
    reference = RenderService(store).serve(trace)
    for position, (mine, ref) in enumerate(
        zip(report.responses, reference.responses)
    ):
        if mine.request_id != position or not np.array_equal(
            mine.image, ref.image
        ):
            raise SystemExit("gateway frame diverged from the sync service")
    print("bit-identical to the synchronous serve, responses in request order")

    # ------------------------------------------------------------------ #
    # 4. Overload: bounded queues make drops explicit, never silent.
    # ------------------------------------------------------------------ #
    for policy in ("shed-oldest", "reject"):
        tiny = RenderGateway(
            RenderService(store), queue_depth=2, overload_policy=policy
        )
        overloaded = tiny.serve(trace)
        assert (
            overloaded.num_completed + overloaded.num_shed
            + overloaded.num_rejected + overloaded.num_expired
            == len(trace)
        )
        print(f"overload ({policy}, depth 2): "
              f"{overloaded.num_completed} completed, "
              f"{overloaded.num_shed} shed, "
              f"{overloaded.num_rejected} rejected — counters reconcile")

    # ------------------------------------------------------------------ #
    # 5. Priority lanes + deadlines: hot traffic first, stale work dropped.
    # ------------------------------------------------------------------ #
    priority_of = popularity_priority(store, pattern="hotspot", seed=5)
    laned = RenderGateway(
        RenderService(store), queue_depth=32, priority_of=priority_of
    )
    laned_report = laned.serve(
        trace,
        # Low-priority (cold-scene) requests tolerate at most 10 s of
        # queueing; hot-lane requests have no deadline.
        deadlines=[None if priority_of(r) == 0 else 10.0 for r in trace],
    )
    lanes = {0: 0, 1: 0}
    for response in laned_report.responses:
        lanes[response.priority] += 1
    print(f"priority lanes (hot scenes {sorted(priority_of.hot_scenes)}): "
          f"{lanes[0]} requests rode the high lane, {lanes[1]} the normal "
          f"lane, {laned_report.num_expired} expired past their deadline")

    # ------------------------------------------------------------------ #
    # 6. Hardware replay of the gateway-served trace.
    # ------------------------------------------------------------------ #
    system = GauRastSystem()
    evaluation = system.evaluate_trace(
        store, trace, gateway=RenderGateway(RenderService(store))
    )
    print(f"hardware model: {evaluation.naive_cycles} rasterizer cycles "
          f"naive vs {evaluation.served_cycles} served "
          f"({evaluation.hardware_speedup:.1f}x fewer), sustaining "
          f"{evaluation.requests_per_second:.0f} req/s at "
          f"{system.config.clock_hz / 1e6:.0f} MHz")


if __name__ == "__main__":
    main()
