#!/usr/bin/env python
"""Serving a large catalog from shared-memory and out-of-core tiers.

The scenario: the catalog has outgrown "one private copy per worker".  A
four-worker fleet over N scenes used to hold the payload four times (plus
replication copies); on the path to million-scene serving the whole
catalog stops fitting in RAM at all.  The storage tiers fix both ends:

1. build a catalog and re-host it in **shared memory**
   (:class:`SharedSceneStore`): one named segment, every worker process
   attaches zero-copy, so per-worker owned payload drops to zero;
2. mutate the catalog under a live reader — the **copy-on-grow epoch
   scheme** keeps the reader's snapshot consistent while the owner grows;
3. page the catalog to a chunked on-disk archive
   (:class:`PagedSceneStore`, format v4) and serve it under a **byte
   budget**: scenes load lazily and a byte-accounted LRU keeps the
   resident set bounded;
4. serve the same trace through both tiers and the plain in-memory store
   and check every frame is **bit-identical** — residency never changes a
   pixel;
5. release everything and verify ``/dev/shm`` is clean.

Run with::

    python examples/out_of_core_serving.py
"""

from __future__ import annotations

import os
import pickle
import tempfile
from pathlib import Path

import numpy as np

from repro.gaussians.scene import GaussianScene
from repro.gaussians.synthetic import SyntheticConfig, make_synthetic_scene
from repro.serving import (
    PagedSceneStore,
    RenderService,
    SceneStore,
    ShardedRenderService,
    SharedSceneStore,
    generate_requests,
    write_paged,
)

NUM_SCENES = 96
NUM_WORKERS = 4


def build_catalog() -> SceneStore:
    """A catalog tiling a few base payloads across many scene entries."""
    base = [
        make_synthetic_scene(
            SyntheticConfig(num_gaussians=60, width=48, height=36, seed=seed),
            name=f"base-{seed}", num_cameras=3,
        )
        for seed in range(6)
    ]
    store = SceneStore()
    for index in range(NUM_SCENES):
        source = base[index % len(base)]
        store.add_scene(GaussianScene(
            cloud=source.cloud, cameras=source.cameras,
            name=f"scene-{index:03d}",
        ))
    return store


def main() -> None:
    store = build_catalog()
    trace = generate_requests(store, 48, pattern="zipf", seed=11)
    print(f"catalog: {len(store)} scenes, "
          f"{store.nbytes / 1024:.0f} KiB payload, "
          f"{store.capacity_bytes / 1024:.0f} KiB allocated")

    # Reference frames from the plain in-memory single-worker serve.
    single = RenderService(store, frame_cache_bytes=0).serve(trace)

    # ------------------------------------------------------------------ #
    # 1. Shared tier: one segment, zero-copy workers.
    # ------------------------------------------------------------------ #
    with SharedSceneStore(
        store.get_scene(index) for index in range(len(store))
    ) as catalog:
        print(f"\nshared tier: segment {catalog.segment_name} "
              f"({catalog.segment_bytes / 1024:.0f} KiB)")
        with ShardedRenderService(
            catalog, num_workers=NUM_WORKERS, use_processes=True,
            frame_cache_bytes=0,
        ) as fleet:
            report = fleet.serve(trace)
        identical = all(
            np.array_equal(mine.image, ref.image)
            for mine, ref in zip(report.responses, single.responses)
        )
        print(f"  {NUM_WORKERS}-process fleet served "
              f"{report.num_requests} requests at "
              f"{report.requests_per_second:.0f} req/s, "
              f"bit-identical frames: {identical}")

        # In-process views show the zero-copy bookkeeping directly.
        view = catalog.build_substore(range(0, len(catalog), 2))
        print(f"  worker view: {len(view)} scenes referenced, "
              f"{view.owned_bytes} bytes privately owned (zero-copy)")

        # ------------------------------------------------------------------ #
        # 2. Copy-on-grow: mutation never tears a live reader.
        # ------------------------------------------------------------------ #
        reader = pickle.loads(pickle.dumps(catalog))  # attach, like a worker
        before = reader.get_cloud(0).positions.copy()
        epoch_before = catalog.segment_name
        catalog.add_scene(make_synthetic_scene(
            SyntheticConfig(num_gaussians=4000, width=48, height=36, seed=99),
            name="late-arrival",
        ))
        snapshot_intact = np.array_equal(
            reader.get_cloud(0).positions, before
        )
        print(f"\ncopy-on-grow: epoch {epoch_before} -> "
              f"{catalog.segment_name}")
        print(f"  reader snapshot intact across the growth epoch: "
              f"{snapshot_intact}")
        reader.close()

    # ------------------------------------------------------------------ #
    # 3. Paged tier: bounded resident set from an on-disk archive.
    # ------------------------------------------------------------------ #
    with tempfile.TemporaryDirectory(prefix="repro-example-") as tmp:
        archive = write_paged(store, Path(tmp) / "catalog")
        budget = 8 * store.scene_nbytes(0)
        paged = PagedSceneStore(archive, memory_budget=budget)
        print(f"\npaged tier: archive {archive.name}/ "
              f"(v4, {len(paged)} scenes), "
              f"budget {budget / 1024:.0f} KiB")
        report = RenderService(paged, frame_cache_bytes=0).serve(trace)
        stats = paged.resident_stats()
        identical = all(
            np.array_equal(mine.image, ref.image)
            for mine, ref in zip(report.responses, single.responses)
        )
        print(f"  served {report.num_requests} requests with "
              f"{paged.resident_bytes / 1024:.0f} KiB resident "
              f"(<= budget: {paged.resident_bytes <= budget}), "
              f"{stats.evictions} evictions")
        print(f"  bit-identical frames from disk: {identical}")

    # ------------------------------------------------------------------ #
    # 4. Lifecycle: nothing left behind.
    # ------------------------------------------------------------------ #
    leaked = [
        name for name in os.listdir("/dev/shm")
        if name.startswith(f"repro-shm-{os.getpid()}-")
    ]
    print(f"\nlifecycle: leaked shared-memory segments: {leaked or 'none'}")


if __name__ == "__main__":
    main()
