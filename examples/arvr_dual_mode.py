#!/usr/bin/env python
"""AR/VR scenario: one rasterizer, two primitive types.

An AR headset renders a reconstructed 3DGS background *and* conventional
triangle-mesh UI/overlay geometry every frame.  GauRast's key property is
that the same enhanced rasterizer serves both: the Gaussian-only logic is
added next to the existing triangle datapath, so triangle rendering is
untouched.

The example renders both workloads through the same cycle-level rasterizer
instance, validates each against its software golden model, composites the
overlay on top of the splatted background, and reports how the instance's
cycles split between the two primitive types.

Run with::

    python examples/arvr_dual_mode.py
"""

from __future__ import annotations

import numpy as np

from repro.gaussians.camera import Camera, look_at
from repro.gaussians.pipeline import render
from repro.gaussians.rasterize import rasterize_tiles
from repro.gaussians.synthetic import SyntheticConfig, make_synthetic_scene
from repro.gaussians.tiles import TileGrid
from repro.hardware.config import GauRastConfig
from repro.hardware.rasterizer import GauRastInstance
from repro.triangles.mesh import make_cube
from repro.triangles.raster import rasterize_mesh
from repro.triangles.transform import transform_to_screen

WIDTH, HEIGHT = 160, 120


def overlay_camera() -> Camera:
    pose = look_at(eye=(0.8, -0.6, -2.5), target=(0.0, 0.0, 0.5))
    return Camera(width=WIDTH, height=HEIGHT, fx=140.0, fy=140.0, world_to_camera=pose)


def main() -> None:
    instance = GauRastInstance(GauRastConfig(num_instances=1))
    grid = TileGrid(width=WIDTH, height=HEIGHT)

    # ------------------------------------------------------------------ #
    # Gaussian background (the reconstructed environment).
    # ------------------------------------------------------------------ #
    scene = make_synthetic_scene(
        SyntheticConfig(num_gaussians=900, width=WIDTH, height=HEIGHT, seed=8),
        name="arvr-environment",
    )
    functional = render(scene)
    background, gaussian_report = instance.rasterize_gaussians(
        functional.projected, functional.binning
    )
    golden_background, _ = rasterize_tiles(functional.projected, functional.binning)
    gaussian_error = float(np.max(np.abs(background - golden_background)))

    # ------------------------------------------------------------------ #
    # Triangle overlay (a floating UI cube) on the same instance.
    # ------------------------------------------------------------------ #
    overlay_mesh = make_cube(size=0.6)
    screen = transform_to_screen(overlay_mesh, overlay_camera())
    overlay_color, overlay_depth, triangle_report = instance.rasterize_triangles(
        screen, grid
    )
    golden_overlay = rasterize_mesh(screen, grid)
    triangle_error = float(np.max(np.abs(overlay_color - golden_overlay.color)))

    # ------------------------------------------------------------------ #
    # Composite: overlay wherever the triangle pass produced geometry.
    # ------------------------------------------------------------------ #
    covered = np.isfinite(overlay_depth)
    composite = background.copy()
    composite[covered] = overlay_color[covered]

    # ------------------------------------------------------------------ #
    # Report.
    # ------------------------------------------------------------------ #
    total_cycles = gaussian_report.cycles + triangle_report.cycles
    print(f"frame: {WIDTH}x{HEIGHT}, composited {int(covered.sum())} overlay pixels "
          f"over the splatted background")
    print(f"Gaussian pass : {gaussian_report.cycles:>9d} cycles, "
          f"{gaussian_report.fragments_evaluated} fragments, "
          f"max error vs software {gaussian_error:.2e}")
    print(f"Triangle pass : {triangle_report.cycles:>9d} cycles, "
          f"{triangle_report.fragments_evaluated} fragments, "
          f"max error vs software {triangle_error:.2e}")
    print(f"cycle split   : {100 * gaussian_report.cycles / total_cycles:.1f}% Gaussian / "
          f"{100 * triangle_report.cycles / total_cycles:.1f}% triangle")
    ops = gaussian_report.operation_counts
    tri_ops = triangle_report.operation_counts
    print(f"unit usage    : Gaussian pass used the exponentiation unit "
          f"{ops.get('exp', 0)} times (divider {ops.get('div', 0)}); "
          f"triangle pass used the divider {tri_ops.get('div', 0)} times "
          f"(exp {tri_ops.get('exp', 0)})")

    if gaussian_error > 1e-4 or triangle_error > 1e-4:
        raise SystemExit("hardware model diverged from the software renderers")
    print("both primitive types validated against their software golden models")


if __name__ == "__main__":
    main()
