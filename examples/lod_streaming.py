#!/usr/bin/env python
"""Footprint-driven LOD streaming with CompressedSceneStore + RenderService.

The scenario: a deployment streams scenes to users whose viewpoints range
from close-up inspection to zoomed-out overviews (map views, thumbnails,
AR previews).  Spending full detail on a scene that covers a few hundred
pixels is wasted work, so the serving layer compresses each scene into
quantized nested detail levels and picks a level per request from the
camera's screen-space footprint.  The walkthrough:

1. pack two synthetic scenes into a quantized
   :class:`~repro.compression.store.CompressedSceneStore` (fp16 codec,
   3 nested importance levels) and read the compression ratio,
2. check the quality contract: the lossless tier is bit-identical, and
   each lossy level's PSNR against full detail is measured,
3. dolly a camera out of the scene and watch the
   :class:`~repro.compression.lod.FootprintLodPolicy` hand out coarser
   levels as the footprint shrinks,
4. serve a mixed close/far request stream through the
   :class:`~repro.serving.service.RenderService` with the footprint policy
   and compare its throughput against full-detail serving,
5. replay the trace on the cycle-level hardware model to see the cycle and
   memory-traffic deltas per level.

Run with::

    python examples/lod_streaming.py
"""

from __future__ import annotations

import dataclasses
import time

import numpy as np

from repro.compression import CompressedSceneStore, FootprintLodPolicy
from repro.core import GauRastSystem
from repro.gaussians.camera import Camera, look_at
from repro.gaussians.metrics import compare_images
from repro.gaussians.pipeline import render
from repro.gaussians.synthetic import SyntheticConfig, make_synthetic_scene
from repro.serving import RenderService, SceneStore, generate_requests

#: Distance multipliers of the dolly-out sweep (1 = the scene radius).
DOLLY_FACTORS = (1.2, 2.6, 6.0)


def dolly_camera(store, scene_index: int, factor: float) -> Camera:
    """A camera backed off along -z to ``factor`` scene radii from centre."""
    center, radius = store.scene_bounds(scene_index)
    eye = center - np.array([0.0, 0.0, 1.0]) * radius * factor
    return Camera(
        width=96, height=72, fx=86.0, fy=86.0,
        world_to_camera=look_at(eye=eye, target=center),
    )


def main() -> None:
    # ------------------------------------------------------------------ #
    # 1. Two scenes, quantized with three nested detail levels.
    # ------------------------------------------------------------------ #
    scenes = [
        make_synthetic_scene(
            SyntheticConfig(num_gaussians=500, width=96, height=72, seed=seed),
            name=f"scene-{seed}",
            num_cameras=4,
        )
        for seed in range(2)
    ]
    plain = SceneStore(scenes)
    store = CompressedSceneStore(scenes, codec="fp16", levels=3, keep_ratio=0.75)
    print(f"store: {len(store)} scenes, {store.num_gaussians} Gaussians, "
          f"{store.nbytes / 1024.0:.1f} KiB compressed "
          f"({store.compression_ratio:.1f}x vs fp64), "
          f"levels {store.level_sizes(0)}")

    # ------------------------------------------------------------------ #
    # 2. Quality contract: lossless tier identical, lossy levels measured.
    # ------------------------------------------------------------------ #
    lossless = CompressedSceneStore(scenes, codec="fp64", levels=1)
    camera = scenes[0].cameras[0]
    reference = render(scenes[0], camera=camera).image
    assert np.array_equal(
        render(lossless.get_scene(0), camera=camera).image, reference
    ), "fp64 tier must render bit-identically"
    print("lossless (fp64) tier: bit-identical render confirmed")
    for level in range(store.num_levels(0)):
        image = render(store.get_scene(0, level=level), camera=camera).image
        comparison = compare_images(reference, image)
        kept = store.level_sizes(0)[level]
        print(f"  level {level}: {kept} Gaussians, "
              f"PSNR {comparison.psnr_db:.1f} dB, SSIM {comparison.ssim:.4f}")

    # ------------------------------------------------------------------ #
    # 3. Dolly out: the footprint policy degrades detail with distance.
    # ------------------------------------------------------------------ #
    policy = FootprintLodPolicy(pixels_per_gaussian=8.0)
    print("dolly-out sweep (footprint policy):")
    far_cameras = []
    for factor in DOLLY_FACTORS:
        camera = dolly_camera(store, 0, factor)
        level = policy.select_level(store, 0, camera)
        far_cameras.append(camera)
        print(f"  distance {factor:.1f} radii -> level {level} "
              f"({store.level_sizes(0)[level]} Gaussians)")

    # ------------------------------------------------------------------ #
    # 4. Serve mixed close/far traffic with and without LOD.
    # ------------------------------------------------------------------ #
    trace = generate_requests(plain, 40, pattern="zipf", seed=3)
    mixed = list(trace)
    for position, camera in enumerate(far_cameras * 6):
        mixed.append(
            dataclasses.replace(
                trace[position % len(trace)], camera=camera
            )
        )
    start = time.perf_counter()
    full_report = RenderService(store).serve(mixed)
    full_seconds = time.perf_counter() - start

    lod_service = RenderService(store, lod_policy=policy)
    start = time.perf_counter()
    lod_report = lod_service.serve(mixed)
    lod_seconds = time.perf_counter() - start

    print(f"full detail: {full_report.num_requests / full_seconds:.1f} req/s; "
          f"footprint LOD: {lod_report.num_requests / lod_seconds:.1f} req/s "
          f"({full_seconds / lod_seconds:.2f}x)")
    levels = ", ".join(
        f"L{level}: {count}"
        for level, count in sorted(lod_report.requests_by_level.items())
    )
    print(f"levels served: {levels}")

    # ------------------------------------------------------------------ #
    # 5. Hardware replay: cycle and traffic deltas per level.
    # ------------------------------------------------------------------ #
    system = GauRastSystem()
    evaluation = system.evaluate_trace(store, mixed, lod_policy=policy)
    print("hardware replay per level:")
    for level in sorted(evaluation.frames_by_level):
        frames = evaluation.frames_by_level[level]
        cycles = evaluation.mean_cycles_per_frame_by_level[level]
        traffic = evaluation.traffic_by_level[level]
        print(f"  level {level}: {frames} distinct frames, "
              f"{cycles:.0f} cycles/frame, {traffic / 1024.0:.0f} KiB traffic")
    print(f"hardware speedup vs naive replay: "
          f"{evaluation.hardware_speedup:.1f}x fewer cycles")


if __name__ == "__main__":
    main()
