#!/usr/bin/env python
"""Sharded multi-worker serving with ShardedRenderService + skewed traffic.

The scenario: traffic has outgrown one render worker.  Like a DAQ that
partitions its event stream across time-slice processors, the fleet shards
scenes across worker processes — scene affinity keeps each worker's
covariance and frame caches hot for exactly the scenes it owns — while a
dispatcher routes requests and merges per-shard reports.  The walkthrough:

1. pack four synthetic scenes into a :class:`SceneStore`,
2. generate a zipf-skewed request stream (popular scenes dominate, as in
   real multi-user traffic) with :func:`generate_requests`,
3. serve it with the single-worker :class:`RenderService` as the reference,
4. serve the same stream with a 4-worker :class:`ShardedRenderService` and
   check the frames are bit-identical,
5. read the fleet report: per-shard utilization, critical path, and the
   throughput a one-core-per-worker deployment sustains,
6. replicate the hot scene on two shards and kill a worker mid-stream
   with a :class:`FailurePlan` — in-flight requests are requeued to the
   surviving replica, the counters reconcile, and the frames are *still*
   bit-identical,
7. replay the trace on the cycle-level hardware model.

Run with::

    python examples/sharded_serving.py
"""

from __future__ import annotations

import numpy as np

from repro.core import GauRastSystem
from repro.gaussians.synthetic import SyntheticConfig, make_synthetic_scene
from repro.serving import (
    FailurePlan,
    RenderService,
    SceneStore,
    ShardedRenderService,
    generate_requests,
)

NUM_WORKERS = 4


def main() -> None:
    # ------------------------------------------------------------------ #
    # 1. Four scenes, one per worker.
    # ------------------------------------------------------------------ #
    store = SceneStore(
        make_synthetic_scene(
            SyntheticConfig(num_gaussians=500, width=100, height=75, seed=seed),
            name=f"scene-{seed}",
            num_cameras=4,
        )
        for seed in range(NUM_WORKERS)
    )
    print(f"store: {len(store)} scenes, {store.num_gaussians} Gaussians, "
          f"{store.num_cameras} viewpoints")

    # ------------------------------------------------------------------ #
    # 2. Zipf-skewed traffic: a few scenes absorb most requests.
    # ------------------------------------------------------------------ #
    trace = generate_requests(store, 120, pattern="zipf", seed=11)
    per_scene = {name: 0 for name in store.names}
    for request in trace:
        per_scene[store.names[store.resolve_index(request.scene_id)]] += 1
    print("traffic (zipf, seed 11): " +
          ", ".join(f"{name}={count}" for name, count in per_scene.items()))

    # ------------------------------------------------------------------ #
    # 3. Single worker: the reference serve.
    # ------------------------------------------------------------------ #
    single = RenderService(store).serve(trace)
    print(f"1 worker:  {single.requests_per_second:.0f} req/s, "
          f"{single.num_batches} batches, "
          f"p95 latency {single.latency_percentile(95) * 1e3:.0f} ms")

    # ------------------------------------------------------------------ #
    # 4-5. The sharded fleet: bit-identical frames, merged fleet report.
    # ------------------------------------------------------------------ #
    with ShardedRenderService(store, num_workers=NUM_WORKERS) as fleet:
        report = fleet.serve(trace)
    for mine, ref in zip(report.responses, single.responses):
        if not np.array_equal(mine.image, ref.image):
            raise SystemExit("sharded frame diverged from the single worker")
    print(f"{NUM_WORKERS} workers: {report.requests_per_second:.0f} req/s "
          f"on this host; {report.modeled_requests_per_second:.0f} req/s "
          f"with one core per worker "
          f"(critical path {report.critical_path_seconds * 1e3:.0f} ms), "
          f"all frames bit-identical")
    for shard in report.shards:
        print(f"  shard {shard.shard_id}: scenes {list(shard.scene_indices)}, "
              f"{shard.num_requests} requests, "
              f"busy {shard.busy_seconds * 1e3:.0f} ms, "
              f"utilization {report.utilization[shard.shard_id]:.0%}, "
              f"frame cache {shard.frame_cache.entries} entries")

    # ------------------------------------------------------------------ #
    # 6. Chaos: replicate the hottest scene, then kill a worker mid-stream.
    # ------------------------------------------------------------------ #
    hottest = max(range(len(store)),
                  key=lambda scene: per_scene[store.names[scene]])
    plan = FailurePlan.at((len(trace) // 2, hottest % NUM_WORKERS))
    with ShardedRenderService(store, num_workers=NUM_WORKERS,
                              replication=2, hot_scenes=[hottest]) as fleet:
        chaos = fleet.serve(trace, failure_plan=plan)
    for mine, ref in zip(chaos.responses, single.responses):
        if not np.array_equal(mine.image, ref.image):
            raise SystemExit("chaos frame diverged from the single worker")
    assert chaos.dispatched == chaos.num_requests + chaos.requeued
    print(f"chaos: hot scene {hottest} on shards "
          f"{chaos.placement_map[hottest]}, killed {list(chaos.killed)} "
          f"mid-stream -> {chaos.requeued} requeued, "
          f"{chaos.respawned} respawned, "
          f"{chaos.num_requests}/{len(trace)} responses, "
          f"frames still bit-identical")

    # ------------------------------------------------------------------ #
    # 7. What the accelerator fleet sustains, in cycles.
    # ------------------------------------------------------------------ #
    system = GauRastSystem()
    evaluation = system.evaluate_trace(store, trace, workers=NUM_WORKERS)
    print(f"hardware model: {evaluation.naive_cycles} rasterizer cycles "
          f"naive vs {evaluation.served_cycles} served "
          f"({evaluation.hardware_speedup:.1f}x fewer), sustaining "
          f"{evaluation.requests_per_second:.0f} req/s at "
          f"{system.config.clock_hz / 1e6:.0f} MHz per accelerator")


if __name__ == "__main__":
    main()
