"""Section V-D: compatibility with non-NVIDIA GPUs (Apple M2 Pro + OpenSplat).

GauRast only assumes a triangle rasterizer, so it applies to any GPU.  The
paper demonstrates this on an Apple M2 Pro running OpenSplat: attaching the
enhanced rasterizer yields an ~11x rasterization speedup on the *bicycle*
scene.  The experiment compares the OpenSplat software rasterization time on
the M2 Pro against the GauRast hardware model attached to the M2 Pro's
(equally sized) rasterizer.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.m2pro import AppleM2Pro
from repro.datasets.nerf360 import get_scene
from repro.experiments.common import fmt, format_table
from repro.hardware.config import GauRastConfig, SCALED_CONFIG
from repro.hardware.multi import ScaledGauRast
from repro.profiling.workload import WorkloadStatistics


@dataclass(frozen=True)
class M2ProComparison:
    """Rasterization comparison on the Apple M2 Pro."""

    scene: str
    opensplat_time_s: float
    gaurast_time_s: float

    @property
    def speedup(self) -> float:
        """GauRast rasterization speedup on the M2 Pro."""
        return self.opensplat_time_s / self.gaurast_time_s


def run(
    scene: str = "bicycle",
    algorithm: str = "original",
    config: GauRastConfig = SCALED_CONFIG,
) -> M2ProComparison:
    """Evaluate the M2 Pro compatibility experiment."""
    descriptor = get_scene(scene)
    workload = WorkloadStatistics.from_descriptor(descriptor, algorithm)

    platform = AppleM2Pro()
    software_time = platform.rasterization_time(workload)

    # GauRast attached to the M2 Pro's rasterizer hardware: the M2 Pro's
    # fixed-function rasterizer capacity is comparable to the Orin NX's, so
    # the same scaled configuration applies.
    gaurast_time = ScaledGauRast(config).estimate_runtime(workload)
    return M2ProComparison(
        scene=scene,
        opensplat_time_s=software_time,
        gaurast_time_s=gaurast_time,
    )


def format_result(result: M2ProComparison) -> str:
    """Render the comparison as text."""
    headers = ["Configuration", "Rasterization time (ms)"]
    rows = [
        ("OpenSplat on Apple M2 Pro", fmt(result.opensplat_time_s * 1e3, 1)),
        ("M2 Pro + GauRast", fmt(result.gaurast_time_s * 1e3, 1)),
    ]
    table = format_table(headers, rows)
    return f"{table}\nspeedup on '{result.scene}': {result.speedup:.1f}x"


def main() -> None:
    """Print the Section V-D comparison."""
    print("Section V-D: compatibility with the Apple M2 Pro GPU")
    print(format_result(run()))


if __name__ == "__main__":
    main()
