"""Fig. 10: rasterization speedup and energy-efficiency improvement per scene.

For each NeRF-360 scene and for both the original 3DGS pipeline and the
efficiency-optimised (Mini-Splatting) pipeline, compares GauRast against the
CUDA rasterization of the baseline SoC in runtime and energy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.core.gaurast import GauRastSystem
from repro.core.metrics import SceneEvaluation
from repro.experiments.common import ALGORITHMS, default_system, fmt, format_table


@dataclass(frozen=True)
class Fig10Result:
    """Per-scene, per-algorithm speedup and energy improvement."""

    evaluations: Dict[str, List[SceneEvaluation]]

    def speedups(self, algorithm: str) -> Dict[str, float]:
        """Rasterization speedup per scene for one algorithm."""
        return {
            e.scene_name: e.rasterization.speedup
            for e in self.evaluations[algorithm]
        }

    def energy_improvements(self, algorithm: str) -> Dict[str, float]:
        """Energy-efficiency improvement per scene for one algorithm."""
        return {
            e.scene_name: e.rasterization.energy_improvement
            for e in self.evaluations[algorithm]
        }

    def mean_speedup(self, algorithm: str) -> float:
        """Average speedup over the scenes for one algorithm."""
        values = list(self.speedups(algorithm).values())
        return sum(values) / len(values)

    def mean_energy_improvement(self, algorithm: str) -> float:
        """Average energy improvement over the scenes for one algorithm."""
        values = list(self.energy_improvements(algorithm).values())
        return sum(values) / len(values)


def run(system: GauRastSystem | None = None) -> Fig10Result:
    """Evaluate both algorithms on every scene."""
    system = system or default_system()
    return Fig10Result(
        evaluations={
            algorithm: system.evaluate_all(algorithm) for algorithm in ALGORITHMS
        }
    )


def format_result(result: Fig10Result) -> str:
    """Render Fig. 10's two data series."""
    scenes = [e.scene_name for e in result.evaluations["original"]]
    headers = ["Metric"] + scenes + ["mean"]
    rows = []
    for algorithm in ALGORITHMS:
        speedups = result.speedups(algorithm)
        energy = result.energy_improvements(algorithm)
        rows.append(
            [f"{algorithm}: speedup (x)"]
            + [fmt(speedups[s], 1) for s in scenes]
            + [fmt(result.mean_speedup(algorithm), 1)]
        )
        rows.append(
            [f"{algorithm}: energy eff. (x)"]
            + [fmt(energy[s], 1) for s in scenes]
            + [fmt(result.mean_energy_improvement(algorithm), 1)]
        )
    return format_table(headers, rows)


def main() -> None:
    """Print Fig. 10's data series."""
    print("Fig. 10: rasterization speedup and energy-efficiency improvement")
    print(format_result(run()))


if __name__ == "__main__":
    main()
