"""Motivation experiment: desktop GPU vs edge SoC vs edge SoC + GauRast.

The introduction frames the problem: 3DGS is real-time (>= 30 FPS) on
high-power desktop GPUs but manages only 2-5 FPS on 10 W edge platforms.
This experiment quantifies that contrast with the platform models and shows
where GauRast lands the edge SoC — most of the desktop's frame rate at two
orders of magnitude less power.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.baselines.desktop import DesktopGpu
from repro.baselines.jetson import JetsonOrinNX
from repro.core.gaurast import GauRastSystem
from repro.datasets.nerf360 import iter_scenes
from repro.experiments.common import fmt, format_table
from repro.profiling.workload import WorkloadStatistics


@dataclass(frozen=True)
class PlatformSummary:
    """Average frame rate and power of one platform over the dataset."""

    platform: str
    power_w: float
    mean_fps: float

    @property
    def fps_per_watt(self) -> float:
        """Frame-rate efficiency."""
        return self.mean_fps / self.power_w


@dataclass(frozen=True)
class MotivationResult:
    """Frame rates of the three platform configurations."""

    desktop: PlatformSummary
    edge: PlatformSummary
    edge_with_gaurast: PlatformSummary

    @property
    def summaries(self) -> List[PlatformSummary]:
        """All platform summaries, fastest first."""
        return [self.desktop, self.edge_with_gaurast, self.edge]


def run(algorithm: str = "original") -> MotivationResult:
    """Evaluate the three platforms over all NeRF-360 scenes."""
    desktop = DesktopGpu()
    edge = JetsonOrinNX()
    system = GauRastSystem()

    desktop_fps = []
    edge_fps = []
    gaurast_fps = []
    for descriptor in iter_scenes():
        workload = WorkloadStatistics.from_descriptor(descriptor, algorithm)
        desktop_fps.append(desktop.fps(workload))
        edge_fps.append(edge.fps(workload))
        gaurast_fps.append(
            system.evaluate_workload(workload).end_to_end.gaurast_fps
        )

    count = len(desktop_fps)
    return MotivationResult(
        desktop=PlatformSummary(
            platform=desktop.name, power_w=desktop.power_w,
            mean_fps=sum(desktop_fps) / count,
        ),
        edge=PlatformSummary(
            platform=edge.name, power_w=edge.power_limit_w,
            mean_fps=sum(edge_fps) / count,
        ),
        edge_with_gaurast=PlatformSummary(
            platform=f"{edge.name}+gaurast", power_w=edge.power_limit_w,
            mean_fps=sum(gaurast_fps) / count,
        ),
    )


def format_result(result: MotivationResult) -> str:
    """Render the platform comparison as text."""
    headers = ["Platform", "Power (W)", "Mean FPS", "FPS/W"]
    rows = [
        (s.platform, fmt(s.power_w, 0), fmt(s.mean_fps, 1), fmt(s.fps_per_watt, 2))
        for s in result.summaries
    ]
    return format_table(headers, rows)


def main() -> None:
    """Print the motivation comparison."""
    result = run()
    print("Motivation: desktop GPU vs edge SoC vs edge SoC with GauRast")
    print(format_result(result))
    print(
        f"GauRast recovers {result.edge_with_gaurast.mean_fps / result.desktop.mean_fps:.0%} "
        f"of the desktop frame rate at {result.edge.power_w / result.desktop.power_w:.1%} "
        "of its power."
    )


if __name__ == "__main__":
    main()
