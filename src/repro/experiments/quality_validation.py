"""Validation experiment: hardware output quality vs the software renderers.

Reproduces the Section V-A validation claim — the enhanced rasterizer's
output matches the software implementation for both triangle and Gaussian
rasterization with no loss in rendering quality — and additionally
quantifies the quality of the FP16 re-implementation used in the GSCore
comparison (Section V-C).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.common import fmt, format_table
from repro.hardware.config import PROTOTYPE_CONFIG
from repro.hardware.fp import Precision
from repro.hardware.validation import ValidationReport, validate_against_software


@dataclass(frozen=True)
class QualityValidationResult:
    """Validation reports for the FP32 prototype and the FP16 variant."""

    fp32: ValidationReport
    fp16: ValidationReport

    @property
    def fp32_lossless(self) -> bool:
        """Whether FP32 output is indistinguishable from the software renderer."""
        return self.fp32.all_passed

    @property
    def fp16_min_psnr_db(self) -> float:
        """Worst-case PSNR of the FP16 datapath against the FP64 golden model."""
        return self.fp16.worst_psnr_db


def run(num_gaussian_scenes: int = 2, seed: int = 0) -> QualityValidationResult:
    """Validate the FP32 prototype and the FP16 variant against software."""
    fp32 = validate_against_software(
        PROTOTYPE_CONFIG, num_gaussian_scenes=num_gaussian_scenes, seed=seed
    )
    fp16 = validate_against_software(
        PROTOTYPE_CONFIG.with_precision(Precision.FP16),
        num_gaussian_scenes=num_gaussian_scenes,
        seed=seed,
    )
    return QualityValidationResult(fp32=fp32, fp16=fp16)


def format_result(result: QualityValidationResult) -> str:
    """Render the validation outcome as text."""
    headers = ["Case", "Precision", "PSNR (dB)", "SSIM", "Max |err|", "Pass"]
    rows = []
    for label, report in (("fp32", result.fp32), ("fp16", result.fp16)):
        for case in report.cases:
            comparison = case.comparison
            psnr_text = "inf" if comparison.psnr_db == float("inf") else fmt(
                comparison.psnr_db, 1
            )
            rows.append(
                (
                    case.name,
                    label,
                    psnr_text,
                    fmt(comparison.ssim, 4),
                    f"{comparison.max_abs_error:.2e}",
                    "yes" if case.passed else "no",
                )
            )
    return format_table(headers, rows)


def main() -> None:
    """Print the validation results."""
    result = run()
    print("Validation: hardware model output vs software renderers (Sec. V-A)")
    print(format_result(result))
    status = "matches" if result.fp32_lossless else "DOES NOT match"
    print(f"FP32 prototype {status} the software renderers; "
          f"FP16 variant worst-case PSNR {result.fp16_min_psnr_db:.1f} dB")


if __name__ == "__main__":
    main()
