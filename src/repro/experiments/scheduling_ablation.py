"""Ablation: benefit of the CUDA-collaborative (pipelined) schedule of Fig. 8.

Compares, per scene, the end-to-end frame rate with GauRast under the
pipelined schedule (Stages 1-2 of frame ``i + 1`` overlap Stage 3 of frame
``i``) against a serial schedule that runs the stages back to back.  The
difference quantifies how much of the end-to-end speedup comes from the
scheduling strategy rather than from the faster rasterizer alone.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.core.gaurast import GauRastSystem
from repro.experiments.common import default_system, fmt, format_table
from repro.scheduling.collaborative import schedule_frames, serial_schedule


@dataclass(frozen=True)
class SchedulingRow:
    """Pipelined vs serial scheduling outcome for one scene."""

    scene: str
    stage12_ms: float
    stage3_ms: float
    serial_fps: float
    pipelined_fps: float

    @property
    def pipelining_gain(self) -> float:
        """Throughput gain of the pipelined schedule over the serial one."""
        return self.pipelined_fps / self.serial_fps


@dataclass(frozen=True)
class SchedulingAblationResult:
    """Per-scene scheduling ablation."""

    rows: List[SchedulingRow]

    @property
    def mean_gain(self) -> float:
        """Average pipelining gain over the scenes."""
        return sum(r.pipelining_gain for r in self.rows) / len(self.rows)


def run(
    algorithm: str = "original", system: GauRastSystem | None = None
) -> SchedulingAblationResult:
    """Evaluate the scheduling ablation on every scene."""
    system = system or default_system()
    rows = []
    for evaluation in system.evaluate_all(algorithm):
        stage12 = evaluation.stage_times.non_rasterize
        stage3 = evaluation.rasterization.gaurast_time_s
        pipelined = schedule_frames(stage12, stage3)
        serial = serial_schedule(stage12, stage3)
        rows.append(
            SchedulingRow(
                scene=evaluation.scene_name,
                stage12_ms=stage12 * 1e3,
                stage3_ms=stage3 * 1e3,
                serial_fps=serial.fps,
                pipelined_fps=pipelined.fps,
            )
        )
    return SchedulingAblationResult(rows=rows)


def format_result(result: SchedulingAblationResult) -> str:
    """Render the ablation as text."""
    headers = [
        "Scene",
        "Stage 1-2 (ms)",
        "Stage 3 (ms)",
        "Serial FPS",
        "Pipelined FPS",
        "Gain",
    ]
    rows = [
        (
            r.scene,
            fmt(r.stage12_ms, 1),
            fmt(r.stage3_ms, 1),
            fmt(r.serial_fps, 1),
            fmt(r.pipelined_fps, 1),
            fmt(r.pipelining_gain, 2),
        )
        for r in result.rows
    ]
    table = format_table(headers, rows)
    return f"{table}\nmean pipelining gain: {result.mean_gain:.2f}x"


def main() -> None:
    """Print the scheduling ablation."""
    print("Ablation: CUDA-collaborative vs serial scheduling")
    print(format_result(run()))


if __name__ == "__main__":
    main()
