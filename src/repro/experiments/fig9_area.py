"""Fig. 9: layout and area breakdown of the enhanced rasterizer.

Reproduces the prototype's area breakdown (PE block / tile buffers /
controller shares of the 16-PE module and the triangle-vs-Gaussian split of
one PE) and the scaled design's added-area overhead relative to the baseline
SoC.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.common import fmt, format_table
from repro.hardware.area import AreaBreakdown, AreaModel, BASELINE_SOC_AREA_MM2
from repro.hardware.config import PROTOTYPE_CONFIG, SCALED_CONFIG


@dataclass(frozen=True)
class Fig9Result:
    """Area figures of the prototype module and the scaled design."""

    module: AreaBreakdown
    scaled_enhanced_mm2: float
    soc_area_mm2: float
    soc_overhead_fraction: float

    @property
    def pe_gaussian_fraction(self) -> float:
        """Share of one PE occupied by the added Gaussian-only logic."""
        return self.module.pe.gaussian_fraction

    @property
    def pe_triangle_fraction(self) -> float:
        """Share of one PE already present for triangle rasterization."""
        return 1.0 - self.pe_gaussian_fraction


def run() -> Fig9Result:
    """Compute the area breakdowns of Fig. 9."""
    prototype = AreaModel(PROTOTYPE_CONFIG)
    scaled = AreaModel(SCALED_CONFIG)
    return Fig9Result(
        module=prototype.module_breakdown(),
        scaled_enhanced_mm2=scaled.enhanced_area_mm2(),
        soc_area_mm2=BASELINE_SOC_AREA_MM2,
        soc_overhead_fraction=scaled.soc_overhead_fraction(),
    )


def format_result(result: Fig9Result) -> str:
    """Render the area breakdown as text."""
    module = result.module
    headers = ["Component", "Area", "Share"]
    rows = [
        ("16-PE module", f"{fmt(module.module_mm2, 3)} mm^2", "100%"),
        (
            "  PE block",
            f"{fmt(module.pe_block_um2 / 1e6, 3)} mm^2",
            f"{fmt(100 * module.pe_block_fraction, 1)}%",
        ),
        (
            "  Tile buffers",
            f"{fmt(module.tile_buffers_um2 / 1e6, 3)} mm^2",
            f"{fmt(100 * module.tile_buffer_fraction, 1)}%",
        ),
        (
            "  Controller",
            f"{fmt(module.controller_um2 / 1e6, 4)} mm^2",
            f"{fmt(100 * module.controller_fraction, 2)}%",
        ),
        (
            "One PE: pre-existing (triangle)",
            f"{fmt(module.pe.preexisting_um2, 0)} um^2",
            f"{fmt(100 * result.pe_triangle_fraction, 1)}%",
        ),
        (
            "One PE: enhanced (Gaussian)",
            f"{fmt(module.pe.gaussian_only_um2, 0)} um^2",
            f"{fmt(100 * result.pe_gaussian_fraction, 1)}%",
        ),
        (
            "Scaled design: added area",
            f"{fmt(result.scaled_enhanced_mm2, 3)} mm^2",
            f"{fmt(100 * result.soc_overhead_fraction, 2)}% of SoC",
        ),
    ]
    return format_table(headers, rows)


def main() -> None:
    """Print Fig. 9's area data."""
    print("Fig. 9: layout and area breakdown of the enhanced rasterizer")
    print(format_result(run()))


if __name__ == "__main__":
    main()
