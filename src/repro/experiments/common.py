"""Shared helpers for the experiment harness."""

from __future__ import annotations

from typing import Iterable, List, Sequence

from repro.core.gaurast import GauRastSystem
from repro.datasets.nerf360 import SCENE_NAMES

#: Canonical scene order used by every per-scene table/figure.
SCENE_ORDER = SCENE_NAMES

#: Algorithms evaluated by the paper.
ALGORITHMS = ("original", "optimized")


def default_system() -> GauRastSystem:
    """The system configuration used by every experiment (scaled design)."""
    return GauRastSystem()


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Render a simple fixed-width text table."""
    rows = [[str(cell) for cell in row] for row in rows]
    headers = [str(h) for h in headers]
    widths = [len(h) for h in headers]
    for row in rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def render_row(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(width) for cell, width in zip(cells, widths))

    lines: List[str] = [render_row(headers), render_row(["-" * w for w in widths])]
    lines.extend(render_row(row) for row in rows)
    return "\n".join(lines)


def fmt(value: float, digits: int = 2) -> str:
    """Format a float with a fixed number of decimals."""
    return f"{value:.{digits}f}"
