"""Table III: absolute rasterization runtime with and without GauRast.

Per NeRF-360 scene (original 3DGS pipeline): the CUDA rasterization time on
the baseline Jetson Orin NX versus the GauRast rasterization time of the
scaled 15-instance design.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.core.gaurast import GauRastSystem
from repro.core.metrics import SceneEvaluation
from repro.experiments.common import default_system, fmt, format_table


@dataclass(frozen=True)
class Table3Result:
    """Per-scene rasterization runtimes, baseline vs GauRast."""

    evaluations: List[SceneEvaluation]

    @property
    def baseline_ms(self) -> Dict[str, float]:
        """Baseline rasterization time per scene, in milliseconds."""
        return {
            e.scene_name: e.rasterization.baseline_time_s * 1e3
            for e in self.evaluations
        }

    @property
    def gaurast_ms(self) -> Dict[str, float]:
        """GauRast rasterization time per scene, in milliseconds."""
        return {
            e.scene_name: e.rasterization.gaurast_time_s * 1e3
            for e in self.evaluations
        }

    @property
    def mean_speedup(self) -> float:
        """Average rasterization speedup over the scenes."""
        speedups = [e.rasterization.speedup for e in self.evaluations]
        return sum(speedups) / len(speedups)


def run(
    algorithm: str = "original", system: GauRastSystem | None = None
) -> Table3Result:
    """Evaluate rasterization runtimes for every scene."""
    system = system or default_system()
    return Table3Result(evaluations=system.evaluate_all(algorithm))


def format_result(result: Table3Result) -> str:
    """Render Table III as text."""
    scenes = [e.scene_name for e in result.evaluations]
    headers = ["Row"] + scenes
    baseline = result.baseline_ms
    gaurast = result.gaurast_ms
    rows = [
        ["Baseline (ms)"] + [fmt(baseline[s], 1) for s in scenes],
        ["GauRast (ms)"] + [fmt(gaurast[s], 1) for s in scenes],
        ["Speedup (x)"]
        + [fmt(baseline[s] / gaurast[s], 1) for s in scenes],
    ]
    return format_table(headers, rows)


def main() -> None:
    """Print Table III."""
    result = run()
    print("Table III: absolute rasterization runtime w/ and w/o GauRast")
    print(format_result(result))
    print(f"mean speedup: {result.mean_speedup:.1f}x")


if __name__ == "__main__":
    main()
