"""Fig. 5: per-stage runtime breakdown of the baseline 3DGS pipeline.

Reproduces the observation that Gaussian rasterization (Stage 3) dominates
the frame time (over ~80 %) on the edge SoC, which is what makes it the
acceleration target.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.baselines.jetson import JetsonOrinNX
from repro.datasets.nerf360 import iter_scenes
from repro.experiments.common import fmt, format_table
from repro.profiling.profiler import StageBreakdown, profile_pipeline
from repro.profiling.workload import WorkloadStatistics


@dataclass(frozen=True)
class Fig5Result:
    """Per-scene stage breakdowns on the baseline platform."""

    breakdowns: List[StageBreakdown]

    @property
    def mean_rasterize_fraction(self) -> float:
        """Average share of the frame spent in rasterization."""
        return sum(b.rasterize_fraction for b in self.breakdowns) / len(
            self.breakdowns
        )

    @property
    def by_scene(self) -> Dict[str, StageBreakdown]:
        """Scene name to breakdown mapping."""
        return {b.scene_name: b for b in self.breakdowns}


def run(algorithm: str = "original") -> Fig5Result:
    """Profile every NeRF-360 scene on the baseline SoC."""
    baseline = JetsonOrinNX()
    breakdowns = []
    for descriptor in iter_scenes():
        workload = WorkloadStatistics.from_descriptor(descriptor, algorithm)
        breakdowns.append(profile_pipeline(baseline, workload))
    return Fig5Result(breakdowns=breakdowns)


def format_result(result: Fig5Result) -> str:
    """Render the per-scene stage shares."""
    headers = ["Scene", "Preprocess %", "Sort %", "Rasterize %", "Total (ms)"]
    rows = []
    for breakdown in result.breakdowns:
        fractions = breakdown.fractions
        rows.append(
            (
                breakdown.scene_name,
                fmt(100 * fractions["preprocess"], 1),
                fmt(100 * fractions["sort"], 1),
                fmt(100 * fractions["rasterize"], 1),
                fmt(breakdown.total_s * 1e3, 1),
            )
        )
    rows.append(("mean", "", "", fmt(100 * result.mean_rasterize_fraction, 1), ""))
    return format_table(headers, rows)


def main() -> None:
    """Print Fig. 5's data series."""
    print("Fig. 5: runtime breakdown of the baseline 3DGS pipeline")
    print(format_result(run()))


if __name__ == "__main__":
    main()
