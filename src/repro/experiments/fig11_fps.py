"""Fig. 11: end-to-end FPS with and without GauRast.

For both pipelines (original 3DGS and Mini-Splatting) and every NeRF-360
scene: the frame rate of the unmodified baseline SoC versus the SoC with
GauRast executing Stage 3 under the CUDA-collaborative schedule.

The figure's headline numbers come from the analytical models; as a sanity
anchor, :func:`measured_functional_fps` additionally renders a scaled-down
synthetic stand-in of one scene from several orbit viewpoints through the
batched functional pipeline and reports the wall-clock frame rate the pure
software renderer sustains.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.gaurast import GauRastSystem
from repro.core.metrics import SceneEvaluation
from repro.experiments.common import ALGORITHMS, default_system, fmt, format_table
from repro.gaussians.pipeline import BatchRenderResult, render_batch
from repro.gaussians.synthetic import scene_from_descriptor


@dataclass(frozen=True)
class Fig11Result:
    """Per-scene, per-algorithm end-to-end FPS with and without GauRast."""

    evaluations: Dict[str, List[SceneEvaluation]]

    def baseline_fps(self, algorithm: str) -> Dict[str, float]:
        """Baseline FPS per scene."""
        return {
            e.scene_name: e.end_to_end.baseline_fps
            for e in self.evaluations[algorithm]
        }

    def gaurast_fps(self, algorithm: str) -> Dict[str, float]:
        """GauRast FPS per scene."""
        return {
            e.scene_name: e.end_to_end.gaurast_fps
            for e in self.evaluations[algorithm]
        }

    def mean_baseline_fps(self, algorithm: str) -> float:
        """Average baseline FPS."""
        values = list(self.baseline_fps(algorithm).values())
        return sum(values) / len(values)

    def mean_gaurast_fps(self, algorithm: str) -> float:
        """Average FPS with GauRast."""
        values = list(self.gaurast_fps(algorithm).values())
        return sum(values) / len(values)

    def mean_speedup(self, algorithm: str) -> float:
        """Average end-to-end speedup."""
        evaluations = self.evaluations[algorithm]
        return sum(e.end_to_end.speedup for e in evaluations) / len(evaluations)


def run(system: GauRastSystem | None = None) -> Fig11Result:
    """Evaluate end-to-end FPS for both algorithms on every scene."""
    system = system or default_system()
    return Fig11Result(
        evaluations={
            algorithm: system.evaluate_all(algorithm) for algorithm in ALGORITHMS
        }
    )


def measured_functional_fps(
    scene_name: str = "bicycle",
    scale: float = 0.001,
    num_cameras: int = 4,
    backend: Optional[str] = None,
    seed: int = 0,
) -> tuple[float, BatchRenderResult]:
    """Measured FPS of the software pipeline on a multi-camera stand-in.

    Renders ``num_cameras`` orbit viewpoints of a scaled-down synthetic
    stand-in for ``scene_name`` as one :func:`render_batch` call and returns
    the wall-clock frames per second plus the batch result.
    """
    scene = scene_from_descriptor(
        scene_name, scale=scale, seed=seed, num_cameras=num_cameras
    )
    start = time.perf_counter()
    batch = render_batch(scene, backend=backend)
    elapsed = time.perf_counter() - start
    return len(batch) / elapsed, batch


def format_result(result: Fig11Result) -> str:
    """Render Fig. 11's data series."""
    scenes = [e.scene_name for e in result.evaluations["original"]]
    headers = ["Series"] + scenes + ["mean"]
    rows = []
    for algorithm in ALGORITHMS:
        base = result.baseline_fps(algorithm)
        gaurast = result.gaurast_fps(algorithm)
        rows.append(
            [f"{algorithm}: w/o GauRast (FPS)"]
            + [fmt(base[s], 1) for s in scenes]
            + [fmt(result.mean_baseline_fps(algorithm), 1)]
        )
        rows.append(
            [f"{algorithm}: w/ GauRast (FPS)"]
            + [fmt(gaurast[s], 1) for s in scenes]
            + [fmt(result.mean_gaurast_fps(algorithm), 1)]
        )
    return format_table(headers, rows)


def main() -> None:
    """Print Fig. 11's data series."""
    result = run()
    print("Fig. 11: end-to-end FPS with and without GauRast")
    print(format_result(result))
    for algorithm in ALGORITHMS:
        print(
            f"{algorithm}: mean end-to-end speedup "
            f"{result.mean_speedup(algorithm):.1f}x"
        )
    fps, batch = measured_functional_fps()
    print(
        f"software stand-in (bicycle, {len(batch)} orbit cameras, "
        f"vectorized backend): {fps:.1f} FPS measured"
    )


if __name__ == "__main__":
    main()
