"""Section V-C: comparison against the GSCore dedicated accelerator.

GSCore achieves a 20x Gaussian-rasterization speedup over the Jetson Xavier
NX with a dedicated 3.95 mm^2 FP16 accelerator.  The experiment sizes an
FP16 re-implementation of GauRast to match GSCore's absolute rasterization
throughput and compares the *added* silicon area (only the Gaussian-only
logic, since the rest of the datapath is reused from the triangle
rasterizer), yielding the area-efficiency advantage the paper reports
(~24.7x).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.baselines.gscore import GScoreModel
from repro.experiments.common import fmt, format_table
from repro.hardware.area import AreaModel
from repro.hardware.config import GauRastConfig, SCALED_CONFIG
from repro.hardware.fp import Precision

@dataclass(frozen=True)
class GScoreComparison:
    """Outcome of the GSCore area-efficiency comparison."""

    gscore_area_mm2: float
    gscore_fragments_per_second: float
    gaurast_instances: int
    gaurast_pes: int
    gaurast_added_area_mm2: float
    gaurast_fragments_per_second: float

    @property
    def area_efficiency_improvement(self) -> float:
        """GauRast's area-efficiency advantage at matched throughput."""
        return self.gscore_area_mm2 / self.gaurast_added_area_mm2

    @property
    def throughput_ratio(self) -> float:
        """GauRast throughput relative to GSCore (>= 1 by construction)."""
        return self.gaurast_fragments_per_second / self.gscore_fragments_per_second


def fp16_instance_throughput(config: GauRastConfig) -> float:
    """Nominal fragments per second of one FP16 GauRast instance.

    One instance applies a primitive to a full tile in
    ``pixels_per_pe * gaussian_cycles_per_fragment`` cycles.  The sizing is
    conservative: it matches GSCore's published throughput on nominal
    fragments and does not credit GauRast's per-pixel early-termination
    advantage.
    """
    cycles_per_key = config.pixels_per_pe * config.gaussian_cycles_per_fragment
    keys_per_second = config.clock_hz / cycles_per_key
    return keys_per_second * config.pixels_per_tile


def run(base_config: GauRastConfig = SCALED_CONFIG) -> GScoreComparison:
    """Size an FP16 GauRast to GSCore's throughput and compare added area."""
    gscore = GScoreModel()
    fp16 = base_config.with_precision(Precision.FP16)

    per_instance = fp16_instance_throughput(fp16)
    instances = max(1, math.ceil(gscore.fragments_per_second / per_instance))
    sized = fp16.with_instances(instances)

    area = AreaModel(sized)
    return GScoreComparison(
        gscore_area_mm2=gscore.area_mm2,
        gscore_fragments_per_second=gscore.fragments_per_second,
        gaurast_instances=instances,
        gaurast_pes=sized.total_pes,
        gaurast_added_area_mm2=area.enhanced_area_mm2(),
        gaurast_fragments_per_second=per_instance * instances,
    )


def format_result(result: GScoreComparison) -> str:
    """Render the comparison as text."""
    headers = ["Design", "Throughput (Gfrag/s)", "Area (mm^2)"]
    rows = [
        (
            "GSCore (dedicated, FP16)",
            fmt(result.gscore_fragments_per_second / 1e9, 1),
            fmt(result.gscore_area_mm2, 2),
        ),
        (
            f"GauRast FP16 ({result.gaurast_instances} instances, "
            f"{result.gaurast_pes} PEs, added area only)",
            fmt(result.gaurast_fragments_per_second / 1e9, 1),
            fmt(result.gaurast_added_area_mm2, 3),
        ),
    ]
    table = format_table(headers, rows)
    return (
        f"{table}\n"
        f"area-efficiency improvement: {result.area_efficiency_improvement:.1f}x"
    )


def main() -> None:
    """Print the Section V-C comparison."""
    print("Section V-C: comparison against the GSCore accelerator")
    print(format_result(run()))


if __name__ == "__main__":
    main()
