"""Run every experiment and print the paper's tables and figures.

Usage::

    python -m repro.experiments             # run everything
    python -m repro.experiments fig10 table3  # run a subset
"""

from __future__ import annotations

import sys

from repro.experiments import ALL_EXPERIMENTS


def main(argv=None) -> int:
    """Run the requested experiments (all by default)."""
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv:
        unknown = [name for name in argv if name not in ALL_EXPERIMENTS]
        if unknown:
            known = ", ".join(ALL_EXPERIMENTS)
            print(f"unknown experiment(s): {', '.join(unknown)}; known: {known}")
            return 1
        selected = {name: ALL_EXPERIMENTS[name] for name in argv}
    else:
        selected = ALL_EXPERIMENTS

    for index, (name, module) in enumerate(selected.items()):
        if index:
            print()
        print(f"=== {name} ===")
        module.main()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
