"""Table II: computational primitives for triangle and Gaussian rasterization.

The table lists, per rasterization subtask, the operator types each
primitive requires, the shared input/output width (9 FP numbers in, 3 out),
and is the argument for reusing the triangle rasterizer's datapath.  The
reproduction derives the rows directly from the PE model's subtask operation
tables, so the table stays consistent with what the hardware model actually
computes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.experiments.common import format_table
from repro.gaussians.gaussian import RASTER_INPUT_WIDTH
from repro.hardware.pe import (
    GAUSSIAN_SUBTASK_OPS,
    TRIANGLE_SUBTASK_OPS,
    subtask_totals,
)

#: Human-readable subtask names, aligned between the two primitive types as
#: in Table II (subtask index -> (triangle name, gaussian name)).
SUBTASK_NAMES: List[Tuple[str, str, str, str]] = [
    ("1", "coordinate_shift", "Coordinate Shift", "Coordinate Shift"),
    ("2", "intersection", "Intersection Detection", "Gaussian Probability Computation"),
    ("3", "uv_weight", "UV Weight Computation", "Color Weight Computation"),
    ("4", "depth_hold", "Min-Depth Color Hold", "Color Accumulation"),
]

#: Gaussian subtask keys in the same order.
GAUSSIAN_SUBTASK_KEYS = ["coordinate_shift", "probability", "color_weight", "accumulation"]


def _operator_set(ops: Dict[str, int]) -> str:
    order = ["add", "mul", "div", "exp"]
    names = {"add": "ADD", "mul": "MUL", "div": "DIV", "exp": "EXP"}
    return ", ".join(names[kind] for kind in order if ops.get(kind, 0) > 0)


@dataclass(frozen=True)
class SubtaskRow:
    """One subtask row of Table II."""

    index: str
    triangle_name: str
    triangle_operators: str
    triangle_ops: Dict[str, int]
    gaussian_name: str
    gaussian_operators: str
    gaussian_ops: Dict[str, int]


@dataclass(frozen=True)
class Table2Result:
    """The full computational-primitives table."""

    input_width: int
    output_width: int
    rows: List[SubtaskRow]
    triangle_totals: Dict[str, int]
    gaussian_totals: Dict[str, int]

    @property
    def triangle_needs_div(self) -> bool:
        """Triangle rasterization requires a divider."""
        return self.triangle_totals.get("div", 0) > 0

    @property
    def gaussian_needs_exp(self) -> bool:
        """Gaussian rasterization requires an exponentiation unit."""
        return self.gaussian_totals.get("exp", 0) > 0


def run() -> Table2Result:
    """Build Table II from the PE model's subtask definitions."""
    rows = []
    for (index, triangle_key, triangle_name, gaussian_name), gaussian_key in zip(
        SUBTASK_NAMES, GAUSSIAN_SUBTASK_KEYS
    ):
        triangle_ops = TRIANGLE_SUBTASK_OPS[triangle_key]
        gaussian_ops = GAUSSIAN_SUBTASK_OPS[gaussian_key]
        rows.append(
            SubtaskRow(
                index=index,
                triangle_name=triangle_name,
                triangle_operators=_operator_set(triangle_ops),
                triangle_ops=dict(triangle_ops),
                gaussian_name=gaussian_name,
                gaussian_operators=_operator_set(gaussian_ops),
                gaussian_ops=dict(gaussian_ops),
            )
        )
    return Table2Result(
        input_width=RASTER_INPUT_WIDTH,
        output_width=3,
        rows=rows,
        triangle_totals=subtask_totals(TRIANGLE_SUBTASK_OPS),
        gaussian_totals=subtask_totals(GAUSSIAN_SUBTASK_OPS),
    )


def format_result(result: Table2Result) -> str:
    """Render Table II as text."""
    headers = ["Subtask", "Triangle Rasterization", "Operators", "Gaussian Rasterization", "Operators"]
    rows = [
        (
            "Input",
            "Vertices' Coordinates",
            f"{result.input_width} FP numbers",
            "Sigma, o, mu, c",
            f"{result.input_width} FP numbers",
        )
    ]
    for row in result.rows:
        rows.append(
            (
                row.index,
                row.triangle_name,
                row.triangle_operators,
                row.gaussian_name,
                row.gaussian_operators,
            )
        )
    rows.append(
        (
            "Output",
            "UV Weight, Depth",
            f"{result.output_width} FP numbers",
            "Accumulated Color",
            f"{result.output_width} FP numbers",
        )
    )
    return format_table(headers, rows)


def main() -> None:
    """Print Table II."""
    print("Table II: computational primitives for rasterization")
    print(format_result(run()))


if __name__ == "__main__":
    main()
