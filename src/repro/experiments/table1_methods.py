"""Table I: comparison of rendering methodologies.

The paper's Table I is a qualitative comparison of triangle meshes, NeRF and
3D Gaussian Splatting.  The reproduction backs each qualitative entry with a
quantitative probe of the implemented substrates where one exists: the
triangle substrate's per-fragment cost and the 3DGS pipeline's per-fragment
cost (measured on a small synthetic scene), which is why triangle meshes are
"fast" and 3DGS is "medium" on a GPU.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.experiments.common import format_table
from repro.hardware.pe import (
    GAUSSIAN_SUBTASK_OPS,
    TRIANGLE_SUBTASK_OPS,
    subtask_totals,
)


@dataclass(frozen=True)
class MethodRow:
    """One row of Table I."""

    method: str
    scene_reconstruction: str
    rendering_quality: str
    rendering_speed_on_gpu: str
    ops_per_fragment: int


@dataclass(frozen=True)
class Table1Result:
    """The full methodology-comparison table."""

    rows: List[MethodRow]

    def by_method(self) -> Dict[str, MethodRow]:
        """Index the rows by method name."""
        return {row.method: row for row in self.rows}


def run() -> Table1Result:
    """Build Table I, annotated with per-fragment operation counts."""
    triangle_ops = sum(subtask_totals(TRIANGLE_SUBTASK_OPS).values())
    gaussian_ops = sum(subtask_totals(GAUSSIAN_SUBTASK_OPS).values())
    rows = [
        MethodRow(
            method="Triangle Mesh",
            scene_reconstruction="Manual",
            rendering_quality="Manually Decided",
            rendering_speed_on_gpu="Fast",
            ops_per_fragment=triangle_ops,
        ),
        MethodRow(
            method="NeRF",
            scene_reconstruction="Automatic",
            rendering_quality="High",
            rendering_speed_on_gpu="Slow",
            # NeRF evaluates an MLP per sample; hundreds of MACs per ray
            # sample dwarf both rasterizers, which is why it is "slow".
            ops_per_fragment=512,
        ),
        MethodRow(
            method="3D Gaussian",
            scene_reconstruction="Automatic",
            rendering_quality="Very High",
            rendering_speed_on_gpu="Medium",
            ops_per_fragment=gaussian_ops,
        ),
    ]
    return Table1Result(rows=rows)


def format_result(result: Table1Result) -> str:
    """Render Table I as text."""
    headers = [
        "Method",
        "Scene Reconstruction",
        "Rendering Quality",
        "Speed on GPU",
        "Ops/fragment",
    ]
    rows = [
        (
            row.method,
            row.scene_reconstruction,
            row.rendering_quality,
            row.rendering_speed_on_gpu,
            row.ops_per_fragment,
        )
        for row in result.rows
    ]
    return format_table(headers, rows)


def main() -> None:
    """Print Table I."""
    print("Table I: comparison of rendering methodologies")
    print(format_result(run()))


if __name__ == "__main__":
    main()
