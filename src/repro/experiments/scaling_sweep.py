"""Ablation: sweep of the GauRast instance count.

The paper sizes the scaled design to 15 instances of the 16-PE module so
that it matches the effective area of the SoC's existing triangle-rasterizer
units.  This sweep varies the instance count and reports the resulting
rasterization speedup, end-to-end FPS and added area, showing where the
design point sits on the performance/area curve and where the end-to-end
frame rate saturates (once Stage 3 is no longer the bottleneck, adding
rasterizer instances stops helping — the motivation for the collaborative
schedule's balance).

A second, *measured* sweep (:func:`measure_functional_throughput`) renders a
synthetic multi-camera batch through the functional pipeline with each
software rasterization backend, reporting the wall-clock frames per second
each backend sustains.  This is the software-side analogue of the hardware
scaling study: the vectorized backend is what lets sweeps cover many
cameras and scenes in reasonable time.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Sequence

from repro.baselines.jetson import JetsonOrinNX
from repro.datasets.nerf360 import get_scene
from repro.experiments.common import fmt, format_table
from repro.gaussians.pipeline import render_batch
from repro.gaussians.rasterize import BACKENDS
from repro.gaussians.synthetic import SyntheticConfig, make_synthetic_scene
from repro.hardware.area import AreaModel
from repro.hardware.config import SCALED_CONFIG
from repro.hardware.multi import ScaledGauRast
from repro.hardware.power import EnergyModel
from repro.profiling.workload import WorkloadStatistics
from repro.scheduling.collaborative import steady_state_fps

#: Instance counts swept by default (the paper's design point is 15).
DEFAULT_INSTANCE_COUNTS = (1, 2, 4, 8, 15, 30)


@dataclass(frozen=True)
class ScalingPoint:
    """One point of the instance-count sweep."""

    num_instances: int
    total_pes: int
    raster_time_ms: float
    raster_speedup: float
    end_to_end_fps: float
    added_area_mm2: float
    raster_energy_mj: float


@dataclass(frozen=True)
class ScalingSweepResult:
    """Result of the instance-count sweep on one scene."""

    scene: str
    baseline_raster_ms: float
    points: List[ScalingPoint]

    def point_for(self, num_instances: int) -> ScalingPoint:
        """Look up the sweep point with ``num_instances`` instances."""
        for point in self.points:
            if point.num_instances == num_instances:
                return point
        raise KeyError(f"no sweep point with {num_instances} instances")


def run(
    scene: str = "bicycle",
    algorithm: str = "original",
    instance_counts: Sequence[int] = DEFAULT_INSTANCE_COUNTS,
) -> ScalingSweepResult:
    """Sweep the instance count for one scene."""
    descriptor = get_scene(scene)
    workload = WorkloadStatistics.from_descriptor(descriptor, algorithm)
    baseline = JetsonOrinNX()
    stage_times = baseline.stage_times(workload)

    points = []
    for count in instance_counts:
        config = SCALED_CONFIG.with_instances(count)
        estimate = ScaledGauRast(config).estimate(workload)
        energy = EnergyModel(config).frame_energy_j(estimate)
        raster_time = estimate.runtime_seconds
        points.append(
            ScalingPoint(
                num_instances=count,
                total_pes=config.total_pes,
                raster_time_ms=raster_time * 1e3,
                raster_speedup=stage_times.rasterize / raster_time,
                end_to_end_fps=steady_state_fps(stage_times.non_rasterize, raster_time),
                added_area_mm2=AreaModel(config).enhanced_area_mm2(),
                raster_energy_mj=energy * 1e3,
            )
        )
    return ScalingSweepResult(
        scene=scene,
        baseline_raster_ms=stage_times.rasterize * 1e3,
        points=points,
    )


@dataclass(frozen=True)
class BackendThroughput:
    """Measured functional-renderer throughput of one backend."""

    backend: str
    num_cameras: int
    seconds_per_frame: float
    frames_per_second: float
    fragments_evaluated: int


def measure_functional_throughput(
    num_gaussians: int = 800,
    width: int = 128,
    height: int = 96,
    num_cameras: int = 3,
    seed: int = 0,
    backends: Sequence[str] = BACKENDS,
) -> List[BackendThroughput]:
    """Measure wall-clock FPS of each software backend on a camera batch.

    Renders the same synthetic scene from ``num_cameras`` orbit viewpoints
    through :func:`repro.gaussians.pipeline.render_batch` once per backend.
    Both backends produce bit-identical images, so the comparison isolates
    pure rasterization-engine throughput.
    """
    config = SyntheticConfig(
        num_gaussians=num_gaussians, width=width, height=height, seed=seed
    )
    scene = make_synthetic_scene(config, name="throughput", num_cameras=num_cameras)

    points = []
    for backend in backends:
        start = time.perf_counter()
        batch = render_batch(scene, backend=backend)
        elapsed = time.perf_counter() - start
        frames = len(batch)
        points.append(
            BackendThroughput(
                backend=backend,
                num_cameras=frames,
                seconds_per_frame=elapsed / frames,
                frames_per_second=frames / elapsed,
                fragments_evaluated=batch.fragments_evaluated,
            )
        )
    return points


def format_throughput(points: List[BackendThroughput]) -> str:
    """Render the backend throughput comparison as text."""
    headers = ["Backend", "Cameras", "ms/frame", "FPS", "Fragments"]
    rows = [
        (
            p.backend,
            p.num_cameras,
            fmt(p.seconds_per_frame * 1e3, 1),
            fmt(p.frames_per_second, 1),
            p.fragments_evaluated,
        )
        for p in points
    ]
    table = format_table(headers, rows)
    if len(points) >= 2:
        by_name = {p.backend: p for p in points}
        if "scalar" in by_name and "vectorized" in by_name:
            speedup = (
                by_name["scalar"].seconds_per_frame
                / by_name["vectorized"].seconds_per_frame
            )
            table += f"\nvectorized backend speedup over scalar: {speedup:.1f}x"
    return table


def format_result(result: ScalingSweepResult) -> str:
    """Render the sweep as text."""
    headers = [
        "Instances",
        "PEs",
        "Raster (ms)",
        "Speedup",
        "End-to-end FPS",
        "Added area (mm^2)",
        "Raster energy (mJ)",
    ]
    rows = [
        (
            p.num_instances,
            p.total_pes,
            fmt(p.raster_time_ms, 1),
            fmt(p.raster_speedup, 1),
            fmt(p.end_to_end_fps, 1),
            fmt(p.added_area_mm2, 3),
            fmt(p.raster_energy_mj, 1),
        )
        for p in result.points
    ]
    table = format_table(headers, rows)
    return (
        f"scene: {result.scene} "
        f"(baseline rasterization {result.baseline_raster_ms:.1f} ms)\n{table}"
    )


def main() -> None:
    """Print the scaling sweep and the software backend throughput sweep."""
    print("Ablation: GauRast instance-count sweep")
    print(format_result(run()))
    print()
    print("Software rasterization backends (measured, multi-camera batch)")
    print(format_throughput(measure_functional_throughput()))


if __name__ == "__main__":
    main()
