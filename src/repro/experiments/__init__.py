"""Experiment harness: one module per table/figure of the paper's evaluation.

Every module exposes a ``run()`` function returning a structured result and a
``format_table(result)`` helper producing the human-readable rows the paper
reports.  The benchmark suite under ``benchmarks/`` wraps each ``run()`` with
pytest-benchmark; ``python -m repro.experiments`` prints them all.

Experiment index (see DESIGN.md for the full mapping):

========  ==========================================================
Module    Paper artifact
========  ==========================================================
table1    Table I  — rendering methodology comparison
fig4      Fig. 4   — baseline FPS on the Jetson Orin NX
fig5      Fig. 5   — per-stage runtime breakdown
table2    Table II — computational primitives for rasterization
table3    Table III— rasterization runtime with and without GauRast
fig9      Fig. 9   — layout and area breakdown
fig10     Fig. 10  — rasterization speedup and energy efficiency
fig11     Fig. 11  — end-to-end FPS with and without GauRast
gscore    Sec. V-C — comparison against the GSCore accelerator
m2pro     Sec. V-D — compatibility with the Apple M2 Pro GPU
quality   Sec. V-A — hardware-vs-software output validation (FP32/FP16)
motive    Sec. I   — desktop GPU vs edge SoC vs edge SoC + GauRast
sched     ablation — CUDA-collaborative vs serial scheduling
scaling   ablation — PE/instance scaling sweep
========  ==========================================================
"""

from repro.experiments import (
    fig4_baseline_fps,
    fig5_breakdown,
    fig9_area,
    fig10_speedup,
    fig11_fps,
    gscore_compare,
    m2pro_compare,
    motivation_platforms,
    quality_validation,
    scaling_sweep,
    scheduling_ablation,
    table1_methods,
    table2_primitives,
    table3_runtime,
)

ALL_EXPERIMENTS = {
    "table1": table1_methods,
    "fig4": fig4_baseline_fps,
    "fig5": fig5_breakdown,
    "table2": table2_primitives,
    "table3": table3_runtime,
    "fig9": fig9_area,
    "fig10": fig10_speedup,
    "fig11": fig11_fps,
    "gscore": gscore_compare,
    "m2pro": m2pro_compare,
    "quality": quality_validation,
    "motive": motivation_platforms,
    "sched": scheduling_ablation,
    "scaling": scaling_sweep,
}

__all__ = ["ALL_EXPERIMENTS"]
