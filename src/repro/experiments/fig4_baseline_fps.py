"""Fig. 4: throughput of the 3DGS pipeline on the baseline edge SoC.

Reproduces the profiling result that motivates the paper: the unmodified
Jetson Orin NX at 10 W renders the seven NeRF-360 scenes at only a few
frames per second with the original 3DGS pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.baselines.jetson import JetsonOrinNX
from repro.datasets.nerf360 import iter_scenes
from repro.experiments.common import fmt, format_table
from repro.profiling.workload import WorkloadStatistics


@dataclass(frozen=True)
class SceneFps:
    """Baseline frame rate of one scene."""

    scene: str
    frame_time_s: float

    @property
    def fps(self) -> float:
        """Frames per second."""
        return 1.0 / self.frame_time_s


@dataclass(frozen=True)
class Fig4Result:
    """Per-scene baseline FPS (original 3DGS pipeline)."""

    entries: List[SceneFps]

    @property
    def mean_fps(self) -> float:
        """Average FPS over the scenes."""
        return sum(e.fps for e in self.entries) / len(self.entries)

    @property
    def fps_by_scene(self) -> Dict[str, float]:
        """Scene name to FPS mapping."""
        return {e.scene: e.fps for e in self.entries}


def run(algorithm: str = "original") -> Fig4Result:
    """Compute the baseline FPS of every NeRF-360 scene."""
    baseline = JetsonOrinNX()
    entries = []
    for descriptor in iter_scenes():
        workload = WorkloadStatistics.from_descriptor(descriptor, algorithm)
        entries.append(
            SceneFps(scene=descriptor.name, frame_time_s=baseline.frame_time(workload))
        )
    return Fig4Result(entries=entries)


def format_result(result: Fig4Result) -> str:
    """Render the per-scene FPS series."""
    headers = ["Scene", "Frame time (ms)", "FPS"]
    rows = [
        (e.scene, fmt(e.frame_time_s * 1e3, 1), fmt(e.fps, 2)) for e in result.entries
    ]
    rows.append(("mean", "", fmt(result.mean_fps, 2)))
    return format_table(headers, rows)


def main() -> None:
    """Print Fig. 4's data series."""
    print("Fig. 4: baseline 3DGS throughput on the Jetson Orin NX (10 W)")
    print(format_result(run()))


if __name__ == "__main__":
    main()
