"""End-to-end functional 3DGS rendering pipeline.

Chains the three stages (preprocess, sort, rasterize) into a single call and
returns both the rendered image and the per-stage workload statistics that
drive the performance models.  This module is the software "golden" pipeline;
``repro.core`` exposes the same flow with the GauRast hardware model plugged
in for Stage 3.

Two entry points are provided:

* :func:`render` — one camera, one frame.  Stage 3 runs on a selectable
  backend (``"scalar"`` or ``"vectorized"``, see
  :mod:`repro.gaussians.rasterize`); both backends are bit-identical in
  FP64, the vectorized one is simply faster.
* :func:`render_batch` — many cameras of the same scene in one call.  The
  camera-independent part of preprocessing (the world-space covariances) is
  computed once and shared across all viewpoints, and the result carries
  stacked images plus aggregated workload statistics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property
from typing import List, Optional, Sequence

import numpy as np

from repro.gaussians.camera import Camera
from repro.gaussians.gaussian import ProjectedGaussians
from repro.gaussians.projection import PreprocessStats, preprocess
from repro.gaussians.rasterize import RasterStats, rasterize_tiles
from repro.gaussians.scene import GaussianScene
from repro.gaussians.sorting import TileBinning, bin_and_sort
from repro.gaussians.tiles import TileGrid


@dataclass
class RenderResult:
    """Output of a functional 3DGS render.

    Attributes
    ----------
    image:
        ``(height, width, 3)`` RGB image in linear [0, 1+] range.
    projected:
        The 2D Gaussians produced by preprocessing (Stage 1 output).
    binning:
        Tile lists produced by sorting (Stage 2 output).
    preprocess_stats:
        Counters from Stage 1.
    raster_stats:
        Counters from Stage 3.
    """

    image: np.ndarray = field(repr=False)
    projected: ProjectedGaussians
    binning: TileBinning
    preprocess_stats: PreprocessStats
    raster_stats: RasterStats

    @property
    def num_sort_keys(self) -> int:
        """Number of duplicated (tile, Gaussian) keys handled by Stage 2."""
        return self.binning.num_keys

    @property
    def fragments_evaluated(self) -> int:
        """Gaussian-pixel evaluations performed by Stage 3."""
        return self.raster_stats.fragments_evaluated


@dataclass
class BatchRenderResult:
    """Output of a multi-camera batch render.

    Attributes
    ----------
    results:
        Per-camera :class:`RenderResult` objects, in camera order.
    raster_stats:
        Stage-3 counters aggregated over all cameras
        (:meth:`~repro.gaussians.rasterize.RasterStats.merged`).
    """

    results: List[RenderResult]
    raster_stats: RasterStats

    def __len__(self) -> int:
        return len(self.results)

    @cached_property
    def images(self) -> np.ndarray:
        """Stacked ``(num_cameras, height, width, 3)`` images.

        All cameras of a batch must share one resolution to be stackable;
        mixed-resolution batches should read ``results[i].image`` instead.
        The stack is built on first access and cached.
        """
        shapes = {result.image.shape for result in self.results}
        if len(shapes) > 1:
            raise ValueError(
                f"cannot stack images of mixed resolutions {sorted(shapes)}; "
                "read results[i].image individually"
            )
        return np.stack([result.image for result in self.results])

    @property
    def num_sort_keys(self) -> int:
        """Total sort keys handled by Stage 2 across the batch."""
        return sum(result.num_sort_keys for result in self.results)

    @property
    def fragments_evaluated(self) -> int:
        """Total Gaussian-pixel evaluations across the batch."""
        return self.raster_stats.fragments_evaluated

    @property
    def mean_fragments_per_camera(self) -> float:
        """Average Stage-3 evaluations per viewpoint."""
        if not self.results:
            return 0.0
        return self.fragments_evaluated / len(self.results)


def render(
    scene: GaussianScene,
    camera: Optional[Camera] = None,
    background=(0.0, 0.0, 0.0),
    sh_degree: Optional[int] = None,
    collect_stats: bool = True,
    backend: Optional[str] = None,
    covariances: Optional[np.ndarray] = None,
) -> RenderResult:
    """Render a scene with the functional three-stage 3DGS pipeline.

    Parameters
    ----------
    scene:
        The scene to render.
    camera:
        Viewpoint; defaults to the scene's primary camera.
    background:
        RGB background colour composited under the splats.
    sh_degree:
        Optional spherical-harmonics degree override.
    collect_stats:
        Whether to collect per-fragment workload statistics (slightly
        slower; required by the performance models).
    backend:
        Stage-3 rasterization backend: ``"scalar"`` or ``"vectorized"``
        (default).  Both are bit-identical in FP64.
    covariances:
        Optional precomputed world-space covariances of the full cloud,
        shared across cameras by :func:`render_batch`.
    """
    if camera is None:
        camera = scene.default_camera

    projected, pre_stats = preprocess(
        scene.cloud, camera, sh_degree=sh_degree, covariances=covariances
    )
    grid = TileGrid(width=camera.width, height=camera.height)
    binning = bin_and_sort(projected, grid)
    image, raster_stats = rasterize_tiles(
        projected,
        binning,
        background=background,
        collect_stats=collect_stats,
        backend=backend,
    )
    return RenderResult(
        image=image,
        projected=projected,
        binning=binning,
        preprocess_stats=pre_stats,
        raster_stats=raster_stats,
    )


def render_batch(
    scene: GaussianScene,
    cameras: Optional[Sequence[Camera]] = None,
    background=(0.0, 0.0, 0.0),
    sh_degree: Optional[int] = None,
    collect_stats: bool = True,
    backend: Optional[str] = None,
    covariances: Optional[np.ndarray] = None,
) -> BatchRenderResult:
    """Render one scene from many viewpoints in a single call.

    The camera-independent half of preprocessing — the world-space
    covariances ``R S S^T R^T`` of every Gaussian — is computed once and
    reused for every viewpoint, so an ``N``-camera batch pays the quaternion
    and covariance arithmetic once instead of ``N`` times.  Each frame is
    identical (bit-for-bit) to a standalone :func:`render` of that camera.

    Parameters
    ----------
    scene:
        The scene to render.
    cameras:
        Viewpoints to render; defaults to all of the scene's cameras.
    background, sh_degree, collect_stats, backend:
        As in :func:`render`, applied to every frame.
    covariances:
        Optional precomputed world-space covariances of the full cloud.
        When omitted they are computed here, once for the whole batch; a
        caller that renders many batches of the same scene (e.g. the
        :class:`~repro.serving.service.RenderService` covariance cache) can
        compute them once per *scene* instead and pass them in.

    Returns
    -------
    A :class:`BatchRenderResult` with per-camera results, stackable images
    and Stage-3 counters aggregated over the whole batch.
    """
    if cameras is None:
        cameras = scene.cameras
    cameras = list(cameras)
    if not cameras:
        raise ValueError("render_batch needs at least one camera")

    if covariances is None and len(scene.cloud):
        covariances = scene.cloud.covariances()
    results = [
        render(
            scene,
            camera=camera,
            background=background,
            sh_degree=sh_degree,
            collect_stats=collect_stats,
            backend=backend,
            covariances=covariances,
        )
        for camera in cameras
    ]
    return BatchRenderResult(
        results=results,
        raster_stats=RasterStats.merged(result.raster_stats for result in results),
    )
