"""End-to-end functional 3DGS rendering pipeline.

Chains the three stages (preprocess, sort, rasterize) into a single call and
returns both the rendered image and the per-stage workload statistics that
drive the performance models.  This module is the software "golden" pipeline;
``repro.core`` exposes the same flow with the GauRast hardware model plugged
in for Stage 3.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.gaussians.camera import Camera
from repro.gaussians.gaussian import ProjectedGaussians
from repro.gaussians.projection import PreprocessStats, preprocess
from repro.gaussians.rasterize import RasterStats, rasterize_tiles
from repro.gaussians.scene import GaussianScene
from repro.gaussians.sorting import TileBinning, bin_and_sort
from repro.gaussians.tiles import TileGrid


@dataclass
class RenderResult:
    """Output of a functional 3DGS render.

    Attributes
    ----------
    image:
        ``(height, width, 3)`` RGB image in linear [0, 1+] range.
    projected:
        The 2D Gaussians produced by preprocessing (Stage 1 output).
    binning:
        Tile lists produced by sorting (Stage 2 output).
    preprocess_stats:
        Counters from Stage 1.
    raster_stats:
        Counters from Stage 3.
    """

    image: np.ndarray
    projected: ProjectedGaussians
    binning: TileBinning
    preprocess_stats: PreprocessStats
    raster_stats: RasterStats

    @property
    def num_sort_keys(self) -> int:
        """Number of duplicated (tile, Gaussian) keys handled by Stage 2."""
        return self.binning.num_keys

    @property
    def fragments_evaluated(self) -> int:
        """Gaussian-pixel evaluations performed by Stage 3."""
        return self.raster_stats.fragments_evaluated


def render(
    scene: GaussianScene,
    camera: Optional[Camera] = None,
    background=(0.0, 0.0, 0.0),
    sh_degree: Optional[int] = None,
    collect_stats: bool = True,
) -> RenderResult:
    """Render a scene with the functional three-stage 3DGS pipeline.

    Parameters
    ----------
    scene:
        The scene to render.
    camera:
        Viewpoint; defaults to the scene's primary camera.
    background:
        RGB background colour composited under the splats.
    sh_degree:
        Optional spherical-harmonics degree override.
    collect_stats:
        Whether to collect per-fragment workload statistics (slightly
        slower; required by the performance models).
    """
    if camera is None:
        camera = scene.default_camera

    projected, pre_stats = preprocess(scene.cloud, camera, sh_degree=sh_degree)
    grid = TileGrid(width=camera.width, height=camera.height)
    binning = bin_and_sort(projected, grid)
    image, raster_stats = rasterize_tiles(
        projected, binning, background=background, collect_stats=collect_stats
    )
    return RenderResult(
        image=image,
        projected=projected,
        binning=binning,
        preprocess_stats=pre_stats,
        raster_stats=raster_stats,
    )
