"""Preprocessing stage: project 3D Gaussians to screen-space 2D Gaussians.

This is Step 1 of the 3DGS pipeline (Fig. 3(b) in the paper).  For every
Gaussian that survives frustum culling the stage computes:

* the screen-space centre ``mu`` (perspective projection of the 3D mean),
* the 2x2 screen-space covariance via the EWA splatting approximation
  (``Sigma' = J W Sigma W^T J^T``) and its inverse ("conic"),
* a conservative screen-space radius (3 sigma of the major axis) used for
  tile binning,
* the view-dependent RGB colour from the SH coefficients,
* the view-space depth used by the sorting stage.

The output :class:`~repro.gaussians.gaussian.ProjectedGaussians` carries
exactly the nine floating-point rasterizer inputs listed in Table II.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.gaussians.camera import Camera
from repro.gaussians.culling import frustum_cull_mask
from repro.gaussians.gaussian import GaussianCloud, ProjectedGaussians
from repro.gaussians.sh import evaluate_sh_colors

#: A 2D Gaussian is bounded at three standard deviations for tile binning,
#: matching the reference implementation.
RADIUS_SIGMA = 3.0

#: Small value added to the diagonal of the screen-space covariance to model
#: the low-pass filter that guarantees each splat covers at least ~1 pixel.
COVARIANCE_BLUR = 0.3

#: Minimum determinant below which a projected covariance is considered
#: degenerate and the Gaussian is dropped.
MIN_DETERMINANT = 1e-12


@dataclass
class PreprocessStats:
    """Bookkeeping emitted by the preprocessing stage for profiling."""

    num_input: int
    num_culled: int
    num_projected: int

    @property
    def visible_fraction(self) -> float:
        """Fraction of input Gaussians that survive culling/projection."""
        if self.num_input == 0:
            return 0.0
        return self.num_projected / self.num_input


def project_covariances(
    camera: Camera,
    cam_points: np.ndarray,
    covariances: np.ndarray,
) -> np.ndarray:
    """Project world-space 3x3 covariances to screen-space 2x2 covariances.

    Implements the EWA splatting approximation: the projective transform is
    linearised around each Gaussian centre with its Jacobian ``J`` so that
    ``Sigma' = J W Sigma W^T J^T`` where ``W`` is the camera rotation.

    Parameters
    ----------
    camera:
        Rendering camera.
    cam_points:
        ``(N, 3)`` Gaussian centres in camera space.
    covariances:
        ``(N, 3, 3)`` world-space covariances.

    Returns
    -------
    ``(N, 2, 2)`` screen-space covariances including the pixel blur term.
    """
    cam_points = np.asarray(cam_points, dtype=np.float64)
    covariances = np.asarray(covariances, dtype=np.float64)

    tan_x, tan_y = camera.tan_half_fov
    z = cam_points[:, 2]
    safe_z = np.where(np.abs(z) < 1e-12, 1e-12, z)

    # Clamp x/z and y/z the way the reference implementation does so that
    # Gaussians near the frustum border do not produce exploding Jacobians.
    limit_x = 1.3 * tan_x
    limit_y = 1.3 * tan_y
    tx = np.clip(cam_points[:, 0] / safe_z, -limit_x, limit_x) * safe_z
    ty = np.clip(cam_points[:, 1] / safe_z, -limit_y, limit_y) * safe_z

    n = len(cam_points)
    jacobian = np.zeros((n, 2, 3), dtype=np.float64)
    jacobian[:, 0, 0] = camera.fx / safe_z
    jacobian[:, 0, 2] = -camera.fx * tx / (safe_z * safe_z)
    jacobian[:, 1, 1] = camera.fy / safe_z
    jacobian[:, 1, 2] = -camera.fy * ty / (safe_z * safe_z)

    rotation = camera.world_to_camera[:3, :3]
    transform = jacobian @ rotation  # (N, 2, 3)
    cov2d = transform @ covariances @ np.transpose(transform, (0, 2, 1))

    cov2d[:, 0, 0] += COVARIANCE_BLUR
    cov2d[:, 1, 1] += COVARIANCE_BLUR
    return cov2d


def invert_cov2d(cov2d: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Invert packed 2x2 covariances.

    Returns
    -------
    conics:
        ``(N, 3)`` packed inverses ``(a, b, c)`` of ``[[a, b], [b, c]]``.
    valid:
        ``(N,)`` boolean mask of covariances with a usable determinant.
    """
    a = cov2d[:, 0, 0]
    b = cov2d[:, 0, 1]
    c = cov2d[:, 1, 1]
    det = a * c - b * b
    valid = det > MIN_DETERMINANT
    safe_det = np.where(valid, det, 1.0)
    conics = np.stack([c / safe_det, -b / safe_det, a / safe_det], axis=1)
    return conics, valid


def screen_radius(cov2d: np.ndarray) -> np.ndarray:
    """Conservative screen-space radius (3 sigma of the major eigenvalue)."""
    a = cov2d[:, 0, 0]
    b = cov2d[:, 0, 1]
    c = cov2d[:, 1, 1]
    mid = 0.5 * (a + c)
    det = a * c - b * b
    discriminant = np.sqrt(np.maximum(mid * mid - det, 0.1))
    lambda1 = mid + discriminant
    return np.ceil(RADIUS_SIGMA * np.sqrt(np.maximum(lambda1, 0.0)))


def preprocess(
    cloud: GaussianCloud,
    camera: Camera,
    sh_degree: int | None = None,
    covariances: np.ndarray | None = None,
) -> tuple[ProjectedGaussians, PreprocessStats]:
    """Run the full preprocessing stage.

    Parameters
    ----------
    cloud:
        Trained 3D Gaussian scene.
    camera:
        Rendering viewpoint.
    sh_degree:
        Optional SH degree override (defaults to the cloud's full degree).
    covariances:
        Optional precomputed ``(N, 3, 3)`` world-space covariances of the
        *full* cloud (``cloud.covariances()``).  They are camera-independent,
        so multi-camera callers (:func:`repro.gaussians.pipeline.render_batch`)
        compute them once per scene and pass them here to skip the
        per-viewpoint recomputation.

    Returns
    -------
    projected:
        Screen-space Gaussians for the rasterizer, in input order.
    stats:
        Counters for profiling (inputs, culled, surviving).
    """
    num_input = len(cloud)
    if num_input == 0:
        return ProjectedGaussians.empty(), PreprocessStats(0, 0, 0)

    keep_mask = frustum_cull_mask(camera, cloud.positions)
    kept_indices = np.nonzero(keep_mask)[0]
    num_culled = num_input - len(kept_indices)
    if len(kept_indices) == 0:
        return ProjectedGaussians.empty(), PreprocessStats(num_input, num_culled, 0)

    visible = cloud.subset(kept_indices)
    cam_points = camera.to_camera_space(visible.positions)
    means2d, depths = camera.project(visible.positions)

    if covariances is None:
        world_cov = visible.covariances()
    else:
        if len(covariances) != num_input:
            raise ValueError(
                f"covariances has {len(covariances)} entries but the cloud "
                f"has {num_input}"
            )
        world_cov = covariances[kept_indices]
    cov2d = project_covariances(camera, cam_points, world_cov)
    conics, valid = invert_cov2d(cov2d)
    radii = screen_radius(cov2d)

    directions = visible.positions - camera.camera_center
    colors = evaluate_sh_colors(visible.sh_coeffs, directions, degree=sh_degree)

    # Drop Gaussians whose projected covariance is degenerate or whose
    # footprint misses the image entirely.
    on_screen = (
        (means2d[:, 0] + radii >= 0)
        & (means2d[:, 0] - radii <= camera.width)
        & (means2d[:, 1] + radii >= 0)
        & (means2d[:, 1] - radii <= camera.height)
    )
    final_mask = valid & on_screen & (radii > 0)
    selected = np.nonzero(final_mask)[0]

    projected = ProjectedGaussians(
        means=means2d[selected],
        cov_inverses=conics[selected],
        depths=depths[selected],
        colors=colors[selected],
        opacities=visible.opacities[selected],
        radii=radii[selected],
        source_indices=kept_indices[selected],
    )
    stats = PreprocessStats(
        num_input=num_input,
        num_culled=num_culled,
        num_projected=len(projected),
    )
    return projected, stats
