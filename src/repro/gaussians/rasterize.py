"""Gaussian rasterization stage: front-to-back alpha compositing per tile.

This is Step 3 of the 3DGS pipeline (Fig. 3(d)/(e)) and the operator the
GauRast hardware accelerates.  For every pixel ``P`` of a tile and every
Gaussian ``i`` in the tile's depth-sorted list, the stage evaluates the
Gaussian density

    alpha_{P,i} = o_i * exp(-0.5 * (P - mu_i)^T Sigma_i^{-1} (P - mu_i))

and accumulates the colour

    C_P = sum_i T_{P,i} * alpha_{P,i} * c_i,
    T_{P,i} = prod_{j<i} (1 - alpha_{P,j})

following the exact clamping and early-termination rules of the reference
CUDA rasterizer so the output can be compared bit-for-bit (in FP64) against
the hardware datapath model.

Two interchangeable backends implement the per-tile loop:

* ``"scalar"`` — the original per-Gaussian Python loop
  (:func:`rasterize_tile`), kept as the readable golden model;
* ``"vectorized"`` — a chunked engine (:func:`rasterize_tile_vectorized`)
  that evaluates blocks of Gaussians against all tile pixels at once and
  folds them with sequential ``cumprod``/``add.reduce`` passes, producing
  **bit-identical** FP64 images and identical :class:`RasterStats` while
  amortising the NumPy dispatch overhead over whole blocks.

Both backends are dispatched through :func:`rasterize_tiles` via its
``backend`` parameter; ``tests/test_vectorized_equivalence.py`` pins the
bit-for-bit equivalence.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional, Tuple

import numpy as np

from repro.gaussians.gaussian import ProjectedGaussians
from repro.gaussians.sorting import TileBinning
from repro.gaussians.tiles import TileGrid

#: Contributions with alpha below this threshold are skipped, matching the
#: ``1/255`` cut-off of the reference implementation.
ALPHA_SKIP_THRESHOLD = 1.0 / 255.0

#: Alpha values are clamped to this maximum to keep the transmittance
#: strictly positive.
ALPHA_MAX = 0.99

#: A pixel stops accumulating once its transmittance falls below this value
#: (early termination).
TRANSMITTANCE_EPSILON = 1e-4

#: Rasterization backends selectable through ``rasterize_tiles`` and the
#: rendering pipeline.
BACKENDS = ("scalar", "vectorized")

#: Backend used when callers do not ask for a specific one.  The vectorized
#: engine is bit-identical to the scalar loop, so it is the safe default.
DEFAULT_BACKEND = "vectorized"

#: Number of Gaussians the vectorized backend evaluates per block.  Between
#: blocks the engine re-checks the whole-tile early-termination condition,
#: so the block size bounds how much work can be wasted past the point where
#: every pixel has saturated.
DEFAULT_CHUNK_SIZE = 64


@dataclass
class RasterStats:
    """Workload counters collected while rasterizing a frame.

    These statistics feed the performance and energy models: the number of
    Gaussian-pixel pairs *evaluated* is the work both the CUDA baseline and
    GauRast must perform, while the number of pairs that actually *blend*
    measures how much of that work contributes to the image.
    """

    fragments_evaluated: int = 0
    fragments_blended: int = 0
    tiles_processed: int = 0
    per_tile_gaussians: Dict[int, int] = field(default_factory=dict)
    #: ``(tiles_x, tiles_y)`` of the grid the per-tile counters refer to
    #: (set by :func:`rasterize_tiles`); ``None`` for hand-built stats and
    #: for the non-tiled reference path.
    grid_shape: Optional[Tuple[int, int]] = None

    @property
    def blend_fraction(self) -> float:
        """Fraction of evaluated fragments that passed the alpha threshold."""
        if self.fragments_evaluated == 0:
            return 0.0
        return self.fragments_blended / self.fragments_evaluated

    @classmethod
    def merged(cls, stats: Iterable["RasterStats"]) -> "RasterStats":
        """Aggregate counters over several frames (e.g. a camera batch).

        When every input refers to the same tile grid (or none declares
        one), ``per_tile_gaussians`` is summed per tile id, so for a
        multi-camera batch over one grid it reports the total work each
        tile received.  Across *different* grids a raw tile id means a
        different screen region per camera, so summing by id would
        silently conflate unrelated tiles; instead the merged counters are
        namespaced by grid — keys become ``(tiles_x, tiles_y, tile_id)``
        and the result's ``grid_shape`` is ``None``.  Mixing a known grid
        with per-tile counters of an *unknown* grid cannot be namespaced
        and raises ``ValueError``.
        """
        items = list(stats)
        shapes = {
            item.grid_shape for item in items if item.per_tile_gaussians
        }
        mixed = len(shapes) > 1
        if mixed and None in shapes:
            raise ValueError(
                "cannot merge per-tile counters across different tile "
                "grids when some stats do not declare their grid_shape"
            )
        total = cls()
        if not mixed and shapes:
            (total.grid_shape,) = shapes
        for item in items:
            total.fragments_evaluated += item.fragments_evaluated
            total.fragments_blended += item.fragments_blended
            total.tiles_processed += item.tiles_processed
            for tile_id, count in item.per_tile_gaussians.items():
                key = (
                    item.grid_shape + (tile_id,) if mixed else tile_id
                )
                total.per_tile_gaussians[key] = (
                    total.per_tile_gaussians.get(key, 0) + count
                )
        return total


def gaussian_alpha(
    pixel_centers: np.ndarray,
    mean: np.ndarray,
    conic: np.ndarray,
    opacity: float,
) -> np.ndarray:
    """Evaluate the clamped Gaussian density of one splat at many pixels.

    Parameters
    ----------
    pixel_centers:
        ``(P, 2)`` pixel-centre coordinates.
    mean:
        ``(2,)`` screen-space Gaussian centre.
    conic:
        ``(3,)`` packed inverse covariance ``(a, b, c)``.
    opacity:
        Scalar opacity ``o``.

    Returns
    -------
    ``(P,)`` alpha values, clamped to ``ALPHA_MAX`` and zeroed where the
    exponent would be positive (numerically impossible for a valid conic but
    guarded exactly like the reference implementation).
    """
    delta = pixel_centers - mean
    a, b, c = conic
    power = -0.5 * (a * delta[:, 0] ** 2 + c * delta[:, 1] ** 2) - b * delta[:, 0] * delta[:, 1]
    alpha = np.where(power > 0.0, 0.0, opacity * np.exp(power))
    return np.minimum(alpha, ALPHA_MAX)


def gaussian_alpha_block(
    pixel_centers: np.ndarray,
    means: np.ndarray,
    conics: np.ndarray,
    opacities: np.ndarray,
) -> np.ndarray:
    """Evaluate the clamped densities of a block of splats at many pixels.

    Vectorized counterpart of :func:`gaussian_alpha`: row ``i`` of the result
    is bit-identical to ``gaussian_alpha(pixel_centers, means[i], conics[i],
    opacities[i])`` because every element goes through the same sequence of
    FP64 operations, merely batched.

    Parameters
    ----------
    pixel_centers:
        ``(P, 2)`` pixel-centre coordinates.
    means:
        ``(B, 2)`` screen-space Gaussian centres.
    conics:
        ``(B, 3)`` packed inverse covariances ``(a, b, c)``.
    opacities:
        ``(B,)`` opacities.

    Returns
    -------
    ``(B, P)`` alpha matrix, clamped like :func:`gaussian_alpha`.
    """
    # Keep dx/dy contiguous (B, P) arrays rather than slicing a (B, P, 2)
    # delta tensor: the arithmetic below then runs on unit-stride memory.
    dx = pixel_centers[:, 0] - means[:, 0][:, np.newaxis]
    dy = pixel_centers[:, 1] - means[:, 1][:, np.newaxis]
    a = conics[:, 0][:, np.newaxis]
    b = conics[:, 1][:, np.newaxis]
    c = conics[:, 2][:, np.newaxis]
    power = -0.5 * (a * dx ** 2 + c * dy ** 2) - b * dx * dy
    alpha = np.where(power > 0.0, 0.0, opacities[:, np.newaxis] * np.exp(power))
    return np.minimum(alpha, ALPHA_MAX)


def rasterize_tile(
    projected: ProjectedGaussians,
    gaussian_indices: np.ndarray,
    pixel_centers: np.ndarray,
    background: np.ndarray,
    stats: Optional[RasterStats] = None,
) -> np.ndarray:
    """Rasterize one tile.

    Parameters
    ----------
    projected:
        All projected Gaussians of the frame.
    gaussian_indices:
        Depth-sorted indices of the Gaussians assigned to this tile.
    pixel_centers:
        ``(P, 2)`` pixel-centre coordinates of the tile.
    background:
        ``(3,)`` background colour blended under the remaining transmittance.
    stats:
        Optional workload counter updated in place.

    Returns
    -------
    ``(P, 3)`` RGB colours for the tile's pixels.
    """
    num_pixels = len(pixel_centers)
    color = np.zeros((num_pixels, 3), dtype=np.float64)
    transmittance = np.ones(num_pixels, dtype=np.float64)

    blended = 0
    evaluated = 0
    for index in gaussian_indices:
        active = transmittance >= TRANSMITTANCE_EPSILON
        if not np.any(active):
            break
        evaluated += int(active.sum())

        alpha = gaussian_alpha(
            pixel_centers,
            projected.means[index],
            projected.cov_inverses[index],
            projected.opacities[index],
        )
        contributes = active & (alpha >= ALPHA_SKIP_THRESHOLD)
        if np.any(contributes):
            weight = transmittance * alpha * contributes
            color += weight[:, np.newaxis] * projected.colors[index]
            transmittance = np.where(
                contributes, transmittance * (1.0 - alpha), transmittance
            )
            blended += int(contributes.sum())

    color += transmittance[:, np.newaxis] * background
    if stats is not None:
        stats.fragments_evaluated += evaluated
        stats.fragments_blended += blended
        stats.tiles_processed += 1
    return color


def rasterize_tile_vectorized(
    projected: ProjectedGaussians,
    gaussian_indices: np.ndarray,
    pixel_centers: np.ndarray,
    background: np.ndarray,
    stats: Optional[RasterStats] = None,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
) -> np.ndarray:
    """Rasterize one tile with the chunked vectorized engine.

    Produces output and statistics **bit-identical** to
    :func:`rasterize_tile` while replacing the per-Gaussian Python loop with
    block-level NumPy passes.  Three observations make exact equivalence
    possible:

    * the alpha matrix of a block is elementwise, so batching it changes
      nothing (:func:`gaussian_alpha_block`);
    * the per-pixel transmittance recurrence is a left-to-right product of
      ``(1 - alpha)`` factors (``1.0`` where the alpha threshold skips the
      update), and ``np.cumprod`` along an axis performs exactly that
      sequential fold.  Seeding the fold with the entry transmittance keeps
      the association identical to the scalar loop.  Because transmittance
      is non-increasing, the ``T >= epsilon`` activity test computed from
      the unfrozen cumulative product agrees with the scalar path, and the
      frozen exit value is recovered as the product at the first
      sub-epsilon step;
    * colour accumulation is a left-to-right sum of ``T * alpha * colour``
      terms, and ``np.add.reduce`` along the leading axis performs the same
      sequential fold (terms with zero weight are exact no-ops, matching
      the scalar loop's skip of non-contributing Gaussians).

    Between blocks the engine narrows the pixel set to the columns whose
    transmittance is still above epsilon: terminated pixels can never
    contribute again (transmittance is non-increasing and frozen), so
    dropping their columns is exact and recovers the per-pixel
    early-termination savings of the scalar loop at block granularity.
    Extra in-block evaluations past the scalar loop's break point contribute
    zero to both the image and the counters.
    """
    num_pixels = len(pixel_centers)
    color = np.zeros((num_pixels, 3), dtype=np.float64)
    transmittance = np.ones(num_pixels, dtype=np.float64)
    gaussian_indices = np.asarray(gaussian_indices, dtype=np.int64)
    num_gaussians = len(gaussian_indices)

    if num_gaussians == 0:
        color += transmittance[:, np.newaxis] * background
        if stats is not None:
            stats.tiles_processed += 1
        return color

    # Gather the tile's Gaussian parameters once; chunks below take views.
    means = projected.means[gaussian_indices]
    conics = projected.cov_inverses[gaussian_indices]
    opacities = projected.opacities[gaussian_indices]
    colors = projected.colors[gaussian_indices]

    # Columns (pixels) still accumulating; whole arrays while all are live.
    live = np.arange(num_pixels)
    live_pixels = pixel_centers
    live_transmittance = transmittance
    live_color = color

    blended = 0
    evaluated = 0
    for start in range(0, num_gaussians, chunk_size):
        still_live = live_transmittance >= TRANSMITTANCE_EPSILON
        num_live = int(np.count_nonzero(still_live))
        if num_live == 0:
            break
        if num_live < len(live):
            # Freeze the dropped columns' state before narrowing.
            transmittance[live] = live_transmittance
            color[live] = live_color
            live = live[still_live]
            live_pixels = pixel_centers[live]
            live_transmittance = live_transmittance[still_live]
            live_color = live_color[still_live]

        stop = min(start + chunk_size, num_gaussians)
        block_size = stop - start

        alpha = gaussian_alpha_block(
            live_pixels,
            means[start:stop],
            conics[start:stop],
            opacities[start:stop],
        )
        passes = alpha >= ALPHA_SKIP_THRESHOLD

        # Transmittance before each Gaussian of the block: sequential
        # cumulative product seeded with the entry transmittance (row 0).
        trail = np.empty((block_size + 1, num_live), dtype=np.float64)
        trail[0] = live_transmittance
        trail[1:] = np.where(passes, 1.0 - alpha, 1.0)
        np.cumprod(trail, axis=0, out=trail)
        before = trail[:-1]

        active = before >= TRANSMITTANCE_EPSILON
        contributes = np.logical_and(active, passes)
        evaluated += int(np.count_nonzero(active))
        blended += int(np.count_nonzero(contributes))

        # Sequential colour fold seeded with the entry colour (row 0).
        # Rows whose weights are all exactly zero add nothing (the scalar
        # loop skips them outright), so only contributing rows are folded.
        weight = np.multiply(before, alpha, out=alpha)
        weight *= contributes
        rows = np.nonzero(contributes.any(axis=1))[0]
        if len(rows):
            terms = np.empty((len(rows) + 1, num_live, 3), dtype=np.float64)
            terms[0] = live_color
            np.multiply(
                weight[rows, :, np.newaxis],
                colors[start:stop][rows][:, np.newaxis, :],
                out=terms[1:],
            )
            live_color = np.add.reduce(terms, axis=0)

        # Exit transmittance: the cumulative product freezes at the first
        # sub-epsilon step (early-terminated pixels stop updating).  The
        # product is non-increasing down each column, so only columns whose
        # final value fell below epsilon need the search.
        last = trail[-1]
        cols = np.nonzero(last < TRANSMITTANCE_EPSILON)[0]
        if len(cols):
            first_below = (trail[:, cols] < TRANSMITTANCE_EPSILON).argmax(axis=0)
            last[cols] = trail[first_below, cols]
        live_transmittance = last

    transmittance[live] = live_transmittance
    color[live] = live_color
    color += transmittance[:, np.newaxis] * background
    if stats is not None:
        stats.fragments_evaluated += evaluated
        stats.fragments_blended += blended
        stats.tiles_processed += 1
    return color


_TILE_BACKENDS = {
    "scalar": rasterize_tile,
    "vectorized": rasterize_tile_vectorized,
}


def resolve_backend(backend: Optional[str]) -> str:
    """Validate a backend name, mapping ``None`` to the default."""
    if backend is None:
        return DEFAULT_BACKEND
    if backend not in _TILE_BACKENDS:
        raise ValueError(
            f"unknown rasterization backend {backend!r}; expected one of {BACKENDS}"
        )
    return backend


def rasterize_tiles(
    projected: ProjectedGaussians,
    binning: TileBinning,
    background=(0.0, 0.0, 0.0),
    collect_stats: bool = True,
    backend: Optional[str] = None,
) -> tuple[np.ndarray, RasterStats]:
    """Rasterize a full frame tile by tile.

    Parameters
    ----------
    backend:
        ``"scalar"`` for the per-Gaussian loop, ``"vectorized"`` for the
        chunked block engine (the default).  Both produce bit-identical
        FP64 images and identical statistics.

    Returns
    -------
    image:
        ``(height, width, 3)`` RGB image.
    stats:
        Workload counters (empty if ``collect_stats`` is ``False``).
    """
    rasterize_fn = _TILE_BACKENDS[resolve_backend(backend)]
    grid = binning.grid
    background = np.asarray(background, dtype=np.float64).reshape(3)
    image = np.zeros((grid.height, grid.width, 3), dtype=np.float64)
    stats = RasterStats(grid_shape=(grid.tiles_x, grid.tiles_y))

    # Pixels in tiles with no Gaussians still receive the background colour.
    image[:, :] = background

    for tile_id, gaussian_indices in binning.tile_lists.items():
        x0, y0, x1, y1 = grid.tile_pixel_bounds(tile_id)
        pixel_centers = grid.tile_pixel_centers(tile_id)
        tile_stats = stats if collect_stats else None
        tile_color = rasterize_fn(
            projected, gaussian_indices, pixel_centers, background, tile_stats
        )
        image[y0:y1, x0:x1] = tile_color.reshape(y1 - y0, x1 - x0, 3)
        if collect_stats:
            stats.per_tile_gaussians[tile_id] = len(gaussian_indices)
    return image, stats


def rasterize_reference(
    projected: ProjectedGaussians,
    grid: TileGrid,
    background=(0.0, 0.0, 0.0),
    stats: Optional[RasterStats] = None,
) -> np.ndarray:
    """Rasterize without tiling, evaluating every Gaussian at every pixel.

    This is an intentionally simple O(pixels x Gaussians) implementation used
    only in tests to validate that tile binning does not change the image
    (beyond the conservative-radius cut-off).

    When ``stats`` is given, ``fragments_evaluated`` counts the Gaussian-pixel
    pairs whose pixel had not yet early-terminated (mirroring the per-pixel
    activity gate of the tiled path) and ``fragments_blended`` counts the
    pairs that passed the alpha threshold, so workload counters can be
    compared against :func:`rasterize_tiles`.  ``tiles_processed`` and
    ``per_tile_gaussians`` are left untouched: this path has no tiling, so
    tile-level counters are meaningless here.  Note that, unlike the tiled
    path, every Gaussian is considered at every pixel — there is no
    conservative-radius cut-off and no whole-tile break — so evaluated
    counts are an upper bound on (not a copy of) the tiled workload.
    """
    background = np.asarray(background, dtype=np.float64).reshape(3)
    xs = np.arange(grid.width) + 0.5
    ys = np.arange(grid.height) + 0.5
    grid_x, grid_y = np.meshgrid(xs, ys)
    pixels = np.stack([grid_x.ravel(), grid_y.ravel()], axis=1)

    order = np.argsort(projected.depths, kind="stable")
    color = np.zeros((len(pixels), 3), dtype=np.float64)
    transmittance = np.ones(len(pixels), dtype=np.float64)
    evaluated = 0
    blended = 0
    for index in order:
        alpha = gaussian_alpha(
            pixels,
            projected.means[index],
            projected.cov_inverses[index],
            projected.opacities[index],
        )
        active = transmittance >= TRANSMITTANCE_EPSILON
        contributes = active & (alpha >= ALPHA_SKIP_THRESHOLD)
        evaluated += int(active.sum())
        blended += int(contributes.sum())
        weight = transmittance * alpha * contributes
        color += weight[:, np.newaxis] * projected.colors[index]
        transmittance = np.where(
            contributes, transmittance * (1.0 - alpha), transmittance
        )
    color += transmittance[:, np.newaxis] * background
    if stats is not None:
        stats.fragments_evaluated += evaluated
        stats.fragments_blended += blended
    return color.reshape(grid.height, grid.width, 3)
