"""Gaussian rasterization stage: front-to-back alpha compositing per tile.

This is Step 3 of the 3DGS pipeline (Fig. 3(d)/(e)) and the operator the
GauRast hardware accelerates.  For every pixel ``P`` of a tile and every
Gaussian ``i`` in the tile's depth-sorted list, the stage evaluates the
Gaussian density

    alpha_{P,i} = o_i * exp(-0.5 * (P - mu_i)^T Sigma_i^{-1} (P - mu_i))

and accumulates the colour

    C_P = sum_i T_{P,i} * alpha_{P,i} * c_i,
    T_{P,i} = prod_{j<i} (1 - alpha_{P,j})

following the exact clamping and early-termination rules of the reference
CUDA rasterizer so the output can be compared bit-for-bit (in FP64) against
the hardware datapath model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro.gaussians.gaussian import ProjectedGaussians
from repro.gaussians.sorting import TileBinning
from repro.gaussians.tiles import TileGrid

#: Contributions with alpha below this threshold are skipped, matching the
#: ``1/255`` cut-off of the reference implementation.
ALPHA_SKIP_THRESHOLD = 1.0 / 255.0

#: Alpha values are clamped to this maximum to keep the transmittance
#: strictly positive.
ALPHA_MAX = 0.99

#: A pixel stops accumulating once its transmittance falls below this value
#: (early termination).
TRANSMITTANCE_EPSILON = 1e-4


@dataclass
class RasterStats:
    """Workload counters collected while rasterizing a frame.

    These statistics feed the performance and energy models: the number of
    Gaussian-pixel pairs *evaluated* is the work both the CUDA baseline and
    GauRast must perform, while the number of pairs that actually *blend*
    measures how much of that work contributes to the image.
    """

    fragments_evaluated: int = 0
    fragments_blended: int = 0
    tiles_processed: int = 0
    per_tile_gaussians: Dict[int, int] = field(default_factory=dict)

    @property
    def blend_fraction(self) -> float:
        """Fraction of evaluated fragments that passed the alpha threshold."""
        if self.fragments_evaluated == 0:
            return 0.0
        return self.fragments_blended / self.fragments_evaluated


def gaussian_alpha(
    pixel_centers: np.ndarray,
    mean: np.ndarray,
    conic: np.ndarray,
    opacity: float,
) -> np.ndarray:
    """Evaluate the clamped Gaussian density of one splat at many pixels.

    Parameters
    ----------
    pixel_centers:
        ``(P, 2)`` pixel-centre coordinates.
    mean:
        ``(2,)`` screen-space Gaussian centre.
    conic:
        ``(3,)`` packed inverse covariance ``(a, b, c)``.
    opacity:
        Scalar opacity ``o``.

    Returns
    -------
    ``(P,)`` alpha values, clamped to ``ALPHA_MAX`` and zeroed where the
    exponent would be positive (numerically impossible for a valid conic but
    guarded exactly like the reference implementation).
    """
    delta = pixel_centers - mean
    a, b, c = conic
    power = -0.5 * (a * delta[:, 0] ** 2 + c * delta[:, 1] ** 2) - b * delta[:, 0] * delta[:, 1]
    alpha = np.where(power > 0.0, 0.0, opacity * np.exp(power))
    return np.minimum(alpha, ALPHA_MAX)


def rasterize_tile(
    projected: ProjectedGaussians,
    gaussian_indices: np.ndarray,
    pixel_centers: np.ndarray,
    background: np.ndarray,
    stats: Optional[RasterStats] = None,
) -> np.ndarray:
    """Rasterize one tile.

    Parameters
    ----------
    projected:
        All projected Gaussians of the frame.
    gaussian_indices:
        Depth-sorted indices of the Gaussians assigned to this tile.
    pixel_centers:
        ``(P, 2)`` pixel-centre coordinates of the tile.
    background:
        ``(3,)`` background colour blended under the remaining transmittance.
    stats:
        Optional workload counter updated in place.

    Returns
    -------
    ``(P, 3)`` RGB colours for the tile's pixels.
    """
    num_pixels = len(pixel_centers)
    color = np.zeros((num_pixels, 3), dtype=np.float64)
    transmittance = np.ones(num_pixels, dtype=np.float64)

    blended = 0
    evaluated = 0
    for index in gaussian_indices:
        active = transmittance >= TRANSMITTANCE_EPSILON
        if not np.any(active):
            break
        evaluated += int(active.sum())

        alpha = gaussian_alpha(
            pixel_centers,
            projected.means[index],
            projected.cov_inverses[index],
            projected.opacities[index],
        )
        contributes = active & (alpha >= ALPHA_SKIP_THRESHOLD)
        if np.any(contributes):
            weight = transmittance * alpha * contributes
            color += weight[:, np.newaxis] * projected.colors[index]
            transmittance = np.where(
                contributes, transmittance * (1.0 - alpha), transmittance
            )
            blended += int(contributes.sum())

    color += transmittance[:, np.newaxis] * background
    if stats is not None:
        stats.fragments_evaluated += evaluated
        stats.fragments_blended += blended
        stats.tiles_processed += 1
    return color


def rasterize_tiles(
    projected: ProjectedGaussians,
    binning: TileBinning,
    background=(0.0, 0.0, 0.0),
    collect_stats: bool = True,
) -> tuple[np.ndarray, RasterStats]:
    """Rasterize a full frame tile by tile.

    Returns
    -------
    image:
        ``(height, width, 3)`` RGB image.
    stats:
        Workload counters (empty if ``collect_stats`` is ``False``).
    """
    grid = binning.grid
    background = np.asarray(background, dtype=np.float64).reshape(3)
    image = np.zeros((grid.height, grid.width, 3), dtype=np.float64)
    stats = RasterStats()

    # Pixels in tiles with no Gaussians still receive the background colour.
    image[:, :] = background

    for tile_id, gaussian_indices in binning.tile_lists.items():
        x0, y0, x1, y1 = grid.tile_pixel_bounds(tile_id)
        pixel_centers = grid.tile_pixel_centers(tile_id)
        tile_stats = stats if collect_stats else None
        tile_color = rasterize_tile(
            projected, gaussian_indices, pixel_centers, background, tile_stats
        )
        image[y0:y1, x0:x1] = tile_color.reshape(y1 - y0, x1 - x0, 3)
        if collect_stats:
            stats.per_tile_gaussians[tile_id] = len(gaussian_indices)
    return image, stats


def rasterize_reference(
    projected: ProjectedGaussians,
    grid: TileGrid,
    background=(0.0, 0.0, 0.0),
) -> np.ndarray:
    """Rasterize without tiling, evaluating every Gaussian at every pixel.

    This is an intentionally simple O(pixels x Gaussians) implementation used
    only in tests to validate that tile binning does not change the image
    (beyond the conservative-radius cut-off).
    """
    background = np.asarray(background, dtype=np.float64).reshape(3)
    xs = np.arange(grid.width) + 0.5
    ys = np.arange(grid.height) + 0.5
    grid_x, grid_y = np.meshgrid(xs, ys)
    pixels = np.stack([grid_x.ravel(), grid_y.ravel()], axis=1)

    order = np.argsort(projected.depths, kind="stable")
    color = np.zeros((len(pixels), 3), dtype=np.float64)
    transmittance = np.ones(len(pixels), dtype=np.float64)
    for index in order:
        alpha = gaussian_alpha(
            pixels,
            projected.means[index],
            projected.cov_inverses[index],
            projected.opacities[index],
        )
        active = transmittance >= TRANSMITTANCE_EPSILON
        contributes = active & (alpha >= ALPHA_SKIP_THRESHOLD)
        weight = transmittance * alpha * contributes
        color += weight[:, np.newaxis] * projected.colors[index]
        transmittance = np.where(
            contributes, transmittance * (1.0 - alpha), transmittance
        )
    color += transmittance[:, np.newaxis] * background
    return color.reshape(grid.height, grid.width, 3)
