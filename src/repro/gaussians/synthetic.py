"""Procedural synthetic Gaussian scenes standing in for NeRF-360 checkpoints.

The trained NeRF-360 checkpoints used by the paper are not redistributable,
so this module synthesises Gaussian clouds whose *workload characteristics*
(number of Gaussians, spatial extent, screen-space footprint distribution and
per-tile depth complexity) can be dialled to match a scene descriptor from
:mod:`repro.datasets.nerf360`, at a configurable scale factor so that the
functional pipeline and the cycle-level hardware simulator remain tractable
in pure Python.

The generator places Gaussian clusters on a set of procedural "objects"
(ellipsoidal blobs and a ground plane) inside a bounded volume in front of
the camera, which produces the long-tailed per-tile depth-complexity
distribution characteristic of real 3DGS scenes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.datasets.nerf360 import SceneDescriptor, get_scene
from repro.gaussians.camera import Camera, look_at
from repro.gaussians.gaussian import GaussianCloud
from repro.gaussians.scene import GaussianScene
from repro.gaussians.sh import num_sh_coeffs, rgb_to_sh_dc


@dataclass(frozen=True)
class SyntheticConfig:
    """Parameters of the synthetic scene generator.

    Attributes
    ----------
    num_gaussians:
        Number of Gaussians to generate.
    width, height:
        Rendering resolution.
    num_clusters:
        Number of ellipsoidal object clusters.
    ground_fraction:
        Fraction of Gaussians placed on the ground plane instead of clusters.
    scale_range:
        ``(min, max)`` world-space standard deviations of the Gaussians.
    opacity_range:
        ``(min, max)`` opacities.
    sh_degree:
        Spherical-harmonics degree of the generated colours.
    extent:
        Half-width of the scene volume in world units.
    seed:
        RNG seed for reproducibility.
    """

    num_gaussians: int = 2000
    width: int = 160
    height: int = 120
    num_clusters: int = 6
    ground_fraction: float = 0.3
    scale_range: tuple = (0.02, 0.12)
    opacity_range: tuple = (0.3, 0.95)
    sh_degree: int = 1
    extent: float = 4.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_gaussians <= 0:
            raise ValueError("num_gaussians must be positive")
        if not 0.0 <= self.ground_fraction <= 1.0:
            raise ValueError("ground_fraction must be in [0, 1]")
        if self.scale_range[0] <= 0 or self.scale_range[1] < self.scale_range[0]:
            raise ValueError("invalid scale_range")
        if self.sh_degree not in (0, 1, 2, 3):
            raise ValueError("sh_degree must be 0..3")


def _random_unit_quaternions(rng: np.random.Generator, count: int) -> np.ndarray:
    q = rng.normal(size=(count, 4))
    return q / np.linalg.norm(q, axis=1, keepdims=True)


def make_gaussian_cloud(config: SyntheticConfig) -> GaussianCloud:
    """Generate a synthetic Gaussian cloud according to ``config``."""
    rng = np.random.default_rng(config.seed)
    n = config.num_gaussians
    extent = config.extent

    num_ground = int(round(n * config.ground_fraction))
    num_cluster = n - num_ground

    positions = np.empty((n, 3), dtype=np.float64)

    # Object clusters: anisotropic blobs scattered in the front half-space.
    if num_cluster > 0:
        centers = rng.uniform(
            low=[-extent * 0.6, -extent * 0.4, extent * 0.8],
            high=[extent * 0.6, extent * 0.4, extent * 2.2],
            size=(config.num_clusters, 3),
        )
        sizes = rng.uniform(0.15, 0.6, size=(config.num_clusters, 3)) * extent * 0.3
        assignment = rng.integers(0, config.num_clusters, size=num_cluster)
        offsets = rng.normal(size=(num_cluster, 3)) * sizes[assignment]
        positions[:num_cluster] = centers[assignment] + offsets

    # Ground plane: thin slab below the clusters.
    if num_ground > 0:
        ground = np.empty((num_ground, 3))
        ground[:, 0] = rng.uniform(-extent, extent, size=num_ground)
        ground[:, 1] = rng.uniform(extent * 0.35, extent * 0.45, size=num_ground)
        ground[:, 2] = rng.uniform(extent * 0.6, extent * 2.4, size=num_ground)
        positions[num_cluster:] = ground

    scales = rng.uniform(*config.scale_range, size=(n, 3)) * extent
    # Make splats anisotropic the way trained scenes are (one thin axis).
    thin_axis = rng.integers(0, 3, size=n)
    scales[np.arange(n), thin_axis] *= rng.uniform(0.15, 0.5, size=n)

    rotations = _random_unit_quaternions(rng, n)
    opacities = rng.uniform(*config.opacity_range, size=n)

    coeff_count = num_sh_coeffs(config.sh_degree)
    base_colors = rng.uniform(0.05, 0.95, size=(n, 3))
    sh_coeffs = np.zeros((n, coeff_count, 3), dtype=np.float64)
    sh_coeffs[:, 0, :] = rgb_to_sh_dc(base_colors)
    if coeff_count > 1:
        sh_coeffs[:, 1:, :] = rng.normal(scale=0.08, size=(n, coeff_count - 1, 3))

    return GaussianCloud(
        positions=positions,
        scales=scales,
        rotations=rotations,
        opacities=opacities,
        sh_coeffs=sh_coeffs,
    )


def default_camera(config: SyntheticConfig) -> Camera:
    """Camera looking into the synthetic scene volume."""
    world_to_camera = look_at(
        eye=(0.0, -config.extent * 0.15, 0.0),
        target=(0.0, 0.0, config.extent * 1.5),
    )
    focal = 0.9 * config.width
    return Camera(
        width=config.width,
        height=config.height,
        fx=focal,
        fy=focal,
        world_to_camera=world_to_camera,
    )


def orbit_cameras(
    config: SyntheticConfig,
    count: int,
    radius_factor: float = 0.4,
) -> list:
    """Cameras on a circular orbit around the synthetic scene volume.

    Produces ``count`` evaluation viewpoints that all look at the centre of
    the scene volume from evenly spaced azimuths — the multi-camera workload
    batched rendering (:func:`repro.gaussians.pipeline.render_batch`) is
    designed for.  Azimuth zero is skipped: that pose coincides with
    :func:`default_camera`, and callers combining both (notably
    :func:`make_synthetic_scene`) must not render the same viewpoint twice.
    """
    if count <= 0:
        raise ValueError("count must be positive")
    cameras = []
    radius = config.extent * radius_factor
    target = (0.0, 0.0, config.extent * 1.5)
    focal = 0.9 * config.width
    for index in range(count):
        angle = 2.0 * np.pi * (index + 1) / (count + 1)
        eye = (
            radius * np.sin(angle),
            -config.extent * 0.15,
            radius * (1.0 - np.cos(angle)) * 0.5,
        )
        cameras.append(
            Camera(
                width=config.width,
                height=config.height,
                fx=focal,
                fy=focal,
                world_to_camera=look_at(eye=eye, target=target),
            )
        )
    return cameras


def make_synthetic_scene(
    config: Optional[SyntheticConfig] = None,
    name: str = "synthetic",
    descriptor_name: Optional[str] = None,
    num_cameras: int = 1,
) -> GaussianScene:
    """Build a complete synthetic scene (cloud plus cameras).

    ``num_cameras`` > 1 adds orbit viewpoints (:func:`orbit_cameras`) after
    the canonical default camera, giving batched rendering a multi-camera
    workload out of the box.
    """
    config = config or SyntheticConfig()
    cloud = make_gaussian_cloud(config)
    cameras = [default_camera(config)]
    if num_cameras > 1:
        cameras.extend(orbit_cameras(config, num_cameras - 1))
    return GaussianScene(
        cloud=cloud,
        cameras=cameras,
        name=name,
        descriptor_name=descriptor_name,
    )


def scene_from_descriptor(
    descriptor_or_name,
    scale: float = 0.001,
    seed: int = 0,
    num_cameras: int = 1,
) -> GaussianScene:
    """Synthesise a scaled-down stand-in for a NeRF-360 scene.

    Parameters
    ----------
    descriptor_or_name:
        A :class:`~repro.datasets.nerf360.SceneDescriptor` or scene name.
    scale:
        Linear scale factor applied to the resolution and to the Gaussian
        count (quadratically for the latter follows the resolution, linearly
        for workload realism).  The default keeps the functional pipeline
        fast enough for tests while preserving the per-tile depth-complexity
        character of the full-size scene.
    seed:
        RNG seed.
    num_cameras:
        Number of evaluation viewpoints (orbit cameras beyond the first);
        see :func:`make_synthetic_scene`.
    """
    descriptor: SceneDescriptor
    if isinstance(descriptor_or_name, SceneDescriptor):
        descriptor = descriptor_or_name
    else:
        descriptor = get_scene(str(descriptor_or_name))
    if not 0 < scale <= 1:
        raise ValueError("scale must be in (0, 1]")

    width = max(32, int(round(descriptor.width * np.sqrt(scale))))
    height = max(32, int(round(descriptor.height * np.sqrt(scale))))
    num_gaussians = max(200, int(round(descriptor.original.num_gaussians * scale)))

    config = SyntheticConfig(
        num_gaussians=num_gaussians,
        width=width,
        height=height,
        num_clusters=8 if descriptor.category == "outdoor" else 5,
        ground_fraction=0.35 if descriptor.category == "outdoor" else 0.15,
        seed=seed,
    )
    return make_synthetic_scene(
        config,
        name=f"{descriptor.name}-synthetic",
        descriptor_name=descriptor.name,
        num_cameras=num_cameras,
    )
