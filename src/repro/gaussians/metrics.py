"""Image-quality metrics used to validate rendering equivalence.

Section V-A of the paper validates the hardware implementation by checking
that its rendered output "matches perfectly without any loss in rendering
quality" against the software renderers.  This module provides the standard
metrics for that comparison — MSE, PSNR and a single-scale SSIM — plus a
small report container used by the validation harness and the quality
experiment (which also quantifies the FP16 variant's quality impact).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


def mse(reference: np.ndarray, test: np.ndarray) -> float:
    """Mean squared error between two images of identical shape."""
    reference = np.asarray(reference, dtype=np.float64)
    test = np.asarray(test, dtype=np.float64)
    if reference.shape != test.shape:
        raise ValueError(
            f"image shapes differ: {reference.shape} vs {test.shape}"
        )
    if reference.size == 0:
        raise ValueError("images must be non-empty")
    return float(np.mean((reference - test) ** 2))


def psnr(reference: np.ndarray, test: np.ndarray, data_range: float = 1.0) -> float:
    """Peak signal-to-noise ratio in dB (``inf`` for identical images)."""
    if data_range <= 0:
        raise ValueError("data_range must be positive")
    error = mse(reference, test)
    if error == 0.0:
        return float("inf")
    return float(10.0 * np.log10((data_range * data_range) / error))


def _box_filter(image: np.ndarray, radius: int) -> np.ndarray:
    """Mean filter with a square window, implemented with cumulative sums."""
    if radius == 0:
        return image
    padded = np.pad(image, ((radius, radius), (radius, radius)), mode="reflect")
    cumulative = np.cumsum(np.cumsum(padded, axis=0), axis=1)
    cumulative = np.pad(cumulative, ((1, 0), (1, 0)))
    size = 2 * radius + 1
    height, width = image.shape
    total = (
        cumulative[size : size + height, size : size + width]
        - cumulative[:height, size : size + width]
        - cumulative[size : size + height, :width]
        + cumulative[:height, :width]
    )
    return total / (size * size)


def ssim(
    reference: np.ndarray,
    test: np.ndarray,
    data_range: float = 1.0,
    window_radius: int = 3,
) -> float:
    """Single-scale structural similarity index (mean over pixels and channels).

    Uses a uniform (box) window rather than the Gaussian window of the
    original SSIM definition, which is accurate enough for regression
    checking of near-identical renders and keeps the implementation
    dependency-free.
    """
    reference = np.asarray(reference, dtype=np.float64)
    test = np.asarray(test, dtype=np.float64)
    if reference.shape != test.shape:
        raise ValueError("image shapes differ")
    if reference.ndim == 2:
        reference = reference[:, :, np.newaxis]
        test = test[:, :, np.newaxis]
    if data_range <= 0:
        raise ValueError("data_range must be positive")

    c1 = (0.01 * data_range) ** 2
    c2 = (0.03 * data_range) ** 2
    values = []
    for channel in range(reference.shape[2]):
        x = reference[:, :, channel]
        y = test[:, :, channel]
        mu_x = _box_filter(x, window_radius)
        mu_y = _box_filter(y, window_radius)
        sigma_x = _box_filter(x * x, window_radius) - mu_x * mu_x
        sigma_y = _box_filter(y * y, window_radius) - mu_y * mu_y
        sigma_xy = _box_filter(x * y, window_radius) - mu_x * mu_y
        numerator = (2 * mu_x * mu_y + c1) * (2 * sigma_xy + c2)
        denominator = (mu_x ** 2 + mu_y ** 2 + c1) * (sigma_x + sigma_y + c2)
        values.append(np.mean(numerator / denominator))
    return float(np.mean(values))


@dataclass(frozen=True)
class ImageComparison:
    """Quality comparison of a test image against a reference."""

    mse: float
    psnr_db: float
    ssim: float
    max_abs_error: float

    @property
    def is_lossless(self) -> bool:
        """Whether the two images are numerically indistinguishable."""
        return self.max_abs_error < 1e-6

    def meets(self, min_psnr_db: float = 40.0, min_ssim: float = 0.99) -> bool:
        """Whether the comparison clears the given quality thresholds."""
        return self.psnr_db >= min_psnr_db and self.ssim >= min_ssim


def compare_images(reference: np.ndarray, test: np.ndarray) -> ImageComparison:
    """Compute the full quality comparison between two images."""
    reference = np.asarray(reference, dtype=np.float64)
    test = np.asarray(test, dtype=np.float64)
    return ImageComparison(
        mse=mse(reference, test),
        psnr_db=psnr(reference, test),
        ssim=ssim(reference, test),
        max_abs_error=float(np.max(np.abs(reference - test))) if reference.size else 0.0,
    )
