"""Sorting stage: tile binning and per-tile depth ordering.

This is Step 2 of the 3DGS pipeline (Fig. 3(c)).  Each projected Gaussian is
duplicated once per screen tile its footprint overlaps, producing a list of
(tile, depth, gaussian) keys; the keys are then sorted so that every tile
sees its Gaussians in front-to-back depth order.  The resulting per-tile
lists are the work units consumed both by the functional rasterizer and by
the GauRast hardware model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.gaussians.gaussian import ProjectedGaussians
from repro.gaussians.tiles import TileGrid


@dataclass
class TileBinning:
    """Result of the sorting stage.

    Attributes
    ----------
    grid:
        The tile grid the binning was performed against.
    tile_lists:
        Mapping from tile id to an integer array of indices into the
        projected-Gaussian arrays, sorted front to back (ascending depth).
        Tiles with no Gaussians are omitted.
    num_keys:
        Total number of duplicated (tile, Gaussian) keys; this is the sort
        workload of the baseline and the per-tile primitive count of the
        hardware model.
    """

    grid: TileGrid
    tile_lists: Dict[int, np.ndarray]
    num_keys: int

    def __repr__(self) -> str:
        """Summary repr; the per-tile index arrays stay out of logs."""
        return (
            f"{type(self).__name__}(num_occupied_tiles="
            f"{self.num_occupied_tiles}, num_keys={self.num_keys})"
        )

    @property
    def num_occupied_tiles(self) -> int:
        """Number of tiles containing at least one Gaussian."""
        return len(self.tile_lists)

    @property
    def max_tile_depth(self) -> int:
        """Largest per-tile Gaussian count (depth complexity)."""
        if not self.tile_lists:
            return 0
        return max(len(v) for v in self.tile_lists.values())

    @property
    def mean_gaussians_per_tile(self) -> float:
        """Average number of Gaussians per tile across the whole grid."""
        if self.grid.num_tiles == 0:
            return 0.0
        return self.num_keys / self.grid.num_tiles

    def gaussians_for_tile(self, tile_id: int) -> np.ndarray:
        """Sorted Gaussian indices for ``tile_id`` (empty if none)."""
        return self.tile_lists.get(tile_id, np.empty(0, dtype=np.int64))


def duplicate_keys(
    projected: ProjectedGaussians, grid: TileGrid
) -> tuple[np.ndarray, np.ndarray]:
    """Duplicate each Gaussian into every tile its footprint overlaps.

    Returns
    -------
    tile_ids:
        ``(K,)`` tile id of each duplicated key.
    gaussian_ids:
        ``(K,)`` index of the source Gaussian for each key.
    """
    if len(projected) == 0:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)

    ranges = grid.tile_range_for_bbox(projected.means, projected.radii)
    counts = (ranges[:, 2] - ranges[:, 0]) * (ranges[:, 3] - ranges[:, 1])
    counts = np.maximum(counts, 0)
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)

    tile_ids = np.empty(total, dtype=np.int64)
    gaussian_ids = np.empty(total, dtype=np.int64)
    cursor = 0
    for gaussian_id, (tx0, ty0, tx1, ty1) in enumerate(ranges):
        if tx1 <= tx0 or ty1 <= ty0:
            continue
        tiles_x = np.arange(tx0, tx1)
        tiles_y = np.arange(ty0, ty1)
        tiles = (tiles_y[:, np.newaxis] * grid.tiles_x + tiles_x).ravel()
        count = len(tiles)
        tile_ids[cursor : cursor + count] = tiles
        gaussian_ids[cursor : cursor + count] = gaussian_id
        cursor += count
    return tile_ids[:cursor], gaussian_ids[:cursor]


def bin_and_sort(projected: ProjectedGaussians, grid: TileGrid) -> TileBinning:
    """Run the full sorting stage.

    The duplicated keys are sorted by (tile, depth) using a stable sort,
    mirroring the 64-bit radix sort of the reference implementation where the
    tile id occupies the high bits and the depth the low bits.
    """
    tile_ids, gaussian_ids = duplicate_keys(projected, grid)
    if len(tile_ids) == 0:
        return TileBinning(grid=grid, tile_lists={}, num_keys=0)

    depths = projected.depths[gaussian_ids]
    # Sort by depth first, then stably by tile id: equivalent to sorting the
    # combined (tile, depth) key.
    depth_order = np.argsort(depths, kind="stable")
    tile_order = np.argsort(tile_ids[depth_order], kind="stable")
    order = depth_order[tile_order]

    sorted_tiles = tile_ids[order]
    sorted_gaussians = gaussian_ids[order]

    tile_lists: Dict[int, np.ndarray] = {}
    boundaries = np.nonzero(np.diff(sorted_tiles))[0] + 1
    starts = np.concatenate([[0], boundaries])
    ends = np.concatenate([boundaries, [len(sorted_tiles)]])
    for start, end in zip(starts, ends):
        tile_lists[int(sorted_tiles[start])] = sorted_gaussians[start:end]

    return TileBinning(grid=grid, tile_lists=tile_lists, num_keys=len(tile_ids))


def tile_depth_histogram(binning: TileBinning) -> List[int]:
    """Per-tile Gaussian counts for every tile in the grid (including empty).

    Useful for load-balance analysis of the hardware model's dispatcher.
    """
    histogram = [0] * binning.grid.num_tiles
    for tile_id, gaussians in binning.tile_lists.items():
        histogram[tile_id] = len(gaussians)
    return histogram
