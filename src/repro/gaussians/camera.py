"""Pinhole camera model used by both rendering pipelines.

The camera carries the intrinsics (focal lengths, principal point, image
size) and the world-to-camera rigid transform.  It is shared by the Gaussian
pipeline (projection of Gaussian centres and covariances) and the triangle
pipeline (vertex transformation).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

import numpy as np


@dataclass
class Camera:
    """A pinhole camera.

    Attributes
    ----------
    width, height:
        Image resolution in pixels.
    fx, fy:
        Focal lengths in pixels.
    cx, cy:
        Principal point in pixels.  Defaults to the image centre.
    world_to_camera:
        ``(4, 4)`` rigid transform mapping world-space points to camera
        space.  Camera space follows the usual graphics convention: +x right,
        +y down, +z forward (points in front of the camera have positive z).
    znear, zfar:
        Near and far clipping planes.
    """

    width: int
    height: int
    fx: float
    fy: float
    cx: float = None  # type: ignore[assignment]
    cy: float = None  # type: ignore[assignment]
    world_to_camera: np.ndarray = field(
        default_factory=lambda: np.eye(4), repr=False
    )
    znear: float = 0.05
    zfar: float = 1000.0

    def __post_init__(self) -> None:
        if self.width <= 0 or self.height <= 0:
            raise ValueError("image size must be positive")
        if self.fx <= 0 or self.fy <= 0:
            raise ValueError("focal lengths must be positive")
        if self.cx is None:
            self.cx = self.width / 2.0
        if self.cy is None:
            self.cy = self.height / 2.0
        self.world_to_camera = np.asarray(self.world_to_camera, dtype=np.float64)
        if self.world_to_camera.shape != (4, 4):
            raise ValueError("world_to_camera must be a 4x4 matrix")
        if not 0 < self.znear < self.zfar:
            raise ValueError("require 0 < znear < zfar")

    # ------------------------------------------------------------------ #
    # Derived quantities
    # ------------------------------------------------------------------ #
    @property
    def resolution(self) -> Tuple[int, int]:
        """Image resolution as ``(width, height)``."""
        return self.width, self.height

    @property
    def camera_center(self) -> np.ndarray:
        """Camera position in world space."""
        rotation = self.world_to_camera[:3, :3]
        translation = self.world_to_camera[:3, 3]
        return -rotation.T @ translation

    @property
    def tan_half_fov(self) -> Tuple[float, float]:
        """Tangents of the half field-of-view along x and y.

        The frustum of a camera with an off-centre principal point is
        asymmetric: along x it spans ``[-cx / fx, (width - cx) / fx]`` in
        ``x/z``.  Frustum culling and the EWA Jacobian clamp use a symmetric
        bound, so the wider of the two sides (``max(cx, width - cx) / fx``)
        is returned; anything narrower would cull Gaussians that project
        inside the image.  For a centred principal point this reduces to the
        familiar ``width / (2 fx)``.
        """
        tan_x = max(self.cx, self.width - self.cx) / self.fx
        tan_y = max(self.cy, self.height - self.cy) / self.fy
        return tan_x, tan_y

    # ------------------------------------------------------------------ #
    # Transformations
    # ------------------------------------------------------------------ #
    def to_camera_space(self, points: np.ndarray) -> np.ndarray:
        """Transform ``(N, 3)`` world-space points into camera space."""
        points = np.asarray(points, dtype=np.float64)
        if points.ndim == 1:
            points = points[np.newaxis, :]
        rotation = self.world_to_camera[:3, :3]
        translation = self.world_to_camera[:3, 3]
        return points @ rotation.T + translation

    def project(self, points: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Project world-space points to pixel coordinates.

        Returns
        -------
        pixels:
            ``(N, 2)`` pixel coordinates.
        depths:
            ``(N,)`` camera-space depths (positive in front of the camera).
        """
        cam = self.to_camera_space(points)
        depths = cam[:, 2]
        safe_z = np.where(np.abs(depths) < 1e-12, 1e-12, depths)
        px = self.fx * cam[:, 0] / safe_z + self.cx
        py = self.fy * cam[:, 1] / safe_z + self.cy
        return np.stack([px, py], axis=1), depths

    def projection_matrix(self) -> np.ndarray:
        """Return the OpenGL-style 4x4 perspective projection matrix.

        Uses the symmetric on-axis frustum ``width / (2 fx)`` — the matrix
        describes the image extent, not the conservative culling bound of
        :attr:`tan_half_fov` (the two coincide for centred principal points).
        """
        znear, zfar = self.znear, self.zfar
        tan_x = self.width / (2.0 * self.fx)
        tan_y = self.height / (2.0 * self.fy)
        top = tan_y * znear
        right = tan_x * znear

        matrix = np.zeros((4, 4), dtype=np.float64)
        matrix[0, 0] = znear / right
        matrix[1, 1] = znear / top
        matrix[2, 2] = (zfar + znear) / (zfar - znear)
        matrix[2, 3] = -2.0 * zfar * znear / (zfar - znear)
        matrix[3, 2] = 1.0
        return matrix

    def full_projection(self) -> np.ndarray:
        """World-to-clip transform (projection @ world_to_camera)."""
        return self.projection_matrix() @ self.world_to_camera


def look_at(
    eye,
    target,
    up=(0.0, 1.0, 0.0),
) -> np.ndarray:
    """Build a world-to-camera matrix for a camera at ``eye`` looking at ``target``.

    The returned matrix follows the +z-forward convention used by
    :class:`Camera`.
    """
    eye = np.asarray(eye, dtype=np.float64)
    target = np.asarray(target, dtype=np.float64)
    up = np.asarray(up, dtype=np.float64)

    forward = target - eye
    norm = np.linalg.norm(forward)
    if norm < 1e-12:
        raise ValueError("eye and target must not coincide")
    forward = forward / norm

    right = np.cross(forward, up)
    right_norm = np.linalg.norm(right)
    if right_norm < 1e-12:
        raise ValueError("up vector is parallel to the viewing direction")
    right = right / right_norm
    true_up = np.cross(forward, right)

    rotation = np.stack([right, true_up, forward], axis=0)
    matrix = np.eye(4)
    matrix[:3, :3] = rotation
    matrix[:3, 3] = -rotation @ eye
    return matrix
