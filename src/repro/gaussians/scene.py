"""Scene container bundling a Gaussian cloud with rendering cameras.

A :class:`GaussianScene` is what a user of the library loads or synthesises:
the trained Gaussian cloud plus one or more evaluation viewpoints.  It also
carries the name of the NeRF-360 scene descriptor it mimics (if any) so the
performance models can look up the full-scale workload parameters.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.gaussians.camera import Camera
from repro.gaussians.gaussian import GaussianCloud


@dataclass
class GaussianScene:
    """A renderable 3DGS scene.

    Attributes
    ----------
    cloud:
        The Gaussian scene representation.
    cameras:
        Evaluation viewpoints.  Rendering APIs default to the first camera.
        May be empty for scenes that only carry a cloud (e.g. entries of a
        :class:`~repro.serving.store.SceneStore` rendered against request
        cameras); rendering such a scene requires an explicit camera.
    name:
        Human-readable scene name.
    descriptor_name:
        Optional name of the NeRF-360 descriptor this scene is a scaled-down
        stand-in for (used by the performance models).
    """

    cloud: GaussianCloud
    cameras: List[Camera] = field(default_factory=list)
    name: str = "scene"
    descriptor_name: Optional[str] = None

    @property
    def num_gaussians(self) -> int:
        """Number of Gaussians in the scene."""
        return len(self.cloud)

    @property
    def default_camera(self) -> Camera:
        """The first (primary) evaluation camera."""
        if not self.cameras:
            raise ValueError(
                f"scene {self.name!r} has no cameras; pass a camera explicitly"
            )
        return self.cameras[0]

    def with_cloud(self, cloud: GaussianCloud) -> "GaussianScene":
        """Return a copy of the scene with a different Gaussian cloud."""
        return GaussianScene(
            cloud=cloud,
            cameras=list(self.cameras),
            name=self.name,
            descriptor_name=self.descriptor_name,
        )

    def bounding_box(self) -> np.ndarray:
        """Axis-aligned bounding box of the Gaussian centres, ``(2, 3)``."""
        positions = self.cloud.positions
        return np.stack([positions.min(axis=0), positions.max(axis=0)])
