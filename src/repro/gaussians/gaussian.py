"""Data structures for 3D and projected (2D) Gaussians.

Both containers use a structure-of-arrays layout backed by NumPy so that the
functional pipeline can process millions of Gaussians without Python-level
loops.  A :class:`GaussianCloud` holds the trained 3D representation; a
:class:`ProjectedGaussians` holds the per-frame 2D representation produced by
the preprocessing stage (Step 1 in Fig. 3 of the paper).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

#: Number of scalar parameters of one projected Gaussian consumed by the
#: rasterizer: the 2x2 covariance inverse (3 unique values because it is
#: symmetric), opacity, the 2D centre (2) and the RGB colour (3).  This is
#: the "9 FP numbers" input width of Table II.
RASTER_INPUT_WIDTH = 9


def _as_float_array(values, name: str, shape_suffix) -> np.ndarray:
    array = np.asarray(values, dtype=np.float64)
    if array.ndim == 0:
        raise ValueError(f"{name} must be an array, got a scalar")
    if shape_suffix and array.shape[1:] != shape_suffix:
        raise ValueError(
            f"{name} must have trailing shape {shape_suffix}, got {array.shape}"
        )
    return array


@dataclass
class GaussianCloud:
    """A trained 3D Gaussian scene representation.

    Attributes
    ----------
    positions:
        ``(N, 3)`` Gaussian centres in world space.
    scales:
        ``(N, 3)`` per-axis standard deviations of each Gaussian ellipsoid.
    rotations:
        ``(N, 4)`` unit quaternions ``(w, x, y, z)`` orienting each ellipsoid.
    opacities:
        ``(N,)`` opacity ``o`` of each Gaussian in ``[0, 1]``.
    sh_coeffs:
        ``(N, K, 3)`` spherical-harmonics colour coefficients, where ``K`` is
        ``(degree + 1) ** 2`` (1, 4, 9 or 16).
    """

    positions: np.ndarray
    scales: np.ndarray
    rotations: np.ndarray
    opacities: np.ndarray
    sh_coeffs: np.ndarray

    def __repr__(self) -> str:
        """Summary repr; the array payloads stay out of logs and tracebacks."""
        return (
            f"{type(self).__name__}(num_gaussians={len(self.positions)}, "
            f"sh_degree={self.sh_degree})"
        )

    def __post_init__(self) -> None:
        self.positions = _as_float_array(self.positions, "positions", (3,))
        self.scales = _as_float_array(self.scales, "scales", (3,))
        self.rotations = _as_float_array(self.rotations, "rotations", (4,))
        self.opacities = np.asarray(self.opacities, dtype=np.float64).reshape(-1)
        self.sh_coeffs = np.asarray(self.sh_coeffs, dtype=np.float64)

        n = len(self.positions)
        for name, array in (
            ("scales", self.scales),
            ("rotations", self.rotations),
            ("opacities", self.opacities),
            ("sh_coeffs", self.sh_coeffs),
        ):
            if len(array) != n:
                raise ValueError(
                    f"{name} has {len(array)} entries but positions has {n}"
                )
        if self.sh_coeffs.ndim != 3 or self.sh_coeffs.shape[2] != 3:
            raise ValueError("sh_coeffs must have shape (N, K, 3)")
        if self.sh_coeffs.shape[1] not in (1, 4, 9, 16):
            raise ValueError(
                "sh_coeffs second dimension must be 1, 4, 9 or 16 "
                f"(got {self.sh_coeffs.shape[1]})"
            )
        if np.any(self.scales <= 0):
            raise ValueError("scales must be strictly positive")
        if np.any(self.opacities < 0) or np.any(self.opacities > 1):
            raise ValueError("opacities must lie in [0, 1]")

    def __len__(self) -> int:
        return len(self.positions)

    @property
    def sh_degree(self) -> int:
        """Spherical-harmonics degree implied by the coefficient count."""
        return int(np.sqrt(self.sh_coeffs.shape[1])) - 1

    def subset(self, indices) -> "GaussianCloud":
        """Return a new cloud containing only ``indices`` (keeps order)."""
        indices = np.asarray(indices, dtype=np.int64)
        return GaussianCloud(
            positions=self.positions[indices],
            scales=self.scales[indices],
            rotations=self.rotations[indices],
            opacities=self.opacities[indices],
            sh_coeffs=self.sh_coeffs[indices],
        )

    def covariances(self) -> np.ndarray:
        """Return the ``(N, 3, 3)`` world-space covariance matrices.

        The covariance of each Gaussian is ``R @ S @ S^T @ R^T`` where ``R``
        is the rotation matrix of the quaternion and ``S`` the diagonal scale
        matrix, exactly as in the reference 3DGS implementation.
        """
        rot = quaternion_to_rotation_matrix(self.rotations)
        scaled = rot * self.scales[:, np.newaxis, :]
        return scaled @ np.transpose(scaled, (0, 2, 1))


def quaternion_to_rotation_matrix(quaternions: np.ndarray) -> np.ndarray:
    """Convert ``(N, 4)`` quaternions ``(w, x, y, z)`` to rotation matrices.

    Quaternions are normalised before conversion, so callers may pass
    unnormalised values.
    """
    q = np.asarray(quaternions, dtype=np.float64)
    if q.ndim == 1:
        q = q[np.newaxis, :]
    norms = np.linalg.norm(q, axis=1, keepdims=True)
    if np.any(norms == 0):
        raise ValueError("quaternions must be non-zero")
    w, x, y, z = (q / norms).T

    matrices = np.empty((len(q), 3, 3), dtype=np.float64)
    matrices[:, 0, 0] = 1 - 2 * (y * y + z * z)
    matrices[:, 0, 1] = 2 * (x * y - w * z)
    matrices[:, 0, 2] = 2 * (x * z + w * y)
    matrices[:, 1, 0] = 2 * (x * y + w * z)
    matrices[:, 1, 1] = 1 - 2 * (x * x + z * z)
    matrices[:, 1, 2] = 2 * (y * z - w * x)
    matrices[:, 2, 0] = 2 * (x * z - w * y)
    matrices[:, 2, 1] = 2 * (y * z + w * x)
    matrices[:, 2, 2] = 1 - 2 * (x * x + y * y)
    return matrices


@dataclass
class ProjectedGaussians:
    """Per-frame 2D Gaussians produced by the preprocessing stage.

    Attributes
    ----------
    means:
        ``(M, 2)`` screen-space centres ``mu`` in pixel coordinates.
    cov_inverses:
        ``(M, 3)`` packed inverse 2D covariances ``(a, b, c)`` representing
        the symmetric matrix ``[[a, b], [b, c]]`` (the "conic" of the
        reference implementation).
    depths:
        ``(M,)`` view-space depth of each Gaussian.
    colors:
        ``(M, 3)`` RGB colour of each Gaussian for this view.
    opacities:
        ``(M,)`` opacity ``o``.
    radii:
        ``(M,)`` conservative screen-space radius, in pixels, used for tile
        binning.
    source_indices:
        ``(M,)`` index of the originating Gaussian in the input cloud, or
        ``None`` when the projection did not track provenance.
    """

    means: np.ndarray
    cov_inverses: np.ndarray
    depths: np.ndarray
    colors: np.ndarray
    opacities: np.ndarray
    radii: np.ndarray
    source_indices: Optional[np.ndarray] = None

    def __repr__(self) -> str:
        """Summary repr; the array payloads stay out of logs and tracebacks."""
        tracked = self.source_indices is not None
        return (
            f"{type(self).__name__}(num_projected={len(self.means)}, "
            f"tracks_provenance={tracked})"
        )

    def __post_init__(self) -> None:
        self.means = _as_float_array(self.means, "means", (2,))
        self.cov_inverses = _as_float_array(self.cov_inverses, "cov_inverses", (3,))
        self.depths = np.asarray(self.depths, dtype=np.float64).reshape(-1)
        self.colors = _as_float_array(self.colors, "colors", (3,))
        self.opacities = np.asarray(self.opacities, dtype=np.float64).reshape(-1)
        self.radii = np.asarray(self.radii, dtype=np.float64).reshape(-1)
        if self.source_indices is not None:
            self.source_indices = np.asarray(self.source_indices, dtype=np.int64)

        n = len(self.means)
        for name, array in (
            ("cov_inverses", self.cov_inverses),
            ("depths", self.depths),
            ("colors", self.colors),
            ("opacities", self.opacities),
            ("radii", self.radii),
        ):
            if len(array) != n:
                raise ValueError(f"{name} has {len(array)} entries but means has {n}")
        if self.source_indices is not None and len(self.source_indices) != n:
            raise ValueError("source_indices length mismatch")

    def __len__(self) -> int:
        return len(self.means)

    def subset(self, indices) -> "ProjectedGaussians":
        """Return a new container holding only ``indices`` (keeps order)."""
        indices = np.asarray(indices, dtype=np.int64)
        source = None
        if self.source_indices is not None:
            source = self.source_indices[indices]
        return ProjectedGaussians(
            means=self.means[indices],
            cov_inverses=self.cov_inverses[indices],
            depths=self.depths[indices],
            colors=self.colors[indices],
            opacities=self.opacities[indices],
            radii=self.radii[indices],
            source_indices=source,
        )

    def raster_inputs(self) -> np.ndarray:
        """Pack the 9 floating-point rasterizer inputs of Table II.

        Returns an ``(M, 9)`` array laid out as
        ``[conic_a, conic_b, conic_c, opacity, mu_x, mu_y, r, g, b]`` — the
        exact operand bundle a PE receives per Gaussian.
        """
        packed = np.concatenate(
            [
                self.cov_inverses,
                self.opacities[:, np.newaxis],
                self.means,
                self.colors,
            ],
            axis=1,
        )
        assert packed.shape[1] == RASTER_INPUT_WIDTH
        return packed

    @classmethod
    def empty(cls) -> "ProjectedGaussians":
        """Return an empty container (useful when culling removes everything)."""
        return cls(
            means=np.zeros((0, 2)),
            cov_inverses=np.zeros((0, 3)),
            depths=np.zeros(0),
            colors=np.zeros((0, 3)),
            opacities=np.zeros(0),
            radii=np.zeros(0),
            source_indices=np.zeros(0, dtype=np.int64),
        )
