"""Spherical-harmonics colour evaluation for 3D Gaussians.

The preprocessing stage converts each Gaussian's view-dependent colour,
stored as spherical-harmonics (SH) coefficients, into an RGB value for the
current viewing direction.  This module implements the real SH basis up to
degree 3, matching the reference 3DGS implementation.
"""

from __future__ import annotations

import numpy as np

# Real spherical-harmonics basis constants (same values as the reference
# 3DGS CUDA implementation).
SH_C0 = 0.28209479177387814
SH_C1 = 0.4886025119029199
SH_C2 = (
    1.0925484305920792,
    -1.0925484305920792,
    0.31539156525252005,
    -1.0925484305920792,
    0.5462742152960396,
)
SH_C3 = (
    -0.5900435899266435,
    2.890611442640554,
    -0.4570457994644658,
    0.3731763325901154,
    -0.4570457994644658,
    1.445305721320277,
    -0.5900435899266435,
)

#: Number of SH coefficients for each supported degree.
COEFFS_PER_DEGREE = {0: 1, 1: 4, 2: 9, 3: 16}


def num_sh_coeffs(degree: int) -> int:
    """Return the number of SH coefficients for ``degree`` (0-3)."""
    if degree not in COEFFS_PER_DEGREE:
        raise ValueError(f"SH degree must be 0..3, got {degree}")
    return COEFFS_PER_DEGREE[degree]


def sh_basis(directions: np.ndarray, degree: int) -> np.ndarray:
    """Evaluate the real SH basis functions along ``directions``.

    Parameters
    ----------
    directions:
        ``(N, 3)`` unit view directions (Gaussian centre minus camera).
    degree:
        Maximum SH degree, 0 to 3.

    Returns
    -------
    ``(N, K)`` basis values where ``K = (degree + 1) ** 2``.
    """
    dirs = np.asarray(directions, dtype=np.float64)
    if dirs.ndim == 1:
        dirs = dirs[np.newaxis, :]
    if dirs.shape[-1] != 3:
        raise ValueError("directions must have shape (N, 3)")
    count = num_sh_coeffs(degree)
    x, y, z = dirs[:, 0], dirs[:, 1], dirs[:, 2]

    basis = np.empty((len(dirs), count), dtype=np.float64)
    basis[:, 0] = SH_C0
    if degree >= 1:
        basis[:, 1] = -SH_C1 * y
        basis[:, 2] = SH_C1 * z
        basis[:, 3] = -SH_C1 * x
    if degree >= 2:
        xx, yy, zz = x * x, y * y, z * z
        xy, yz, xz = x * y, y * z, x * z
        basis[:, 4] = SH_C2[0] * xy
        basis[:, 5] = SH_C2[1] * yz
        basis[:, 6] = SH_C2[2] * (2.0 * zz - xx - yy)
        basis[:, 7] = SH_C2[3] * xz
        basis[:, 8] = SH_C2[4] * (xx - yy)
    if degree >= 3:
        xx, yy, zz = x * x, y * y, z * z
        basis[:, 9] = SH_C3[0] * y * (3.0 * xx - yy)
        basis[:, 10] = SH_C3[1] * x * y * z
        basis[:, 11] = SH_C3[2] * y * (4.0 * zz - xx - yy)
        basis[:, 12] = SH_C3[3] * z * (2.0 * zz - 3.0 * xx - 3.0 * yy)
        basis[:, 13] = SH_C3[4] * x * (4.0 * zz - xx - yy)
        basis[:, 14] = SH_C3[5] * z * (xx - yy)
        basis[:, 15] = SH_C3[6] * x * (xx - 3.0 * yy)
    return basis


def evaluate_sh_colors(
    sh_coeffs: np.ndarray,
    directions: np.ndarray,
    degree: int | None = None,
) -> np.ndarray:
    """Evaluate view-dependent RGB colours from SH coefficients.

    Parameters
    ----------
    sh_coeffs:
        ``(N, K, 3)`` SH coefficients per Gaussian.
    directions:
        ``(N, 3)`` viewing directions (need not be normalised).
    degree:
        Optional maximum degree to use; defaults to the degree implied by
        ``K``.  Using a lower degree evaluates only the leading coefficients,
        mirroring the progressive SH activation of 3DGS training.

    Returns
    -------
    ``(N, 3)`` RGB colours, clamped to be non-negative.  The reference
    implementation adds 0.5 before clamping, which is reproduced here.
    """
    coeffs = np.asarray(sh_coeffs, dtype=np.float64)
    if coeffs.ndim != 3 or coeffs.shape[2] != 3:
        raise ValueError("sh_coeffs must have shape (N, K, 3)")
    available = coeffs.shape[1]
    if available not in COEFFS_PER_DEGREE.values():
        raise ValueError(
            "sh_coeffs must have 1, 4, 9 or 16 coefficients per Gaussian "
            f"(got {available})"
        )
    implied_degree = int(np.sqrt(available)) - 1
    if degree is None:
        degree = implied_degree
    if degree > implied_degree:
        raise ValueError(
            f"requested degree {degree} but only {available} coefficients available"
        )

    dirs = np.asarray(directions, dtype=np.float64)
    if dirs.ndim == 1:
        dirs = np.broadcast_to(dirs, (len(coeffs), 3))
    norms = np.linalg.norm(dirs, axis=1, keepdims=True)
    norms = np.where(norms == 0, 1.0, norms)
    unit_dirs = dirs / norms

    basis = sh_basis(unit_dirs, degree)
    used = num_sh_coeffs(degree)
    colors = np.einsum("nk,nkc->nc", basis, coeffs[:, :used, :]) + 0.5
    return np.clip(colors, 0.0, None)


def rgb_to_sh_dc(rgb: np.ndarray) -> np.ndarray:
    """Convert plain RGB colours to degree-0 (DC) SH coefficients.

    Useful for constructing synthetic scenes with known base colours: a
    Gaussian whose only non-zero coefficient is the DC term renders with a
    view-independent colour equal to ``rgb``.
    """
    rgb = np.asarray(rgb, dtype=np.float64)
    return (rgb - 0.5) / SH_C0


def sh_dc_to_rgb(dc: np.ndarray) -> np.ndarray:
    """Inverse of :func:`rgb_to_sh_dc`."""
    dc = np.asarray(dc, dtype=np.float64)
    return np.clip(dc * SH_C0 + 0.5, 0.0, None)
