"""Efficiency-optimised 3DGS variant (Mini-Splatting-style Gaussian budget).

The paper's second evaluation pipeline is Mini-Splatting [10], which
"represents scenes with a constrained number of Gaussians": after training,
the Gaussian set is pruned to a fixed budget, keeping the Gaussians that
contribute most to the rendered images.  We reproduce the inference-time
effect of that optimisation with an importance-based pruning pass: each
Gaussian is scored by (opacity x projected footprint area averaged over the
evaluation cameras) and only the top-budget Gaussians are kept.

Only the *workload* effect matters for the hardware evaluation — fewer
Gaussians, fewer sort keys, lower per-tile depth complexity — which this
pruning reproduces faithfully on the synthetic scenes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from repro.gaussians.camera import Camera
from repro.gaussians.gaussian import GaussianCloud
from repro.gaussians.projection import preprocess
from repro.gaussians.scene import GaussianScene


@dataclass
class PruneResult:
    """Outcome of a Gaussian-budget pruning pass."""

    kept_indices: np.ndarray = field(repr=False)
    scores: np.ndarray = field(repr=False)
    budget: int

    @property
    def num_kept(self) -> int:
        """Number of Gaussians retained."""
        return len(self.kept_indices)


def importance_scores(
    cloud: GaussianCloud,
    cameras: Sequence[Camera],
) -> np.ndarray:
    """Score every Gaussian by its average screen-space contribution.

    The score of a Gaussian is its opacity multiplied by its projected
    footprint area (pi * radius^2), averaged over the supplied cameras;
    Gaussians culled in a view contribute zero for that view.  This mirrors
    the blend-weight importance used by Mini-Splatting's simplification
    without requiring gradient information.
    """
    if not cameras:
        raise ValueError("at least one camera is required to score Gaussians")

    scores = np.zeros(len(cloud), dtype=np.float64)
    for camera in cameras:
        projected, _ = preprocess(cloud, camera)
        if len(projected) == 0 or projected.source_indices is None:
            continue
        footprint = np.pi * projected.radii ** 2
        contribution = projected.opacities * footprint
        np.add.at(scores, projected.source_indices, contribution)
    return scores / len(cameras)


def prune_to_budget(
    cloud: GaussianCloud,
    budget: int,
    cameras: Optional[Sequence[Camera]] = None,
) -> PruneResult:
    """Prune a cloud down to at most ``budget`` Gaussians.

    Parameters
    ----------
    cloud:
        The trained Gaussian cloud.
    budget:
        Maximum number of Gaussians to keep.  If the cloud is already within
        budget all Gaussians are kept.
    cameras:
        Cameras used to estimate importance.  When omitted, Gaussians are
        scored by opacity times world-space volume (a camera-free fallback).

    Returns
    -------
    :class:`PruneResult` whose ``kept_indices`` are sorted ascending so the
    pruned cloud preserves the original ordering.
    """
    if budget <= 0:
        raise ValueError("budget must be positive")

    if cameras:
        scores = importance_scores(cloud, cameras)
    else:
        volume = np.prod(cloud.scales, axis=1)
        scores = cloud.opacities * volume

    if len(cloud) <= budget:
        kept = np.arange(len(cloud))
    else:
        top = np.argpartition(-scores, budget - 1)[:budget]
        kept = np.sort(top)
    return PruneResult(kept_indices=kept, scores=scores, budget=budget)


def optimize_scene(scene: GaussianScene, budget: int) -> GaussianScene:
    """Return an efficiency-optimised copy of ``scene`` with a Gaussian budget.

    This is the scene-level entry point used by the examples and benchmarks:
    it applies :func:`prune_to_budget` with the scene's own cameras and
    returns a new scene whose name is suffixed with ``"-optimized"``.
    """
    result = prune_to_budget(scene.cloud, budget, cameras=scene.cameras)
    pruned = scene.cloud.subset(result.kept_indices)
    optimized = scene.with_cloud(pruned)
    optimized.name = f"{scene.name}-optimized"
    return optimized
