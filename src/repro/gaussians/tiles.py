"""Screen-tile arithmetic shared by sorting, rasterization and the hardware model.

The rasterizer (both the CUDA reference and GauRast) partitions the screen
into ``TILE_SIZE`` x ``TILE_SIZE`` pixel tiles.  Each projected Gaussian is
assigned to every tile its conservative bounding box overlaps; tiles are the
unit of work dispatched to a GauRast rasterizer instance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Tuple

import numpy as np

from repro.datasets.nerf360 import TILE_SIZE


@dataclass(frozen=True)
class TileGrid:
    """Regular grid of square screen tiles covering an image."""

    width: int
    height: int
    tile_size: int = TILE_SIZE

    def __post_init__(self) -> None:
        if self.width <= 0 or self.height <= 0:
            raise ValueError("image size must be positive")
        if self.tile_size <= 0:
            raise ValueError("tile size must be positive")

    @property
    def tiles_x(self) -> int:
        """Number of tiles along the x axis."""
        return -(-self.width // self.tile_size)

    @property
    def tiles_y(self) -> int:
        """Number of tiles along the y axis."""
        return -(-self.height // self.tile_size)

    @property
    def num_tiles(self) -> int:
        """Total number of tiles."""
        return self.tiles_x * self.tiles_y

    @property
    def pixels_per_tile(self) -> int:
        """Number of pixels in a full tile."""
        return self.tile_size * self.tile_size

    def tile_id(self, tile_x: int, tile_y: int) -> int:
        """Flatten a tile coordinate into a linear tile id (row-major)."""
        if not (0 <= tile_x < self.tiles_x and 0 <= tile_y < self.tiles_y):
            raise ValueError(f"tile ({tile_x}, {tile_y}) outside grid")
        return tile_y * self.tiles_x + tile_x

    def tile_coords(self, tile_id: int) -> Tuple[int, int]:
        """Inverse of :meth:`tile_id`."""
        if not 0 <= tile_id < self.num_tiles:
            raise ValueError(f"tile id {tile_id} outside grid")
        return tile_id % self.tiles_x, tile_id // self.tiles_x

    def tile_pixel_bounds(self, tile_id: int) -> Tuple[int, int, int, int]:
        """Pixel bounds ``(x0, y0, x1, y1)`` of a tile, clipped to the image."""
        tile_x, tile_y = self.tile_coords(tile_id)
        x0 = tile_x * self.tile_size
        y0 = tile_y * self.tile_size
        x1 = min(x0 + self.tile_size, self.width)
        y1 = min(y0 + self.tile_size, self.height)
        return x0, y0, x1, y1

    def tile_pixel_centers(self, tile_id: int) -> np.ndarray:
        """Return the ``(P, 2)`` pixel-centre coordinates covered by a tile."""
        x0, y0, x1, y1 = self.tile_pixel_bounds(tile_id)
        xs = np.arange(x0, x1) + 0.5
        ys = np.arange(y0, y1) + 0.5
        grid_x, grid_y = np.meshgrid(xs, ys)
        return np.stack([grid_x.ravel(), grid_y.ravel()], axis=1)

    def iter_tiles(self) -> Iterator[int]:
        """Iterate over all tile ids in row-major order."""
        return iter(range(self.num_tiles))

    def tile_range_for_bbox(
        self, center: np.ndarray, radius: np.ndarray
    ) -> np.ndarray:
        """Compute the tile rectangle overlapped by circular footprints.

        Parameters
        ----------
        center:
            ``(N, 2)`` screen-space footprint centres.
        radius:
            ``(N,)`` conservative footprint radii in pixels.

        Returns
        -------
        ``(N, 4)`` integer array of ``(tx0, ty0, tx1, ty1)`` where the ranges
        are half-open (``tx1``/``ty1`` exclusive).  Footprints entirely
        outside the image produce empty ranges (``tx0 >= tx1``).
        """
        center = np.asarray(center, dtype=np.float64)
        radius = np.asarray(radius, dtype=np.float64).reshape(-1)
        if center.ndim == 1:
            center = center[np.newaxis, :]

        min_xy = center - radius[:, np.newaxis]
        max_xy = center + radius[:, np.newaxis]

        tx0 = np.clip(np.floor(min_xy[:, 0] / self.tile_size), 0, self.tiles_x)
        ty0 = np.clip(np.floor(min_xy[:, 1] / self.tile_size), 0, self.tiles_y)
        tx1 = np.clip(np.floor(max_xy[:, 0] / self.tile_size) + 1, 0, self.tiles_x)
        ty1 = np.clip(np.floor(max_xy[:, 1] / self.tile_size) + 1, 0, self.tiles_y)

        ranges = np.stack([tx0, ty0, tx1, ty1], axis=1).astype(np.int64)
        # Degenerate footprints (zero radius) or off-screen boxes collapse to
        # an empty range.
        empty = (ranges[:, 2] <= ranges[:, 0]) | (ranges[:, 3] <= ranges[:, 1])
        ranges[empty] = 0
        return ranges
