"""Frustum culling of 3D Gaussians.

Preprocessing discards Gaussians that cannot contribute to the image before
paying for the full projection: Gaussians behind the near plane or far
outside the viewing frustum are removed.  The reference implementation uses
a slightly padded frustum (1.3x the field of view) so that Gaussians whose
centre is just outside the image but whose footprint extends into it are
kept; the same padding is used here.
"""

from __future__ import annotations

import numpy as np

from repro.gaussians.camera import Camera

#: Padding factor applied to the view frustum, matching the reference 3DGS
#: rasterizer which keeps Gaussians within 1.3x the field of view.
FRUSTUM_PADDING = 1.3


def frustum_cull_mask(camera: Camera, positions: np.ndarray) -> np.ndarray:
    """Return a boolean mask of Gaussians that survive frustum culling.

    Parameters
    ----------
    camera:
        The rendering camera.
    positions:
        ``(N, 3)`` world-space Gaussian centres.

    Returns
    -------
    ``(N,)`` boolean array, ``True`` for Gaussians to keep.
    """
    cam_points = camera.to_camera_space(positions)
    depths = cam_points[:, 2]

    in_front = depths > camera.znear
    within_far = depths < camera.zfar

    tan_x, tan_y = camera.tan_half_fov
    safe_z = np.where(depths <= 0, np.inf, depths)
    within_x = np.abs(cam_points[:, 0]) <= FRUSTUM_PADDING * tan_x * safe_z
    within_y = np.abs(cam_points[:, 1]) <= FRUSTUM_PADDING * tan_y * safe_z

    return in_front & within_far & within_x & within_y


def cull(camera: Camera, positions: np.ndarray) -> np.ndarray:
    """Return the indices of Gaussians that survive frustum culling."""
    mask = frustum_cull_mask(camera, positions)
    return np.nonzero(mask)[0]
