"""Scene serialisation: save and load Gaussian scenes.

Trained 3DGS checkpoints are normally stored as PLY files; this reproduction
uses NumPy ``.npz`` archives with an equivalent field layout so scenes built
by the synthetic generator (or pruned by the Mini-Splatting pass) can be
persisted, shared between the examples and reloaded without re-generation.

Since the multi-scene :class:`~repro.serving.store.SceneStore` landed, the
store owns the archive format (version 2) and :func:`save_scene` /
:func:`load_scene` are thin single-scene wrappers around it.  Archives in
the original one-scene layout (format version 1) and compressed-tier
archives (format version 3, see :mod:`repro.compression.store`) are also
readable.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

import numpy as np

from repro.gaussians.camera import Camera
from repro.gaussians.gaussian import GaussianCloud
from repro.gaussians.scene import GaussianScene

#: Format identifier of the legacy one-scene archives this module can still
#: read.  New archives are written by the scene store (format version 2).
FORMAT_VERSION = 1


def save_scene(scene: GaussianScene, path: Union[str, Path]) -> Path:
    """Serialise a scene (cloud plus cameras, which may be empty) to ``.npz``.

    Thin wrapper over a one-scene :class:`~repro.serving.store.SceneStore`.
    Returns the path written (with the ``.npz`` suffix enforced).
    """
    from repro.serving.store import SceneStore

    store = SceneStore()
    store.add_scene(scene)
    return store.save(path)


def _load_scene_v1(archive, metadata: dict) -> GaussianScene:
    """Read an already-open archive in the original one-scene layout."""
    cloud = GaussianCloud(
        positions=archive["positions"],
        scales=archive["scales"],
        rotations=archive["rotations"],
        opacities=archive["opacities"],
        sh_coeffs=archive["sh_coeffs"],
    )
    poses = archive["camera_poses"]

    cameras = []
    for camera_info, pose in zip(metadata["cameras"], poses):
        cameras.append(
            Camera(
                width=int(camera_info["width"]),
                height=int(camera_info["height"]),
                fx=float(camera_info["fx"]),
                fy=float(camera_info["fy"]),
                cx=float(camera_info["cx"]),
                cy=float(camera_info["cy"]),
                world_to_camera=pose,
                znear=float(camera_info["znear"]),
                zfar=float(camera_info["zfar"]),
            )
        )
    return GaussianScene(
        cloud=cloud,
        cameras=cameras,
        name=metadata.get("name", "scene"),
        descriptor_name=metadata.get("descriptor_name"),
    )


def load_scene(path: Union[str, Path]) -> GaussianScene:
    """Load a scene previously written by :func:`save_scene`.

    Reads store archives (format version 2), compressed-tier archives
    (format version 3, decoded at full detail), and legacy one-scene
    archives (format version 1).  Multi-scene archives must contain exactly
    one scene — use :meth:`~repro.serving.store.SceneStore.load` (or
    :meth:`~repro.compression.store.CompressedSceneStore.load`) otherwise.
    """
    from repro.serving.store import SceneStore, STORE_FORMAT_VERSION

    path = Path(path)
    if not path.exists():
        raise FileNotFoundError(f"scene archive not found: {path}")

    with np.load(path, allow_pickle=False) as archive:
        metadata = json.loads(str(archive["metadata"]))
        version = metadata.get("format_version")
        if version == FORMAT_VERSION:
            return _load_scene_v1(archive, metadata)
        if version == STORE_FORMAT_VERSION:
            store = SceneStore.from_archive(archive, metadata)
            if len(store) != 1:
                raise ValueError(
                    f"archive holds {len(store)} scenes; use SceneStore.load "
                    "for multi-scene archives"
                )
            return store.get_scene(0)
    from repro.compression.store import COMPRESSED_FORMAT_VERSION, CompressedSceneStore

    if version == COMPRESSED_FORMAT_VERSION:
        store = CompressedSceneStore.load(path)
        if len(store) != 1:
            raise ValueError(
                f"archive holds {len(store)} scenes; use "
                "CompressedSceneStore.load for multi-scene archives"
            )
        return store.get_scene(0)
    raise ValueError(f"unsupported scene format version {version!r}")


def save_image_ppm(image: np.ndarray, path: Union[str, Path]) -> Path:
    """Write an RGB float image (values in [0, 1+]) as a binary PPM file.

    PPM needs no imaging dependency and is sufficient for inspecting the
    example outputs.
    """
    path = Path(path)
    if path.suffix != ".ppm":
        path = path.with_suffix(".ppm")
    image = np.asarray(image, dtype=np.float64)
    if image.ndim != 3 or image.shape[2] != 3:
        raise ValueError("image must have shape (H, W, 3)")
    clipped = np.clip(image, 0.0, 1.0)
    data = (clipped * 255.0 + 0.5).astype(np.uint8)
    height, width = data.shape[:2]
    with open(path, "wb") as handle:
        handle.write(f"P6\n{width} {height}\n255\n".encode("ascii"))
        handle.write(data.tobytes())
    return path
