"""Scene serialisation: save and load Gaussian scenes.

Trained 3DGS checkpoints are normally stored as PLY files; this reproduction
uses NumPy ``.npz`` archives with an equivalent field layout so scenes built
by the synthetic generator (or pruned by the Mini-Splatting pass) can be
persisted, shared between the examples and reloaded without re-generation.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

import numpy as np

from repro.gaussians.camera import Camera
from repro.gaussians.gaussian import GaussianCloud
from repro.gaussians.scene import GaussianScene

#: Format identifier stored inside every archive.
FORMAT_VERSION = 1


def save_scene(scene: GaussianScene, path: Union[str, Path]) -> Path:
    """Serialise a scene (cloud plus cameras) to an ``.npz`` archive.

    Returns the path written (with the ``.npz`` suffix enforced).
    """
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(".npz")

    cameras = [
        {
            "width": camera.width,
            "height": camera.height,
            "fx": camera.fx,
            "fy": camera.fy,
            "cx": camera.cx,
            "cy": camera.cy,
            "znear": camera.znear,
            "zfar": camera.zfar,
        }
        for camera in scene.cameras
    ]
    metadata = {
        "format_version": FORMAT_VERSION,
        "name": scene.name,
        "descriptor_name": scene.descriptor_name,
        "cameras": cameras,
    }
    poses = np.stack([camera.world_to_camera for camera in scene.cameras])

    cloud = scene.cloud
    np.savez_compressed(
        path,
        metadata=json.dumps(metadata),
        positions=cloud.positions,
        scales=cloud.scales,
        rotations=cloud.rotations,
        opacities=cloud.opacities,
        sh_coeffs=cloud.sh_coeffs,
        camera_poses=poses,
    )
    return path


def load_scene(path: Union[str, Path]) -> GaussianScene:
    """Load a scene previously written by :func:`save_scene`."""
    path = Path(path)
    if not path.exists():
        raise FileNotFoundError(f"scene archive not found: {path}")

    with np.load(path, allow_pickle=False) as archive:
        metadata = json.loads(str(archive["metadata"]))
        if metadata.get("format_version") != FORMAT_VERSION:
            raise ValueError(
                f"unsupported scene format version {metadata.get('format_version')!r}"
            )
        cloud = GaussianCloud(
            positions=archive["positions"],
            scales=archive["scales"],
            rotations=archive["rotations"],
            opacities=archive["opacities"],
            sh_coeffs=archive["sh_coeffs"],
        )
        poses = archive["camera_poses"]

    cameras = []
    for camera_info, pose in zip(metadata["cameras"], poses):
        cameras.append(
            Camera(
                width=int(camera_info["width"]),
                height=int(camera_info["height"]),
                fx=float(camera_info["fx"]),
                fy=float(camera_info["fy"]),
                cx=float(camera_info["cx"]),
                cy=float(camera_info["cy"]),
                world_to_camera=pose,
                znear=float(camera_info["znear"]),
                zfar=float(camera_info["zfar"]),
            )
        )
    return GaussianScene(
        cloud=cloud,
        cameras=cameras,
        name=metadata.get("name", "scene"),
        descriptor_name=metadata.get("descriptor_name"),
    )


def save_image_ppm(image: np.ndarray, path: Union[str, Path]) -> Path:
    """Write an RGB float image (values in [0, 1+]) as a binary PPM file.

    PPM needs no imaging dependency and is sufficient for inspecting the
    example outputs.
    """
    path = Path(path)
    if path.suffix != ".ppm":
        path = path.with_suffix(".ppm")
    image = np.asarray(image, dtype=np.float64)
    if image.ndim != 3 or image.shape[2] != 3:
        raise ValueError("image must have shape (H, W, 3)")
    clipped = np.clip(image, 0.0, 1.0)
    data = (clipped * 255.0 + 0.5).astype(np.uint8)
    height, width = data.shape[:2]
    with open(path, "wb") as handle:
        handle.write(f"P6\n{width} {height}\n255\n".encode("ascii"))
        handle.write(data.tobytes())
    return path
