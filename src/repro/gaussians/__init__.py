"""Functional model of the 3D Gaussian Splatting rendering pipeline.

This package implements the three-stage 3DGS pipeline described in Section II
of the paper:

1. **Preprocessing** (:mod:`repro.gaussians.projection`): project each 3D
   Gaussian to a 2D Gaussian on the image plane, evaluate its view-dependent
   colour from spherical-harmonics coefficients and compute its depth.
2. **Sorting** (:mod:`repro.gaussians.sorting`): bin the projected Gaussians
   into 16x16 screen tiles and sort each tile's list by depth.
3. **Gaussian rasterization** (:mod:`repro.gaussians.rasterize`): for every
   tile, alpha-composit the sorted Gaussians front to back into the pixels.

The implementation is pure NumPy and serves two purposes: it is the *golden
model* against which the GauRast processing-element datapath is validated,
and it is the *workload generator* whose per-frame statistics feed the
performance and energy models.
"""

from repro.gaussians.camera import Camera, look_at
from repro.gaussians.gaussian import GaussianCloud, ProjectedGaussians
from repro.gaussians.io import load_scene, save_scene
from repro.gaussians.metrics import compare_images, psnr, ssim
from repro.gaussians.minisplat import prune_to_budget
from repro.gaussians.pipeline import (
    BatchRenderResult,
    RenderResult,
    render,
    render_batch,
)
from repro.gaussians.rasterize import BACKENDS, DEFAULT_BACKEND, rasterize_tiles
from repro.gaussians.scene import GaussianScene
from repro.gaussians.sorting import TileBinning, bin_and_sort
from repro.gaussians.synthetic import make_synthetic_scene

__all__ = [
    "BACKENDS",
    "BatchRenderResult",
    "Camera",
    "DEFAULT_BACKEND",
    "GaussianCloud",
    "GaussianScene",
    "ProjectedGaussians",
    "RenderResult",
    "TileBinning",
    "bin_and_sort",
    "compare_images",
    "load_scene",
    "look_at",
    "make_synthetic_scene",
    "prune_to_budget",
    "psnr",
    "rasterize_tiles",
    "render",
    "render_batch",
    "save_scene",
    "ssim",
]
