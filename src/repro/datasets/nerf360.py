"""Descriptors of the seven NeRF-360 scenes used throughout the paper.

Each :class:`SceneDescriptor` captures the properties of a trained 3DGS model
of one NeRF-360 scene that matter to the performance and energy models:

* the rendering resolution used in the original 3DGS evaluation protocol
  (outdoor scenes are rendered at 1/4 resolution, indoor scenes at 1/2),
* the number of trained Gaussians,
* the mean number of Gaussian instances binned into each 16x16 screen tile
  (``mean_gaussians_per_tile``), which is the quantity that determines the
  rasterization workload: every Gaussian assigned to a tile is evaluated for
  every pixel of that tile, so

      fragments_per_frame = mean_gaussians_per_tile * tiles * 256

* the corresponding quantities for the Mini-Splatting efficiency-optimised
  variant, which constrains the Gaussian budget and therefore shrinks both
  the number of sort keys and the per-tile depth complexity.

The per-tile workload intensities are calibrated so that the baseline
(CUDA-on-Jetson-Orin-NX) model reproduces the per-scene rasterization
runtimes the paper reports in Table III and Figs. 4/5.  The calibration is a
substitution for access to the real trained checkpoints and is documented in
DESIGN.md.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, Tuple

#: Side length, in pixels, of the square screen tiles used by the tile-based
#: rasterizer (both the CUDA reference implementation and GauRast).
TILE_SIZE = 16


@dataclass(frozen=True)
class AlgorithmWorkload:
    """Workload parameters of one rendering algorithm on one scene.

    Attributes
    ----------
    num_gaussians:
        Number of Gaussians in the trained model (after training/pruning).
    mean_gaussians_per_tile:
        Average number of Gaussian instances assigned to each 16x16 screen
        tile after frustum culling and tile binning (i.e. duplicated sort
        keys divided by the number of tiles).
    evaluated_fraction:
        Fraction of the nominal Gaussian-pixel fragments a rasterizer with
        per-pixel early termination actually evaluates; the rest is skipped
        once a pixel's transmittance saturates.  Scenes with deeper per-tile
        Gaussian lists saturate later (higher fraction), while scenes with
        many opaque foreground splats terminate earlier.
    """

    num_gaussians: int
    mean_gaussians_per_tile: float
    evaluated_fraction: float = 0.85

    def __post_init__(self) -> None:
        if self.num_gaussians <= 0:
            raise ValueError("num_gaussians must be positive")
        if self.mean_gaussians_per_tile <= 0:
            raise ValueError("mean_gaussians_per_tile must be positive")
        if not 0.0 < self.evaluated_fraction <= 1.0:
            raise ValueError("evaluated_fraction must be in (0, 1]")


@dataclass(frozen=True)
class SceneDescriptor:
    """Static description of one NeRF-360 scene for the performance models."""

    name: str
    category: str  # "outdoor" or "indoor"
    width: int
    height: int
    original: AlgorithmWorkload
    optimized: AlgorithmWorkload

    def __post_init__(self) -> None:
        if self.category not in ("outdoor", "indoor"):
            raise ValueError(f"unknown scene category: {self.category!r}")
        if self.width <= 0 or self.height <= 0:
            raise ValueError("resolution must be positive")

    # ------------------------------------------------------------------ #
    # Geometry helpers
    # ------------------------------------------------------------------ #
    @property
    def num_pixels(self) -> int:
        """Total number of pixels in a rendered frame."""
        return self.width * self.height

    @property
    def tile_grid(self) -> Tuple[int, int]:
        """Number of 16x16 tiles along (x, y)."""
        tiles_x = -(-self.width // TILE_SIZE)
        tiles_y = -(-self.height // TILE_SIZE)
        return tiles_x, tiles_y

    @property
    def num_tiles(self) -> int:
        """Total number of screen tiles."""
        tiles_x, tiles_y = self.tile_grid
        return tiles_x * tiles_y

    # ------------------------------------------------------------------ #
    # Workload helpers
    # ------------------------------------------------------------------ #
    def workload(self, algorithm: str) -> AlgorithmWorkload:
        """Return the workload parameters for ``algorithm``.

        Parameters
        ----------
        algorithm:
            Either ``"original"`` (3DGS [15]) or ``"optimized"``
            (Mini-Splatting [10]).
        """
        if algorithm == "original":
            return self.original
        if algorithm == "optimized":
            return self.optimized
        raise ValueError(
            f"unknown algorithm {algorithm!r}; expected 'original' or 'optimized'"
        )

    def sort_keys(self, algorithm: str = "original") -> int:
        """Number of duplicated (tile, depth) sort keys per frame."""
        workload = self.workload(algorithm)
        return int(round(workload.mean_gaussians_per_tile * self.num_tiles))

    def fragments_per_frame(self, algorithm: str = "original") -> int:
        """Number of Gaussian-pixel evaluations per frame.

        Every Gaussian instance binned into a tile is evaluated against every
        pixel of that tile, so the fragment count is the key count times the
        tile area.
        """
        return self.sort_keys(algorithm) * TILE_SIZE * TILE_SIZE


def _scene(
    name: str,
    category: str,
    width: int,
    height: int,
    num_gaussians: int,
    gaussians_per_tile: float,
    evaluated_fraction: float,
    opt_num_gaussians: int,
    opt_gaussians_per_tile: float,
    opt_evaluated_fraction: float,
) -> SceneDescriptor:
    return SceneDescriptor(
        name=name,
        category=category,
        width=width,
        height=height,
        original=AlgorithmWorkload(
            num_gaussians, gaussians_per_tile, evaluated_fraction
        ),
        optimized=AlgorithmWorkload(
            opt_num_gaussians, opt_gaussians_per_tile, opt_evaluated_fraction
        ),
    )


#: The seven NeRF-360 scenes, in the order the paper plots them.
#:
#: ``mean_gaussians_per_tile`` values are calibrated so the Jetson Orin NX
#: baseline model reproduces the per-scene rasterization runtimes of
#: Table III (321/149/232/236/216/269/147 ms), and ``evaluated_fraction``
#: values so the GauRast hardware model reproduces the corresponding
#: accelerated runtimes (15/6.0/9.6/10.5/9.8/12.2/5.5 ms).  The
#: Mini-Splatting variant constrains the Gaussian budget to roughly half a
#: million Gaussians per scene, which reduces the per-tile depth complexity
#: by ~3x and, with shallower tile lists, leaves less opportunity for early
#: termination (higher evaluated fraction).
SCENES: Dict[str, SceneDescriptor] = {
    scene.name: scene
    for scene in (
        _scene("bicycle", "outdoor", 1237, 822,
               6_100_000, 1010.0, 0.858, 520_000, 318.0, 0.93),
        _scene("stump", "outdoor", 1245, 825,
               4_900_000, 469.0, 0.739, 490_000, 152.0, 0.93),
        _scene("garden", "outdoor", 1297, 840,
               5_800_000, 681.0, 0.760, 540_000, 216.0, 0.93),
        _scene("room", "indoor", 1557, 1038,
               1_550_000, 473.0, 0.817, 430_000, 158.0, 0.93),
        _scene("counter", "indoor", 1558, 1038,
               1_220_000, 433.0, 0.833, 400_000, 146.0, 0.93),
        _scene("kitchen", "indoor", 1558, 1039,
               1_820_000, 539.0, 0.833, 470_000, 178.0, 0.93),
        _scene("bonsai", "indoor", 1559, 1039,
               1_250_000, 294.0, 0.688, 390_000, 101.0, 0.93),
    )
}

#: Scene names in canonical plotting order.
SCENE_NAMES = tuple(SCENES.keys())


def get_scene(name: str) -> SceneDescriptor:
    """Look up a scene descriptor by name (case-insensitive)."""
    key = name.lower()
    if key not in SCENES:
        known = ", ".join(SCENE_NAMES)
        raise KeyError(f"unknown NeRF-360 scene {name!r}; known scenes: {known}")
    return SCENES[key]


def iter_scenes() -> Iterator[SceneDescriptor]:
    """Iterate over all scene descriptors in canonical order."""
    return iter(SCENES.values())
