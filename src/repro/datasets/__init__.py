"""Scene descriptors for the workloads used in the GauRast evaluation.

The paper evaluates on the seven real-world scenes of the NeRF-360 dataset
rendered with two algorithms: the original 3DGS pipeline [15] and the
Mini-Splatting efficiency-optimised pipeline [10].  The dataset itself is not
redistributable, so this package provides per-scene *descriptors* — image
resolution, trained Gaussian count and measured per-tile workload intensity —
that drive both the synthetic scene generator and the analytical performance
models.
"""

from repro.datasets.nerf360 import (
    SCENES,
    SCENE_NAMES,
    SceneDescriptor,
    get_scene,
    iter_scenes,
)

__all__ = [
    "SCENES",
    "SCENE_NAMES",
    "SceneDescriptor",
    "get_scene",
    "iter_scenes",
]
