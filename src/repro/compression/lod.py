"""Importance pruning, LOD pyramids, and budget-aware level selection.

Most Gaussians of a trained 3DGS scene barely matter for most viewpoints:
small, nearly transparent splats contribute a few low-alpha fragments each,
yet every one of them pays full price in preprocessing, sorting, and memory
traffic.  This module ranks Gaussians by an **importance score** — opacity
times projected-area contribution — and derives *K nested detail levels*
per scene: level 0 is the full cloud, each coarser level keeps the most
important fraction of the previous one.  Nesting means a coarser level is
always a strict subset of a finer one, so quality degrades monotonically
and a single importance ordering serves every level.

The second half of the module decides *which* level a render request should
get.  Two policies are provided:

* :class:`FootprintLodPolicy` — derives a Gaussian budget from the camera's
  screen-space footprint of the scene (zoomed-out viewpoints, where the
  whole scene covers few pixels, get coarse levels);
* :class:`BudgetLodPolicy` — a fixed per-request Gaussian budget (an
  explicit quality/latency knob for deployments with SLOs).

Usage::

    from repro.compression import build_lod_pyramid, FootprintLodPolicy

    pyramid = build_lod_pyramid(cloud, levels=3, keep_ratio=0.7)
    pyramid.level_sizes                    # e.g. (1000, 700, 490)
    indices = pyramid.level_indices(2)     # coarsest level's Gaussians

    policy = FootprintLodPolicy(pixels_per_gaussian=8.0)
    level = policy.select_level(store, scene_index, camera)
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional, Sequence, Tuple, Union

import numpy as np

from repro.gaussians.camera import Camera
from repro.gaussians.gaussian import GaussianCloud

#: Default number of detail levels per scene (level 0 = full detail).
DEFAULT_LOD_LEVELS = 3

#: Default fraction of Gaussians each level keeps from the previous one.
DEFAULT_KEEP_RATIO = 0.7


def geometric_importance_scores(
    cloud: GaussianCloud, camera: Optional[Camera] = None
) -> np.ndarray:
    """Camera-free importance proxy: opacity times splat cross-section.

    The score is ``opacity * cross-section area`` where the cross-section is
    the ellipse spanned by the two largest scale axes (the face a splat
    shows to any camera, up to orientation).  When a ``camera`` is given the
    area is divided by the squared view depth and scaled by the focal
    lengths — the EWA projected-area contribution — so distant clutter
    ranks below nearby structure.  Returns a ``(N,)`` array; higher means
    more important.  Cheap (no rendering), but blind to occlusion; prefer
    :func:`rendered_importance_scores` when evaluation cameras exist.
    """
    if len(cloud) == 0:
        return np.zeros(0)
    sorted_scales = np.sort(cloud.scales, axis=1)
    area = np.pi * sorted_scales[:, -1] * sorted_scales[:, -2]
    scores = cloud.opacities * area
    if camera is not None:
        depths = camera.to_camera_space(cloud.positions)[:, 2]
        depths = np.maximum(np.abs(depths), camera.znear)
        scores = scores * (camera.fx * camera.fy) / (depths * depths)
    return scores


def rendered_importance_scores(
    cloud: GaussianCloud, cameras: Sequence[Camera]
) -> np.ndarray:
    """Measured blend energy of each Gaussian over the evaluation cameras.

    Runs the real pipeline (preprocess, tile binning, front-to-back
    compositing order) for every camera and accumulates each Gaussian's
    total blend weight ``sum_pixels T * alpha`` — exactly the coefficient
    its colour enters the frame with.  Unlike the geometric proxy this
    accounts for occlusion and early termination, so splats hidden behind
    opaque foreground rank at the bottom even if they are large: pruning
    low scores first changes the rendered frames as little as possible.

    One full projection + compositing pass per camera; meant for
    compression time, not the request path.  Returns a ``(N,)`` array of
    summed contributions (``0`` for Gaussians invisible from every camera).
    """
    from repro.gaussians.projection import preprocess
    from repro.gaussians.rasterize import (
        ALPHA_SKIP_THRESHOLD,
        TRANSMITTANCE_EPSILON,
        gaussian_alpha_block,
    )
    from repro.gaussians.sorting import bin_and_sort
    from repro.gaussians.tiles import TileGrid

    scores = np.zeros(len(cloud))
    if len(cloud) == 0:
        return scores
    if not cameras:
        raise ValueError("rendered importance needs at least one camera")
    for camera in cameras:
        projected, _ = preprocess(cloud, camera)
        if len(projected) == 0:
            continue
        grid = TileGrid(width=camera.width, height=camera.height)
        binning = bin_and_sort(projected, grid)
        for tile_id, gaussian_indices in binning.tile_lists.items():
            alpha = gaussian_alpha_block(
                grid.tile_pixel_centers(tile_id),
                projected.means[gaussian_indices],
                projected.cov_inverses[gaussian_indices],
                projected.opacities[gaussian_indices],
            )
            passes = alpha >= ALPHA_SKIP_THRESHOLD
            trail = np.empty((len(gaussian_indices) + 1, alpha.shape[1]))
            trail[0] = 1.0
            trail[1:] = np.where(passes, 1.0 - alpha, 1.0)
            np.cumprod(trail, axis=0, out=trail)
            before = trail[:-1]
            weight = before * alpha
            weight *= passes & (before >= TRANSMITTANCE_EPSILON)
            np.add.at(
                scores,
                projected.source_indices[gaussian_indices],
                weight.sum(axis=1),
            )
    return scores


def importance_scores(
    cloud: GaussianCloud,
    cameras: Union[None, Camera, Sequence[Camera]] = None,
) -> np.ndarray:
    """Rank Gaussians by rendering contribution, best method available.

    With evaluation ``cameras`` the measured blend energy
    (:func:`rendered_importance_scores`) is used; without, the geometric
    opacity-times-area proxy (:func:`geometric_importance_scores`).
    """
    if cameras is None:
        return geometric_importance_scores(cloud)
    if isinstance(cameras, Camera):
        cameras = [cameras]
    cameras = list(cameras)
    if not cameras:
        return geometric_importance_scores(cloud)
    return rendered_importance_scores(cloud, cameras)


@dataclass(frozen=True)
class LodPyramid:
    """Nested detail levels of one Gaussian cloud.

    Attributes
    ----------
    order:
        ``(N,)`` Gaussian indices sorted by descending importance (stable,
        so the pyramid is a pure function of the scores).
    level_sizes:
        Gaussians kept at each level, non-increasing;
        ``level_sizes[0] == N`` (level 0 is the full cloud).
    """

    order: np.ndarray = field(repr=False)
    level_sizes: Tuple[int, ...]

    def __post_init__(self) -> None:
        if not self.level_sizes:
            raise ValueError("a pyramid needs at least one level")
        if self.level_sizes[0] != len(self.order):
            raise ValueError("level 0 must keep every Gaussian")
        if any(
            later > earlier
            for earlier, later in zip(self.level_sizes, self.level_sizes[1:])
        ):
            raise ValueError("level sizes must be non-increasing")

    @property
    def num_levels(self) -> int:
        """Number of detail levels (level 0 = full detail)."""
        return len(self.level_sizes)

    def level_indices(self, level: int) -> np.ndarray:
        """Cloud indices of ``level``, ascending (preserves storage order).

        Levels are nested: ``level_indices(k + 1)`` is always a subset of
        ``level_indices(k)``.
        """
        if not 0 <= level < self.num_levels:
            raise IndexError(
                f"level {level} out of range for {self.num_levels} levels"
            )
        return np.sort(self.order[: self.level_sizes[level]])


def build_lod_pyramid(
    cloud: GaussianCloud,
    cameras: Union[None, Camera, Sequence[Camera]] = None,
    levels: int = DEFAULT_LOD_LEVELS,
    keep_ratio: float = DEFAULT_KEEP_RATIO,
) -> LodPyramid:
    """Rank ``cloud`` by importance and derive ``levels`` nested tiers.

    Level ``k`` keeps the top ``keep_ratio ** k`` fraction of Gaussians
    (at least one, for non-empty clouds), ranked by
    :func:`importance_scores` (measured blend energy when ``cameras`` are
    given, geometric proxy otherwise).  The ordering is deterministic:
    equal scores keep their original cloud order.
    """
    if levels < 1:
        raise ValueError("levels must be at least 1")
    if not 0.0 < keep_ratio <= 1.0:
        raise ValueError("keep_ratio must be in (0, 1]")
    scores = importance_scores(cloud, cameras=cameras)
    order = np.argsort(-scores, kind="stable")
    n = len(cloud)
    sizes = tuple(
        min(n, max(1, math.ceil(n * keep_ratio ** level))) if n else 0
        for level in range(levels)
    )
    return LodPyramid(order=order, level_sizes=sizes)


def _finest_level_within(store, scene_index: int, budget: float) -> int:
    """Finest level whose Gaussian count fits ``budget`` (coarsest if none)."""
    sizes = store.level_sizes(scene_index)
    for level, size in enumerate(sizes):
        if size <= budget:
            return level
    return len(sizes) - 1


@dataclass(frozen=True)
class FootprintLodPolicy:
    """Pick a detail level from the camera's screen-space scene footprint.

    The scene's bounding sphere is projected through the camera:
    ``footprint_px = pi * (radius * focal / distance)^2``, clamped to the
    viewport area.  The Gaussian budget is ``footprint_px /
    pixels_per_gaussian`` and the finest level that fits is served —
    zoomed-out or thumbnail viewpoints, where the whole scene covers few
    pixels, automatically degrade to coarse levels while close-ups keep
    full detail.

    Attributes
    ----------
    pixels_per_gaussian:
        Footprint pixels required to justify one Gaussian of detail.
        Smaller values bias toward full detail; larger values prune more
        aggressively.
    """

    pixels_per_gaussian: float = 8.0

    def __post_init__(self) -> None:
        if self.pixels_per_gaussian <= 0:
            raise ValueError("pixels_per_gaussian must be positive")

    def select_level(self, store, scene_index: int, camera: Camera) -> int:
        """Level for one request (see the class docstring for the rule).

        The footprint is always finite and non-negative, whatever the
        camera pose: a bounding sphere entirely behind the near plane has
        zero footprint (nothing of the scene is visible, so the coarsest —
        cheapest — level is served), a sphere *straddling* the camera
        plane fills the view (full viewport footprint, full detail), and
        only a sphere safely in front uses the projected-size formula.
        Degenerate bounds (NaN/infinite centre or radius) also fall back
        to the coarsest level rather than letting NaNs reach the level
        comparison and select a garbage level.
        """
        center, radius = store.scene_bounds(scene_index)
        center = np.asarray(center, dtype=np.float64)
        viewport = float(camera.width * camera.height)
        if not (np.all(np.isfinite(center)) and np.isfinite(radius)):
            footprint = 0.0
        elif radius <= 0.0:
            footprint = viewport
        else:
            depth = float(camera.to_camera_space(center)[0, 2])
            if depth + radius <= camera.znear:
                # Entirely behind the near plane: nothing visible.
                footprint = 0.0
            elif depth <= camera.znear:
                # Straddling the camera plane: the scene fills the view.
                footprint = viewport
            else:
                # Safely in front: EWA-style projected disc area, clamped
                # to the viewport.
                distance = float(np.linalg.norm(camera.camera_center - center))
                distance = max(distance, camera.znear)
                focal = math.sqrt(camera.fx * camera.fy)
                footprint = min(
                    math.pi * (radius * focal / distance) ** 2, viewport
                )
        return _finest_level_within(
            store, scene_index, footprint / self.pixels_per_gaussian
        )


@dataclass(frozen=True)
class BudgetLodPolicy:
    """Serve the finest level whose Gaussian count fits a fixed budget.

    An explicit quality/latency knob: a deployment that can afford at most
    ``max_gaussians`` per render (to hold a latency SLO, or to cap memory
    traffic on an accelerator) gets the best quality that fits.
    """

    max_gaussians: int

    def __post_init__(self) -> None:
        if self.max_gaussians < 1:
            raise ValueError("max_gaussians must be positive")

    def select_level(self, store, scene_index: int, camera: Camera) -> int:
        """Finest level of the scene that fits ``max_gaussians``."""
        return _finest_level_within(store, scene_index, self.max_gaussians)


def resolve_lod_policy(policy: Union[None, str, object]):
    """Normalize a policy argument to a policy object (or ``None``).

    Accepts ``None`` / ``"full"`` (always level 0), ``"footprint"`` (a
    default :class:`FootprintLodPolicy`), or any object with a
    ``select_level(store, scene_index, camera)`` method.
    """
    if policy is None:
        return None
    if isinstance(policy, str):
        if policy == "full":
            return None
        if policy == "footprint":
            return FootprintLodPolicy()
        raise ValueError(
            f"unknown LOD policy {policy!r}; choose 'full', 'footprint', "
            "or pass a policy object"
        )
    if not callable(getattr(policy, "select_level", None)):
        raise TypeError(
            "a LOD policy must provide select_level(store, scene_index, camera)"
        )
    return policy
