"""Scene compression and level-of-detail (LOD) subsystem.

GauRast attacks the 3DGS hot path by cutting per-Gaussian work and memory
traffic; this package attacks the same bottleneck from the storage side,
trading *controlled, measured* quality for large footprint and throughput
wins across the serving stack.  Three pieces compose:

* :mod:`repro.compression.codecs` — vectorized quantization codecs
  (``"fp64"`` lossless passthrough, ``"fp16"``, ``"int8"`` affine) with
  advertised per-field error bounds;
* :mod:`repro.compression.lod` — importance pruning (opacity x
  projected-area contribution) and nested LOD pyramids, plus the
  footprint/budget policies that pick a level per render request;
* :mod:`repro.compression.store` — :class:`CompressedSceneStore`, a
  drop-in quantized tier under ``RenderService`` /
  ``ShardedRenderService`` with ``.npz`` format v3 persistence (still
  loading v1/v2 archives losslessly).

Typical usage::

    from repro.compression import CompressedSceneStore, FootprintLodPolicy
    from repro.serving import RenderService

    store = CompressedSceneStore([scene_a, scene_b], codec="fp16", levels=3)
    service = RenderService(store, lod_policy=FootprintLodPolicy())
    report = service.serve(trace)     # levels picked per request
"""

from repro.compression.codecs import (
    CLOUD_FIELDS,
    CODECS,
    DEFAULT_CODEC,
    CompressedCloud,
    EncodedField,
    compress_cloud,
    decode_field,
    encode_field,
    raw_cloud_nbytes,
)
from repro.compression.lod import (
    DEFAULT_KEEP_RATIO,
    DEFAULT_LOD_LEVELS,
    BudgetLodPolicy,
    FootprintLodPolicy,
    LodPyramid,
    build_lod_pyramid,
    geometric_importance_scores,
    importance_scores,
    rendered_importance_scores,
    resolve_lod_policy,
)
from repro.compression.store import (
    COMPRESSED_FORMAT_VERSION,
    CompressedSceneRecord,
    CompressedSceneStore,
    load_store,
)

__all__ = [
    "BudgetLodPolicy",
    "CLOUD_FIELDS",
    "CODECS",
    "COMPRESSED_FORMAT_VERSION",
    "CompressedCloud",
    "CompressedSceneRecord",
    "CompressedSceneStore",
    "DEFAULT_CODEC",
    "DEFAULT_KEEP_RATIO",
    "DEFAULT_LOD_LEVELS",
    "EncodedField",
    "FootprintLodPolicy",
    "LodPyramid",
    "build_lod_pyramid",
    "compress_cloud",
    "decode_field",
    "encode_field",
    "geometric_importance_scores",
    "importance_scores",
    "load_store",
    "rendered_importance_scores",
    "raw_cloud_nbytes",
    "resolve_lod_policy",
]
