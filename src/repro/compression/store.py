"""Compressed multi-scene storage tier: quantized payloads + LOD pyramids.

A :class:`CompressedSceneStore` is a drop-in storage tier under the serving
layer: it keeps every scene's Gaussian cloud *quantized* (one codec per
store, see :mod:`repro.compression.codecs`) together with its importance
pyramid (:mod:`repro.compression.lod`), while cameras, names and index
bookkeeping reuse the flattened machinery of the parent
:class:`~repro.serving.store.SceneStore`.  ``get_cloud``/``get_scene`` take
a ``level`` argument, decode on demand, and return *valid* clouds, so the
whole ``RenderService`` / ``ShardedRenderService`` stack serves compressed
scenes without special cases.

Persistence is ``.npz`` **format version 3**: quantized field payloads,
affine parameters, importance orders and level sizes per scene, alongside
the same flat camera arrays as a version-2 archive.  :meth:`load` also
reads version-1 and version-2 archives, importing them as a lossless
(``"fp64"``) single-level tier so nothing is silently re-quantized.

Usage::

    from repro.compression import CompressedSceneStore

    store = CompressedSceneStore([scene_a, scene_b], codec="fp16", levels=3)
    store.compression_ratio            # e.g. ~4.0 for fp16
    coarse = store.get_scene(0, level=2)
    store.save("fleet-q.npz")          # format v3
    store = CompressedSceneStore.load("fleet-q.npz")
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, List, Optional, Union

import numpy as np

from repro.compression.codecs import (
    CLOUD_FIELDS,
    CompressedCloud,
    DEFAULT_CODEC,
    EncodedField,
    compress_cloud,
    raw_cloud_nbytes,
)
from repro.compression.lod import (
    DEFAULT_KEEP_RATIO,
    DEFAULT_LOD_LEVELS,
    LodPyramid,
    build_lod_pyramid,
)
from repro.gaussians.gaussian import GaussianCloud
from repro.gaussians.scene import GaussianScene
from repro.serving.store import CAMERA_FIELDS, SceneStore, bounding_sphere

#: Format identifier of compressed store archives.
COMPRESSED_FORMAT_VERSION = 3


def _empty_cloud() -> GaussianCloud:
    """A zero-Gaussian cloud used as the parent store's placeholder."""
    return GaussianCloud(
        positions=np.zeros((0, 3)),
        scales=np.zeros((0, 3)),
        rotations=np.zeros((0, 4)),
        opacities=np.zeros(0),
        sh_coeffs=np.zeros((0, 1, 3)),
    )


@dataclass
class CompressedSceneRecord:
    """One scene's quantized payload plus its LOD metadata.

    Attributes
    ----------
    cloud:
        The quantized Gaussian cloud.
    pyramid:
        Importance ordering and nested level sizes.
    center, radius:
        Bounding sphere of the Gaussian centres (drives footprint LOD).
    """

    cloud: CompressedCloud
    pyramid: LodPyramid
    center: np.ndarray = field(repr=False)
    radius: float


class CompressedSceneStore(SceneStore):
    """A :class:`~repro.serving.store.SceneStore` tier with quantized scenes.

    Parameters
    ----------
    scenes:
        Scenes to compress and add.
    codec:
        Quantization codec applied to every added scene (``"fp64"`` is the
        lossless tier; ``"fp16"``/``"int8"`` are lossy with advertised
        error bounds).
    levels, keep_ratio:
        LOD pyramid shape: ``levels`` nested tiers, each keeping
        ``keep_ratio`` of the previous one (see
        :func:`~repro.compression.lod.build_lod_pyramid`).

    Unlike the parent store, ``get_cloud``/``get_scene`` *decode* — they
    return fresh arrays, not views, so they are O(scene size) rather than
    O(1).  The serving layer's covariance and frame caches absorb the
    difference for hot scenes.
    """

    def __init__(
        self,
        scenes: Optional[Iterable[GaussianScene]] = None,
        codec: str = DEFAULT_CODEC,
        levels: int = DEFAULT_LOD_LEVELS,
        keep_ratio: float = DEFAULT_KEEP_RATIO,
    ):
        self.codec = codec
        self.levels = int(levels)
        self.keep_ratio = float(keep_ratio)
        self._records: List[CompressedSceneRecord] = []
        super().__init__(scenes)

    # ------------------------------------------------------------------ #
    # Writing
    # ------------------------------------------------------------------ #
    def add_scene(self, scene: GaussianScene) -> int:
        """Compress a scene with the store's codec and append it."""
        cloud = scene.cloud
        center, radius = bounding_sphere(cloud.positions)
        record = CompressedSceneRecord(
            cloud=compress_cloud(cloud, self.codec),
            pyramid=build_lod_pyramid(
                cloud, cameras=scene.cameras, levels=self.levels,
                keep_ratio=self.keep_ratio,
            ),
            center=center,
            radius=radius,
        )
        return self._adopt(record, scene)

    def _adopt(self, record: CompressedSceneRecord, scene: GaussianScene) -> int:
        """Register an already-compressed record (cameras via the parent)."""
        shell = GaussianScene(
            cloud=_empty_cloud(),
            cameras=scene.cameras,
            name=scene.name,
            descriptor_name=scene.descriptor_name,
        )
        index = super().add_scene(shell)
        self._records.append(record)
        return index

    def remove_scene(self, index: Union[int, str]) -> None:
        """Remove a scene and its compressed payload."""
        index = self.resolve_index(index)
        super().remove_scene(index)
        self._records.pop(index)

    def build_substore(self, indices) -> "CompressedSceneStore":
        """Sub-store carrying the selected scenes' payloads *verbatim*.

        Quantized payloads are shared, not re-encoded, so a sharded worker
        serves bit-identical frames to the parent store (re-quantizing a
        decoded lossy cloud would move the quantization grid).
        """
        substore = CompressedSceneStore(
            codec=self.codec, levels=self.levels, keep_ratio=self.keep_ratio
        )
        for index in indices:
            resolved = self.resolve_index(index)
            shell = GaussianScene(
                cloud=_empty_cloud(),
                cameras=self.get_cameras(resolved),
                name=self._names[resolved],
                descriptor_name=self._descriptors[resolved],
            )
            substore._adopt(self._records[resolved], shell)
        return substore

    def adopt_scene(self, source: SceneStore, index=0) -> int:
        """Copy one scene of ``source`` in, preserving its quantized payload.

        From another compressed tier the record (payload, pyramid, bounds)
        is shared verbatim — re-quantizing a decoded lossy cloud would move
        the quantization grid and break per-level bit-identity across the
        fleet.  From a plain store the scene is compressed with this
        store's codec, exactly like :meth:`add_scene`.
        """
        if not isinstance(source, CompressedSceneStore):
            return super().adopt_scene(source, index)
        resolved = source.resolve_index(index)
        shell = GaussianScene(
            cloud=_empty_cloud(),
            cameras=source.get_cameras(resolved),
            name=source._names[resolved],
            descriptor_name=source._descriptors[resolved],
        )
        return self._adopt(source._records[resolved], shell)

    @classmethod
    def from_store(
        cls,
        store: SceneStore,
        codec: str = DEFAULT_CODEC,
        levels: int = DEFAULT_LOD_LEVELS,
        keep_ratio: float = DEFAULT_KEEP_RATIO,
    ) -> "CompressedSceneStore":
        """Compress every scene of an existing store into a new tier."""
        return cls(
            (store.get_scene(index) for index in range(len(store))),
            codec=codec, levels=levels, keep_ratio=keep_ratio,
        )

    # ------------------------------------------------------------------ #
    # Reading (decode on demand)
    # ------------------------------------------------------------------ #
    def num_levels(self, index: Union[int, str]) -> int:
        """Detail levels of scene ``index`` (its pyramid depth)."""
        index = self.resolve_index(index)
        return self._records[index].pyramid.num_levels

    def level_sizes(self, index: Union[int, str]) -> tuple:
        """Gaussian count of each detail level, finest first."""
        index = self.resolve_index(index)
        return tuple(self._records[index].pyramid.level_sizes)

    def scene_bounds(self, index: Union[int, str]):
        """Bounding sphere ``(center, radius)`` recorded at compression time."""
        index = self.resolve_index(index)
        record = self._records[index]
        return record.center.copy(), record.radius

    def get_cloud(self, index: Union[int, str], level: int = 0) -> GaussianCloud:
        """Decode scene ``index`` at ``level`` (fresh arrays, not views).

        Coarse levels decode only the rows they keep, so the cost scales
        with the level's own Gaussian count, not the full scene's.
        """
        index = self.resolve_index(index)
        level = self._check_level(index, level)
        record = self._records[index]
        if level == 0:
            return record.cloud.decode()
        return record.cloud.decode(record.pyramid.level_indices(level))

    def error_bounds(self, index: Union[int, str]) -> dict:
        """Advertised per-field worst-case decode errors of one scene."""
        index = self.resolve_index(index)
        return self._records[index].cloud.error_bounds

    def scene_record(self, index: Union[int, str]) -> CompressedSceneRecord:
        """The quantized record behind one scene (payload-verbatim access).

        Storage tiers (:mod:`repro.serving.storage`) use this to persist
        or re-host the encoded payload without a decode/re-encode round
        trip, which is what keeps frames bit-identical across tiers.
        """
        return self._records[self.resolve_index(index)]

    # ------------------------------------------------------------------ #
    # Size accounting
    # ------------------------------------------------------------------ #
    @property
    def num_gaussians(self) -> int:
        """Total (full-detail) Gaussians across all stored scenes."""
        return sum(record.cloud.num_gaussians for record in self._records)

    def scene_nbytes(self, index: Union[int, str]) -> int:
        """Compressed payload bytes of one scene (cloud + cameras)."""
        index = self.resolve_index(index)
        cameras = int(self._cam_length[index]) * (16 + CAMERA_FIELDS) * 8
        return self._records[index].cloud.nbytes + cameras

    def scene_raw_nbytes(self, index: Union[int, str]) -> int:
        """Bytes the same scene would occupy uncompressed (fp64, no LOD)."""
        index = self.resolve_index(index)
        record = self._records[index]
        k = record.cloud.fields["sh_coeffs"].shape[1] if record.cloud.num_gaussians else 1
        return raw_cloud_nbytes(record.cloud.num_gaussians, k)

    @property
    def nbytes(self) -> int:
        """Payload bytes of the whole tier (compressed clouds + cameras)."""
        cameras = self._num_cameras * (16 + CAMERA_FIELDS) * 8
        per_scene = 5 * 8 * self._num_scenes
        clouds = sum(record.cloud.nbytes for record in self._records)
        orders = sum(record.pyramid.order.nbytes for record in self._records)
        return clouds + orders + cameras + per_scene

    @property
    def compression_ratio(self) -> float:
        """Uncompressed-to-compressed cloud payload ratio (1.0 when empty)."""
        compressed = sum(record.cloud.nbytes for record in self._records)
        if compressed == 0:
            return 1.0
        raw = sum(
            self.scene_raw_nbytes(index) for index in range(self._num_scenes)
        )
        return raw / compressed

    # ------------------------------------------------------------------ #
    # Persistence (format version 3)
    # ------------------------------------------------------------------ #
    def save(self, path: Union[str, Path]) -> Path:
        """Write the compressed tier to an ``.npz`` archive (format v3)."""
        path = Path(path)
        if path.suffix != ".npz":
            path = path.with_suffix(".npz")
        s, c = self._num_scenes, self._num_cameras

        arrays = {
            "camera_start": self._cam_start[:s],
            "camera_length": self._cam_length[:s],
            "camera_poses": self._poses[:c],
            "camera_intrinsics": self._intrinsics[:c],
        }
        scenes_meta = []
        for i, record in enumerate(self._records):
            fields_meta = {}
            for name in CLOUD_FIELDS:
                field = record.cloud.fields[name]
                arrays[f"s{i}_{name}_data"] = field.data
                if field.offsets is not None:
                    arrays[f"s{i}_{name}_offsets"] = field.offsets
                    arrays[f"s{i}_{name}_steps"] = field.steps
                fields_meta[name] = {
                    "shape": list(field.shape),
                    "error_bound": field.error_bound,
                }
            arrays[f"s{i}_order"] = record.pyramid.order
            scenes_meta.append(
                {
                    "name": self._names[i],
                    "descriptor_name": self._descriptors[i],
                    "codec": record.cloud.codec,
                    "fields": fields_meta,
                    "level_sizes": list(record.pyramid.level_sizes),
                    "center": [float(v) for v in record.center],
                    "radius": record.radius,
                }
            )
        metadata = {
            "format_version": COMPRESSED_FORMAT_VERSION,
            "codec": self.codec,
            "levels": self.levels,
            "keep_ratio": self.keep_ratio,
            "scenes": scenes_meta,
        }
        np.savez_compressed(path, metadata=json.dumps(metadata), **arrays)
        return path

    @classmethod
    def load(cls, path: Union[str, Path]) -> "CompressedSceneStore":
        """Load a compressed tier; v1/v2 archives import as lossless.

        Format-3 archives restore the quantized payloads verbatim.  A
        version-2 (plain store) or version-1 (single-scene) archive is
        imported with the ``"fp64"`` codec and a single detail level, so
        loading never silently degrades data.
        """
        path = Path(path)
        if not path.exists():
            raise FileNotFoundError(f"scene store archive not found: {path}")
        with np.load(path, allow_pickle=False) as archive:
            metadata = json.loads(str(archive["metadata"]))
            version = metadata.get("format_version")
            if version == COMPRESSED_FORMAT_VERSION:
                return cls._from_v3_archive(archive, metadata)
        if version == 2:
            return cls.from_store(SceneStore.load(path), codec="fp64", levels=1)
        if version == 1:
            from repro.gaussians.io import load_scene

            return cls([load_scene(path)], codec="fp64", levels=1)
        raise ValueError(f"unsupported scene store format version {version!r}")

    @classmethod
    def _from_v3_archive(cls, archive, metadata: dict) -> "CompressedSceneStore":
        """Rebuild the tier from an open format-3 archive."""
        store = cls(
            codec=metadata["codec"],
            levels=int(metadata["levels"]),
            keep_ratio=float(metadata["keep_ratio"]),
        )
        cam_start = np.array(archive["camera_start"], dtype=np.int64)
        cam_length = np.array(archive["camera_length"], dtype=np.int64)
        poses = np.array(archive["camera_poses"])
        intrinsics = np.array(archive["camera_intrinsics"])

        from repro.gaussians.camera import Camera

        for i, scene_meta in enumerate(metadata["scenes"]):
            fields = {}
            for name in CLOUD_FIELDS:
                field_meta = scene_meta["fields"][name]
                offsets = steps = None
                if f"s{i}_{name}_offsets" in archive:
                    offsets = np.array(archive[f"s{i}_{name}_offsets"])
                    steps = np.array(archive[f"s{i}_{name}_steps"])
                fields[name] = EncodedField(
                    codec=scene_meta["codec"],
                    data=np.array(archive[f"s{i}_{name}_data"]),
                    shape=tuple(field_meta["shape"]),
                    offsets=offsets,
                    steps=steps,
                    error_bound=float(field_meta["error_bound"]),
                )
            order = np.array(archive[f"s{i}_order"], dtype=np.int64)
            record = CompressedSceneRecord(
                cloud=CompressedCloud(
                    codec=scene_meta["codec"], fields=fields,
                    num_gaussians=len(order),
                ),
                pyramid=LodPyramid(
                    order=order, level_sizes=tuple(scene_meta["level_sizes"])
                ),
                center=np.array(scene_meta["center"], dtype=np.float64),
                radius=float(scene_meta["radius"]),
            )
            cameras = []
            for row in range(cam_start[i], cam_start[i] + cam_length[i]):
                width, height, fx, fy, cx, cy, znear, zfar = intrinsics[row]
                cameras.append(
                    Camera(
                        width=int(width), height=int(height), fx=fx, fy=fy,
                        cx=cx, cy=cy, world_to_camera=poses[row],
                        znear=znear, zfar=zfar,
                    )
                )
            shell = GaussianScene(
                cloud=_empty_cloud(),
                cameras=cameras,
                name=scene_meta["name"],
                descriptor_name=scene_meta["descriptor_name"],
            )
            store._adopt(record, shell)
        return store


def load_store(path: Union[str, Path]) -> SceneStore:
    """Open any scene-store archive with the right tier for its format.

    Version-3 archives come back as a :class:`CompressedSceneStore`;
    version-2 (and single-scene version-1) archives come back as a plain
    :class:`~repro.serving.store.SceneStore`; version-4 paged directories
    come back as a :class:`~repro.serving.storage.paged.PagedSceneStore`.
    """
    path = Path(path)
    if not path.exists():
        raise FileNotFoundError(f"scene store archive not found: {path}")
    from repro.serving.storage.paged import PagedSceneStore, is_paged_archive

    if is_paged_archive(path):
        return PagedSceneStore(path)
    with np.load(path, allow_pickle=False) as archive:
        version = json.loads(str(archive["metadata"])).get("format_version")
    if version == COMPRESSED_FORMAT_VERSION:
        return CompressedSceneStore.load(path)
    if version == 1:
        from repro.gaussians.io import load_scene

        store = SceneStore()
        store.add_scene(load_scene(path))
        return store
    return SceneStore.load(path)
