"""Quantization codecs for Gaussian-cloud fields.

GauRast's core argument is that per-Gaussian memory traffic dominates the
rasterization hot path; the cheapest byte is the one never fetched.  This
module provides the *storage* half of that trade: vectorized codecs that
shrink each field of a :class:`~repro.gaussians.gaussian.GaussianCloud`
with a known, advertised worst-case error:

* ``"fp64"`` — lossless passthrough (the reference tier; decode is
  ``np.array_equal``-identical to the input);
* ``"fp16"`` — IEEE half-precision storage, 4x smaller, with an absolute
  error bound derived from the field's magnitude;
* ``"int8"`` — 8-bit affine quantization with per-channel ``offset`` /
  ``step`` parameters, 8x smaller, error bounded by half a quantization
  step.

Every encode returns an :class:`EncodedField` that carries the packed
payload *and* its advertised ``error_bound``; property tests
(``tests/test_compression_codecs.py``) verify the bound holds on random
clouds, so downstream consumers (LOD serving, the compressed store) can
treat it as a contract.

Usage::

    from repro.compression import compress_cloud

    compressed = compress_cloud(cloud, codec="int8")
    compressed.nbytes                    # payload bytes actually stored
    compressed.error_bounds["positions"] # worst-case abs decode error
    restored = compressed.decode()       # a valid GaussianCloud
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np

from repro.gaussians.gaussian import GaussianCloud

#: Known codec names, from heaviest to lightest storage.
CODECS = ("fp64", "fp16", "int8")

#: Codec used when callers do not choose one: half precision keeps quality
#: comfortably above the serving PSNR floor while quartering the footprint.
DEFAULT_CODEC = "fp16"

#: Cloud fields covered by a codec, in a fixed serialization order.
CLOUD_FIELDS = ("positions", "scales", "rotations", "opacities", "sh_coeffs")

#: Number of int8 quantization bins (uint8 payload).
_INT8_BINS = 255

#: Relative rounding error of fp16 (10 mantissa bits, safety factor 2) and
#: the absolute quantum of its subnormal range.
_FP16_RELATIVE = 2.0 ** -10
_FP16_SUBNORMAL = 2.0 ** -24


def _require_known(codec: str) -> str:
    if codec not in CODECS:
        raise ValueError(f"unknown codec {codec!r}; choose from {CODECS}")
    return codec


@dataclass(frozen=True)
class EncodedField:
    """One quantized cloud field: packed payload plus decode parameters.

    Attributes
    ----------
    codec:
        Codec that produced the payload (one of :data:`CODECS`).
    data:
        Packed payload array (``float64``/``float16``/``uint8`` depending on
        the codec).
    shape:
        Original field shape, restored by :func:`decode_field`.
    offsets, steps:
        Per-channel affine dequantization parameters (``int8`` only; the
        channel axis is the flattened trailing axes of the field).
    error_bound:
        Advertised worst-case absolute error of ``decode(encode(x)) - x``,
        valid for every element of the field.  ``0.0`` for ``"fp64"``.
    """

    codec: str
    data: np.ndarray = field(repr=False)
    shape: Tuple[int, ...]
    offsets: Optional[np.ndarray] = field(repr=False)
    steps: Optional[np.ndarray] = field(repr=False)
    error_bound: float

    @property
    def nbytes(self) -> int:
        """Payload bytes including the affine parameters (if any)."""
        total = self.data.nbytes
        if self.offsets is not None:
            total += self.offsets.nbytes
        if self.steps is not None:
            total += self.steps.nbytes
        return total


def encode_field(values: np.ndarray, codec: str) -> EncodedField:
    """Encode one float array with ``codec``, returning the packed field.

    The input may have any shape; trailing axes become the per-channel axis
    of the ``int8`` affine parameters (so a ``(N, 3)`` positions array gets
    one ``offset``/``step`` pair per coordinate).
    """
    _require_known(codec)
    values = np.asarray(values, dtype=np.float64)
    shape = values.shape

    if codec == "fp64":
        return EncodedField(
            codec=codec, data=values.copy(), shape=shape,
            offsets=None, steps=None, error_bound=0.0,
        )

    if codec == "fp16":
        max_abs = float(np.max(np.abs(values))) if values.size else 0.0
        if max_abs > float(np.finfo(np.float16).max):
            raise ValueError(
                f"field magnitude {max_abs:g} overflows fp16; use fp64 or "
                "rescale the scene"
            )
        bound = max_abs * _FP16_RELATIVE + _FP16_SUBNORMAL
        return EncodedField(
            codec=codec, data=values.astype(np.float16), shape=shape,
            offsets=None, steps=None, error_bound=bound if values.size else 0.0,
        )

    # codec == "int8": per-channel affine quantization over the trailing axes.
    # The channel count is computed explicitly because reshape(-1) cannot
    # infer a dimension for zero-size arrays.
    if values.ndim > 1:
        channels = int(np.prod(values.shape[1:])) or 1
        flat = values.reshape(len(values), channels)
    else:
        flat = values.reshape(-1, 1)
    if flat.size:
        offsets = flat.min(axis=0)
        spans = flat.max(axis=0) - offsets
    else:
        offsets = np.zeros(flat.shape[1])
        spans = np.zeros(flat.shape[1])
    steps = spans / _INT8_BINS
    safe_steps = np.where(steps > 0.0, steps, 1.0)
    codes = np.clip(
        np.rint((flat - offsets) / safe_steps), 0, _INT8_BINS
    ).astype(np.uint8)
    # Half a quantization step, plus slack for the float64 round trip of
    # offset + code * step.
    max_abs = float(np.max(np.abs(flat))) if flat.size else 0.0
    bound = float(steps.max() / 2.0 + 8.0 * np.finfo(np.float64).eps * max(1.0, max_abs)) if flat.size else 0.0
    return EncodedField(
        codec=codec, data=codes, shape=shape,
        offsets=offsets, steps=steps, error_bound=bound,
    )


def decode_field(field: EncodedField, indices=None) -> np.ndarray:
    """Decode an :class:`EncodedField` back to a float64 array.

    The result differs from the encoded input by at most
    ``field.error_bound`` per element (exactly zero for ``"fp64"``).
    ``indices`` decodes only the selected leading-axis rows — identical to
    ``decode_field(field)[indices]`` at a fraction of the cost, which is
    what lets a coarse LOD level skip the Gaussians it pruned.
    """
    data = field.data if indices is None else field.data[indices]
    if field.codec == "fp64":
        return data.copy() if indices is None else data
    if field.codec == "fp16":
        return data.astype(np.float64)
    decoded = field.offsets + data.astype(np.float64) * field.steps
    shape = field.shape if indices is None else (len(data),) + field.shape[1:]
    return decoded.reshape(shape)


@dataclass(frozen=True)
class CompressedCloud:
    """A Gaussian cloud with every field quantized by one codec.

    Decoding yields a *valid* :class:`~repro.gaussians.gaussian.GaussianCloud`:
    decoded scales are clamped to stay strictly positive and opacities to
    ``[0, 1]``.  Both clamps move a decoded value *toward* its original
    (which satisfied the constraints), so they never increase the decode
    error beyond the advertised bounds.
    """

    codec: str
    fields: Dict[str, EncodedField]
    num_gaussians: int

    @property
    def nbytes(self) -> int:
        """Total payload bytes across all encoded fields."""
        return sum(field.nbytes for field in self.fields.values())

    @property
    def error_bounds(self) -> Dict[str, float]:
        """Advertised per-field worst-case absolute decode errors."""
        return {name: field.error_bound for name, field in self.fields.items()}

    def decode(self, indices=None) -> GaussianCloud:
        """Reconstruct the cloud (bit-identical for the ``"fp64"`` codec).

        ``indices`` reconstructs only the selected Gaussians — equal to
        ``decode().subset(indices)`` while decoding just those rows.
        """
        decoded = {
            name: decode_field(field, indices)
            for name, field in self.fields.items()
        }
        tiny = float(np.finfo(np.float64).tiny)
        decoded["scales"] = np.maximum(decoded["scales"], tiny)
        decoded["opacities"] = np.clip(decoded["opacities"], 0.0, 1.0)
        return GaussianCloud(**decoded)


def compress_cloud(cloud: GaussianCloud, codec: str = DEFAULT_CODEC) -> CompressedCloud:
    """Quantize every field of ``cloud`` with ``codec``.

    Returns a :class:`CompressedCloud` whose :meth:`~CompressedCloud.decode`
    round-trips within the advertised per-field error bounds.
    """
    _require_known(codec)
    fields = {
        name: encode_field(getattr(cloud, name), codec) for name in CLOUD_FIELDS
    }
    return CompressedCloud(codec=codec, fields=fields, num_gaussians=len(cloud))


def raw_cloud_nbytes(num_gaussians: int, sh_coeff_count: int) -> int:
    """Bytes of one uncompressed (fp64) cloud with ``sh_coeff_count`` SH terms.

    The reference against which :attr:`CompressedCloud.nbytes` defines a
    compression ratio: positions (3) + scales (3) + rotations (4) +
    opacity (1) + SH (3 per coefficient), eight bytes each.
    """
    return num_gaussians * (3 + 3 + 4 + 1 + 3 * sh_coeff_count) * 8
