"""Energy and power model of the GauRast rasterizer.

Energy is assembled bottom-up per evaluated Gaussian-pixel fragment:

* **compute** — the per-fragment operation counts of Table II's Gaussian
  column priced with the per-operation energies of the functional units;
* **staging** — clock and register (flip-flop) energy, modelled as a fixed
  fraction of the compute energy;
* **SRAM** — the pixel accumulator read-modify-write in the tile buffer plus
  the (amortised) primitive parameter read;
* **control** — dispatch, sequencing and result collection;
* **DRAM** — streaming every tile's primitive batch from memory once plus
  the pixel state write-back, amortised over the frame;
* **leakage** — static power of the module instances over the frame time.

Summing these for the scaled configuration and dividing into the baseline's
rasterization energy reproduces the ~24x energy-efficiency improvement of
Fig. 10 (and the slightly lower ~22x for the Mini-Splatting workload, whose
shallower tiles benefit less from early termination).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.config import GauRastConfig, SCALED_CONFIG
from repro.hardware.multi import RasterizationEstimate
from repro.hardware.pe import GAUSSIAN_SUBTASK_OPS, subtask_totals
from repro.hardware.units import (
    DRAM_ENERGY_PJ_PER_BYTE,
    SRAM_ENERGY_PJ_PER_BYTE,
    unit_cost,
)

#: Register/clock-tree energy as a fraction of the datapath compute energy.
STAGING_ENERGY_FACTOR = 0.8

#: Dispatch/control energy per evaluated fragment, pJ.
CONTROL_ENERGY_PJ_PER_FRAGMENT = 3.0

#: Static (leakage) power of one 16-PE module instance, W.
LEAKAGE_W_PER_INSTANCE = 0.025


@dataclass(frozen=True)
class EnergyBreakdown:
    """Per-frame rasterization energy of the GauRast design, in joules."""

    compute_j: float
    staging_j: float
    sram_j: float
    control_j: float
    dram_j: float
    leakage_j: float

    @property
    def total_j(self) -> float:
        """Total rasterization energy per frame."""
        return (
            self.compute_j
            + self.staging_j
            + self.sram_j
            + self.control_j
            + self.dram_j
            + self.leakage_j
        )

    def average_power_w(self, runtime_seconds: float) -> float:
        """Average power over the rasterization runtime."""
        if runtime_seconds <= 0:
            raise ValueError("runtime_seconds must be positive")
        return self.total_j / runtime_seconds


class EnergyModel:
    """Computes per-fragment and per-frame energy for a configuration."""

    def __init__(self, config: GauRastConfig = SCALED_CONFIG):
        self.config = config

    # ------------------------------------------------------------------ #
    # Per-fragment components
    # ------------------------------------------------------------------ #
    def compute_energy_per_fragment_pj(self) -> float:
        """Datapath energy of one evaluated Gaussian fragment."""
        precision = self.config.precision
        totals = subtask_totals(GAUSSIAN_SUBTASK_OPS)
        return sum(
            count * unit_cost(kind, precision).energy_pj
            for kind, count in totals.items()
        )

    def staging_energy_per_fragment_pj(self) -> float:
        """Register and clock energy of one evaluated fragment."""
        return STAGING_ENERGY_FACTOR * self.compute_energy_per_fragment_pj()

    def sram_energy_per_fragment_pj(self) -> float:
        """Tile-buffer energy of one evaluated fragment.

        The pixel accumulator (colour + transmittance) is read and written
        once per fragment; the primitive parameters are read once per PE per
        primitive and amortised over the pixels the PE owns.
        """
        config = self.config
        pixel_bytes = 2 * config.pixel_state_bytes
        primitive_bytes = config.primitive_bytes / config.pixels_per_pe
        return (pixel_bytes + primitive_bytes) * SRAM_ENERGY_PJ_PER_BYTE

    def energy_per_fragment_pj(self) -> float:
        """Total on-chip energy of one evaluated fragment (no DRAM/leakage)."""
        return (
            self.compute_energy_per_fragment_pj()
            + self.staging_energy_per_fragment_pj()
            + self.sram_energy_per_fragment_pj()
            + CONTROL_ENERGY_PJ_PER_FRAGMENT
        )

    # ------------------------------------------------------------------ #
    # Per-frame energy
    # ------------------------------------------------------------------ #
    def frame_energy(self, estimate: RasterizationEstimate) -> EnergyBreakdown:
        """Energy of rasterizing one frame described by ``estimate``."""
        fragments = estimate.fragments_evaluated
        compute = fragments * self.compute_energy_per_fragment_pj() * 1e-12
        staging = fragments * self.staging_energy_per_fragment_pj() * 1e-12
        sram = fragments * self.sram_energy_per_fragment_pj() * 1e-12
        control = fragments * CONTROL_ENERGY_PJ_PER_FRAGMENT * 1e-12
        dram = estimate.dram_bytes * DRAM_ENERGY_PJ_PER_BYTE * 1e-12
        leakage = (
            LEAKAGE_W_PER_INSTANCE
            * self.config.num_instances
            * estimate.runtime_seconds
        )
        return EnergyBreakdown(
            compute_j=compute,
            staging_j=staging,
            sram_j=sram,
            control_j=control,
            dram_j=dram,
            leakage_j=leakage,
        )

    def frame_energy_j(self, estimate: RasterizationEstimate) -> float:
        """Convenience wrapper returning the total frame energy."""
        return self.frame_energy(estimate).total_j
