"""Ping-pong tile buffers of the enhanced rasterizer (Fig. 7(b)).

Tile Buffers A and B alternate roles: while the PE block consumes the
primitives staged in one buffer, the cache/memory interface streams the next
batch of primitives (and, at tile boundaries, the next tile's pixel state)
into the other.  The model tracks buffer occupancy, the number of bytes
moved through the memory interface, and the cycles the loads take so the
instance simulator can decide whether loading is hidden behind computation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.hardware.config import GauRastConfig


class TileBufferError(RuntimeError):
    """Raised on invalid buffer operations (overflow, use of an empty buffer)."""


@dataclass
class TrafficCounters:
    """Bytes moved through the cache/memory interface."""

    primitive_bytes_read: int = 0
    pixel_bytes_read: int = 0
    pixel_bytes_written: int = 0

    @property
    def total_bytes(self) -> int:
        """Total traffic in bytes."""
        return (
            self.primitive_bytes_read
            + self.pixel_bytes_read
            + self.pixel_bytes_written
        )


@dataclass
class TileBuffer:
    """One of the two tile buffers."""

    name: str
    capacity: int
    primitives: Optional[np.ndarray] = field(default=None, repr=False)
    extra: Optional[dict] = None

    def load(self, primitives: np.ndarray, extra: Optional[dict] = None) -> None:
        """Fill the buffer with a batch of primitives (and optional payload)."""
        primitives = np.asarray(primitives)
        if len(primitives) > self.capacity:
            raise TileBufferError(
                f"buffer {self.name}: batch of {len(primitives)} primitives exceeds "
                f"capacity {self.capacity}"
            )
        self.primitives = primitives
        self.extra = extra

    def drain(self) -> np.ndarray:
        """Return the staged primitives and mark the buffer empty."""
        if self.primitives is None:
            raise TileBufferError(f"buffer {self.name} drained while empty")
        primitives = self.primitives
        self.primitives = None
        return primitives

    @property
    def occupancy(self) -> int:
        """Number of primitives currently staged."""
        return 0 if self.primitives is None else len(self.primitives)

    @property
    def is_empty(self) -> bool:
        """Whether the buffer holds no primitives."""
        return self.primitives is None


class PingPongBuffers:
    """The pair of tile buffers plus the memory-interface accounting."""

    def __init__(self, config: GauRastConfig):
        self.config = config
        self.buffers = (
            TileBuffer("A", config.tile_buffer_primitive_capacity),
            TileBuffer("B", config.tile_buffer_primitive_capacity),
        )
        self._load_index = 0
        self.traffic = TrafficCounters()
        self.load_cycles_total = 0
        self.batches_loaded = 0

    @property
    def load_target(self) -> TileBuffer:
        """The buffer currently designated for loading."""
        return self.buffers[self._load_index]

    @property
    def compute_source(self) -> TileBuffer:
        """The buffer currently designated for computation."""
        return self.buffers[1 - self._load_index]

    def swap(self) -> None:
        """Exchange the load and compute roles of the two buffers."""
        self._load_index = 1 - self._load_index

    def load_batch(self, primitives: np.ndarray, extra: Optional[dict] = None) -> int:
        """Stage a batch of primitives into the load buffer.

        Returns the number of cycles the memory interface needs for the
        transfer; the caller decides whether those cycles are hidden behind
        the PE block's computation on the other buffer.
        """
        self.load_target.load(primitives, extra)
        num = len(primitives)
        self.traffic.primitive_bytes_read += num * self.config.primitive_bytes
        cycles = self.config.primitive_load_cycles(num)
        self.load_cycles_total += cycles
        self.batches_loaded += 1
        return cycles

    def record_pixel_readwrite(self, num_pixels: int) -> None:
        """Account for a tile's pixel state being read in and written back."""
        bytes_per_pixel = self.config.pixel_state_bytes
        self.traffic.pixel_bytes_read += num_pixels * bytes_per_pixel
        self.traffic.pixel_bytes_written += num_pixels * bytes_per_pixel


def split_into_batches(items: np.ndarray, capacity: int) -> List[np.ndarray]:
    """Split a tile's primitive list into buffer-sized batches (in order)."""
    if capacity <= 0:
        raise ValueError("capacity must be positive")
    items = np.asarray(items)
    if len(items) == 0:
        return []
    return [items[i : i + capacity] for i in range(0, len(items), capacity)]
