"""The dual-mode Processing Element (Fig. 7(c)).

A PE applies one primitive (a Gaussian or a triangle) to the pixels it owns.
It contains three groups of logic:

* **shared logic** — the 9 adders and 9 multipliers already present in the
  triangle rasterizer, reused for both primitive types;
* **triangle-only logic** — the divider used by the barycentric-weight
  computation;
* **Gaussian-only logic** — the 2 adders, 1 multiplier and 1 exponentiation
  unit added by GauRast, plus the input multiplexers that select between the
  two modes.

The implementation here is *functional*: every arithmetic step goes through
the :class:`~repro.hardware.units.DatapathUnits` so the result is rounded to
the datapath precision and the operation is tallied.  The same code path is
exercised by the cycle-level instance simulator, which is how the paper's
"RTL output matches the software implementation" validation is reproduced.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

import numpy as np

from repro.gaussians.rasterize import (
    ALPHA_MAX,
    ALPHA_SKIP_THRESHOLD,
    TRANSMITTANCE_EPSILON,
)
from repro.hardware.config import GauRastConfig
from repro.hardware.fp import Precision, quantize
from repro.hardware.units import DatapathUnits, OperationTally

#: Hardware resource inventory of one PE, by logic group (unit kind -> count).
#: The shared and triangle-only groups exist in the original triangle
#: rasterizer; only the Gaussian-only group is added by GauRast
#: ("two adders, one multiplier, and one exponentiation unit").
PE_RESOURCES: Dict[str, Dict[str, int]] = {
    "shared": {"add": 9, "mul": 9},
    "triangle_only": {"div": 1},
    "gaussian_only": {"add": 2, "mul": 1, "exp": 1, "mux": 2},
}

#: Per-fragment operation counts of the four rasterization subtasks of
#: Table II, for each primitive type.  These are the operations the
#: functional datapath below actually performs.
GAUSSIAN_SUBTASK_OPS: Dict[str, Dict[str, int]] = {
    "coordinate_shift": {"add": 2},
    "probability": {"mul": 8, "add": 2, "exp": 1},
    "color_weight": {"mul": 4},
    "accumulation": {"add": 4, "mul": 1},
}

TRIANGLE_SUBTASK_OPS: Dict[str, Dict[str, int]] = {
    "coordinate_shift": {"add": 2},
    "intersection": {"mul": 4, "add": 4, "div": 2},
    "uv_weight": {"mul": 9, "add": 6},
    "depth_hold": {"add": 1},
}


def subtask_totals(table: Dict[str, Dict[str, int]]) -> Dict[str, int]:
    """Sum a subtask table into per-kind totals."""
    totals: Dict[str, int] = {}
    for ops in table.values():
        for kind, count in ops.items():
            totals[kind] = totals.get(kind, 0) + count
    return totals


@dataclass
class OperationCounts:
    """Operation counts accumulated by a PE (thin wrapper over the tally)."""

    tally: OperationTally = field(default_factory=OperationTally)

    def as_dict(self) -> Dict[str, int]:
        """Copy of the per-kind operation counts."""
        return dict(self.tally.counts)

    def total(self) -> int:
        """Total operation count."""
        return self.tally.total()


@dataclass
class GaussianPixelState:
    """Accumulator state of the pixels owned by one PE in Gaussian mode."""

    color: np.ndarray = field(repr=False)  # (P, 3)
    transmittance: np.ndarray = field(repr=False)  # (P,)

    @classmethod
    def initial(cls, num_pixels: int) -> "GaussianPixelState":
        return cls(
            color=np.zeros((num_pixels, 3), dtype=np.float64),
            transmittance=np.ones(num_pixels, dtype=np.float64),
        )


@dataclass
class TrianglePixelState:
    """Accumulator state of the pixels owned by one PE in triangle mode."""

    color: np.ndarray = field(repr=False)  # (P, 3)
    depth: np.ndarray = field(repr=False)  # (P,)
    uv: np.ndarray = field(repr=False)  # (P, 2)

    @classmethod
    def initial(cls, num_pixels: int, background=(0.0, 0.0, 0.0)) -> "TrianglePixelState":
        color = np.empty((num_pixels, 3), dtype=np.float64)
        color[:] = np.asarray(background, dtype=np.float64)
        return cls(
            color=color,
            depth=np.full(num_pixels, np.inf, dtype=np.float64),
            uv=np.zeros((num_pixels, 2), dtype=np.float64),
        )


class ProcessingElement:
    """One GauRast Processing Element.

    Parameters
    ----------
    config:
        Hardware configuration (precision and timing parameters).
    tally:
        Optional shared operation tally; by default each PE keeps its own.
    """

    def __init__(self, config: GauRastConfig, tally: OperationTally | None = None):
        self.config = config
        self.units = DatapathUnits(config.precision, tally or OperationTally())
        self.fragments_evaluated = 0
        self.fragments_skipped = 0
        self.busy_cycles = 0

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def precision(self) -> Precision:
        """Datapath precision."""
        return self.config.precision

    @property
    def operation_counts(self) -> OperationCounts:
        """Operations performed so far."""
        return OperationCounts(tally=self.units.tally)

    def reset_counters(self) -> None:
        """Clear operation, fragment and cycle counters."""
        self.units.reset()
        self.fragments_evaluated = 0
        self.fragments_skipped = 0
        self.busy_cycles = 0

    # ------------------------------------------------------------------ #
    # Gaussian mode
    # ------------------------------------------------------------------ #
    def apply_gaussian(
        self,
        pixel_centers: np.ndarray,
        state: GaussianPixelState,
        primitive: np.ndarray,
    ) -> GaussianPixelState:
        """Apply one Gaussian primitive to this PE's pixels.

        Parameters
        ----------
        pixel_centers:
            ``(P, 2)`` coordinates of the pixels owned by this PE.
        state:
            Current accumulator state; updated in place and returned.
        primitive:
            The 9 rasterizer inputs
            ``[conic_a, conic_b, conic_c, opacity, mu_x, mu_y, r, g, b]``.

        Notes
        -----
        Pixels whose transmittance has fallen below the early-termination
        threshold are skipped entirely (no datapath activity); this per-pixel
        termination is an advantage of the PE organisation over the CUDA
        warp execution, where a lane's early exit does not free its slot.
        """
        primitive = quantize(primitive, self.precision)
        conic_a, conic_b, conic_c, opacity, mu_x, mu_y = primitive[:6]
        color = primitive[6:9]

        active = state.transmittance >= TRANSMITTANCE_EPSILON
        num_active = int(active.sum())
        self.fragments_skipped += len(pixel_centers) - num_active
        if num_active == 0:
            return state
        self.fragments_evaluated += num_active
        self.busy_cycles += num_active * self.config.gaussian_cycles_per_fragment

        pixels = quantize(pixel_centers[active], self.precision)
        adder = self.units.adder
        multiplier = self.units.multiplier
        exponent = self.units.exponent

        # Subtask 1: coordinate shift.
        dx = adder.sub(pixels[:, 0], mu_x)
        dy = adder.sub(pixels[:, 1], mu_y)

        # Subtask 2: Gaussian probability computation.
        dx2 = multiplier.mul(dx, dx)
        dy2 = multiplier.mul(dy, dy)
        a_dx2 = multiplier.mul(conic_a, dx2)
        c_dy2 = multiplier.mul(conic_c, dy2)
        quad = adder.add(a_dx2, c_dy2)
        half_quad = multiplier.mul(-0.5, quad)
        b_dx = multiplier.mul(conic_b, dx)
        b_dxdy = multiplier.mul(b_dx, dy)
        power = adder.sub(half_quad, b_dxdy)
        exp_power = exponent.exp(np.minimum(power, 0.0))
        alpha = multiplier.mul(opacity, exp_power)
        # A positive exponent cannot occur for a valid conic; guard exactly
        # like the reference rasterizer by dropping such fragments.
        alpha = np.where(power > 0.0, 0.0, np.minimum(alpha, ALPHA_MAX))

        contributes = alpha >= ALPHA_SKIP_THRESHOLD
        if np.any(contributes):
            transmittance = state.transmittance[active]

            # Subtask 3: colour weight computation.
            weight = multiplier.mul(transmittance, alpha)
            weighted_color = multiplier.mul(weight[:, np.newaxis], color[np.newaxis, :])

            # Subtask 4: colour accumulation and transmittance update.
            new_color = adder.add(state.color[active], weighted_color)
            one_minus_alpha = adder.sub(1.0, alpha)
            new_transmittance = multiplier.mul(transmittance, one_minus_alpha)

            active_indices = np.nonzero(active)[0]
            update = active_indices[contributes]
            state.color[update] = new_color[contributes]
            state.transmittance[update] = new_transmittance[contributes]
        return state

    def finalize_gaussian(
        self, state: GaussianPixelState, background=(0.0, 0.0, 0.0)
    ) -> np.ndarray:
        """Composite the background under the remaining transmittance."""
        background = quantize(np.asarray(background, dtype=np.float64), self.precision)
        contribution = self.units.multiplier.mul(
            state.transmittance[:, np.newaxis], background[np.newaxis, :]
        )
        return self.units.adder.add(state.color, contribution)

    # ------------------------------------------------------------------ #
    # Triangle mode
    # ------------------------------------------------------------------ #
    def apply_triangle(
        self,
        pixel_centers: np.ndarray,
        state: TrianglePixelState,
        primitive: np.ndarray,
        colors: np.ndarray,
        uvs: np.ndarray,
    ) -> TrianglePixelState:
        """Apply one screen-space triangle to this PE's pixels.

        Parameters
        ----------
        pixel_centers:
            ``(P, 2)`` pixel centres owned by this PE.
        state:
            Z-buffered accumulator state, updated in place and returned.
        primitive:
            The 9 rasterizer inputs ``[x0, y0, z0, x1, y1, z1, x2, y2, z2]``.
        colors:
            ``(3, 3)`` per-vertex colours.
        uvs:
            ``(3, 2)`` per-vertex texture coordinates.
        """
        primitive = quantize(primitive, self.precision)
        vertices = primitive.reshape(3, 3)
        v0, v1, v2 = vertices[:, :2]
        depths = vertices[:, 2]
        colors = quantize(colors, self.precision)
        uvs = quantize(uvs, self.precision)

        num_pixels = len(pixel_centers)
        self.fragments_evaluated += num_pixels
        self.busy_cycles += num_pixels * self.config.triangle_cycles_per_fragment

        pixels = quantize(pixel_centers, self.precision)
        adder = self.units.adder
        multiplier = self.units.multiplier
        divider = self.units.divider

        # Triangle setup (per primitive, not per fragment): edge vectors and
        # signed area.
        edge1 = adder.sub(v1, v0)
        edge2 = adder.sub(v2, v0)
        area = adder.sub(
            multiplier.mul(edge1[0], edge2[1]), multiplier.mul(edge1[1], edge2[0])
        )
        if abs(float(area)) < 1e-12:
            return state

        # Subtask 1: coordinate shift.
        dx = adder.sub(pixels[:, 0], v0[0])
        dy = adder.sub(pixels[:, 1], v0[1])

        # Subtask 2: intersection detection (edge functions + division).
        e1 = adder.sub(multiplier.mul(dx, edge2[1]), multiplier.mul(dy, edge2[0]))
        e2 = adder.sub(multiplier.mul(edge1[0], dy), multiplier.mul(edge1[1], dx))
        w1 = divider.div(e1, area)
        w2 = divider.div(e2, area)
        w0 = adder.sub(adder.sub(1.0, w1), w2)
        inside = (w0 >= 0.0) & (w1 >= 0.0) & (w2 >= 0.0)

        # Subtask 3: UV weight computation (attribute interpolation).
        weights = np.stack([w0, w1, w2], axis=1)
        frag_depth = adder.add(
            adder.add(
                multiplier.mul(weights[:, 0], depths[0]),
                multiplier.mul(weights[:, 1], depths[1]),
            ),
            multiplier.mul(weights[:, 2], depths[2]),
        )
        frag_uv = quantize(weights @ uvs, self.precision)
        frag_color = quantize(weights @ colors, self.precision)
        self.units.tally.record("mul", 6 * num_pixels)  # uv interpolation
        self.units.tally.record("add", 4 * num_pixels)
        self.units.tally.record("mul", 9 * num_pixels)  # colour interpolation
        self.units.tally.record("add", 6 * num_pixels)

        # Subtask 4: min-depth colour hold.
        visible = inside & (frag_depth < state.depth) & (frag_depth > 0.0)
        self.units.tally.record("add", num_pixels)  # depth comparison
        if np.any(visible):
            state.depth[visible] = frag_depth[visible]
            state.color[visible] = frag_color[visible]
            state.uv[visible] = frag_uv[visible]
        return state
