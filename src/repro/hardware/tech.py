"""Technology-node scaling for the area and energy models.

The GauRast prototype is implemented in a 28 nm process while the baseline
Jetson Orin NX SoC is fabricated in a denser node, so comparisons such as
"0.2 % of the SoC area" implicitly involve a choice of node.  This module
provides first-order scaling factors (area roughly with the square of the
drawn feature size up to the end of ideal scaling, energy sub-linearly) so
experiments can express the enhanced logic in a different node when needed.

The factors are deliberately coarse — published logic-density ratios between
the named nodes — and are exposed as data so a user can substitute their own
numbers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

#: Logic density (million gates per mm^2, order of magnitude) of named nodes,
#: normalised to the 28 nm prototype node.  Taken from published foundry
#: density ratios; SRAM scales less aggressively but the tile buffers are a
#: small fraction of the module so the single factor is acceptable here.
RELATIVE_LOGIC_DENSITY: Dict[str, float] = {
    "28nm": 1.0,
    "16nm": 2.0,
    "12nm": 2.3,
    "8nm": 3.4,
    "7nm": 3.9,
    "5nm": 5.2,
}

#: Dynamic-energy ratio per operation relative to 28 nm (supply and
#: capacitance scaling, first order).
RELATIVE_DYNAMIC_ENERGY: Dict[str, float] = {
    "28nm": 1.0,
    "16nm": 0.62,
    "12nm": 0.55,
    "8nm": 0.42,
    "7nm": 0.38,
    "5nm": 0.30,
}


def known_nodes() -> tuple:
    """Names of the technology nodes with scaling data."""
    return tuple(RELATIVE_LOGIC_DENSITY)


@dataclass(frozen=True)
class TechnologyNode:
    """One process node with its scaling factors relative to 28 nm."""

    name: str
    relative_density: float
    relative_dynamic_energy: float

    def __post_init__(self) -> None:
        if self.relative_density <= 0 or self.relative_dynamic_energy <= 0:
            raise ValueError("scaling factors must be positive")

    @classmethod
    def named(cls, name: str) -> "TechnologyNode":
        """Look up a named node."""
        if name not in RELATIVE_LOGIC_DENSITY:
            raise KeyError(
                f"unknown node {name!r}; known nodes: {', '.join(known_nodes())}"
            )
        return cls(
            name=name,
            relative_density=RELATIVE_LOGIC_DENSITY[name],
            relative_dynamic_energy=RELATIVE_DYNAMIC_ENERGY[name],
        )


def scale_area_mm2(area_mm2: float, source: str = "28nm", target: str = "28nm") -> float:
    """Scale a logic area between technology nodes."""
    if area_mm2 < 0:
        raise ValueError("area must be non-negative")
    src = TechnologyNode.named(source)
    dst = TechnologyNode.named(target)
    return area_mm2 * src.relative_density / dst.relative_density


def scale_energy_j(energy_j: float, source: str = "28nm", target: str = "28nm") -> float:
    """Scale a dynamic energy between technology nodes."""
    if energy_j < 0:
        raise ValueError("energy must be non-negative")
    src = TechnologyNode.named(source)
    dst = TechnologyNode.named(target)
    return energy_j * dst.relative_dynamic_energy / src.relative_dynamic_energy
