"""Functional validation harness: hardware model vs software golden renderers.

Reproduces the validation methodology of Section V-A: "we validated the
functional accuracy of both triangle and Gaussian rasterization against the
software implementations, confirming that the RTL implementation's rendering
output ... matches perfectly without any loss in rendering quality."

The harness renders a set of randomly generated Gaussian scenes and triangle
meshes through the cycle-level :class:`~repro.hardware.rasterizer.GauRastInstance`
and compares every output image against the corresponding software renderer
with the metrics of :mod:`repro.gaussians.metrics`.  It is used by the
quality-validation experiment and directly by tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

import numpy as np

from repro.gaussians.camera import Camera, look_at
from repro.gaussians.metrics import ImageComparison, compare_images
from repro.gaussians.pipeline import render
from repro.gaussians.rasterize import rasterize_tiles
from repro.gaussians.synthetic import SyntheticConfig, make_synthetic_scene
from repro.gaussians.tiles import TileGrid
from repro.hardware.config import GauRastConfig, PROTOTYPE_CONFIG
from repro.hardware.rasterizer import GauRastInstance
from repro.triangles.mesh import make_cube, make_plane
from repro.triangles.raster import rasterize_mesh
from repro.triangles.transform import transform_to_screen


@dataclass(frozen=True)
class ValidationCase:
    """Outcome of validating one rendered image against its golden model."""

    name: str
    primitive_type: str  # "gaussian" or "triangle"
    comparison: ImageComparison

    @property
    def passed(self) -> bool:
        """Whether the hardware output is visually indistinguishable."""
        return self.comparison.meets(min_psnr_db=60.0, min_ssim=0.999)


@dataclass
class ValidationReport:
    """Aggregated validation outcome over all cases."""

    config: GauRastConfig
    cases: List[ValidationCase] = field(default_factory=list)

    @property
    def all_passed(self) -> bool:
        """Whether every case cleared the quality thresholds."""
        return bool(self.cases) and all(case.passed for case in self.cases)

    @property
    def worst_psnr_db(self) -> float:
        """Lowest PSNR across the cases."""
        if not self.cases:
            return float("nan")
        return min(case.comparison.psnr_db for case in self.cases)

    @property
    def worst_max_error(self) -> float:
        """Largest per-pixel deviation across the cases."""
        if not self.cases:
            return float("nan")
        return max(case.comparison.max_abs_error for case in self.cases)

    def by_type(self, primitive_type: str) -> List[ValidationCase]:
        """Cases of one primitive type."""
        return [c for c in self.cases if c.primitive_type == primitive_type]


def _gaussian_cases(config: GauRastConfig, num_scenes: int, seed: int):
    for index in range(num_scenes):
        scene_config = SyntheticConfig(
            num_gaussians=200 + 100 * index,
            width=80,
            height=64,
            seed=seed + index,
        )
        scene = make_synthetic_scene(scene_config, name=f"gaussian-case-{index}")
        result = render(scene)
        golden, _ = rasterize_tiles(result.projected, result.binning)
        instance = GauRastInstance(config)
        hardware, _ = instance.rasterize_gaussians(result.projected, result.binning)
        yield ValidationCase(
            name=scene.name,
            primitive_type="gaussian",
            comparison=compare_images(golden, hardware),
        )


def _triangle_cases(config: GauRastConfig, seed: int):
    rng = np.random.default_rng(seed)
    meshes = {"cube": make_cube(size=1.2), "plane": make_plane(size=1.5)}
    for name, mesh in meshes.items():
        eye = rng.uniform(-2.0, 2.0, size=3)
        eye[2] = -3.0 - rng.uniform(0.0, 1.0)
        pose = look_at(eye=eye, target=(0.0, 0.0, 0.0))
        camera = Camera(width=80, height=64, fx=70.0, fy=70.0, world_to_camera=pose)
        screen = transform_to_screen(mesh, camera)
        grid = TileGrid(width=camera.width, height=camera.height)
        golden = rasterize_mesh(screen, grid)
        instance = GauRastInstance(config)
        hardware_color, _, _ = instance.rasterize_triangles(screen, grid)
        yield ValidationCase(
            name=f"triangle-{name}",
            primitive_type="triangle",
            comparison=compare_images(golden.color, hardware_color),
        )


def validate_against_software(
    config: GauRastConfig = PROTOTYPE_CONFIG,
    num_gaussian_scenes: int = 3,
    seed: int = 0,
) -> ValidationReport:
    """Run the full hardware-vs-software validation sweep.

    Parameters
    ----------
    config:
        Hardware configuration to validate (FP32 prototype by default; pass
        an FP16 configuration to quantify the reduced-precision variant).
    num_gaussian_scenes:
        Number of random Gaussian scenes to render.
    seed:
        Base RNG seed for scene and viewpoint generation.
    """
    report = ValidationReport(config=config)
    report.cases.extend(_gaussian_cases(config, num_gaussian_scenes, seed))
    report.cases.extend(_triangle_cases(config, seed + 1000))
    return report
