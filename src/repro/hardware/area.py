"""Area model of the enhanced rasterizer (Fig. 9).

The model assembles the module area bottom-up from the per-unit costs in
:mod:`repro.hardware.units` and the PE resource inventory in
:mod:`repro.hardware.pe`:

* one PE = shared logic (9 adders, 9 multipliers) + triangle-only logic
  (divider) + Gaussian-only logic (2 adders, 1 multiplier, 1 exponentiation
  unit, input multiplexers) + data-staging flip-flops;
* one module = ``pes_per_instance`` PEs + two tile buffers (SRAM) + control;
* the *enhancement* cost of GauRast is only the Gaussian-only logic, since
  everything else already exists in the triangle rasterizer.

The quantities the paper reports and this model reproduces are ratios:
the Gaussian-only share of a PE (~21 %), the module breakdown (PE block
~89 %, tile buffers ~10 %, controller <1 %) and the enhanced area as a
fraction of the baseline SoC (~0.2 %).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.hardware.config import GauRastConfig, PROTOTYPE_CONFIG
from repro.hardware.fp import Precision
from repro.hardware.pe import PE_RESOURCES
from repro.hardware.units import SRAM_AREA_UM2_PER_BYTE, unit_cost

#: Data-staging flip-flop banks per PE (input and output staging, Fig. 7(c)).
STAGING_BANKS_PER_PE = 2

#: Controller area of one module (top controller, dispatch controller and
#: result collector), in um^2 — small fixed-function state machines.
CONTROLLER_AREA_UM2 = 2000.0

#: Die area of the baseline SoC (NVIDIA Jetson Orin NX), mm^2.
BASELINE_SOC_AREA_MM2 = 455.0


def _group_area(group: Dict[str, int], precision: Precision) -> float:
    """Area of a resource group (unit kind -> count) in um^2."""
    return sum(
        count * unit_cost(kind, precision).area_um2 for kind, count in group.items()
    )


@dataclass(frozen=True)
class PEAreaBreakdown:
    """Area of one Processing Element, split by logic group (um^2)."""

    shared_um2: float
    triangle_only_um2: float
    gaussian_only_um2: float
    staging_um2: float

    @property
    def total_um2(self) -> float:
        """Total PE area."""
        return (
            self.shared_um2
            + self.triangle_only_um2
            + self.gaussian_only_um2
            + self.staging_um2
        )

    @property
    def preexisting_um2(self) -> float:
        """Area already present in the triangle rasterizer."""
        return self.shared_um2 + self.triangle_only_um2 + self.staging_um2

    @property
    def gaussian_fraction(self) -> float:
        """Share of the PE occupied by the added Gaussian-only logic."""
        return self.gaussian_only_um2 / self.total_um2


@dataclass(frozen=True)
class AreaBreakdown:
    """Area of one enhanced-rasterizer module (um^2 unless noted)."""

    pe: PEAreaBreakdown
    num_pes: int
    pe_block_um2: float
    tile_buffers_um2: float
    controller_um2: float

    @property
    def module_um2(self) -> float:
        """Total module area."""
        return self.pe_block_um2 + self.tile_buffers_um2 + self.controller_um2

    @property
    def module_mm2(self) -> float:
        """Total module area in mm^2."""
        return self.module_um2 / 1.0e6

    @property
    def pe_block_fraction(self) -> float:
        """PE-block share of the module."""
        return self.pe_block_um2 / self.module_um2

    @property
    def tile_buffer_fraction(self) -> float:
        """Tile-buffer share of the module."""
        return self.tile_buffers_um2 / self.module_um2

    @property
    def controller_fraction(self) -> float:
        """Controller share of the module."""
        return self.controller_um2 / self.module_um2

    @property
    def enhanced_um2(self) -> float:
        """Added (Gaussian-only) area of the module."""
        return self.pe.gaussian_only_um2 * self.num_pes


class AreaModel:
    """Computes PE, module, design and SoC-relative areas for a configuration."""

    def __init__(self, config: GauRastConfig = PROTOTYPE_CONFIG):
        self.config = config

    # ------------------------------------------------------------------ #
    # Component areas
    # ------------------------------------------------------------------ #
    def pe_breakdown(self) -> PEAreaBreakdown:
        """Area breakdown of one PE at the configured precision."""
        precision = self.config.precision
        staging = STAGING_BANKS_PER_PE * unit_cost("staging", precision).area_um2
        return PEAreaBreakdown(
            shared_um2=_group_area(PE_RESOURCES["shared"], precision),
            triangle_only_um2=_group_area(PE_RESOURCES["triangle_only"], precision),
            gaussian_only_um2=_group_area(PE_RESOURCES["gaussian_only"], precision),
            staging_um2=staging,
        )

    def tile_buffer_bytes(self) -> int:
        """Storage of both tile buffers (primitive batch plus pixel state)."""
        config = self.config
        per_buffer = (
            config.tile_buffer_primitive_capacity * config.primitive_bytes
            + config.pixels_per_tile * config.pixel_state_bytes
        )
        return 2 * per_buffer

    def module_breakdown(self) -> AreaBreakdown:
        """Area breakdown of one enhanced-rasterizer module."""
        pe = self.pe_breakdown()
        num_pes = self.config.pes_per_instance
        return AreaBreakdown(
            pe=pe,
            num_pes=num_pes,
            pe_block_um2=pe.total_um2 * num_pes,
            tile_buffers_um2=self.tile_buffer_bytes() * SRAM_AREA_UM2_PER_BYTE,
            controller_um2=CONTROLLER_AREA_UM2,
        )

    # ------------------------------------------------------------------ #
    # Design-level quantities
    # ------------------------------------------------------------------ #
    def design_area_mm2(self) -> float:
        """Total area of all module instances."""
        return self.module_breakdown().module_mm2 * self.config.num_instances

    def enhanced_area_mm2(self) -> float:
        """Total *added* area (Gaussian-only logic) across all instances."""
        module = self.module_breakdown()
        return module.enhanced_um2 * self.config.num_instances / 1.0e6

    def soc_overhead_fraction(
        self, soc_area_mm2: float = BASELINE_SOC_AREA_MM2
    ) -> float:
        """Added area relative to the baseline SoC die area."""
        if soc_area_mm2 <= 0:
            raise ValueError("soc_area_mm2 must be positive")
        return self.enhanced_area_mm2() / soc_area_mm2
