"""Scaled multi-instance GauRast configuration and its analytical throughput model.

The SoC-level evaluation uses 15 instances of the 16-PE rasterizer module
(Section V-A).  Screen tiles are distributed round-robin across instances,
which all run in parallel, so a frame finishes when the most loaded instance
does.

Two levels of fidelity are provided:

* :meth:`ScaledGauRast.simulate_frame` — drives one cycle-level
  :class:`~repro.hardware.rasterizer.GauRastInstance` per hardware instance
  over an actual projected frame.  This is exact but only tractable for the
  scaled-down synthetic scenes.
* :meth:`ScaledGauRast.estimate` — closed-form cycle count from a
  :class:`~repro.profiling.workload.WorkloadStatistics` summary (sort keys,
  tiles, early-termination fraction).  This is what the paper-scale
  experiments use; tests verify it agrees with the cycle-level simulation on
  scenes small enough to run both.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.gaussians.gaussian import ProjectedGaussians
from repro.gaussians.sorting import TileBinning
from repro.hardware.config import GauRastConfig, SCALED_CONFIG
from repro.hardware.controller import ControllerTimings, DispatchController
from repro.hardware.rasterizer import GauRastInstance, InstanceReport
from repro.profiling.workload import WorkloadStatistics


@dataclass
class FrameReport:
    """Combined report of a multi-instance frame simulation."""

    frame_cycles: int
    instance_reports: List[InstanceReport]
    config: GauRastConfig

    @property
    def runtime_seconds(self) -> float:
        """Frame runtime: the slowest instance defines the frame time."""
        return self.frame_cycles / self.config.clock_hz

    @property
    def fragments_evaluated(self) -> int:
        """Fragments evaluated across all instances."""
        return sum(r.fragments_evaluated for r in self.instance_reports)

    @property
    def fragments_skipped(self) -> int:
        """Fragments skipped by early termination across all instances."""
        return sum(r.fragments_skipped for r in self.instance_reports)

    @property
    def traffic_bytes(self) -> int:
        """Memory-interface traffic across all instances."""
        return sum(r.traffic_bytes for r in self.instance_reports)

    @property
    def operation_counts(self) -> Dict[str, int]:
        """Merged per-kind operation counts."""
        merged: Dict[str, int] = {}
        for report in self.instance_reports:
            for kind, count in report.operation_counts.items():
                merged[kind] = merged.get(kind, 0) + count
        return merged

    @property
    def load_imbalance(self) -> float:
        """Ratio of the slowest instance's cycles to the mean.

        Every instance that participated in the frame counts, idle ones
        included: an assignment that starves some instances of work is the
        canonical imbalanced case, not a perfectly balanced one.
        """
        cycles = [r.cycles for r in self.instance_reports]
        if not cycles or max(cycles) == 0:
            return 1.0
        return max(cycles) / (sum(cycles) / len(cycles))


@dataclass
class RasterizationEstimate:
    """Closed-form rasterization cost estimate for a full-scale workload."""

    config: GauRastConfig
    workload: WorkloadStatistics
    compute_cycles_per_instance: float
    control_cycles_per_instance: float
    frame_cycles: float
    fragments_evaluated: float
    dram_bytes: float

    @property
    def runtime_seconds(self) -> float:
        """Estimated rasterization time of one frame."""
        return self.frame_cycles / self.config.clock_hz

    @property
    def utilization(self) -> float:
        """Fraction of frame cycles spent in PE computation."""
        if self.frame_cycles == 0:
            return 0.0
        return self.compute_cycles_per_instance / self.frame_cycles


class ScaledGauRast:
    """The scaled GauRast design: several rasterizer instances in parallel."""

    def __init__(
        self,
        config: GauRastConfig = SCALED_CONFIG,
        timings: Optional[ControllerTimings] = None,
    ):
        self.config = config
        self.timings = timings or ControllerTimings()

    # ------------------------------------------------------------------ #
    # Cycle-level simulation (small scenes)
    # ------------------------------------------------------------------ #
    def simulate_frame(
        self,
        projected: ProjectedGaussians,
        binning: TileBinning,
        background=(0.0, 0.0, 0.0),
    ) -> tuple[np.ndarray, FrameReport]:
        """Simulate a frame at cycle level across all instances."""
        grid = binning.grid
        background = np.asarray(background, dtype=np.float64).reshape(3)
        image = np.empty((grid.height, grid.width, 3), dtype=np.float64)
        image[:, :] = background

        dispatcher = DispatchController(self.config.num_instances)
        occupied = sorted(binning.tile_lists.keys())
        assignments = dispatcher.assign_tiles(occupied)

        reports: List[InstanceReport] = []
        for tile_ids in assignments:
            instance = GauRastInstance(self.config, timings=self.timings)
            _, report = instance.rasterize_gaussians(
                projected,
                binning,
                tile_ids=tile_ids,
                background=background,
                image=image,
            )
            reports.append(report)

        frame_cycles = max((r.cycles for r in reports), default=0)
        return image, FrameReport(
            frame_cycles=frame_cycles,
            instance_reports=reports,
            config=self.config,
        )

    # ------------------------------------------------------------------ #
    # Analytical estimate (paper-scale workloads)
    # ------------------------------------------------------------------ #
    def estimate(self, workload: WorkloadStatistics) -> RasterizationEstimate:
        """Estimate the rasterization time of a full-scale workload.

        The model mirrors the cycle-level simulator: each of the workload's
        sort keys costs ``pixels_per_pe * gaussian_cycles_per_fragment``
        cycles on its instance, scaled by the fraction of fragments actually
        evaluated (per-pixel early termination); each tile adds the fixed
        control cost; primitive loads are overlapped by the ping-pong
        buffers and only surface when a tile's batch is too small to hide
        them (negligible for realistic depth complexities, but the term is
        kept for fidelity on sparse workloads).
        """
        config = self.config
        keys_per_instance = workload.sort_keys / config.num_instances
        tiles_per_instance = workload.occupied_tiles / config.num_instances

        cycles_per_key = (
            config.pixels_per_pe
            * config.gaussian_cycles_per_fragment
            * workload.evaluated_fraction
        )
        compute = keys_per_instance * cycles_per_key

        mean_keys_per_tile = workload.mean_keys_per_occupied_tile
        batches_per_tile = max(
            1.0, np.ceil(mean_keys_per_tile / config.tile_buffer_primitive_capacity)
        )
        control_per_tile = self.timings.per_tile_cycles(int(batches_per_tile))
        control = tiles_per_instance * control_per_tile

        load_per_tile = config.primitive_load_cycles(int(round(mean_keys_per_tile)))
        compute_per_tile = mean_keys_per_tile * cycles_per_key
        exposed_load_per_tile = max(0.0, load_per_tile - compute_per_tile)
        exposed_load = tiles_per_instance * exposed_load_per_tile

        frame_cycles = compute + control + exposed_load
        fragments = workload.evaluated_fragments
        dram_bytes = (
            workload.sort_keys * config.primitive_bytes
            + 2 * workload.num_pixels * config.pixel_state_bytes
        )
        return RasterizationEstimate(
            config=config,
            workload=workload,
            compute_cycles_per_instance=compute,
            control_cycles_per_instance=control,
            frame_cycles=frame_cycles,
            fragments_evaluated=fragments,
            dram_bytes=dram_bytes,
        )

    def estimate_runtime(self, workload: WorkloadStatistics) -> float:
        """Convenience wrapper returning only the estimated frame time."""
        return self.estimate(workload).runtime_seconds
