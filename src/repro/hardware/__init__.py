"""Hardware model of the GauRast enhanced rasterizer.

This package models the hardware proposed in Section IV of the paper:

* :mod:`repro.hardware.fp` — FP32/FP16 numeric behaviour of the datapath.
* :mod:`repro.hardware.units` — functional and cost (area/energy) models of
  the floating-point adders, multipliers, divider and exponentiation unit
  that make up a Processing Element.
* :mod:`repro.hardware.pe` — the dual-mode Processing Element with shared,
  triangle-only and Gaussian-only logic paths (Fig. 7(c)).
* :mod:`repro.hardware.pe_block` — the block of 16 PEs (Fig. 7(b)).
* :mod:`repro.hardware.tile_buffer` — the ping-pong tile buffers.
* :mod:`repro.hardware.rasterizer` — a cycle-level simulator of one enhanced
  rasterizer instance, validated against the functional NumPy renderers.
* :mod:`repro.hardware.multi` — the scaled multi-instance configuration used
  in the evaluation plus the analytical throughput model for full-size
  scenes.
* :mod:`repro.hardware.area` / :mod:`repro.hardware.power` — 28 nm area and
  energy models reproducing the breakdowns of Fig. 9.
"""

from repro.hardware.config import GauRastConfig, PROTOTYPE_CONFIG, SCALED_CONFIG
from repro.hardware.fp import Precision, quantize
from repro.hardware.pe import OperationCounts, ProcessingElement
from repro.hardware.rasterizer import GauRastInstance, InstanceReport
from repro.hardware.multi import ScaledGauRast, RasterizationEstimate
from repro.hardware.area import AreaModel, AreaBreakdown
from repro.hardware.power import EnergyModel, EnergyBreakdown
from repro.hardware.validation import ValidationReport, validate_against_software

__all__ = [
    "ValidationReport",
    "validate_against_software",
    "AreaBreakdown",
    "AreaModel",
    "EnergyBreakdown",
    "EnergyModel",
    "GauRastConfig",
    "GauRastInstance",
    "InstanceReport",
    "OperationCounts",
    "Precision",
    "PROTOTYPE_CONFIG",
    "ProcessingElement",
    "RasterizationEstimate",
    "SCALED_CONFIG",
    "ScaledGauRast",
    "quantize",
]
