"""Functional-unit models: behaviour, area and energy of the PE's datapath units.

A GauRast Processing Element is built from floating-point adders,
multipliers, one divider (used only by triangle rasterization) and one
exponentiation unit (used only by Gaussian rasterization), plus input
multiplexers and staging flip-flops (Fig. 7(c)).  This module provides:

* :class:`UnitCost` — per-unit area and per-operation energy for FP32 and
  FP16 implementations in a 28 nm process (typical corner, 0.9 V, 1 GHz),
  with values in the range reported for synthesised floating-point IP at
  that node.  The absolute constants are documented calibration points; the
  paper's claims that we reproduce (21 % added PE area, ~0.2 % SoC overhead,
  ~24x energy-efficiency gain) are *ratios* of sums of these constants.
* :class:`FunctionalUnit` and its subclasses — perform the arithmetic at the
  selected precision while counting operations, so the PE model produces
  both numerically faithful results and the operation tallies behind
  Table II and the energy model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

import numpy as np

from repro.hardware.fp import Precision, quantize


@dataclass(frozen=True)
class UnitCost:
    """Area and energy cost of one functional unit."""

    area_um2: float
    energy_pj: float

    def __post_init__(self) -> None:
        if self.area_um2 < 0 or self.energy_pj < 0:
            raise ValueError("unit costs must be non-negative")


#: Per-unit costs of the datapath building blocks, by precision.
#:
#: Area is for one synthesised unit including its local pipeline registers;
#: energy is per operation.  28 nm, typical corner, 0.9 V, 1 GHz.
UNIT_COSTS: Dict[Precision, Dict[str, UnitCost]] = {
    Precision.FP32: {
        "add": UnitCost(area_um2=550.0, energy_pj=0.40),
        "mul": UnitCost(area_um2=1150.0, energy_pj=1.10),
        "div": UnitCost(area_um2=2400.0, energy_pj=2.50),
        "exp": UnitCost(area_um2=1900.0, energy_pj=2.00),
        "mux": UnitCost(area_um2=500.0, energy_pj=0.05),
        "staging": UnitCost(area_um2=600.0, energy_pj=0.60),
    },
    Precision.FP16: {
        "add": UnitCost(area_um2=275.0, energy_pj=0.18),
        "mul": UnitCost(area_um2=340.0, energy_pj=0.30),
        "div": UnitCost(area_um2=820.0, energy_pj=0.90),
        "exp": UnitCost(area_um2=760.0, energy_pj=0.70),
        "mux": UnitCost(area_um2=250.0, energy_pj=0.03),
        "staging": UnitCost(area_um2=300.0, energy_pj=0.30),
    },
}

#: On-chip SRAM (tile buffers): area per byte and energy per byte accessed.
SRAM_AREA_UM2_PER_BYTE = 0.95
SRAM_ENERGY_PJ_PER_BYTE = 0.80

#: Off-chip (LPDDR-class) DRAM energy per byte transferred, including the
#: memory controller and PHY.
DRAM_ENERGY_PJ_PER_BYTE = 45.0


def unit_cost(kind: str, precision: Precision) -> UnitCost:
    """Look up the cost entry for a unit ``kind`` at ``precision``."""
    try:
        return UNIT_COSTS[precision][kind]
    except KeyError as error:
        known = ", ".join(UNIT_COSTS[precision])
        raise KeyError(f"unknown unit kind {kind!r}; known kinds: {known}") from error


@dataclass
class OperationTally:
    """Mutable per-operation counters shared by the functional units."""

    counts: Dict[str, int] = field(default_factory=dict)

    def record(self, kind: str, count: int = 1) -> None:
        """Add ``count`` operations of ``kind``."""
        if count < 0:
            raise ValueError("count must be non-negative")
        self.counts[kind] = self.counts.get(kind, 0) + count

    def get(self, kind: str) -> int:
        """Number of operations of ``kind`` recorded so far."""
        return self.counts.get(kind, 0)

    def total(self) -> int:
        """Total number of operations across all kinds."""
        return sum(self.counts.values())

    def merged_with(self, other: "OperationTally") -> "OperationTally":
        """Return a new tally combining this one with ``other``."""
        merged = OperationTally(counts=dict(self.counts))
        for kind, count in other.counts.items():
            merged.record(kind, count)
        return merged

    def energy_pj(self, precision: Precision) -> float:
        """Dynamic energy of the recorded operations at ``precision``."""
        return sum(
            count * unit_cost(kind, precision).energy_pj
            for kind, count in self.counts.items()
        )


class FunctionalUnit:
    """Base class: applies an operation at datapath precision and counts it."""

    kind = "base"

    def __init__(self, precision: Precision, tally: OperationTally):
        self.precision = precision
        self.tally = tally

    def _finish(self, result, count: int):
        self.tally.record(self.kind, count)
        return quantize(result, self.precision)


class Adder(FunctionalUnit):
    """Floating-point adder (also used for subtraction)."""

    kind = "add"

    def add(self, a, b):
        """Return ``a + b`` rounded to the datapath precision."""
        a = np.asarray(a, dtype=np.float64)
        result = a + np.asarray(b, dtype=np.float64)
        return self._finish(result, int(np.size(result)))

    def sub(self, a, b):
        """Return ``a - b`` rounded to the datapath precision."""
        a = np.asarray(a, dtype=np.float64)
        result = a - np.asarray(b, dtype=np.float64)
        return self._finish(result, int(np.size(result)))


class Multiplier(FunctionalUnit):
    """Floating-point multiplier."""

    kind = "mul"

    def mul(self, a, b):
        """Return ``a * b`` rounded to the datapath precision."""
        a = np.asarray(a, dtype=np.float64)
        result = a * np.asarray(b, dtype=np.float64)
        return self._finish(result, int(np.size(result)))


class Divider(FunctionalUnit):
    """Floating-point divider (triangle-only logic path)."""

    kind = "div"

    def div(self, a, b):
        """Return ``a / b`` rounded to the datapath precision."""
        a = np.asarray(a, dtype=np.float64)
        b = np.asarray(b, dtype=np.float64)
        safe_b = np.where(np.abs(b) < 1e-300, 1e-300, b)
        result = a / safe_b
        return self._finish(result, int(np.size(result)))


class Exponent(FunctionalUnit):
    """Floating-point exponentiation unit (Gaussian-only logic path)."""

    kind = "exp"

    def exp(self, a):
        """Return ``exp(a)`` rounded to the datapath precision."""
        result = np.exp(np.asarray(a, dtype=np.float64))
        return self._finish(result, int(np.size(result)))


@dataclass
class DatapathUnits:
    """The full set of functional units of one Processing Element."""

    precision: Precision
    tally: OperationTally = field(default_factory=OperationTally)

    def __post_init__(self) -> None:
        self.adder = Adder(self.precision, self.tally)
        self.multiplier = Multiplier(self.precision, self.tally)
        self.divider = Divider(self.precision, self.tally)
        self.exponent = Exponent(self.precision, self.tally)

    def reset(self) -> None:
        """Clear the operation tally."""
        self.tally.counts.clear()
