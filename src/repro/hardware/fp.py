"""Floating-point precision model of the GauRast datapath.

The paper's prototype uses FP32 for all computations (Section V-A); the
GSCore comparison in Section V-C re-implements the datapath at FP16.  This
module provides a small precision abstraction: every arithmetic result of
the functional-unit models is rounded to the active precision, so the FP32
datapath matches the software renderer bit-for-bit (both are IEEE binary32
computations evaluated in double precision and rounded), while the FP16
datapath exhibits the expected quantisation error.
"""

from __future__ import annotations

from enum import Enum

import numpy as np


class Precision(Enum):
    """Numeric precision of the rasterizer datapath."""

    FP32 = "fp32"
    FP16 = "fp16"

    @property
    def dtype(self) -> np.dtype:
        """NumPy dtype implementing this precision."""
        return np.dtype(np.float32) if self is Precision.FP32 else np.dtype(np.float16)

    @property
    def bits(self) -> int:
        """Storage width in bits."""
        return 32 if self is Precision.FP32 else 16

    @property
    def bytes(self) -> int:
        """Storage width in bytes."""
        return self.bits // 8

    @property
    def mantissa_bits(self) -> int:
        """Significand width (excluding the hidden bit)."""
        return 23 if self is Precision.FP32 else 10


def quantize(values, precision: Precision) -> np.ndarray:
    """Round ``values`` to ``precision`` and return them as float64.

    The round-trip through the narrow dtype reproduces the precision loss of
    the hardware datapath while keeping downstream arithmetic in float64 so
    that the *accumulation* error of the model itself stays negligible.
    """
    array = np.asarray(values, dtype=np.float64)
    with np.errstate(over="ignore"):
        return array.astype(precision.dtype).astype(np.float64)


def max_relative_error(precision: Precision) -> float:
    """Upper bound on the relative rounding error of one operation."""
    return float(2.0 ** -(precision.mantissa_bits + 1))
