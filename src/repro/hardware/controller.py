"""Control logic of the enhanced rasterizer: top controller, dispatcher, collector.

The top controller walks the frame's tile list, the dispatch controller
hands the staged primitives of the active tile buffer to the PE block, and
the result collector gathers the finished pixel values and writes them back
through the cache/memory interface (Fig. 7(b)).  Control is not on the
critical path of the datapath, so the model only accounts for its fixed
per-tile and per-batch cycle costs and for the dispatch ordering it imposes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence


@dataclass(frozen=True)
class ControllerTimings:
    """Fixed cycle costs charged by the control logic."""

    #: Handshake cycles for swapping the ping-pong buffers.
    buffer_swap_cycles: int = 4
    #: Cycles to initialise the pixel accumulators of a new tile.
    tile_init_cycles: int = 16
    #: Cycles for the result collector to drain a finished tile.
    tile_writeback_cycles: int = 16
    #: Per-batch dispatch overhead (address generation, PE kick-off).
    batch_dispatch_cycles: int = 4

    def per_tile_cycles(self, num_batches: int) -> int:
        """Total control cycles for a tile processed in ``num_batches`` batches."""
        if num_batches < 0:
            raise ValueError("num_batches must be non-negative")
        per_batch = (self.buffer_swap_cycles + self.batch_dispatch_cycles) * num_batches
        return self.tile_init_cycles + self.tile_writeback_cycles + per_batch


@dataclass
class DispatchRecord:
    """One unit of work issued by the dispatch controller."""

    instance_id: int
    tile_id: int
    batch_index: int
    num_primitives: int


@dataclass
class DispatchController:
    """Static round-robin distribution of tiles across rasterizer instances.

    The scaled GauRast design replicates the 16-PE module; the driver assigns
    screen tiles to instances round-robin, which is also how the analytical
    model reasons about load balance.
    """

    num_instances: int
    records: List[DispatchRecord] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.num_instances <= 0:
            raise ValueError("num_instances must be positive")

    def assign_tiles(self, tile_ids: Sequence[int]) -> List[List[int]]:
        """Split ``tile_ids`` into one work list per instance (round-robin)."""
        assignments: List[List[int]] = [[] for _ in range(self.num_instances)]
        for position, tile_id in enumerate(tile_ids):
            assignments[position % self.num_instances].append(tile_id)
        return assignments

    def record(self, record: DispatchRecord) -> None:
        """Log one dispatched batch (used by tests and debugging)."""
        self.records.append(record)


@dataclass
class ResultCollector:
    """Gathers finished tiles and tracks write-back traffic."""

    tiles_collected: int = 0
    pixels_written: int = 0

    def collect(self, tile_id: int, num_pixels: int) -> None:
        """Account for one finished tile."""
        if num_pixels < 0:
            raise ValueError("num_pixels must be non-negative")
        self.tiles_collected += 1
        self.pixels_written += num_pixels
