"""Cycle-level simulator of one GauRast enhanced-rasterizer instance.

The instance (Fig. 7(b)) consists of the ping-pong tile buffers, the dispatch
controller, the PE block and the result collector.  The simulator walks a
frame's tile work list, splits each tile's sorted primitive list into
buffer-sized batches and charges:

* **compute cycles** — the slowest PE's busy cycles per batch;
* **load cycles** — the memory-interface cycles needed to stage each batch,
  overlapped with computation by the ping-pong organisation, so only the
  portion exceeding the compute time of the concurrently processed batch
  shows up on the critical path;
* **control cycles** — the fixed per-tile and per-batch costs of the top
  controller, dispatch controller and result collector.

Because every arithmetic step goes through the PE datapath model, the
simulator also produces the rendered image, which tests compare against the
functional NumPy renderer — reproducing the paper's RTL-vs-software
validation step.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.gaussians.gaussian import ProjectedGaussians
from repro.gaussians.sorting import TileBinning
from repro.gaussians.tiles import TileGrid
from repro.hardware.config import GauRastConfig
from repro.hardware.controller import ControllerTimings, ResultCollector
from repro.hardware.pe_block import PEBlock
from repro.hardware.tile_buffer import PingPongBuffers, split_into_batches
from repro.hardware.units import OperationTally
from repro.triangles.transform import ScreenTriangles


@dataclass
class InstanceReport:
    """Timing and activity report of one instance over one frame."""

    cycles: int = 0
    compute_cycles: int = 0
    load_cycles_exposed: int = 0
    control_cycles: int = 0
    tiles_processed: int = 0
    batches_processed: int = 0
    fragments_evaluated: int = 0
    fragments_skipped: int = 0
    traffic_bytes: int = 0
    operation_counts: Dict[str, int] = field(default_factory=dict)

    @property
    def utilization(self) -> float:
        """Fraction of instance cycles the PE block was the critical resource."""
        if self.cycles == 0:
            return 0.0
        return self.compute_cycles / self.cycles

    def runtime_seconds(self, clock_hz: float) -> float:
        """Wall-clock runtime at ``clock_hz``."""
        return self.cycles / clock_hz


def _tally_delta(current: Dict[str, int], before: Dict[str, int]) -> Dict[str, int]:
    """Per-kind operation counts accumulated since ``before`` was snapshotted."""
    return {
        kind: count - before.get(kind, 0)
        for kind, count in current.items()
        if count - before.get(kind, 0) > 0
    }


class GauRastInstance:
    """One enhanced-rasterizer module: tile buffers + controller + 16-PE block."""

    def __init__(
        self,
        config: GauRastConfig,
        timings: Optional[ControllerTimings] = None,
    ):
        self.config = config
        self.timings = timings or ControllerTimings()
        self.tally = OperationTally()
        self.pe_block = PEBlock(config, shared_tally=self.tally)
        self.buffers = PingPongBuffers(config)
        self.collector = ResultCollector()

    # ------------------------------------------------------------------ #
    # Gaussian mode
    # ------------------------------------------------------------------ #
    def rasterize_gaussians(
        self,
        projected: ProjectedGaussians,
        binning: TileBinning,
        tile_ids: Optional[Sequence[int]] = None,
        background=(0.0, 0.0, 0.0),
        image: Optional[np.ndarray] = None,
    ) -> tuple[np.ndarray, InstanceReport]:
        """Rasterize the given tiles of a frame in Gaussian mode.

        Parameters
        ----------
        projected:
            The frame's projected Gaussians (Stage 1 output).
        binning:
            The frame's tile lists (Stage 2 output).
        tile_ids:
            Tiles this instance is responsible for; defaults to every
            occupied tile.
        background:
            Background colour.
        image:
            Optional pre-allocated ``(H, W, 3)`` image to write into; a new
            background-filled image is created otherwise.

        Returns
        -------
        image, report
        """
        grid = binning.grid
        background = np.asarray(background, dtype=np.float64).reshape(3)
        if image is None:
            image = np.empty((grid.height, grid.width, 3), dtype=np.float64)
            image[:, :] = background
        if tile_ids is None:
            tile_ids = sorted(binning.tile_lists.keys())

        report = InstanceReport()
        raster_inputs = projected.raster_inputs() if len(projected) else None
        ops_before = dict(self.tally.counts)
        traffic_before = self.buffers.traffic.total_bytes

        for tile_id in tile_ids:
            gaussian_indices = binning.gaussians_for_tile(tile_id)
            x0, y0, x1, y1 = grid.tile_pixel_bounds(tile_id)
            pixel_centers = grid.tile_pixel_centers(tile_id)
            num_pixels = len(pixel_centers)

            if len(gaussian_indices) == 0:
                image[y0:y1, x0:x1] = background
                continue

            batches_idx = split_into_batches(
                gaussian_indices, self.config.tile_buffer_primitive_capacity
            )
            primitive_batches = [raster_inputs[idx] for idx in batches_idx]

            compute_total = 0
            load_total = 0
            for batch in primitive_batches:
                load_total += self.buffers.load_batch(batch)
                self.buffers.swap()
            self.buffers.record_pixel_readwrite(num_pixels)

            colors, batch_results = self.pe_block.process_gaussian_tile(
                pixel_centers, primitive_batches, background=background
            )
            compute_total = sum(b.compute_cycles for b in batch_results)

            control = self.timings.per_tile_cycles(len(primitive_batches))
            exposed_load = max(0, load_total - compute_total)
            tile_cycles = compute_total + exposed_load + control

            image[y0:y1, x0:x1] = colors.reshape(y1 - y0, x1 - x0, 3)
            self.collector.collect(tile_id, num_pixels)

            report.cycles += tile_cycles
            report.compute_cycles += compute_total
            report.load_cycles_exposed += exposed_load
            report.control_cycles += control
            report.tiles_processed += 1
            report.batches_processed += len(primitive_batches)
            report.fragments_evaluated += sum(
                b.fragments_evaluated for b in batch_results
            )
            report.fragments_skipped += sum(b.fragments_skipped for b in batch_results)

        report.traffic_bytes = self.buffers.traffic.total_bytes - traffic_before
        report.operation_counts = _tally_delta(self.tally.counts, ops_before)
        return image, report

    # ------------------------------------------------------------------ #
    # Triangle mode
    # ------------------------------------------------------------------ #
    def rasterize_triangles(
        self,
        triangles: ScreenTriangles,
        grid: TileGrid,
        background=(0.0, 0.0, 0.0),
    ) -> tuple[np.ndarray, np.ndarray, InstanceReport]:
        """Rasterize a triangle frame in the pre-existing triangle mode.

        The instance keeps its original capability: triangles are binned to
        tiles by their screen bounding box and resolved per pixel with the
        min-depth rule.

        Returns the colour image, the depth buffer and the timing report.
        """
        background = np.asarray(background, dtype=np.float64).reshape(3)
        image = np.empty((grid.height, grid.width, 3), dtype=np.float64)
        image[:, :] = background
        depth = np.full((grid.height, grid.width), np.inf, dtype=np.float64)
        report = InstanceReport()
        ops_before = dict(self.tally.counts)
        traffic_before = self.buffers.traffic.total_bytes

        if len(triangles) == 0:
            return image, depth, report

        raster_inputs = triangles.raster_inputs()
        # Bin triangles to tiles by bounding box.
        tile_lists: Dict[int, List[int]] = {}
        mins = triangles.vertices[:, :, :2].min(axis=1)
        maxs = triangles.vertices[:, :, :2].max(axis=1)
        centers = (mins + maxs) / 2.0
        radii = np.linalg.norm(maxs - mins, axis=1) / 2.0
        ranges = grid.tile_range_for_bbox(centers, radii)
        for tri_index, (tx0, ty0, tx1, ty1) in enumerate(ranges):
            for ty in range(ty0, ty1):
                for tx in range(tx0, tx1):
                    tile_lists.setdefault(grid.tile_id(tx, ty), []).append(tri_index)

        for tile_id, tri_indices in sorted(tile_lists.items()):
            x0, y0, x1, y1 = grid.tile_pixel_bounds(tile_id)
            pixel_centers = grid.tile_pixel_centers(tile_id)
            num_pixels = len(pixel_centers)

            batches_idx = split_into_batches(
                np.asarray(tri_indices), self.config.tile_buffer_primitive_capacity
            )
            primitive_batches = [raster_inputs[idx] for idx in batches_idx]
            color_batches = [triangles.colors[idx] for idx in batches_idx]
            uv_batches = [triangles.uvs[idx] for idx in batches_idx]

            load_total = 0
            for batch in primitive_batches:
                load_total += self.buffers.load_batch(batch)
                self.buffers.swap()
            self.buffers.record_pixel_readwrite(num_pixels)

            colors, depths, batch_results = self.pe_block.process_triangle_tile(
                pixel_centers,
                primitive_batches,
                color_batches,
                uv_batches,
                background=background,
            )
            compute_total = sum(b.compute_cycles for b in batch_results)
            control = self.timings.per_tile_cycles(len(primitive_batches))
            exposed_load = max(0, load_total - compute_total)

            image[y0:y1, x0:x1] = colors.reshape(y1 - y0, x1 - x0, 3)
            depth[y0:y1, x0:x1] = depths.reshape(y1 - y0, x1 - x0)
            self.collector.collect(tile_id, num_pixels)

            report.cycles += compute_total + exposed_load + control
            report.compute_cycles += compute_total
            report.load_cycles_exposed += exposed_load
            report.control_cycles += control
            report.tiles_processed += 1
            report.batches_processed += len(primitive_batches)
            report.fragments_evaluated += sum(
                b.fragments_evaluated for b in batch_results
            )

        report.traffic_bytes = self.buffers.traffic.total_bytes - traffic_before
        report.operation_counts = _tally_delta(self.tally.counts, ops_before)
        return image, depth, report
