"""Configuration of the GauRast enhanced-rasterizer hardware.

Two named configurations mirror the paper's evaluation setup (Section V-A):

* :data:`PROTOTYPE_CONFIG` — the synthesised prototype: a single enhanced
  rasterizer module with 16 Processing Elements at 1 GHz, FP32.
* :data:`SCALED_CONFIG` — the scaled design used for the SoC-level
  evaluation: 15 instances of the 16-PE module, matching the effective area
  of the triangle-rasterizer units in the baseline Jetson Orin NX SoC.
  (The paper text rounds the resulting PE count up to "300 PEs"; the
  structurally consistent value for 15 x 16 is 240 and that is what the
  models use.)
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.datasets.nerf360 import TILE_SIZE
from repro.hardware.fp import Precision


@dataclass(frozen=True)
class GauRastConfig:
    """Parameters of the enhanced rasterizer.

    Attributes
    ----------
    pes_per_instance:
        Number of Processing Elements in one enhanced-rasterizer module.
    num_instances:
        Number of module instances on the SoC (tiles are distributed across
        instances).
    clock_hz:
        Operating frequency.
    precision:
        Datapath precision (FP32 in the prototype, FP16 for the GSCore
        comparison).
    tile_size:
        Side length of a screen tile in pixels.
    gaussian_cycles_per_fragment:
        Initiation interval, in cycles, between successive Gaussian-pixel
        evaluations on one PE.  A Gaussian fragment needs ~13 multiplies,
        ~8 adds and one exponentiation but the PE datapath offers 10
        multipliers and 11 adders (9 + 9 shared plus the 2 + 1 added units),
        and the transmittance update is serially dependent, so a fragment
        occupies a PE for several cycles.
    triangle_cycles_per_fragment:
        Initiation interval for triangle fragments on the pre-existing
        datapath.
    tile_buffer_primitive_capacity:
        Number of primitives one tile buffer can hold; larger tile lists are
        processed in multiple batches with ping-pong buffering.
    primitive_bytes:
        Storage size of one primitive (9 FP numbers, Table II).
    pixel_state_bytes:
        Storage size of one pixel's accumulator state (RGB colour plus
        transmittance for Gaussians; colour plus depth for triangles).
    buffer_load_bytes_per_cycle:
        Bandwidth of the cache/memory interface filling the idle tile
        buffer; loads overlap with computation thanks to the ping-pong
        organisation.
    tile_overhead_cycles:
        Fixed per-tile cost: pixel-state initialisation, final write-back of
        the tile's pixels and the buffer swap handshake.
    """

    pes_per_instance: int = 16
    num_instances: int = 1
    clock_hz: float = 1.0e9
    precision: Precision = Precision.FP32
    tile_size: int = TILE_SIZE
    gaussian_cycles_per_fragment: int = 4
    triangle_cycles_per_fragment: int = 2
    tile_buffer_primitive_capacity: int = 512
    primitive_bytes: int = 36
    pixel_state_bytes: int = 16
    buffer_load_bytes_per_cycle: int = 16
    tile_overhead_cycles: int = 40

    def __post_init__(self) -> None:
        if self.pes_per_instance <= 0:
            raise ValueError("pes_per_instance must be positive")
        if self.num_instances <= 0:
            raise ValueError("num_instances must be positive")
        if self.clock_hz <= 0:
            raise ValueError("clock_hz must be positive")
        if self.tile_size <= 0:
            raise ValueError("tile_size must be positive")
        if self.tile_size * self.tile_size % self.pes_per_instance != 0:
            raise ValueError(
                "tile pixels must divide evenly across the PEs of an instance"
            )
        if self.gaussian_cycles_per_fragment <= 0:
            raise ValueError("gaussian_cycles_per_fragment must be positive")
        if self.triangle_cycles_per_fragment <= 0:
            raise ValueError("triangle_cycles_per_fragment must be positive")
        if self.tile_buffer_primitive_capacity <= 0:
            raise ValueError("tile_buffer_primitive_capacity must be positive")

    # ------------------------------------------------------------------ #
    # Derived quantities
    # ------------------------------------------------------------------ #
    @property
    def total_pes(self) -> int:
        """Total PEs across all instances."""
        return self.pes_per_instance * self.num_instances

    @property
    def pixels_per_tile(self) -> int:
        """Pixels in one screen tile."""
        return self.tile_size * self.tile_size

    @property
    def pixels_per_pe(self) -> int:
        """Pixels of a tile owned by each PE."""
        return self.pixels_per_tile // self.pes_per_instance

    @property
    def gaussian_cycles_per_primitive_per_tile(self) -> int:
        """Cycles one instance spends applying one Gaussian to a full tile."""
        return self.pixels_per_pe * self.gaussian_cycles_per_fragment

    @property
    def triangle_cycles_per_primitive_per_tile(self) -> int:
        """Cycles one instance spends applying one triangle to a full tile."""
        return self.pixels_per_pe * self.triangle_cycles_per_fragment

    def primitive_load_cycles(self, num_primitives: int) -> int:
        """Cycles to stream ``num_primitives`` into the idle tile buffer."""
        total_bytes = num_primitives * self.primitive_bytes
        return -(-total_bytes // self.buffer_load_bytes_per_cycle)

    def with_precision(self, precision: Precision) -> "GauRastConfig":
        """Return a copy of this configuration at a different precision.

        Moving from FP32 to FP16 halves the initiation intervals: the
        existing datapath width fits two packed FP16 operations per lane, so
        a Gaussian fragment occupies a PE for half as many cycles.  Moving
        back to FP32 restores the default intervals.
        """
        if precision is self.precision:
            return self
        if precision is Precision.FP16:
            return replace(
                self,
                precision=precision,
                gaussian_cycles_per_fragment=max(
                    1, self.gaussian_cycles_per_fragment // 2
                ),
                triangle_cycles_per_fragment=max(
                    1, self.triangle_cycles_per_fragment // 2
                ),
            )
        defaults = GauRastConfig()
        return replace(
            self,
            precision=precision,
            gaussian_cycles_per_fragment=defaults.gaussian_cycles_per_fragment,
            triangle_cycles_per_fragment=defaults.triangle_cycles_per_fragment,
        )

    def with_instances(self, num_instances: int) -> "GauRastConfig":
        """Return a copy with a different instance count."""
        return replace(self, num_instances=num_instances)


#: The synthesised 16-PE FP32 prototype (Section V-A, Fig. 9).
PROTOTYPE_CONFIG = GauRastConfig(num_instances=1)

#: The scaled configuration used for SoC-level evaluation: 15 instances of
#: the 16-PE module.
SCALED_CONFIG = GauRastConfig(num_instances=15)
