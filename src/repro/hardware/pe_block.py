"""The PE Block: the array of Processing Elements inside one rasterizer instance.

The PE block of the prototype holds 16 PEs.  When a tile is dispatched, its
pixels are interleaved across the PEs (pixel ``p`` belongs to PE
``p mod num_pes``), so partially filled border tiles still spread their work
evenly.  Primitives staged in the active tile buffer are broadcast to all
PEs in sorted order; each PE applies the primitive to its own pixels.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.hardware.config import GauRastConfig
from repro.hardware.pe import (
    GaussianPixelState,
    ProcessingElement,
    TrianglePixelState,
)
from repro.hardware.units import OperationTally


@dataclass
class BlockBatchResult:
    """Timing outcome of one primitive batch processed by the PE block."""

    compute_cycles: int
    fragments_evaluated: int
    fragments_skipped: int


class PEBlock:
    """The array of PEs of one enhanced-rasterizer instance."""

    def __init__(self, config: GauRastConfig, shared_tally: OperationTally | None = None):
        self.config = config
        self.tally = shared_tally or OperationTally()
        self.pes: List[ProcessingElement] = [
            ProcessingElement(config, tally=self.tally)
            for _ in range(config.pes_per_instance)
        ]

    # ------------------------------------------------------------------ #
    # Pixel ownership
    # ------------------------------------------------------------------ #
    def owner_of_pixels(self, num_pixels: int) -> np.ndarray:
        """Return the PE index owning each of ``num_pixels`` tile pixels."""
        return np.arange(num_pixels) % self.config.pes_per_instance

    def _partition(self, pixel_centers: np.ndarray) -> List[np.ndarray]:
        owners = self.owner_of_pixels(len(pixel_centers))
        return [np.nonzero(owners == pe)[0] for pe in range(len(self.pes))]

    # ------------------------------------------------------------------ #
    # Counters
    # ------------------------------------------------------------------ #
    @property
    def fragments_evaluated(self) -> int:
        """Fragments evaluated across all PEs."""
        return sum(pe.fragments_evaluated for pe in self.pes)

    @property
    def fragments_skipped(self) -> int:
        """Fragments skipped by per-pixel early termination across all PEs."""
        return sum(pe.fragments_skipped for pe in self.pes)

    def reset_counters(self) -> None:
        """Clear all PE counters and the shared operation tally."""
        for pe in self.pes:
            pe.fragments_evaluated = 0
            pe.fragments_skipped = 0
            pe.busy_cycles = 0
        self.tally.counts.clear()

    # ------------------------------------------------------------------ #
    # Gaussian mode
    # ------------------------------------------------------------------ #
    def process_gaussian_tile(
        self,
        pixel_centers: np.ndarray,
        primitive_batches: Sequence[np.ndarray],
        background=(0.0, 0.0, 0.0),
    ) -> Tuple[np.ndarray, List[BlockBatchResult]]:
        """Rasterize one tile's Gaussian batches.

        Parameters
        ----------
        pixel_centers:
            ``(P, 2)`` pixel centres of the tile.
        primitive_batches:
            Sequence of ``(Gi, 9)`` primitive arrays in front-to-back order,
            already split to the tile-buffer capacity.
        background:
            Background colour composited after the last batch.

        Returns
        -------
        colors:
            ``(P, 3)`` output colours in tile pixel order.
        batch_results:
            Per-batch timing records (compute cycles are the maximum over
            the PEs, since the block finishes a batch when its slowest PE
            does).
        """
        num_pixels = len(pixel_centers)
        partitions = self._partition(pixel_centers)
        states = [GaussianPixelState.initial(len(p)) for p in partitions]

        batch_results: List[BlockBatchResult] = []
        for batch in primitive_batches:
            busy_before = [pe.busy_cycles for pe in self.pes]
            evaluated_before = self.fragments_evaluated
            skipped_before = self.fragments_skipped
            for pe, indices, state in zip(self.pes, partitions, states):
                if len(indices) == 0:
                    continue
                centers = pixel_centers[indices]
                for primitive in batch:
                    pe.apply_gaussian(centers, state, primitive)
            compute = max(
                pe.busy_cycles - before for pe, before in zip(self.pes, busy_before)
            )
            batch_results.append(
                BlockBatchResult(
                    compute_cycles=int(compute),
                    fragments_evaluated=self.fragments_evaluated - evaluated_before,
                    fragments_skipped=self.fragments_skipped - skipped_before,
                )
            )

        colors = np.zeros((num_pixels, 3), dtype=np.float64)
        for pe, indices, state in zip(self.pes, partitions, states):
            if len(indices) == 0:
                continue
            colors[indices] = pe.finalize_gaussian(state, background)
        return colors, batch_results

    # ------------------------------------------------------------------ #
    # Triangle mode
    # ------------------------------------------------------------------ #
    def process_triangle_tile(
        self,
        pixel_centers: np.ndarray,
        primitive_batches: Sequence[np.ndarray],
        colors: Sequence[np.ndarray],
        uvs: Sequence[np.ndarray],
        background=(0.0, 0.0, 0.0),
    ) -> Tuple[np.ndarray, np.ndarray, List[BlockBatchResult]]:
        """Rasterize one tile's triangle batches.

        ``colors`` and ``uvs`` hold, per batch, the per-triangle vertex
        attributes aligned with ``primitive_batches``.

        Returns the tile colours, depths and per-batch timing records.
        """
        num_pixels = len(pixel_centers)
        partitions = self._partition(pixel_centers)
        states = [
            TrianglePixelState.initial(len(p), background=background)
            for p in partitions
        ]

        batch_results: List[BlockBatchResult] = []
        for batch, batch_colors, batch_uvs in zip(primitive_batches, colors, uvs):
            busy_before = [pe.busy_cycles for pe in self.pes]
            evaluated_before = self.fragments_evaluated
            for pe, indices, state in zip(self.pes, partitions, states):
                if len(indices) == 0:
                    continue
                centers = pixel_centers[indices]
                for primitive, tri_colors, tri_uvs in zip(
                    batch, batch_colors, batch_uvs
                ):
                    pe.apply_triangle(centers, state, primitive, tri_colors, tri_uvs)
            compute = max(
                pe.busy_cycles - before for pe, before in zip(self.pes, busy_before)
            )
            batch_results.append(
                BlockBatchResult(
                    compute_cycles=int(compute),
                    fragments_evaluated=self.fragments_evaluated - evaluated_before,
                    fragments_skipped=0,
                )
            )

        out_colors = np.zeros((num_pixels, 3), dtype=np.float64)
        out_depths = np.full(num_pixels, np.inf, dtype=np.float64)
        for indices, state in zip(partitions, states):
            if len(indices) == 0:
                continue
            out_colors[indices] = state.color
            out_depths[indices] = state.depth
        return out_colors, out_depths, batch_results
