"""Desktop-class GPU reference model.

The paper's introduction notes that 3DGS reaches real-time rates (>= 30 FPS)
on high-powered (>= 200 W) desktop GPUs such as the NVIDIA RTX A6000 but
only 2-5 FPS on 10 W edge SoCs.  This module models such a desktop GPU with
the same stage structure as the edge baseline so the motivation experiment
can reproduce that contrast — and show that GauRast closes most of the gap
at a fraction of the power.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.baselines.gpu_model import CudaGpuModel, StageTimes
from repro.baselines.jetson import make_orin_nx_model
from repro.profiling.workload import WorkloadStatistics

#: Sustained rasterization throughput of a desktop RTX A6000-class GPU
#: relative to the Orin NX at 10 W (more cores, higher clocks, far more
#: memory bandwidth).
DESKTOP_RELATIVE_THROUGHPUT = 35.0

#: Stage 1-2 speedup relative to the edge SoC (these stages are lighter and
#: partially latency-bound, so they scale a little less).
DESKTOP_STAGE12_SPEEDUP = 20.0


def make_rtx_a6000_model() -> CudaGpuModel:
    """Approximate model of a 300 W desktop GPU running the 3DGS pipeline."""
    orin = make_orin_nx_model()
    return CudaGpuModel(
        name="rtx-a6000-desktop",
        num_cores=10752,
        core_clock_hz=orin.lane_cycles_per_second
        * DESKTOP_RELATIVE_THROUGHPUT
        / 10752,
        raster_cycles_per_fragment=orin.raster_cycles_per_fragment,
        preprocess_s_per_gaussian=orin.preprocess_s_per_gaussian / DESKTOP_STAGE12_SPEEDUP,
        preprocess_s_per_pixel=orin.preprocess_s_per_pixel / DESKTOP_STAGE12_SPEEDUP,
        sort_s_per_key=orin.sort_s_per_key / DESKTOP_STAGE12_SPEEDUP,
        sort_s_per_pixel=orin.sort_s_per_pixel / DESKTOP_STAGE12_SPEEDUP,
        stage_fixed_overhead_s=orin.stage_fixed_overhead_s / 5.0,
        raster_power_w=250.0,
        board_power_w=300.0,
    )


@dataclass
class DesktopGpu:
    """A high-power desktop GPU reference platform."""

    gpu: CudaGpuModel = field(default_factory=make_rtx_a6000_model)

    @property
    def name(self) -> str:
        """Platform name."""
        return self.gpu.name

    @property
    def power_w(self) -> float:
        """Board power."""
        return self.gpu.board_power_w

    def stage_times(self, workload: WorkloadStatistics) -> StageTimes:
        """Per-stage runtimes of one frame."""
        return self.gpu.stage_times(workload)

    def fps(self, workload: WorkloadStatistics) -> float:
        """End-to-end frames per second."""
        return self.gpu.fps(workload)

    def rasterization_energy(self, workload: WorkloadStatistics) -> float:
        """Rasterization energy per frame, joules."""
        return self.gpu.rasterization_energy(workload)
