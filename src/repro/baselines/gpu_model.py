"""Generic CUDA-core GPU performance model for the 3DGS pipeline.

The model expresses each pipeline stage's runtime as a simple linear
function of the frame's workload statistics:

* **Stage 1 (preprocessing)** scales with the number of Gaussians (SH
  evaluation, covariance projection) plus a small per-pixel term (image
  buffer setup) and a fixed kernel-launch overhead.
* **Stage 2 (sorting)** scales with the number of duplicated sort keys
  (radix-sort passes) and with the number of pixels/tiles (tile-range
  computation, prefix sums) plus a fixed overhead.
* **Stage 3 (Gaussian rasterization)** is modelled at the fragment level:
  every (tile, Gaussian) key is evaluated against all pixels of its tile —
  on a SIMT GPU a lane whose pixel terminated early still occupies its warp
  slot, so the baseline pays for the *nominal* fragment count — with a
  calibrated number of lane-cycles per fragment.

The per-element constants are calibrated against the Nsight Systems
measurements the paper reports for the Jetson Orin NX (Table III, Figs. 4
and 5); the calibration is documented in DESIGN.md.  Other platforms
(Apple M2 Pro, Jetson Xavier NX) reuse the same model with their own
compute-throughput parameters.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.profiling.workload import WorkloadStatistics


@dataclass(frozen=True)
class StageTimes:
    """Per-stage runtimes of one frame, in seconds."""

    preprocess: float
    sort: float
    rasterize: float

    @property
    def total(self) -> float:
        """End-to-end frame time without cross-stage overlap."""
        return self.preprocess + self.sort + self.rasterize

    @property
    def fps(self) -> float:
        """Frames per second of the serial pipeline."""
        if self.total == 0:
            return float("inf")
        return 1.0 / self.total

    @property
    def rasterize_fraction(self) -> float:
        """Share of the frame time spent in Gaussian rasterization."""
        if self.total == 0:
            return 0.0
        return self.rasterize / self.total

    @property
    def non_rasterize(self) -> float:
        """Time of stages 1-2 (the part GauRast leaves on the CUDA cores)."""
        return self.preprocess + self.sort


@dataclass(frozen=True)
class CudaGpuModel:
    """Analytical model of a CUDA-core GPU running the 3DGS pipeline.

    Attributes
    ----------
    name:
        Platform name.
    num_cores:
        Number of CUDA cores (SIMT lanes).
    core_clock_hz:
        Sustained core clock at the platform's power limit.
    raster_cycles_per_fragment:
        Lane-cycles one Gaussian-pixel fragment costs in the rasterization
        kernel (alpha blending is memory- and divergence-bound, so this is
        far above the raw FLOP count).
    preprocess_s_per_gaussian:
        Stage-1 cost per Gaussian.
    preprocess_s_per_pixel:
        Stage-1 cost per output pixel.
    sort_s_per_key:
        Stage-2 cost per duplicated sort key.
    sort_s_per_pixel:
        Stage-2 cost per output pixel (tile ranges, prefix sums).
    stage_fixed_overhead_s:
        Fixed per-frame overhead of stages 1-2 (kernel launches, sync).
    raster_power_w:
        Power drawn by the GPU and memory system during the rasterization
        kernel (used for the energy-efficiency comparison).
    board_power_w:
        Platform power limit (reported for context).
    """

    name: str
    num_cores: int
    core_clock_hz: float
    raster_cycles_per_fragment: float = 192.0
    preprocess_s_per_gaussian: float = 3.0e-9
    preprocess_s_per_pixel: float = 0.3e-9
    sort_s_per_key: float = 5.5e-9
    sort_s_per_pixel: float = 7.7e-9
    stage_fixed_overhead_s: float = 3.5e-3
    raster_power_w: float = 5.5
    board_power_w: float = 10.0

    def __post_init__(self) -> None:
        if self.num_cores <= 0 or self.core_clock_hz <= 0:
            raise ValueError("num_cores and core_clock_hz must be positive")
        if self.raster_cycles_per_fragment <= 0:
            raise ValueError("raster_cycles_per_fragment must be positive")

    # ------------------------------------------------------------------ #
    # Throughput
    # ------------------------------------------------------------------ #
    @property
    def lane_cycles_per_second(self) -> float:
        """Aggregate lane-cycles per second (cores x clock)."""
        return self.num_cores * self.core_clock_hz

    @property
    def fragments_per_second(self) -> float:
        """Sustained Gaussian-fragment rate of the rasterization kernel."""
        return self.lane_cycles_per_second / self.raster_cycles_per_fragment

    # ------------------------------------------------------------------ #
    # Stage times
    # ------------------------------------------------------------------ #
    def preprocess_time(self, workload: WorkloadStatistics) -> float:
        """Stage-1 (preprocessing) runtime in seconds."""
        return (
            workload.num_gaussians * self.preprocess_s_per_gaussian
            + workload.num_pixels * self.preprocess_s_per_pixel
            + self.stage_fixed_overhead_s * 0.3
        )

    def sort_time(self, workload: WorkloadStatistics) -> float:
        """Stage-2 (sorting and tile binning) runtime in seconds."""
        return (
            workload.sort_keys * self.sort_s_per_key
            + workload.num_pixels * self.sort_s_per_pixel
            + self.stage_fixed_overhead_s * 0.7
        )

    def rasterization_time(self, workload: WorkloadStatistics) -> float:
        """Stage-3 (Gaussian rasterization) runtime in seconds."""
        return workload.nominal_fragments / self.fragments_per_second

    def stage_times(self, workload: WorkloadStatistics) -> StageTimes:
        """All three stage runtimes for one frame."""
        return StageTimes(
            preprocess=self.preprocess_time(workload),
            sort=self.sort_time(workload),
            rasterize=self.rasterization_time(workload),
        )

    # ------------------------------------------------------------------ #
    # Frame-level metrics
    # ------------------------------------------------------------------ #
    def frame_time(self, workload: WorkloadStatistics) -> float:
        """Serial end-to-end frame time in seconds."""
        return self.stage_times(workload).total

    def fps(self, workload: WorkloadStatistics) -> float:
        """Frames per second of the serial pipeline."""
        return self.stage_times(workload).fps

    def rasterization_energy(self, workload: WorkloadStatistics) -> float:
        """Energy of the rasterization stage in joules."""
        return self.rasterization_time(workload) * self.raster_power_w
