"""Apple M2 Pro + OpenSplat model for the compatibility study (Section V-D).

GauRast targets any GPU with a triangle rasterizer.  The paper demonstrates
this with an Apple M2 Pro running OpenSplat: the M2 Pro offers 2.6x the FP32
compute of the Orin NX baseline, and attaching GauRast to its (equally
capable) rasterizer hardware yields an 11.2x rasterization speedup on the
*bicycle* scene.

The model derives the M2 Pro's software rasterization time from the Orin
baseline scaled by the published compute ratio and by an implementation-
efficiency factor for OpenSplat's Metal kernels relative to the heavily
tuned reference CUDA kernels.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.baselines.gpu_model import CudaGpuModel
from repro.baselines.jetson import make_orin_nx_model
from repro.profiling.workload import WorkloadStatistics

#: FP32 compute capability of the Apple M2 Pro GPU relative to the Orin NX
#: baseline (from the paper: "2.6x greater FP32 computing capability").
M2PRO_FP32_RATIO = 2.6

#: Efficiency of OpenSplat's Metal rasterization kernel relative to the
#: reference CUDA implementation (OpenSplat is a portable re-implementation
#: and does not reach the tuned kernel's utilisation).
OPENSPLAT_EFFICIENCY = 0.73


@dataclass
class AppleM2Pro:
    """Apple M2 Pro GPU running OpenSplat."""

    reference: CudaGpuModel = field(default_factory=make_orin_nx_model)
    fp32_ratio: float = M2PRO_FP32_RATIO
    software_efficiency: float = OPENSPLAT_EFFICIENCY

    def __post_init__(self) -> None:
        if self.fp32_ratio <= 0:
            raise ValueError("fp32_ratio must be positive")
        if not 0 < self.software_efficiency <= 1:
            raise ValueError("software_efficiency must be in (0, 1]")

    @property
    def name(self) -> str:
        """Platform name."""
        return "apple-m2-pro-opensplat"

    @property
    def effective_speedup_over_reference(self) -> float:
        """Software rasterization speed relative to the Orin NX CUDA kernel."""
        return self.fp32_ratio * self.software_efficiency

    def rasterization_time(self, workload: WorkloadStatistics) -> float:
        """OpenSplat rasterization time of one frame on the M2 Pro, seconds."""
        reference_time = self.reference.rasterization_time(workload)
        return reference_time / self.effective_speedup_over_reference
