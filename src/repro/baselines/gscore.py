"""Model of GSCore, the dedicated 3DGS accelerator compared in Section V-C.

GSCore [17] is the only previously published accelerator for 3DGS.  The
paper compares against GSCore's published numbers: a 20x Gaussian-
rasterization speedup over the Jetson Xavier NX SoC using a dedicated
3.95 mm^2 accelerator at FP16 precision.  This module captures those
published characteristics (we have no access to the GSCore RTL) together
with a model of its host SoC so the experiments can derive GSCore's absolute
rasterization throughput and compare area efficiency against an FP16
re-implementation of GauRast.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.baselines.gpu_model import CudaGpuModel
from repro.baselines.jetson import make_orin_nx_model
from repro.profiling.workload import WorkloadStatistics

#: Rasterization throughput of the Jetson Xavier NX relative to the Orin NX
#: baseline (older Volta GPU with 384 CUDA cores at a comparable power
#: budget).
XAVIER_NX_RELATIVE_THROUGHPUT = 0.6

#: Published GSCore characteristics.
GSCORE_SPEEDUP_OVER_XAVIER = 20.0
GSCORE_AREA_MM2 = 3.95
GSCORE_PRECISION = "fp16"


def make_xavier_nx_model() -> CudaGpuModel:
    """Approximate CUDA model of the Jetson Xavier NX (GSCore's host SoC)."""
    orin = make_orin_nx_model()
    # Same per-fragment cost structure, scaled to Xavier's lower throughput.
    return CudaGpuModel(
        name="jetson-xavier-nx",
        num_cores=384,
        core_clock_hz=orin.lane_cycles_per_second
        * XAVIER_NX_RELATIVE_THROUGHPUT
        / 384,
        raster_cycles_per_fragment=orin.raster_cycles_per_fragment,
        raster_power_w=orin.raster_power_w,
        board_power_w=15.0,
    )


@dataclass
class GScoreModel:
    """The GSCore dedicated accelerator, described by its published numbers."""

    host: CudaGpuModel = field(default_factory=make_xavier_nx_model)
    speedup_over_host: float = GSCORE_SPEEDUP_OVER_XAVIER
    area_mm2: float = GSCORE_AREA_MM2
    precision: str = GSCORE_PRECISION

    def __post_init__(self) -> None:
        if self.speedup_over_host <= 0:
            raise ValueError("speedup_over_host must be positive")
        if self.area_mm2 <= 0:
            raise ValueError("area_mm2 must be positive")

    @property
    def fragments_per_second(self) -> float:
        """Absolute Gaussian-fragment throughput implied by the published speedup."""
        return self.host.fragments_per_second * self.speedup_over_host

    def rasterization_time(self, workload: WorkloadStatistics) -> float:
        """Rasterization time of one frame on GSCore, seconds."""
        return workload.nominal_fragments / self.fragments_per_second

    def area_efficiency(self) -> float:
        """Rasterization throughput per mm^2 (fragments per second per mm^2)."""
        return self.fragments_per_second / self.area_mm2
