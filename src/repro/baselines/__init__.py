"""Baseline platform models used in the paper's evaluation.

* :mod:`repro.baselines.gpu_model` — a generic CUDA-core GPU performance
  model for the 3DGS pipeline stages.
* :mod:`repro.baselines.jetson` — the NVIDIA Jetson Orin NX edge SoC at its
  10 W power limit, the baseline of Figs. 4/5/10/11 and Table III.
* :mod:`repro.baselines.gscore` — the GSCore dedicated 3DGS accelerator,
  the comparison point of Section V-C.
* :mod:`repro.baselines.m2pro` — the Apple M2 Pro GPU running OpenSplat,
  the compatibility study of Section V-D.
* :mod:`repro.baselines.desktop` — a high-power desktop GPU (RTX A6000
  class), the reference point of the paper's motivation.
"""

from repro.baselines.desktop import DesktopGpu
from repro.baselines.gpu_model import CudaGpuModel, StageTimes
from repro.baselines.gscore import GScoreModel
from repro.baselines.jetson import JetsonOrinNX
from repro.baselines.m2pro import AppleM2Pro

__all__ = [
    "AppleM2Pro",
    "CudaGpuModel",
    "DesktopGpu",
    "GScoreModel",
    "JetsonOrinNX",
    "StageTimes",
]
