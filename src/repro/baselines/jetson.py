"""Jetson Orin NX baseline model (the paper's target edge SoC).

The paper profiles the 3DGS pipeline on the NVIDIA Jetson Orin NX under a
10 W power limit using Nsight Systems (Section II-B) and compares GauRast
against its CUDA rasterization kernel (Section V-B).  We cannot run on the
physical module, so this module instantiates the generic
:class:`~repro.baselines.gpu_model.CudaGpuModel` with the Orin NX's GPU
configuration at the 10 W operating point and with per-element costs
calibrated to the per-scene runtimes the paper reports.  A thin class wraps
the model to add the SoC-specific attributes the experiments reference
(name, power limit, rasterizer area equivalence).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.baselines.gpu_model import CudaGpuModel, StageTimes
from repro.profiling.workload import WorkloadStatistics

#: GPU configuration of the Orin NX at the 10 W power profile: 1024 Ampere
#: CUDA cores at a sustained ~612 MHz.
ORIN_NX_CUDA_CORES = 1024
ORIN_NX_GPU_CLOCK_HZ = 612.0e6

#: Power attributable to the GPU and memory system while the rasterization
#: kernel runs (out of the 10 W module budget).
ORIN_NX_RASTER_POWER_W = 5.5


def make_orin_nx_model() -> CudaGpuModel:
    """Build the calibrated CUDA model of the Jetson Orin NX at 10 W."""
    return CudaGpuModel(
        name="jetson-orin-nx-10w",
        num_cores=ORIN_NX_CUDA_CORES,
        core_clock_hz=ORIN_NX_GPU_CLOCK_HZ,
        raster_power_w=ORIN_NX_RASTER_POWER_W,
        board_power_w=10.0,
    )


@dataclass
class JetsonOrinNX:
    """The baseline edge SoC: CUDA 3DGS rendering on the Jetson Orin NX."""

    gpu: CudaGpuModel = field(default_factory=make_orin_nx_model)

    # The scaled GauRast design is sized to match the effective area of the
    # SoC's existing triangle-rasterizer units: 15 instances of the 16-PE
    # module (Section V-A "Simulator Setup").
    equivalent_rasterizer_instances: int = 15

    @property
    def name(self) -> str:
        """Platform name."""
        return self.gpu.name

    @property
    def power_limit_w(self) -> float:
        """Module power limit used for the evaluation."""
        return self.gpu.board_power_w

    # ------------------------------------------------------------------ #
    # Delegated performance queries
    # ------------------------------------------------------------------ #
    def stage_times(self, workload: WorkloadStatistics) -> StageTimes:
        """Per-stage runtimes of one frame."""
        return self.gpu.stage_times(workload)

    def rasterization_time(self, workload: WorkloadStatistics) -> float:
        """CUDA rasterization time of one frame, seconds."""
        return self.gpu.rasterization_time(workload)

    def rasterization_energy(self, workload: WorkloadStatistics) -> float:
        """CUDA rasterization energy of one frame, joules."""
        return self.gpu.rasterization_energy(workload)

    def frame_time(self, workload: WorkloadStatistics) -> float:
        """Serial end-to-end frame time, seconds."""
        return self.gpu.frame_time(workload)

    def fps(self, workload: WorkloadStatistics) -> float:
        """End-to-end frames per second on the unmodified SoC."""
        return self.gpu.fps(workload)
