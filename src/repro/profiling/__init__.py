"""Profiling utilities: workload statistics and per-stage runtime breakdowns.

The paper motivates GauRast with a profiling study (Section II-B, Figs. 4
and 5): per-scene frame rates and the per-stage runtime breakdown on the
Jetson Orin NX.  This package provides the two ingredients of that study:

* :mod:`repro.profiling.workload` — per-frame workload statistics (Gaussian
  counts, sort keys, fragments, early-termination behaviour) extracted
  either from a functional render or from a scene descriptor.
* :mod:`repro.profiling.profiler` — assembling per-stage runtimes from a
  platform model into the breakdown the paper plots.
"""

from repro.profiling.profiler import StageBreakdown, profile_pipeline
from repro.profiling.workload import WorkloadStatistics

__all__ = ["StageBreakdown", "WorkloadStatistics", "profile_pipeline"]
