"""Per-frame workload statistics consumed by the performance and energy models.

A :class:`WorkloadStatistics` summarises everything the platform models need
to know about rendering one frame of one scene with one algorithm:

* how many Gaussians the preprocessing stage touches,
* how many duplicated (tile, Gaussian) keys the sorting stage handles,
* how many Gaussian-pixel fragments the rasterization stage evaluates,
  including the fraction that per-pixel early termination skips.

Statistics can be built two ways: *measured*, from an actual functional
render of a (scaled-down) scene, or *descriptor-based*, from the calibrated
NeRF-360 scene descriptors for paper-scale experiments.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.datasets.nerf360 import TILE_SIZE, SceneDescriptor


@dataclass(frozen=True)
class WorkloadStatistics:
    """Summary of one frame's rendering workload.

    Attributes
    ----------
    scene_name:
        Name of the scene.
    algorithm:
        ``"original"`` (3DGS) or ``"optimized"`` (Mini-Splatting).
    width, height:
        Frame resolution in pixels.
    num_gaussians:
        Gaussians processed by the preprocessing stage.
    num_tiles:
        Total number of screen tiles.
    occupied_tiles:
        Tiles containing at least one Gaussian.
    sort_keys:
        Duplicated (tile, Gaussian) keys handled by the sorting stage.
    evaluated_fraction:
        Fraction of the nominal ``sort_keys * tile_area`` fragments that the
        rasterizer actually evaluates; the remainder is skipped by per-pixel
        early termination once a pixel's transmittance saturates.
    """

    scene_name: str
    algorithm: str
    width: int
    height: int
    num_gaussians: int
    num_tiles: int
    occupied_tiles: int
    sort_keys: int
    evaluated_fraction: float

    def __post_init__(self) -> None:
        if self.algorithm not in ("original", "optimized"):
            raise ValueError(f"unknown algorithm {self.algorithm!r}")
        if self.width <= 0 or self.height <= 0:
            raise ValueError("resolution must be positive")
        if not 0.0 < self.evaluated_fraction <= 1.0:
            raise ValueError("evaluated_fraction must be in (0, 1]")
        if self.occupied_tiles > self.num_tiles:
            raise ValueError("occupied_tiles cannot exceed num_tiles")
        if min(self.num_gaussians, self.num_tiles, self.sort_keys) < 0:
            raise ValueError("counts must be non-negative")

    # ------------------------------------------------------------------ #
    # Derived quantities
    # ------------------------------------------------------------------ #
    @property
    def num_pixels(self) -> int:
        """Pixels per frame."""
        return self.width * self.height

    @property
    def tile_area(self) -> int:
        """Pixels per tile."""
        return TILE_SIZE * TILE_SIZE

    @property
    def nominal_fragments(self) -> int:
        """Gaussian-pixel pairs implied by the tile lists (no termination)."""
        return self.sort_keys * self.tile_area

    @property
    def evaluated_fragments(self) -> float:
        """Fragments actually evaluated after per-pixel early termination."""
        return self.nominal_fragments * self.evaluated_fraction

    @property
    def mean_keys_per_occupied_tile(self) -> float:
        """Average per-tile depth complexity over occupied tiles."""
        if self.occupied_tiles == 0:
            return 0.0
        return self.sort_keys / self.occupied_tiles

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def from_descriptor(
        cls, descriptor: SceneDescriptor, algorithm: str = "original"
    ) -> "WorkloadStatistics":
        """Build paper-scale statistics from a NeRF-360 scene descriptor."""
        workload = descriptor.workload(algorithm)
        return cls(
            scene_name=descriptor.name,
            algorithm=algorithm,
            width=descriptor.width,
            height=descriptor.height,
            num_gaussians=workload.num_gaussians,
            num_tiles=descriptor.num_tiles,
            occupied_tiles=descriptor.num_tiles,
            sort_keys=descriptor.sort_keys(algorithm),
            evaluated_fraction=workload.evaluated_fraction,
        )

    @classmethod
    def from_render(
        cls,
        result,
        scene_name: str = "scene",
        algorithm: str = "original",
    ) -> "WorkloadStatistics":
        """Measure statistics from a functional :class:`RenderResult`."""
        binning = result.binning
        nominal = binning.num_keys * binning.grid.pixels_per_tile
        if nominal > 0:
            evaluated_fraction = min(
                1.0, result.raster_stats.fragments_evaluated / nominal
            )
        else:
            evaluated_fraction = 1.0
        return cls(
            scene_name=scene_name,
            algorithm=algorithm,
            width=binning.grid.width,
            height=binning.grid.height,
            num_gaussians=result.preprocess_stats.num_input,
            num_tiles=binning.grid.num_tiles,
            occupied_tiles=max(binning.num_occupied_tiles, 1),
            sort_keys=binning.num_keys,
            evaluated_fraction=max(evaluated_fraction, 1e-9),
        )
