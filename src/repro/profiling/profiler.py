"""Per-stage runtime breakdown of the 3DGS pipeline on a platform model.

Reproduces the profiling study of Section II-B: given a platform that can
report per-stage runtimes for a workload (any object exposing
``stage_times(workload)``), the profiler assembles the per-scene frame rate
(Fig. 4) and the per-stage runtime shares (Fig. 5).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List

from repro.profiling.workload import WorkloadStatistics


@dataclass(frozen=True)
class StageBreakdown:
    """Runtime breakdown of one scene on one platform."""

    scene_name: str
    preprocess_s: float
    sort_s: float
    rasterize_s: float

    @property
    def total_s(self) -> float:
        """End-to-end frame time (serial pipeline)."""
        return self.preprocess_s + self.sort_s + self.rasterize_s

    @property
    def fps(self) -> float:
        """Frames per second."""
        if self.total_s == 0:
            return float("inf")
        return 1.0 / self.total_s

    @property
    def fractions(self) -> Dict[str, float]:
        """Per-stage share of the frame time (sums to 1)."""
        total = self.total_s
        if total == 0:
            return {"preprocess": 0.0, "sort": 0.0, "rasterize": 0.0}
        return {
            "preprocess": self.preprocess_s / total,
            "sort": self.sort_s / total,
            "rasterize": self.rasterize_s / total,
        }

    @property
    def rasterize_fraction(self) -> float:
        """Share of the frame spent in Gaussian rasterization."""
        return self.fractions["rasterize"]


def profile_pipeline(platform, workload: WorkloadStatistics) -> StageBreakdown:
    """Profile one scene on a platform model.

    ``platform`` must expose ``stage_times(workload)`` returning an object
    with ``preprocess``, ``sort`` and ``rasterize`` attributes in seconds
    (e.g. :class:`repro.baselines.gpu_model.StageTimes`).
    """
    times = platform.stage_times(workload)
    return StageBreakdown(
        scene_name=workload.scene_name,
        preprocess_s=times.preprocess,
        sort_s=times.sort,
        rasterize_s=times.rasterize,
    )


def profile_scenes(
    platform, workloads: Iterable[WorkloadStatistics]
) -> List[StageBreakdown]:
    """Profile several scenes on the same platform."""
    return [profile_pipeline(platform, workload) for workload in workloads]
