"""Edge-function triangle rasterizer with z-buffer and UV interpolation.

The per-fragment work follows exactly the four subtasks of Table II's left
column:

1. **Coordinate shift** — move the pixel into the triangle's local frame
   (subtract a reference vertex).
2. **Intersection detection** — evaluate the three edge functions and divide
   by the triangle's signed area to obtain barycentric weights; the pixel is
   inside when all weights are non-negative.
3. **UV weight computation** — interpolate the vertex attributes (UVs and
   colours) with the barycentric weights.
4. **Min-depth colour hold** — compare the interpolated depth against the
   z-buffer and keep the nearer fragment.

The output per pixel is the "UV weight, depth" triple of Table II plus the
interpolated colour for image comparisons.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.gaussians.tiles import TileGrid
from repro.triangles.transform import ScreenTriangles

#: Depth stored in the z-buffer for pixels no triangle covers.
BACKGROUND_DEPTH = np.inf


@dataclass
class TriangleRasterStats:
    """Workload counters for the triangle rasterizer."""

    triangles_processed: int = 0
    fragments_evaluated: int = 0
    fragments_covered: int = 0

    @property
    def coverage_fraction(self) -> float:
        """Fraction of evaluated fragments that fell inside a triangle."""
        if self.fragments_evaluated == 0:
            return 0.0
        return self.fragments_covered / self.fragments_evaluated


@dataclass
class TriangleFrame:
    """Output buffers of a triangle rasterization pass."""

    color: np.ndarray = field(repr=False)  # (H, W, 3)
    depth: np.ndarray = field(repr=False)  # (H, W)
    uv: np.ndarray = field(repr=False)  # (H, W, 2)
    stats: TriangleRasterStats


def barycentric_weights(
    pixel_centers: np.ndarray, triangle: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Compute barycentric weights of pixels with respect to one triangle.

    Parameters
    ----------
    pixel_centers:
        ``(P, 2)`` pixel-centre coordinates.
    triangle:
        ``(3, 2)`` screen-space triangle vertices.

    Returns
    -------
    weights:
        ``(P, 3)`` barycentric weights (sum to 1 where the triangle is not
        degenerate).
    inside:
        ``(P,)`` boolean coverage mask (degenerate triangles cover nothing).
    """
    v0, v1, v2 = triangle
    area = (v1[0] - v0[0]) * (v2[1] - v0[1]) - (v1[1] - v0[1]) * (v2[0] - v0[0])
    if abs(area) < 1e-12:
        weights = np.zeros((len(pixel_centers), 3))
        return weights, np.zeros(len(pixel_centers), dtype=bool)

    # Subtask 1: coordinate shift into the triangle's local frame.
    delta = pixel_centers - v0

    # Subtask 2: edge functions and the division by the signed area.
    e1 = delta[:, 0] * (v2[1] - v0[1]) - delta[:, 1] * (v2[0] - v0[0])
    e2 = (v1[0] - v0[0]) * delta[:, 1] - (v1[1] - v0[1]) * delta[:, 0]
    w1 = e1 / area
    w2 = e2 / area
    w0 = 1.0 - w1 - w2
    weights = np.stack([w0, w1, w2], axis=1)
    inside = (weights >= 0.0).all(axis=1)
    return weights, inside


def rasterize_mesh(
    triangles: ScreenTriangles,
    grid: TileGrid,
    background=(0.0, 0.0, 0.0),
    collect_stats: bool = True,
) -> TriangleFrame:
    """Rasterize screen-space triangles into colour, depth and UV buffers.

    Triangles are processed in submission order; visibility is resolved per
    pixel with the min-depth comparison (subtask 4 of Table II), so the
    result is order-independent.
    """
    background = np.asarray(background, dtype=np.float64).reshape(3)
    color = np.empty((grid.height, grid.width, 3), dtype=np.float64)
    color[:, :] = background
    depth = np.full((grid.height, grid.width), BACKGROUND_DEPTH, dtype=np.float64)
    uv = np.zeros((grid.height, grid.width, 2), dtype=np.float64)
    stats = TriangleRasterStats()

    for tri_index in range(len(triangles)):
        vertices = triangles.vertices[tri_index]  # (3, 3): x, y, depth
        tri_xy = vertices[:, :2]
        tri_depth = vertices[:, 2]
        tri_colors = triangles.colors[tri_index]
        tri_uvs = triangles.uvs[tri_index]

        # Bounding box of the triangle, clipped to the image.
        x0 = max(int(np.floor(tri_xy[:, 0].min())), 0)
        x1 = min(int(np.ceil(tri_xy[:, 0].max())) + 1, grid.width)
        y0 = max(int(np.floor(tri_xy[:, 1].min())), 0)
        y1 = min(int(np.ceil(tri_xy[:, 1].max())) + 1, grid.height)
        if x0 >= x1 or y0 >= y1:
            continue

        xs = np.arange(x0, x1) + 0.5
        ys = np.arange(y0, y1) + 0.5
        grid_x, grid_y = np.meshgrid(xs, ys)
        pixels = np.stack([grid_x.ravel(), grid_y.ravel()], axis=1)

        weights, inside = barycentric_weights(pixels, tri_xy)
        if collect_stats:
            stats.triangles_processed += 1
            stats.fragments_evaluated += len(pixels)
            stats.fragments_covered += int(inside.sum())
        if not np.any(inside):
            continue

        # Subtask 3: attribute interpolation with the barycentric weights.
        frag_depth = weights @ tri_depth
        frag_color = weights @ tri_colors
        frag_uv = weights @ tri_uvs

        # Subtask 4: min-depth visibility test against the z-buffer.
        pixel_x = (pixels[:, 0] - 0.5).astype(np.int64)
        pixel_y = (pixels[:, 1] - 0.5).astype(np.int64)
        current_depth = depth[pixel_y, pixel_x]
        visible = inside & (frag_depth < current_depth) & (frag_depth > 0)
        if not np.any(visible):
            continue

        vis = np.nonzero(visible)[0]
        depth[pixel_y[vis], pixel_x[vis]] = frag_depth[vis]
        color[pixel_y[vis], pixel_x[vis]] = frag_color[vis]
        uv[pixel_y[vis], pixel_x[vis]] = frag_uv[vis]

    return TriangleFrame(color=color, depth=depth, uv=uv, stats=stats)
