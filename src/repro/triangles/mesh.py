"""Triangle mesh representation and simple procedural meshes."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np


@dataclass
class TriangleMesh:
    """An indexed triangle mesh.

    Attributes
    ----------
    vertices:
        ``(V, 3)`` vertex positions in object/world space.
    faces:
        ``(F, 3)`` integer vertex indices per triangle.
    vertex_colors:
        ``(V, 3)`` per-vertex RGB colours (defaults to white).
    uvs:
        ``(V, 2)`` per-vertex texture coordinates (defaults to zeros); the
        rasterizer interpolates these with the barycentric "UV weights" of
        Table II.
    """

    vertices: np.ndarray
    faces: np.ndarray
    vertex_colors: Optional[np.ndarray] = None
    uvs: Optional[np.ndarray] = None

    def __repr__(self) -> str:
        """Summary repr; the vertex/face payloads stay out of logs."""
        return (
            f"{type(self).__name__}(num_vertices={len(self.vertices)}, "
            f"num_faces={len(self.faces)})"
        )

    def __post_init__(self) -> None:
        self.vertices = np.asarray(self.vertices, dtype=np.float64)
        self.faces = np.asarray(self.faces, dtype=np.int64)
        if self.vertices.ndim != 2 or self.vertices.shape[1] != 3:
            raise ValueError("vertices must have shape (V, 3)")
        if self.faces.ndim != 2 or self.faces.shape[1] != 3:
            raise ValueError("faces must have shape (F, 3)")
        if len(self.faces) and (
            self.faces.min() < 0 or self.faces.max() >= len(self.vertices)
        ):
            raise ValueError("face indices out of range")

        if self.vertex_colors is None:
            self.vertex_colors = np.ones((len(self.vertices), 3), dtype=np.float64)
        else:
            self.vertex_colors = np.asarray(self.vertex_colors, dtype=np.float64)
            if self.vertex_colors.shape != (len(self.vertices), 3):
                raise ValueError("vertex_colors must have shape (V, 3)")

        if self.uvs is None:
            self.uvs = np.zeros((len(self.vertices), 2), dtype=np.float64)
        else:
            self.uvs = np.asarray(self.uvs, dtype=np.float64)
            if self.uvs.shape != (len(self.vertices), 2):
                raise ValueError("uvs must have shape (V, 2)")

    @property
    def num_vertices(self) -> int:
        """Number of vertices."""
        return len(self.vertices)

    @property
    def num_triangles(self) -> int:
        """Number of triangles."""
        return len(self.faces)

    def triangle_vertices(self) -> np.ndarray:
        """Return the ``(F, 3, 3)`` vertex positions gathered per triangle."""
        return self.vertices[self.faces]

    def transformed(self, matrix: np.ndarray) -> "TriangleMesh":
        """Return a copy with vertices transformed by a 4x4 matrix."""
        matrix = np.asarray(matrix, dtype=np.float64)
        if matrix.shape != (4, 4):
            raise ValueError("matrix must be 4x4")
        homogeneous = np.concatenate(
            [self.vertices, np.ones((len(self.vertices), 1))], axis=1
        )
        transformed = homogeneous @ matrix.T
        w = transformed[:, 3:4]
        w = np.where(np.abs(w) < 1e-12, 1e-12, w)
        return TriangleMesh(
            vertices=transformed[:, :3] / w,
            faces=self.faces.copy(),
            vertex_colors=self.vertex_colors.copy(),
            uvs=self.uvs.copy(),
        )


def make_plane(size: float = 1.0, color=(0.8, 0.8, 0.8)) -> TriangleMesh:
    """A unit plane in the XY plane made of two triangles."""
    half = size / 2.0
    vertices = np.array(
        [
            [-half, -half, 0.0],
            [half, -half, 0.0],
            [half, half, 0.0],
            [-half, half, 0.0],
        ]
    )
    faces = np.array([[0, 1, 2], [0, 2, 3]])
    colors = np.tile(np.asarray(color, dtype=np.float64), (4, 1))
    uvs = np.array([[0.0, 0.0], [1.0, 0.0], [1.0, 1.0], [0.0, 1.0]])
    return TriangleMesh(vertices, faces, colors, uvs)


def make_cube(size: float = 1.0) -> TriangleMesh:
    """A cube with per-face colours, useful for occlusion tests."""
    half = size / 2.0
    corners = np.array(
        [
            [-half, -half, -half],
            [half, -half, -half],
            [half, half, -half],
            [-half, half, -half],
            [-half, -half, half],
            [half, -half, half],
            [half, half, half],
            [-half, half, half],
        ]
    )
    # Each face gets its own four vertices so colours stay flat per face.
    face_quads = [
        (0, 1, 2, 3),  # back
        (5, 4, 7, 6),  # front
        (4, 0, 3, 7),  # left
        (1, 5, 6, 2),  # right
        (3, 2, 6, 7),  # top
        (4, 5, 1, 0),  # bottom
    ]
    face_colors = np.array(
        [
            [0.9, 0.2, 0.2],
            [0.2, 0.9, 0.2],
            [0.2, 0.2, 0.9],
            [0.9, 0.9, 0.2],
            [0.2, 0.9, 0.9],
            [0.9, 0.2, 0.9],
        ]
    )
    quad_uvs = np.array([[0.0, 0.0], [1.0, 0.0], [1.0, 1.0], [0.0, 1.0]])

    vertices = []
    faces = []
    colors = []
    uvs = []
    for face_index, quad in enumerate(face_quads):
        base = len(vertices)
        for corner_index, corner in enumerate(quad):
            vertices.append(corners[corner])
            colors.append(face_colors[face_index])
            uvs.append(quad_uvs[corner_index])
        faces.append([base, base + 1, base + 2])
        faces.append([base, base + 2, base + 3])

    return TriangleMesh(
        vertices=np.array(vertices),
        faces=np.array(faces),
        vertex_colors=np.array(colors),
        uvs=np.array(uvs),
    )
