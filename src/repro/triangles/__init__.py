"""Triangle-mesh rendering substrate.

The GPU's fixed-function rasterizer that GauRast enhances exists to serve
triangle meshes, so the reproduction includes a complete (if compact)
software triangle pipeline: mesh representation, vertex transformation, and
an edge-function rasterizer with barycentric UV interpolation and a z-buffer.
Its per-fragment operator structure matches the left column of Table II
(coordinate shift, intersection detection, UV weight computation, min-depth
colour hold) and is the golden model for the PE's triangle mode.
"""

from repro.triangles.mesh import TriangleMesh, make_cube, make_plane
from repro.triangles.raster import TriangleRasterStats, rasterize_mesh
from repro.triangles.transform import transform_to_screen

__all__ = [
    "TriangleMesh",
    "TriangleRasterStats",
    "make_cube",
    "make_plane",
    "rasterize_mesh",
    "transform_to_screen",
]
