"""Vertex transformation for the triangle pipeline.

Maps world-space mesh vertices through the camera into screen space.  The
output bundles, per triangle, the nine floating-point numbers of Table II's
left column ("Vertices' Coordinates"): three screen-space vertices of
(x, y, depth) each, ready for the rasterizer.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.gaussians.camera import Camera
from repro.triangles.mesh import TriangleMesh


@dataclass
class ScreenTriangles:
    """Screen-space triangles ready for rasterization.

    Attributes
    ----------
    vertices:
        ``(F, 3, 3)`` per-triangle screen-space vertices ``(x, y, depth)``.
    colors:
        ``(F, 3, 3)`` per-triangle vertex colours.
    uvs:
        ``(F, 3, 2)`` per-triangle vertex texture coordinates.
    """

    vertices: np.ndarray = field(repr=False)
    colors: np.ndarray = field(repr=False)
    uvs: np.ndarray = field(repr=False)

    def __len__(self) -> int:
        return len(self.vertices)

    def raster_inputs(self) -> np.ndarray:
        """Pack the 9 floating-point rasterizer inputs of Table II.

        Returns an ``(F, 9)`` array laid out as
        ``[x0, y0, z0, x1, y1, z1, x2, y2, z2]``.
        """
        return self.vertices.reshape(len(self.vertices), 9)


def transform_to_screen(mesh: TriangleMesh, camera: Camera) -> ScreenTriangles:
    """Project a mesh into screen space and cull triangles behind the camera.

    Triangles with any vertex behind the near plane are dropped (no clipping
    is performed — the substrate only needs well-behaved test content), as
    are triangles completely outside the image.
    """
    pixels, depths = camera.project(mesh.vertices)

    face_pixels = pixels[mesh.faces]  # (F, 3, 2)
    face_depths = depths[mesh.faces]  # (F, 3)
    face_colors = mesh.vertex_colors[mesh.faces]
    face_uvs = mesh.uvs[mesh.faces]

    in_front = np.all(face_depths > camera.znear, axis=1)

    min_xy = face_pixels.min(axis=1)
    max_xy = face_pixels.max(axis=1)
    on_screen = (
        (max_xy[:, 0] >= 0)
        & (min_xy[:, 0] <= camera.width)
        & (max_xy[:, 1] >= 0)
        & (min_xy[:, 1] <= camera.height)
    )

    keep = in_front & on_screen
    screen_vertices = np.concatenate(
        [face_pixels[keep], face_depths[keep][:, :, np.newaxis]], axis=2
    )
    return ScreenTriangles(
        vertices=screen_vertices,
        colors=face_colors[keep],
        uvs=face_uvs[keep],
    )
