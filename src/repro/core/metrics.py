"""Metric containers for the GauRast evaluation.

These dataclasses carry the quantities the paper reports: per-scene
rasterization runtime and energy with and without GauRast (Table III,
Fig. 10), end-to-end FPS with and without GauRast (Fig. 11) and the
per-stage baseline breakdown (Figs. 4/5).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Optional

from repro.baselines.gpu_model import StageTimes
from repro.hardware.multi import RasterizationEstimate
from repro.profiling.workload import WorkloadStatistics


def arithmetic_mean(values: Iterable[float]) -> float:
    """Arithmetic mean of a non-empty sequence."""
    values = list(values)
    if not values:
        raise ValueError("cannot average an empty sequence")
    return sum(values) / len(values)


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean of a non-empty sequence of positive values."""
    values = list(values)
    if not values:
        raise ValueError("cannot average an empty sequence")
    if any(v <= 0 for v in values):
        raise ValueError("geometric mean requires positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))


@dataclass(frozen=True)
class RasterizationComparison:
    """Rasterization runtime and energy, baseline vs GauRast (one scene)."""

    scene_name: str
    algorithm: str
    baseline_time_s: float
    gaurast_time_s: float
    baseline_energy_j: float
    gaurast_energy_j: float

    @property
    def speedup(self) -> float:
        """Rasterization speedup of GauRast over the baseline."""
        if self.gaurast_time_s == 0:
            return float("inf")
        return self.baseline_time_s / self.gaurast_time_s

    @property
    def energy_improvement(self) -> float:
        """Rasterization energy-efficiency improvement of GauRast."""
        if self.gaurast_energy_j == 0:
            return float("inf")
        return self.baseline_energy_j / self.gaurast_energy_j


@dataclass(frozen=True)
class EndToEndComparison:
    """End-to-end frame rate, baseline vs GauRast (one scene)."""

    scene_name: str
    algorithm: str
    baseline_frame_time_s: float
    gaurast_frame_interval_s: float
    gaurast_frame_latency_s: float

    @property
    def baseline_fps(self) -> float:
        """FPS of the unmodified SoC."""
        return 1.0 / self.baseline_frame_time_s

    @property
    def gaurast_fps(self) -> float:
        """Steady-state FPS with GauRast and the collaborative schedule."""
        return 1.0 / self.gaurast_frame_interval_s

    @property
    def speedup(self) -> float:
        """End-to-end speedup (throughput ratio)."""
        return self.gaurast_fps / self.baseline_fps


@dataclass(frozen=True)
class SceneEvaluation:
    """Full evaluation of one scene with one algorithm."""

    workload: WorkloadStatistics
    stage_times: StageTimes
    rasterization: RasterizationComparison
    end_to_end: EndToEndComparison
    estimate: Optional[RasterizationEstimate] = None

    @property
    def scene_name(self) -> str:
        """Scene name."""
        return self.workload.scene_name

    @property
    def algorithm(self) -> str:
        """Rendering algorithm ('original' or 'optimized')."""
        return self.workload.algorithm
