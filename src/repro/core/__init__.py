"""Public API of the GauRast reproduction.

The central entry point is :class:`repro.core.gaurast.GauRastSystem`, which
ties together the functional 3DGS pipeline, the baseline platform model, the
GauRast hardware model and the CUDA-collaborative schedule.  Typical usage::

    from repro.core import GauRastSystem

    system = GauRastSystem()
    evaluation = system.evaluate_scene("bicycle")          # paper-scale model
    print(evaluation.rasterization.speedup)                 # ~21x for bicycle

    image, report = system.render(scene)                    # cycle-level sim
"""

from repro.core.gaurast import GauRastSystem, TraceEvaluation
from repro.core.metrics import (
    EndToEndComparison,
    RasterizationComparison,
    SceneEvaluation,
    arithmetic_mean,
    geometric_mean,
)

__all__ = [
    "EndToEndComparison",
    "GauRastSystem",
    "RasterizationComparison",
    "SceneEvaluation",
    "TraceEvaluation",
    "arithmetic_mean",
    "geometric_mean",
]
