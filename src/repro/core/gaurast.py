"""GauRastSystem: the top-level API tying the whole reproduction together.

A :class:`GauRastSystem` owns a baseline platform model (the Jetson Orin NX
by default), a GauRast hardware configuration, the energy model and the
CUDA-collaborative schedule.  It answers the questions the paper's
evaluation asks:

* ``evaluate_scene(name, algorithm)`` — paper-scale, descriptor-driven
  comparison: baseline vs GauRast rasterization runtime and energy plus
  end-to-end FPS (Table III, Figs. 10 and 11).
* ``evaluate_all(algorithm)`` — the same over all seven NeRF-360 scenes.
* ``render(scene)`` — cycle-level simulation of an actual (scaled-down)
  :class:`~repro.gaussians.scene.GaussianScene` through the full pipeline
  with the hardware model executing Stage 3; returns the image and the
  frame report, and is validated against the functional renderer.
* ``evaluate_trace(store, requests)`` — serve a render-request trace
  through the serving layer (optionally sharded across ``workers``
  processes) and replay every distinct frame on the cycle-level model.

Usage::

    from repro.core import GauRastSystem
    from repro.serving import SceneStore, generate_requests

    system = GauRastSystem()
    print(system.summary("optimized"))          # paper headline numbers

    store = SceneStore([scene_a, scene_b])
    trace = generate_requests(store, 60, pattern="zipf")
    evaluation = system.evaluate_trace(store, trace, workers=4)
    evaluation.hardware_speedup                  # memoization, in cycles
    evaluation.service.requests_per_second       # functional fleet throughput
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Union

import numpy as np

from repro.baselines.jetson import JetsonOrinNX
from repro.core.metrics import (
    EndToEndComparison,
    RasterizationComparison,
    SceneEvaluation,
)
from repro.datasets.nerf360 import SceneDescriptor, get_scene, iter_scenes
from repro.gaussians.pipeline import render as functional_render
from repro.gaussians.pipeline import render_batch as functional_render_batch
from repro.gaussians.scene import GaussianScene
from repro.hardware.config import GauRastConfig, SCALED_CONFIG
from repro.hardware.multi import FrameReport, ScaledGauRast
from repro.hardware.power import EnergyModel
from repro.profiling.workload import WorkloadStatistics
from repro.scheduling.collaborative import schedule_frames
from repro.serving.gateway import GatewayReport, RenderGateway
from repro.serving.service import RenderRequest, RenderService, ServiceReport
from repro.serving.sharded import FleetReport, ShardedRenderService
from repro.serving.storage import host_store
from repro.serving.store import SceneStore


@dataclass
class TraceEvaluation:
    """Hardware-model evaluation of a served render-request trace.

    The functional serving layer answers repeated (scene, camera) requests
    from its frame cache; the hardware model mirrors that: each *distinct*
    frame of the trace is simulated once at cycle level, and cache hits cost
    no rasterizer cycles.  ``naive_cycles`` is the counterfactual where every
    request pays its frame's full cost.

    Attributes
    ----------
    service:
        The functional serving report (images, latencies, cache stats) — a
        :class:`~repro.serving.service.ServiceReport` for a single worker, a
        :class:`~repro.serving.sharded.FleetReport` for a sharded serve, or
        a :class:`~repro.serving.gateway.GatewayReport` for a serve through
        the async gateway (in which case shed/rejected/expired requests,
        having produced no frame, are excluded from the hardware replay).
    frame_reports:
        Cycle-level report of each distinct frame, aligned with
        ``service.responses`` via ``request_cycles``.
    request_cycles:
        Per-request hardware cycles of the frame answering it.
    config:
        Hardware configuration the trace was evaluated against.
    frame_levels:
        Detail level of each distinct frame, aligned with
        ``frame_reports`` (all zeros for a serve without LOD).
    """

    service: Union[ServiceReport, FleetReport, GatewayReport]
    frame_reports: List[FrameReport]
    request_cycles: List[int]
    config: GauRastConfig
    frame_levels: List[int] = field(default_factory=list)

    @property
    def served_cycles(self) -> int:
        """Total rasterizer cycles with frame memoization (distinct frames)."""
        return sum(report.frame_cycles for report in self.frame_reports)

    @property
    def naive_cycles(self) -> int:
        """Total rasterizer cycles if every request were rendered afresh."""
        return sum(self.request_cycles)

    @property
    def hardware_speedup(self) -> float:
        """Cycle-count ratio of the naive loop over the serving layer."""
        if self.served_cycles == 0:
            return 1.0
        return self.naive_cycles / self.served_cycles

    @property
    def requests_per_second(self) -> float:
        """Requests the hardware sustains per second at the configured clock.

        Counts the requests that actually received a frame (for a gateway
        serve, drops cost no cycles and earn no throughput).
        """
        if self.served_cycles == 0:
            return float("inf")
        seconds = self.served_cycles / self.config.clock_hz
        return len(self.request_cycles) / seconds

    def _by_level(self, value_of) -> Dict[int, float]:
        """Aggregate a per-frame quantity over the frames of each level."""
        totals: Dict[int, float] = {}
        levels = self.frame_levels or [0] * len(self.frame_reports)
        for level, report in zip(levels, self.frame_reports):
            totals[level] = totals.get(level, 0) + value_of(report)
        return totals

    @property
    def cycles_by_level(self) -> Dict[int, int]:
        """Rasterizer cycles of the distinct frames, per detail level.

        Quantifies what each LOD tier costs in *hardware* terms: coarser
        levels rasterize fewer Gaussians, so their per-frame cycle counts
        drop relative to level 0 (compare against ``frames_by_level`` for
        per-frame deltas).
        """
        return self._by_level(lambda report: report.frame_cycles)

    @property
    def traffic_by_level(self) -> Dict[int, int]:
        """Memory-interface traffic bytes of the distinct frames, per level.

        The bandwidth half of the LOD argument: pruned levels move fewer
        per-Gaussian operand bundles through the memory interface.
        """
        return self._by_level(lambda report: report.traffic_bytes)

    @property
    def frames_by_level(self) -> Dict[int, int]:
        """Distinct frames simulated per detail level."""
        return self._by_level(lambda report: 1)

    @property
    def mean_cycles_per_frame_by_level(self) -> Dict[int, float]:
        """Average rasterizer cycles of one frame at each detail level."""
        frames = self.frames_by_level
        return {
            level: cycles / frames[level]
            for level, cycles in self.cycles_by_level.items()
        }


@dataclass
class GauRastSystem:
    """The GauRast-enhanced SoC model.

    Attributes
    ----------
    config:
        Hardware configuration of the enhanced rasterizer (defaults to the
        scaled 15-instance design used in the paper's SoC evaluation).
    baseline:
        Baseline platform whose CUDA cores run Stages 1-2 (and, for the
        comparison, the unaccelerated Stage 3).
    """

    config: GauRastConfig = field(default_factory=lambda: SCALED_CONFIG)
    baseline: JetsonOrinNX = field(default_factory=JetsonOrinNX)

    def __post_init__(self) -> None:
        self.rasterizer = ScaledGauRast(self.config)
        self.energy_model = EnergyModel(self.config)

    # ------------------------------------------------------------------ #
    # Paper-scale evaluation (descriptor-driven)
    # ------------------------------------------------------------------ #
    def evaluate_workload(self, workload: WorkloadStatistics) -> SceneEvaluation:
        """Evaluate one workload: baseline vs GauRast, runtime and energy."""
        stage_times = self.baseline.stage_times(workload)
        estimate = self.rasterizer.estimate(workload)

        baseline_raster_time = stage_times.rasterize
        gaurast_raster_time = estimate.runtime_seconds
        baseline_energy = self.baseline.rasterization_energy(workload)
        gaurast_energy = self.energy_model.frame_energy_j(estimate)

        rasterization = RasterizationComparison(
            scene_name=workload.scene_name,
            algorithm=workload.algorithm,
            baseline_time_s=baseline_raster_time,
            gaurast_time_s=gaurast_raster_time,
            baseline_energy_j=baseline_energy,
            gaurast_energy_j=gaurast_energy,
        )

        schedule = schedule_frames(stage_times.non_rasterize, gaurast_raster_time)
        end_to_end = EndToEndComparison(
            scene_name=workload.scene_name,
            algorithm=workload.algorithm,
            baseline_frame_time_s=stage_times.total,
            gaurast_frame_interval_s=schedule.steady_state_interval,
            gaurast_frame_latency_s=schedule.frame_latency,
        )
        return SceneEvaluation(
            workload=workload,
            stage_times=stage_times,
            rasterization=rasterization,
            end_to_end=end_to_end,
            estimate=estimate,
        )

    def evaluate_scene(
        self,
        scene: Union[str, SceneDescriptor],
        algorithm: str = "original",
    ) -> SceneEvaluation:
        """Evaluate one NeRF-360 scene by name or descriptor."""
        descriptor = scene if isinstance(scene, SceneDescriptor) else get_scene(scene)
        workload = WorkloadStatistics.from_descriptor(descriptor, algorithm)
        return self.evaluate_workload(workload)

    def evaluate_all(self, algorithm: str = "original") -> List[SceneEvaluation]:
        """Evaluate all seven NeRF-360 scenes with one algorithm."""
        return [
            self.evaluate_scene(descriptor, algorithm) for descriptor in iter_scenes()
        ]

    def summary(self, algorithm: str = "original") -> Dict[str, float]:
        """Average headline metrics over all scenes (the paper's key numbers)."""
        evaluations = self.evaluate_all(algorithm)
        count = len(evaluations)
        return {
            "mean_raster_speedup": sum(
                e.rasterization.speedup for e in evaluations
            )
            / count,
            "mean_energy_improvement": sum(
                e.rasterization.energy_improvement for e in evaluations
            )
            / count,
            "mean_baseline_fps": sum(e.end_to_end.baseline_fps for e in evaluations)
            / count,
            "mean_gaurast_fps": sum(e.end_to_end.gaurast_fps for e in evaluations)
            / count,
            "mean_end_to_end_speedup": sum(
                e.end_to_end.speedup for e in evaluations
            )
            / count,
        }

    # ------------------------------------------------------------------ #
    # Cycle-level rendering of actual scenes
    # ------------------------------------------------------------------ #
    def render(
        self,
        scene: GaussianScene,
        camera=None,
        background=(0.0, 0.0, 0.0),
        backend: Optional[str] = None,
    ) -> tuple[np.ndarray, FrameReport]:
        """Render a scene with the hardware model executing Stage 3.

        Stages 1-2 run through the functional pipeline (they stay on the
        CUDA cores in the real system); Stage 3 runs on the cycle-level
        multi-instance simulator.  ``backend`` selects the functional
        rasterization backend used for the software stages (see
        :func:`repro.gaussians.pipeline.render`); it does not affect the
        hardware simulation.
        """
        result = functional_render(
            scene,
            camera=camera,
            background=background,
            collect_stats=False,
            backend=backend,
        )
        return self.rasterizer.simulate_frame(
            result.projected, result.binning, background=background
        )

    def render_batch(
        self,
        scene: GaussianScene,
        cameras=None,
        background=(0.0, 0.0, 0.0),
        backend: Optional[str] = None,
    ) -> List[tuple[np.ndarray, FrameReport]]:
        """Render several viewpoints through the hardware model.

        The software stages run through the batched functional pipeline
        (:func:`repro.gaussians.pipeline.render_batch`, sharing scene-level
        preprocessing), then each frame's tile lists are replayed on the
        cycle-level simulator.
        """
        batch = functional_render_batch(
            scene,
            cameras=cameras,
            background=background,
            collect_stats=False,
            backend=backend,
        )
        return [
            self.rasterizer.simulate_frame(
                result.projected, result.binning, background=background
            )
            for result in batch.results
        ]

    # ------------------------------------------------------------------ #
    # Request-trace serving through the hardware model
    # ------------------------------------------------------------------ #
    def evaluate_trace(
        self,
        store: SceneStore,
        requests: List[RenderRequest],
        backend: Optional[str] = None,
        background=(0.0, 0.0, 0.0),
        service: Optional[Union[RenderService, ShardedRenderService]] = None,
        workers: Optional[int] = None,
        lod_policy=None,
        gateway: Optional[RenderGateway] = None,
        replication: int = 1,
        hot_scenes=None,
        rebalance: bool = False,
        failure_plan=None,
        storage: Optional[str] = None,
        memory_budget: Optional[int] = None,
    ) -> TraceEvaluation:
        """Serve a request trace and replay it on the hardware model.

        The trace is first served functionally through a
        :class:`~repro.serving.service.RenderService` (same-scene batching
        plus covariance/frame memoization) — or, with ``workers`` > 1, a
        :class:`~repro.serving.sharded.ShardedRenderService` fleet — then
        every distinct frame's tile lists are replayed on the cycle-level
        multi-instance simulator.  The result quantifies what the serving
        layer buys in *hardware* terms: total rasterizer cycles with and
        without frame memoization, and the request throughput the
        accelerator sustains at its clock.  Sharded and single-worker serves
        produce bit-identical frames, so the hardware replay is unaffected
        by ``workers``; it changes only the functional report attached to
        the evaluation.

        With a LOD-tiered store (and a ``lod_policy`` or explicit request
        levels), each distinct frame is simulated at the level it was
        served, and ``cycles_by_level`` / ``traffic_by_level`` report the
        hardware cost deltas between detail levels.

        When an existing ``service`` is passed (single-worker or sharded),
        its own backend and background govern both the functional serve and
        the hardware replay; the ``backend``/``background``/``workers``/
        ``lod_policy`` arguments apply only when the service is created
        here.  A ``gateway`` (mutually exclusive with ``service``) serves
        the trace through the async front end instead — coalescing and
        batching change nothing in the replay because frames stay
        bit-identical, but overload drops (shed/rejected/expired requests)
        produced no frame and are therefore excluded from it.

        ``replication``/``hot_scenes``/``rebalance`` configure hot-scene
        replication on a fleet created here (``workers`` > 1), and
        ``failure_plan`` injects seeded worker deaths into the sharded
        serve (see :class:`~repro.serving.traffic.FailurePlan`) — requeued
        requests still produce exactly one response each, and frames stay
        bit-identical, so the hardware replay is again unaffected.

        ``storage`` re-hosts the catalog on a residency tier before
        serving (``"shared"`` / ``"paged"``, see
        :func:`~repro.serving.storage.host_store`); ``memory_budget``
        bounds the paged tier's resident set.  Tiers serve the same bytes,
        so frames — and therefore the whole hardware replay — stay
        bit-identical across ``storage`` choices.  The tier lives only for
        the duration of the call and applies only when the service is
        created here.
        """
        if gateway is not None and service is not None:
            raise ValueError("pass either service= or gateway=, not both")
        lease = None
        if storage not in (None, "memory"):
            if service is not None or gateway is not None:
                raise ValueError(
                    "storage= applies only when evaluate_trace creates the "
                    "service; re-host the store before building one yourself"
                )
            lease = host_store(store, storage, memory_budget=memory_budget)
            store = lease.store
        owned_service = None
        if gateway is not None:
            service = gateway.service
        elif service is None:
            if workers is not None and workers > 1:
                service = owned_service = ShardedRenderService(
                    store, num_workers=workers, backend=backend,
                    background=background, collect_stats=False,
                    lod_policy=lod_policy, replication=replication,
                    hot_scenes=hot_scenes, rebalance=rebalance,
                )
            else:
                service = RenderService(
                    store, backend=backend, background=background,
                    collect_stats=False, lod_policy=lod_policy,
                )
        # The replay must composite over the same background the served
        # frames used, or the two image sets would disagree.
        background = service.background
        try:
            if gateway is not None:
                report = gateway.serve(requests)
                served_responses = [r for r in report.responses if r.ok]
            elif failure_plan is not None:
                if not isinstance(service, ShardedRenderService):
                    raise ValueError(
                        "failure_plan needs a sharded service (workers > 1)"
                    )
                report = service.serve(requests, failure_plan=failure_plan)
                served_responses = report.responses
            else:
                report = service.serve(requests)
                served_responses = report.responses
        finally:
            if owned_service is not None:
                owned_service.close()
            if lease is not None:
                lease.close()

        distinct: Dict[tuple, FrameReport] = {}
        frame_levels: Dict[tuple, int] = {}
        request_cycles: List[int] = []
        for response in served_responses:
            frame = distinct.get(response.frame_key)
            if frame is None:
                _, frame = self.rasterizer.simulate_frame(
                    response.result.projected,
                    response.result.binning,
                    background=background,
                )
                distinct[response.frame_key] = frame
                frame_levels[response.frame_key] = response.level
            request_cycles.append(frame.frame_cycles)
        return TraceEvaluation(
            service=report,
            frame_reports=list(distinct.values()),
            request_cycles=request_cycles,
            config=self.config,
            frame_levels=list(frame_levels.values()),
        )
