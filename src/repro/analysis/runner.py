"""File discovery and the ``repro lint`` / ``python -m repro.analysis`` CLI.

The runner turns paths into :class:`~repro.analysis.core.ParsedModule`
objects, runs the registered rules over them as one project (so cross-file
resolution like the cache-key rule's ``RenderRequest`` lookup sees every
file), and renders the findings through :mod:`repro.analysis.report`.

Exit codes are part of the contract (CI and pre-commit hooks consume
them): **0** clean, **1** at least one non-baselined finding, **2**
analyzer-internal error (unknown rule, unreadable path, malformed
baseline).  A file that fails to *parse* is reported as a ``parse-error``
finding (exit 1) — a broken target is a property of the tree, not of the
analyzer.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.analysis.core import (
    Baseline,
    Finding,
    ParsedModule,
    lint_modules,
    resolve_rules,
    RULES,
)
from repro.analysis.report import render_json, render_text

#: Directory names never descended into during discovery.
_SKIPPED_DIRS = {"__pycache__", ".git", ".hypothesis", ".pytest_cache"}


def default_paths() -> List[str]:
    """The default lint target: the installed ``repro`` package tree."""
    import repro

    return [str(Path(repro.__file__).parent)]


def iter_python_files(paths: Iterable[str]) -> List[Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    files: List[Path] = []
    for entry in paths:
        path = Path(entry)
        if not path.exists():
            raise FileNotFoundError(f"lint target does not exist: {entry}")
        if path.is_dir():
            files.extend(
                candidate
                for candidate in sorted(path.rglob("*.py"))
                if not any(
                    part in _SKIPPED_DIRS or part.startswith(".")
                    for part in candidate.parts
                )
            )
        else:
            files.append(path)
    return files


def load_modules(
    files: Sequence[Path],
) -> Tuple[List[ParsedModule], List[Finding]]:
    """Parse files into modules; syntax errors become ``parse-error`` findings."""
    modules: List[ParsedModule] = []
    errors: List[Finding] = []
    for path in files:
        source = path.read_text()
        try:
            modules.append(ParsedModule(path, source))
        except SyntaxError as error:
            errors.append(
                Finding(
                    rule="parse-error",
                    path=str(path),
                    line=error.lineno or 1,
                    col=error.offset or 0,
                    message=f"file does not parse: {error.msg}",
                )
            )
    return modules, errors


def lint_paths(
    paths: Optional[Sequence[str]] = None,
    rules: Optional[Sequence[str]] = None,
    baseline: Optional[str] = None,
) -> Tuple[List[Finding], int]:
    """Lint files/directories and return ``(findings, files scanned)``.

    ``rules`` optionally restricts the run to the named rule ids;
    ``baseline`` optionally points at a JSON baseline file whose
    fingerprints are reported as grandfathered rather than new.
    """
    files = iter_python_files(paths if paths else default_paths())
    modules, errors = load_modules(files)
    fingerprints = Baseline.load(baseline).fingerprints if baseline else None
    findings = lint_modules(
        modules, rules=resolve_rules(rules), baseline=fingerprints
    )
    findings.extend(errors)
    return findings, len(files)


def build_parser() -> argparse.ArgumentParser:
    """Argument parser shared by ``repro lint`` and ``-m repro.analysis``."""
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description=(
            "AST-based invariant linter: determinism, cache-key "
            "completeness, async-safety, repr-hygiene."
        ),
    )
    parser.add_argument(
        "paths", nargs="*", metavar="PATH",
        help="files or directories to lint (default: the repro package)",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="report format (json follows the documented v1 schema)",
    )
    parser.add_argument(
        "--rules", default=None, metavar="ID[,ID...]",
        help="comma-separated subset of rules to run (default: all)",
    )
    parser.add_argument(
        "--baseline", default=None, metavar="PATH",
        help="JSON baseline of grandfathered finding fingerprints",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="list the registered rules and exit",
    )
    return parser


def run(
    paths: Optional[Sequence[str]] = None,
    output_format: str = "text",
    rules: Optional[str] = None,
    baseline: Optional[str] = None,
    list_rules: bool = False,
    stream=None,
) -> int:
    """Execute a lint run and print the report; returns the exit code.

    This is the single implementation behind both CLI entry points, so
    ``repro lint`` and ``python -m repro.analysis`` cannot drift.
    """
    stream = stream if stream is not None else sys.stdout
    if list_rules:
        for rule_id, rule in sorted(RULES.items()):
            print(f"{rule_id}: {rule.summary}", file=stream)
        return 0
    try:
        rule_names = (
            [name.strip() for name in rules.split(",") if name.strip()]
            if rules
            else None
        )
        findings, num_files = lint_paths(
            paths, rules=rule_names, baseline=baseline
        )
    except (FileNotFoundError, KeyError, ValueError, OSError) as error:
        print(f"repro lint: error: {error}", file=sys.stderr)
        return 2
    renderer = render_json if output_format == "json" else render_text
    print(renderer(findings, num_files), file=stream)
    return 1 if any(not finding.baselined for finding in findings) else 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """``python -m repro.analysis`` entry point."""
    try:
        arguments = build_parser().parse_args(argv)
    except SystemExit as exit_error:
        # argparse exits 2 on bad usage, 0 on --help; preserve both.
        return int(exit_error.code or 0)
    return run(
        paths=arguments.paths,
        output_format=arguments.format,
        rules=arguments.rules,
        baseline=arguments.baseline,
        list_rules=arguments.list_rules,
    )
