"""File discovery and the ``repro lint`` / ``python -m repro.analysis`` CLI.

The runner turns paths into :class:`~repro.analysis.core.ParsedModule`
objects, runs the registered rules over them as one project (so cross-file
resolution like the cache-key rule's ``RenderRequest`` lookup sees every
file), and renders the findings through :mod:`repro.analysis.report`.

Exit codes are part of the contract (CI and pre-commit hooks consume
them): **0** clean, **1** at least one non-baselined finding, **2**
analyzer-internal error (unknown rule, unreadable path, a file that is
not valid UTF-8, malformed baseline).  A file that fails to *parse* is
reported as a ``parse-error`` finding (exit 1) — a broken target is a
property of the tree, not of the analyzer.

``--update-baseline`` rewrites the baseline file to exactly the current
findings' fingerprints (sorted, stable), warning on stderr about pruned
entries — fingerprints that no longer match any finding, including those
newly silenced by ``# repro: ignore[...]`` comments.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.analysis.core import (
    Baseline,
    Finding,
    ParsedModule,
    lint_modules,
    resolve_rules,
    RULES,
)
from repro.analysis.report import render_github, render_json, render_text

#: Directory names never descended into during discovery.
_SKIPPED_DIRS = {"__pycache__", ".git", ".hypothesis", ".pytest_cache"}


def default_paths() -> List[str]:
    """The default lint target: the installed ``repro`` package tree."""
    import repro

    return [str(Path(repro.__file__).parent)]


def iter_python_files(
    paths: Iterable[str],
    exclude: Iterable[str] = (),
) -> List[Path]:
    """Expand files/directories into a sorted list of ``.py`` files.

    ``exclude`` adds directory names to the skip set (``--exclude
    fixtures`` keeps the deliberately-broken lint fixtures out of a
    tree-wide run); explicitly listed files are never excluded.
    """
    skipped = _SKIPPED_DIRS | set(exclude)
    files: List[Path] = []
    for entry in paths:
        path = Path(entry)
        if not path.exists():
            raise FileNotFoundError(f"lint target does not exist: {entry}")
        if path.is_dir():
            files.extend(
                candidate
                for candidate in sorted(path.rglob("*.py"))
                if not any(
                    part in skipped or part.startswith(".")
                    for part in candidate.parts
                )
            )
        else:
            files.append(path)
    return files


def load_modules(
    files: Sequence[Path],
) -> Tuple[List[ParsedModule], List[Finding]]:
    """Parse files into modules; syntax errors become ``parse-error`` findings."""
    modules: List[ParsedModule] = []
    errors: List[Finding] = []
    for path in files:
        try:
            source = path.read_text(encoding="utf-8")
        except UnicodeDecodeError as error:
            # Analyzer-internal diagnostic (exit 2), not a finding: an
            # undecodable file means the *target set* is wrong, the same
            # class of problem as a nonexistent path.
            raise ValueError(
                f"{path} is not valid UTF-8 "
                f"(byte {error.object[error.start]:#04x} at offset "
                f"{error.start}): lint targets must be UTF-8 text"
            ) from error
        try:
            modules.append(ParsedModule(path, source))
        except SyntaxError as error:
            errors.append(
                Finding(
                    rule="parse-error",
                    path=str(path),
                    line=error.lineno or 1,
                    col=error.offset or 0,
                    message=f"file does not parse: {error.msg}",
                )
            )
    return modules, errors


def lint_paths(
    paths: Optional[Sequence[str]] = None,
    rules: Optional[Sequence[str]] = None,
    baseline: Optional[str] = None,
    exclude: Iterable[str] = (),
) -> Tuple[List[Finding], int]:
    """Lint files/directories and return ``(findings, files scanned)``.

    ``rules`` optionally restricts the run to the named rule ids;
    ``baseline`` optionally points at a JSON baseline file whose
    fingerprints are reported as grandfathered rather than new;
    ``exclude`` adds directory names skipped during discovery.
    """
    files = iter_python_files(paths if paths else default_paths(), exclude)
    modules, errors = load_modules(files)
    fingerprints = Baseline.load(baseline).fingerprints if baseline else None
    findings = lint_modules(
        modules, rules=resolve_rules(rules), baseline=fingerprints
    )
    findings.extend(errors)
    return findings, len(files)


def build_parser() -> argparse.ArgumentParser:
    """Argument parser shared by ``repro lint`` and ``-m repro.analysis``."""
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description=(
            "AST-based invariant linter: determinism, cache-key "
            "completeness, async-safety, repr-hygiene."
        ),
    )
    parser.add_argument(
        "paths", nargs="*", metavar="PATH",
        help="files or directories to lint (default: the repro package)",
    )
    parser.add_argument(
        "--format", choices=("text", "json", "github"), default="text",
        help=(
            "report format (json follows the documented v1 schema; github "
            "emits ::error workflow annotations)"
        ),
    )
    parser.add_argument(
        "--rules", default=None, metavar="ID[,ID...]",
        help="comma-separated subset of rules to run (default: all)",
    )
    parser.add_argument(
        "--baseline", default=None, metavar="PATH",
        help="JSON baseline of grandfathered finding fingerprints",
    )
    parser.add_argument(
        "--update-baseline", action="store_true",
        help=(
            "rewrite the baseline (default lint-baseline.json) to the "
            "current findings, pruning stale fingerprints, and exit 0"
        ),
    )
    parser.add_argument(
        "--exclude", action="append", default=None, metavar="NAME",
        help=(
            "directory name to skip during discovery (repeatable); "
            "e.g. --exclude fixtures"
        ),
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="list the registered rules and exit",
    )
    return parser


#: Baseline path rewritten when ``--update-baseline`` is given bare.
DEFAULT_BASELINE = "lint-baseline.json"

_RENDERERS = {
    "text": render_text,
    "json": render_json,
    "github": render_github,
}


def _update_baseline(
    findings: Sequence[Finding], baseline_path: str, old: set
) -> set:
    """Rewrite the baseline to the current findings; return pruned entries.

    Parse errors are deliberately never baselined — a file that stops
    parsing must keep failing the build.
    """
    current = {
        finding.fingerprint
        for finding in findings
        if finding.rule != "parse-error"
    }
    pruned = old - current
    Baseline(fingerprints=current).save(baseline_path)
    return pruned


def run(
    paths: Optional[Sequence[str]] = None,
    output_format: str = "text",
    rules: Optional[str] = None,
    baseline: Optional[str] = None,
    list_rules: bool = False,
    update_baseline: bool = False,
    exclude: Optional[Sequence[str]] = None,
    stream=None,
) -> int:
    """Execute a lint run and print the report; returns the exit code.

    This is the single implementation behind both CLI entry points, so
    ``repro lint`` and ``python -m repro.analysis`` cannot drift.
    """
    stream = stream if stream is not None else sys.stdout
    if list_rules:
        for rule_id, rule in sorted(RULES.items()):
            print(f"{rule_id}: {rule.summary}", file=stream)
        return 0
    try:
        rule_names = (
            [name.strip() for name in rules.split(",") if name.strip()]
            if rules
            else None
        )
        baseline_path = baseline
        if update_baseline and baseline_path is None:
            baseline_path = DEFAULT_BASELINE
        load_path = (
            baseline_path
            if baseline_path and Path(baseline_path).exists()
            else None
        )
        findings, num_files = lint_paths(
            paths, rules=rule_names, baseline=load_path,
            exclude=tuple(exclude or ()),
        )
        if update_baseline:
            old = (
                Baseline.load(load_path).fingerprints if load_path else set()
            )
            pruned = _update_baseline(findings, baseline_path, old)
            for fingerprint in sorted(pruned):
                print(
                    f"repro lint: pruned stale baseline entry {fingerprint}",
                    file=sys.stderr,
                )
            kept = len(
                {f.fingerprint for f in findings if f.rule != "parse-error"}
            )
            print(
                f"repro lint: baseline {baseline_path} updated — "
                f"{kept} fingerprint(s), {len(pruned)} pruned",
                file=stream,
            )
            return 0
    except (FileNotFoundError, KeyError, ValueError, OSError) as error:
        print(f"repro lint: error: {error}", file=sys.stderr)
        return 2
    renderer = _RENDERERS.get(output_format, render_text)
    print(renderer(findings, num_files), file=stream)
    return 1 if any(not finding.baselined for finding in findings) else 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """``python -m repro.analysis`` entry point."""
    try:
        arguments = build_parser().parse_args(argv)
    except SystemExit as exit_error:
        # argparse exits 2 on bad usage, 0 on --help; preserve both.
        return int(exit_error.code or 0)
    return run(
        paths=arguments.paths,
        output_format=arguments.format,
        rules=arguments.rules,
        baseline=arguments.baseline,
        list_rules=arguments.list_rules,
        update_baseline=arguments.update_baseline,
        exclude=arguments.exclude,
    )
