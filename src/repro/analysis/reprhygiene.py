"""Repr-hygiene rule: dataclass reprs must never embed ndarray payloads.

A dataclass's generated ``__repr__`` recursively formats every field.  For
fields holding NumPy arrays (or containers of them) that is not just noisy
— it is a *performance landmine*: PR 5 debugged a ~6-second stall that was
asyncio's own task repr pretty-printing the frames inside a gathered
``GatewayResponse`` list.  Any code path that can end up in a log line,
debugger, f-string or exception message (i.e. any dataclass) must keep
array payloads out of its repr.

The rule flags every ``@dataclass`` field whose declared type mentions
``ndarray`` (including ``Optional[np.ndarray]`` and containers like
``Dict[int, np.ndarray]``, and string annotations) unless one of the
accepted remedies is present:

* the field opts out via ``field(repr=False)``;
* the class defines its own ``__repr__`` (summaries like
  ``GaussianCloud(num_gaussians=...)`` are encouraged);
* the ``@dataclass(repr=False)`` decorator disables repr generation.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.analysis.core import Finding, ParsedModule, Project, Rule, register


def _dataclass_decorator(node: ast.ClassDef) -> Optional[ast.AST]:
    """The ``@dataclass`` decorator node of a class, or None."""
    for decorator in node.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) else decorator
        if isinstance(target, ast.Name) and target.id == "dataclass":
            return decorator
        if isinstance(target, ast.Attribute) and target.attr == "dataclass":
            return decorator
    return None


def _decorator_disables_repr(decorator: ast.AST) -> bool:
    """Whether the decorator is ``@dataclass(repr=False)``."""
    if not isinstance(decorator, ast.Call):
        return False
    return any(
        keyword.arg == "repr"
        and isinstance(keyword.value, ast.Constant)
        and keyword.value.value is False
        for keyword in decorator.keywords
    )


def _annotation_mentions_ndarray(annotation: ast.AST) -> bool:
    """Whether a field annotation references ``ndarray`` anywhere.

    Covers plain ``np.ndarray``, ``Optional[np.ndarray]``, containers like
    ``Dict[int, np.ndarray]``, and string ("quoted") annotations.
    """
    for node in ast.walk(annotation):
        if isinstance(node, ast.Attribute) and node.attr == "ndarray":
            return True
        if isinstance(node, ast.Name) and node.id == "ndarray":
            return True
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            if "ndarray" in node.value:
                return True
    return False


def _field_excludes_repr(value: Optional[ast.AST]) -> bool:
    """Whether the field default is ``field(..., repr=False)``."""
    if not isinstance(value, ast.Call):
        return False
    target = value.func
    is_field = (
        isinstance(target, ast.Name) and target.id == "field"
    ) or (
        isinstance(target, ast.Attribute) and target.attr == "field"
    )
    if not is_field:
        return False
    return any(
        keyword.arg == "repr"
        and isinstance(keyword.value, ast.Constant)
        and keyword.value.value is False
        for keyword in value.keywords
    )


@register
class ReprHygieneRule(Rule):
    """Flag dataclass ndarray fields that leak into the generated repr."""

    id = "repr-hygiene"
    summary = (
        "dataclass ndarray fields must be field(repr=False) or the class "
        "must define __repr__ (array reprs stall logs and debuggers)"
    )

    def check(self, module: ParsedModule, project: Project) -> Iterator[Finding]:
        """Yield a finding per ndarray field exposed in a dataclass repr."""
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            decorator = _dataclass_decorator(node)
            if decorator is None or _decorator_disables_repr(decorator):
                continue
            defines_repr = any(
                isinstance(member, ast.FunctionDef)
                and member.name == "__repr__"
                for member in node.body
            )
            if defines_repr:
                continue
            for member in node.body:
                if not isinstance(member, ast.AnnAssign):
                    continue
                if not isinstance(member.target, ast.Name):
                    continue
                if not _annotation_mentions_ndarray(member.annotation):
                    continue
                if _field_excludes_repr(member.value):
                    continue
                yield module.finding(
                    self.id, member,
                    f"dataclass field {node.name}.{member.target.id} holds "
                    f"an ndarray but is included in the generated __repr__; "
                    f"mark it field(repr=False) or define a summary "
                    f"__repr__ (array reprs can stall logs for seconds)",
                )
