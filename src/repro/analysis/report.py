"""Reporters for lint results: text, machine-usable JSON, GitHub annotations.

The JSON schema (version 1) is stable for CI consumption::

    {
      "version": 1,
      "summary": {
        "files": <int>,        # files scanned
        "findings": <int>,     # findings excluding baselined ones
        "baselined": <int>,    # grandfathered findings (reported, not new)
        "clean": <bool>        # findings == 0
      },
      "findings": [
        {
          "rule": "<rule id>",
          "path": "<file>",
          "line": <int>, "col": <int>,
          "message": "<description>",
          "fingerprint": "<16-hex>",
          "baselined": <bool>
        }, ...
      ]
    }

``--format github`` emits one `workflow command
<https://docs.github.com/actions/reference/workflow-commands-for-github-actions>`__
per finding (``::error file=...,line=...,col=...,title=...::message``) so
CI findings annotate the PR diff inline; baselined findings downgrade to
``::warning``.

Exit-code policy (enforced by :mod:`repro.analysis.runner`): 0 when
``summary.clean`` is true, 1 when findings exist, 2 on analyzer-internal
errors (unknown rule, unreadable path, undecodable file, bad baseline).
"""

from __future__ import annotations

import json
from typing import List, Sequence

from repro.analysis.core import Finding

#: Version tag of the JSON report schema.
JSON_SCHEMA_VERSION = 1


def _summary(findings: Sequence[Finding], num_files: int) -> dict:
    """The summary block shared by both reporters."""
    new = [finding for finding in findings if not finding.baselined]
    return {
        "files": num_files,
        "findings": len(new),
        "baselined": len(findings) - len(new),
        "clean": not new,
    }


def render_text(findings: Sequence[Finding], num_files: int) -> str:
    """Render findings as ``path:line:col: rule: message`` lines + summary."""
    lines: List[str] = [finding.format() for finding in findings]
    summary = _summary(findings, num_files)
    if summary["clean"]:
        lines.append(
            f"repro lint: clean — {summary['files']} files, 0 findings"
            + (
                f" ({summary['baselined']} baselined)"
                if summary["baselined"]
                else ""
            )
        )
    else:
        lines.append(
            f"repro lint: {summary['findings']} finding(s) in "
            f"{summary['files']} files"
            + (
                f" (+{summary['baselined']} baselined)"
                if summary["baselined"]
                else ""
            )
        )
    return "\n".join(lines)


def _escape_data(value: str) -> str:
    """Escape a workflow-command message per the GitHub Actions spec."""
    return value.replace("%", "%25").replace("\r", "%0D").replace("\n", "%0A")


def _escape_property(value: str) -> str:
    """Escape a workflow-command property (``file=``/``title=``) value."""
    return (
        _escape_data(value).replace(":", "%3A").replace(",", "%2C")
    )


def render_github(findings: Sequence[Finding], num_files: int) -> str:
    """Render findings as GitHub Actions ``::error``/``::warning`` commands.

    One command per finding annotates the PR diff at the offending line;
    baselined (grandfathered) findings become warnings.  The trailing
    summary line is ordinary log text.
    """
    lines: List[str] = []
    for finding in findings:
        level = "warning" if finding.baselined else "error"
        lines.append(
            f"::{level} "
            f"file={_escape_property(finding.path)},"
            f"line={finding.line},"
            f"col={finding.col},"
            f"title={_escape_property(finding.rule)}::"
            f"{_escape_data(finding.message)}"
        )
    summary = _summary(findings, num_files)
    if summary["clean"]:
        lines.append(
            f"repro lint: clean — {summary['files']} files, 0 findings"
        )
    else:
        lines.append(
            f"repro lint: {summary['findings']} finding(s) in "
            f"{summary['files']} files"
        )
    return "\n".join(lines)


def render_json(findings: Sequence[Finding], num_files: int) -> str:
    """Render findings in the documented JSON schema (version 1)."""
    return json.dumps(
        {
            "version": JSON_SCHEMA_VERSION,
            "summary": _summary(findings, num_files),
            "findings": [
                {
                    "rule": finding.rule,
                    "path": finding.path,
                    "line": finding.line,
                    "col": finding.col,
                    "message": finding.message,
                    "fingerprint": finding.fingerprint,
                    "baselined": finding.baselined,
                }
                for finding in findings
            ],
        },
        indent=2,
    )
