"""Cache-key completeness rule: every key must carry every request dimension.

The serving layer identifies work by tuple keys in three places — the frame
cache (:meth:`RenderService._frame_key`), the gateway's in-flight
coalescing (:meth:`RenderGateway._coalesce_key`), and the covariance cache
(``covariance_cache.get/put`` with an inline ``(scene, level)`` tuple).
A key that misses a request dimension silently serves the *wrong frame*:
PR 4 and PR 5 each had to retrofit the new ``level`` dimension into keys
after the fact, and ROADMAP item 4 (versioned scenes) will add an ``epoch``
that every key must carry from day one.

This rule makes that a build failure instead of a code review hope:

1. the field set of the ``RenderRequest`` dataclass is resolved statically
   from wherever it is defined in the linted tree;
2. every key construction site is located — functions named ``*_key`` that
   return a tuple literal, plus ``get``/``put`` calls on frame/covariance
   caches whose key argument is an inline tuple;
3. each site must mention every request field (via the identifier itself or
   a registered equivalent: ``scene_id`` is covered by ``scene_index`` /
   ``resolve_index``, ``camera`` by ``pose`` / ``world_to_camera``), minus
   the site kind's *documented* exemptions below.

Exemptions (each tied to a pinned equivalence contract, not convenience):

* **frame keys** omit ``backend`` — the Stage-3 backends are bit-identical
  in FP64 (golden-equivalence suite), so a frame rendered by either one
  answers requests for both;
* **covariance keys** omit ``backend`` and ``camera`` — world-space
  covariances are camera- and backend-independent by construction.

Adding a field to ``RenderRequest`` (e.g. ``epoch``) is in no exemption
list, so the lint fails at every site until the new dimension is threaded
through every key.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Set, Tuple

from repro.analysis.core import Finding, ParsedModule, Project, Rule, register

#: The request dataclass whose fields define the key dimensions.
REQUEST_CLASS = "RenderRequest"

#: Identifier tokens that count as covering a request dimension.  Any field
#: not listed here (e.g. a future ``epoch``) must appear under its own name.
DIMENSION_ALIASES: Dict[str, Set[str]] = {
    "scene_id": {"scene_id", "scene_index", "scene", "resolve_index"},
    "camera": {"camera", "pose", "world_to_camera"},
    "backend": {"backend"},
    "level": {"level"},
}

#: Request dimensions each kind of key site may omit, with the contract
#: that justifies the omission (see the module docstring).
KIND_EXEMPTIONS: Dict[str, Set[str]] = {
    "frame": {"backend"},
    "coalesce": set(),
    "covariance": {"backend", "camera"},
    "generic": set(),
}


def _site_kind(name: str) -> str:
    """Classify a key site by its name (frame / coalesce / covariance)."""
    lowered = name.lower()
    for kind in ("coalesce", "frame", "covariance"):
        if kind in lowered:
            return kind
    return "generic"


def _expression_tokens(node: ast.AST) -> Set[str]:
    """Every identifier mentioned in an expression (names and attributes)."""
    tokens: Set[str] = set()
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name):
            tokens.add(sub.id)
        elif isinstance(sub, ast.Attribute):
            tokens.add(sub.attr)
    return tokens


def _attribute_chain(node: ast.AST) -> Set[str]:
    """The attribute names along a ``a.b.c`` access chain."""
    names: Set[str] = set()
    while isinstance(node, ast.Attribute):
        names.add(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        names.add(node.id)
    return names


def _key_sites(tree: ast.Module) -> List[Tuple[str, str, ast.AST, Set[str]]]:
    """All key construction sites: ``(site name, kind, node, tokens)``.

    Two shapes count as a site: a function whose name ends in ``_key``
    returning a tuple literal (tokens come from every returned tuple), and
    a ``<...>_cache.get/put`` call whose key argument is an inline tuple.
    """
    sites = []
    for node in ast.walk(tree):
        if isinstance(node, ast.FunctionDef) and node.name.endswith("_key"):
            tokens: Set[str] = set()
            returns_tuple = False
            for sub in ast.walk(node):
                if isinstance(sub, ast.Return) and isinstance(sub.value, ast.Tuple):
                    returns_tuple = True
                    tokens |= _expression_tokens(sub.value)
            if returns_tuple:
                sites.append((node.name, _site_kind(node.name), node, tokens))
        elif isinstance(node, ast.Call):
            func = node.func
            if not (isinstance(func, ast.Attribute) and func.attr in ("get", "put")):
                continue
            chain = _attribute_chain(func.value)
            cache_names = {name for name in chain if name.endswith("_cache")}
            if not cache_names or not node.args:
                continue
            key_argument = node.args[0]
            if not isinstance(key_argument, ast.Tuple):
                continue
            cache_name = sorted(cache_names)[0]
            sites.append((
                f"{cache_name}.{func.attr}",
                _site_kind(cache_name),
                node,
                _expression_tokens(key_argument),
            ))
    return sites


@register
class CacheKeyRule(Rule):
    """Cross-check every cache/coalescing key against the request fields."""

    id = "cache-key"
    summary = (
        "frame/coalescing/covariance keys must carry every RenderRequest "
        "dimension (minus documented, contract-backed exemptions)"
    )

    def check(self, module: ParsedModule, project: Project) -> Iterator[Finding]:
        """Yield a finding per key site per missing request dimension."""
        fields = project.dataclass_fields(REQUEST_CLASS)
        if not fields:
            return
        for name, kind, node, tokens in _key_sites(module.tree):
            exempt = KIND_EXEMPTIONS[kind]
            for dimension in fields:
                if dimension in exempt:
                    continue
                aliases = DIMENSION_ALIASES.get(dimension, {dimension})
                if aliases & tokens:
                    continue
                yield module.finding(
                    self.id, node,
                    f"key built by {name} is missing request dimension "
                    f"{dimension!r}; every {kind} key must carry it (or "
                    f"document an exemption in repro.analysis.cachekeys)",
                )
