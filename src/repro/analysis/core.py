"""Core of the invariant linter: findings, parsed modules, rules, baselines.

The analysis framework is deliberately small and dependency-free (stdlib
``ast`` only).  A :class:`Rule` inspects one :class:`ParsedModule` at a time
— with the whole :class:`Project` available for cross-file resolution (the
cache-key rule reads the ``RenderRequest`` field set from wherever it is
defined) — and yields :class:`Finding` objects.  The framework layers three
escape hatches on top, in decreasing order of preference:

* **per-line suppression** — ``# repro: ignore[rule-id]`` on the offending
  line (or a bare ``# repro: ignore`` for every rule), for individually
  justified exceptions that should stay visible in the code;
* **per-file suppression** — ``# repro: ignore-file[rule-id]`` anywhere in
  the file, for files that are out of a rule's jurisdiction wholesale;
* **baseline file** — a JSON list of finding fingerprints that are
  *grandfathered*: still reported, but not counted as new.  This repo keeps
  its baseline empty (violations get fixed, not archived); the mechanism
  exists so adopting a new rule on a large tree need not block on fixing
  every historic hit at once.

Usage::

    from repro.analysis import lint_source

    findings = lint_source("import random\\nrandom.random()\\n")
    findings[0].rule          # "determinism"
    findings[0].line          # 2
"""

from __future__ import annotations

import ast
import hashlib
import json
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set

#: Suppression-comment syntax: ``# repro: ignore[rule-a,rule-b]`` silences
#: the named rules on that line, ``# repro: ignore`` silences every rule,
#: and the ``ignore-file`` variants apply to the whole file.
_SUPPRESSION = re.compile(
    r"#\s*repro:\s*(?P<scope>ignore-file|ignore)"
    r"(?:\[(?P<rules>[A-Za-z0-9_\-, ]+)\])?"
)


@dataclass(frozen=True)
class Finding:
    """One rule violation at a specific source location.

    Attributes
    ----------
    rule:
        Identifier of the rule that fired (e.g. ``"determinism"``).
    path:
        Path of the offending file, as given to the linter.
    line, col:
        1-based line and 0-based column of the offending node.
    message:
        Human-readable description of the violation and the expected fix.
    baselined:
        Whether the finding's fingerprint appears in the baseline file
        (grandfathered: reported but not counted as new).
    """

    rule: str
    path: str
    line: int
    col: int
    message: str
    baselined: bool = False

    @property
    def fingerprint(self) -> str:
        """Stable identity of the finding for baseline files.

        Deliberately excludes the line number so that unrelated edits above
        a grandfathered finding do not un-baseline it; two identical
        violations in one file share a fingerprint, which errs on the side
        of strictness (fixing one un-baselines the other).
        """
        digest = hashlib.sha256(
            f"{self.rule}|{Path(self.path).name}|{self.message}".encode()
        )
        return digest.hexdigest()[:16]

    def format(self) -> str:
        """The finding as one ``path:line:col: rule: message`` text line."""
        mark = " (baselined)" if self.baselined else ""
        return f"{self.path}:{self.line}:{self.col}: {self.rule}: {self.message}{mark}"


class ParsedModule:
    """One Python source file, parsed once and shared by every rule.

    Carries the AST plus the suppression comments extracted from the raw
    source (the AST does not retain comments, so they are recovered with a
    line-level regex before parsing).
    """

    def __init__(self, path, source: str):
        self.path = str(path)
        self.source = source
        self.tree = ast.parse(source)
        self.line_suppressions: Dict[int, Set[str]] = {}
        self.file_suppressions: Set[str] = set()
        for lineno, line in enumerate(source.splitlines(), start=1):
            match = _SUPPRESSION.search(line)
            if match is None:
                continue
            rules = match.group("rules")
            names = (
                {name.strip() for name in rules.split(",") if name.strip()}
                if rules
                else {"*"}
            )
            if match.group("scope") == "ignore-file":
                self.file_suppressions |= names
            else:
                self.line_suppressions.setdefault(lineno, set()).update(names)

    def suppressed(self, rule: str, line: int) -> bool:
        """Whether ``rule`` is suppressed at ``line`` (or file-wide)."""
        if self.file_suppressions & {"*", rule}:
            return True
        return bool(self.line_suppressions.get(line, set()) & {"*", rule})

    def finding(self, rule: str, node: ast.AST, message: str) -> Finding:
        """Build a :class:`Finding` for ``rule`` anchored at ``node``."""
        return Finding(
            rule=rule,
            path=self.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            message=message,
        )


class Project:
    """The set of modules being linted together.

    Rules that need cross-file context (the cache-key rule resolves the
    ``RenderRequest`` dataclass from wherever it is defined) query the
    project instead of re-parsing files themselves.
    """

    def __init__(self, modules: Sequence[ParsedModule]):
        self.modules = list(modules)
        self._class_cache: Dict[str, Optional[ast.ClassDef]] = {}
        self._flow_cache: Dict[int, object] = {}
        #: Free-form per-lint-run scratch space for whole-project analyses
        #: (the pipe-protocol rule stores its send/handler vocabulary here
        #: so the project is swept once, not once per module).
        self.analysis_cache: Dict[str, object] = {}

    def flow(self, scope):
        """The :class:`~repro.analysis.flow.FlowGraph` of one scope, cached.

        ``scope`` is a module tree or a (sync or async) function definition
        node from one of the project's modules; every rule invocation in
        one lint run shares the graph.
        """
        from repro.analysis import flow as _flow

        key = id(scope)
        if key not in self._flow_cache:
            self._flow_cache[key] = _flow.FlowGraph(scope)
        return self._flow_cache[key]

    def scopes(self, module: "ParsedModule"):
        """Every scope of a module (the module itself, then each function)."""
        from repro.analysis import flow as _flow

        return _flow.iter_scopes(module.tree)

    def find_class(self, name: str) -> Optional[ast.ClassDef]:
        """First class definition named ``name`` across the project.

        Cached: every rule invocation shares one lookup per name, keeping
        the full-tree lint linear in the number of modules.
        """
        if name not in self._class_cache:
            self._class_cache[name] = next(
                (
                    node
                    for module in self.modules
                    for node in ast.walk(module.tree)
                    if isinstance(node, ast.ClassDef) and node.name == name
                ),
                None,
            )
        return self._class_cache[name]

    def dataclass_fields(self, name: str) -> List[str]:
        """Field names of the dataclass ``name`` (empty if not found).

        Fields are the annotated assignments of the class body, in
        declaration order — exactly what ``dataclasses.fields`` would
        report, but resolved statically.
        """
        node = self.find_class(name)
        if node is None:
            return []
        return [
            statement.target.id
            for statement in node.body
            if isinstance(statement, ast.AnnAssign)
            and isinstance(statement.target, ast.Name)
        ]


class Rule:
    """Base class of every analyzer rule.

    Subclasses set ``id`` (the identifier used in reports and suppression
    comments) and ``summary`` (one line for ``--list-rules``), and implement
    :meth:`check`.
    """

    id: str = ""
    summary: str = ""

    def check(self, module: ParsedModule, project: Project) -> Iterator[Finding]:
        """Yield the rule's findings for one module."""
        raise NotImplementedError


#: Registry of available rules, ``rule id -> Rule`` instance, populated by
#: the :func:`register` decorator at import time.
RULES: "Dict[str, Rule]" = {}


def register(rule_class):
    """Class decorator adding a rule to the global :data:`RULES` registry."""
    rule = rule_class()
    if not rule.id:
        raise ValueError(f"{rule_class.__name__} must define a rule id")
    if rule.id in RULES:
        raise ValueError(f"duplicate rule id {rule.id!r}")
    RULES[rule.id] = rule
    return rule_class


def resolve_rules(names: Optional[Iterable[str]] = None) -> List[Rule]:
    """The rules to run: all registered ones, or the named subset."""
    if names is None:
        return list(RULES.values())
    rules = []
    for name in names:
        if name not in RULES:
            known = ", ".join(sorted(RULES))
            raise KeyError(f"unknown rule {name!r}; known rules: {known}")
        rules.append(RULES[name])
    return rules


def lint_modules(
    modules: Sequence[ParsedModule],
    rules: Optional[Sequence[Rule]] = None,
    baseline: Optional[Set[str]] = None,
) -> List[Finding]:
    """Run ``rules`` over ``modules`` and return the surviving findings.

    Suppressed findings are dropped; findings whose fingerprint appears in
    ``baseline`` are kept but marked ``baselined``.  The result is sorted
    by (path, line, column, rule).
    """
    project = Project(modules)
    if rules is None:
        rules = resolve_rules()
    findings: List[Finding] = []
    for module in modules:
        for rule in rules:
            for found in rule.check(module, project):
                if module.suppressed(found.rule, found.line):
                    continue
                if baseline and found.fingerprint in baseline:
                    found = Finding(
                        rule=found.rule, path=found.path, line=found.line,
                        col=found.col, message=found.message, baselined=True,
                    )
                findings.append(found)
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings


@dataclass
class Baseline:
    """Grandfathered finding fingerprints loaded from a JSON file."""

    fingerprints: Set[str] = field(default_factory=set)

    @classmethod
    def load(cls, path) -> "Baseline":
        """Read a baseline file (``{"version": 1, "fingerprints": [...]}``)."""
        data = json.loads(Path(path).read_text())
        if not isinstance(data, dict) or "fingerprints" not in data:
            raise ValueError(
                f"baseline {path} must be a JSON object with a "
                f"'fingerprints' list"
            )
        return cls(fingerprints=set(data["fingerprints"]))

    def save(self, path) -> None:
        """Write the baseline back out in canonical (sorted) form."""
        Path(path).write_text(
            json.dumps(
                {"version": 1, "fingerprints": sorted(self.fingerprints)},
                indent=2,
            )
            + "\n"
        )
