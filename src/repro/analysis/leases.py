"""Resource-lease rule: leak-prone handles must reach cleanup on every path.

PR 9 made storage a leased resource (``host_store()`` returns a
:class:`~repro.serving.storage.StorageLease`) and PR 8 made the fleet a web
of ``multiprocessing`` pipes and processes.  All of them hold kernel-side
state a garbage collector does not promptly return: an unclosed lease pins
a shared segment or a paged workdir, an unclosed pipe end keeps the peer's
``recv`` alive, an unjoined process lingers as a zombie.

This module is the CFG-based **may-leak engine** the ``resource-lease`` and
``shm-lifecycle`` rules share.  A *creation* is an assignment whose value is
a call matching a :class:`LeaseSpec` (``handle = open(...)``,
``parent, child = Pipe()``).  From the creation statement the engine walks
the scope's :mod:`~repro.analysis.flow` graph along non-exceptional edges;
a path that reaches the scope's normal exit without passing a *stop* is a
leak.  Stops are:

* a cleanup call on the value or any forward alias of it
  (``handle.close()``, ``process.join()`` — verbs per spec);
* an **ownership transfer**: the value returned or yielded, passed as a
  call argument (which covers ``weakref.finalize``/``atexit.register``
  finalizers and container ``.append``), stored into an attribute,
  subscript, or container literal, or declared ``global``/``nonlocal`` —
  after any of these the creating scope no longer solely owns the handle;
* a later ``with`` block managing the value.

Constructor calls in non-assignment positions (``return open(path)``, a
``with`` item, an argument) are ownership transfers at birth and are not
tracked.  ``if x is not None`` / ``if x`` guards are refuted along paths
where ``x`` provably holds the resource, so the repo's guarded
``finally: ... lease.close()`` idiom is recognized.  The analysis is
deliberately conservative in the other direction too: any call that merely
*sees* the handle counts as a transfer, so a real leak may hide behind a
logging call — the rule aims for zero false positives on the live tree,
not completeness.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import FrozenSet, Iterator, List, Optional, Sequence, Set, Tuple

from repro.analysis.core import Finding, ParsedModule, Project, Rule, register
from repro.analysis import flow as _flow


@dataclass(frozen=True)
class LeaseSpec:
    """One family of leak-prone constructors and its cleanup contract.

    Attributes
    ----------
    label:
        Human-readable name of the resource, used in messages.
    callee:
        Callable names that construct it — matched against the final
        ``Name``/``Attribute`` component of the call target.
    verbs:
        Method names that count as cleanup on the value or an alias.
    bare_name_only:
        Restrict matching to bare ``Name`` calls (used for ``open`` so
        ``json.open``-style unrelated attributes never match).
    remedy:
        Short fix suggestion appended to the finding message.
    """

    label: str
    callee: FrozenSet[str]
    verbs: FrozenSet[str]
    remedy: str
    bare_name_only: bool = False

    def matches(self, node: ast.expr) -> bool:
        """Whether a call expression constructs this resource."""
        if not isinstance(node, ast.Call):
            return False
        target = node.func
        if isinstance(target, ast.Name):
            return target.id in self.callee
        if isinstance(target, ast.Attribute) and not self.bare_name_only:
            return target.attr in self.callee
        return False


def _mentions(node: ast.AST, aliases: Set[str]) -> bool:
    """Whether a subtree reads any of the alias names."""
    return any(
        isinstance(child, ast.Name)
        and child.id in aliases
        and isinstance(child.ctx, ast.Load)
        for child in ast.walk(node)
    )


def _effect_expressions(statement: ast.stmt) -> List[ast.AST]:
    """The expressions a statement evaluates *itself* (header-only).

    Compound statements contribute just their header — the branch bodies
    live in their own CFG blocks and are classified separately.
    """
    if isinstance(statement, (ast.If, ast.While)):
        return [statement.test]
    if isinstance(statement, (ast.For, ast.AsyncFor)):
        return [statement.iter]
    if isinstance(statement, (ast.With, ast.AsyncWith)):
        return [item.context_expr for item in statement.items]
    if isinstance(statement, ast.Match):
        return [statement.subject]
    if isinstance(statement, ast.ExceptHandler):
        return [statement.type] if statement.type is not None else []
    if isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
        return list(statement.decorator_list)
    return [statement]


def _is_cleanup_call(node: ast.Call, aliases: Set[str], verbs: FrozenSet[str]) -> bool:
    """Whether a call is ``alias.<verb>(...)`` for a cleanup verb."""
    return (
        isinstance(node.func, ast.Attribute)
        and node.func.attr in verbs
        and isinstance(node.func.value, ast.Name)
        and node.func.value.id in aliases
    )


def statement_stops_leak(
    statement: ast.stmt, aliases: Set[str], verbs: FrozenSet[str]
) -> bool:
    """Whether a statement cleans up or takes ownership of the value.

    See the module docstring for the stop taxonomy.  Total on any
    statement the CFG can hold (including compound headers).
    """
    if isinstance(statement, (ast.With, ast.AsyncWith)):
        return any(
            _mentions(item.context_expr, aliases) for item in statement.items
        )
    if isinstance(statement, (ast.Global, ast.Nonlocal)):
        return bool(set(statement.names) & aliases)
    if isinstance(statement, ast.Return):
        return statement.value is not None and _mentions(statement.value, aliases)
    if isinstance(statement, ast.Raise):
        return any(
            part is not None and _mentions(part, aliases)
            for part in (statement.exc, statement.cause)
        )
    if isinstance(statement, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
        targets = (
            statement.targets
            if isinstance(statement, ast.Assign)
            else [statement.target]
        )
        value = statement.value
        if value is not None and _mentions(value, aliases):
            if any(
                isinstance(target, (ast.Attribute, ast.Subscript))
                for target in targets
            ):
                return True
            if isinstance(value, (ast.Tuple, ast.List, ast.Set, ast.Dict)):
                return True
    for root in _effect_expressions(statement):
        for node in ast.walk(root):
            if isinstance(node, (ast.Yield, ast.YieldFrom)):
                if node.value is not None and _mentions(node.value, aliases):
                    return True
            elif isinstance(node, ast.Call):
                if _is_cleanup_call(node, aliases, verbs):
                    return True
                arguments = list(node.args) + [
                    keyword.value for keyword in node.keywords
                ]
                if any(_mentions(argument, aliases) for argument in arguments):
                    return True
    return False


def _refuted_successor(
    graph: "_flow.FlowGraph", if_node: ast.If, aliases: Set[str]
) -> Optional["_flow.BasicBlock"]:
    """The branch target unreachable while an alias holds the resource.

    ``if x`` / ``if x is not None`` cannot take the false edge, and
    ``if not x`` / ``if x is None`` cannot take the true edge, when ``x``
    is known to be bound to a live (truthy, non-``None``) resource handle.
    """
    targets = graph.branch_targets.get(id(if_node))
    if targets is None:
        return None
    true_target, false_target = targets
    test = if_node.test
    if isinstance(test, ast.Name) and test.id in aliases:
        return false_target
    if (
        isinstance(test, ast.UnaryOp)
        and isinstance(test.op, ast.Not)
        and isinstance(test.operand, ast.Name)
        and test.operand.id in aliases
    ):
        return true_target
    if (
        isinstance(test, ast.Compare)
        and isinstance(test.left, ast.Name)
        and test.left.id in aliases
        and len(test.ops) == 1
        and len(test.comparators) == 1
        and isinstance(test.comparators[0], ast.Constant)
        and test.comparators[0].value is None
    ):
        if isinstance(test.ops[0], ast.IsNot):
            return false_target
        if isinstance(test.ops[0], ast.Is):
            return true_target
    return None


def _tracked_creations(
    graph: "_flow.FlowGraph", specs: Sequence[LeaseSpec]
) -> Iterator[Tuple[ast.Assign, ast.Call, LeaseSpec, Set[str]]]:
    """Creation assignments in one scope: ``(statement, call, spec, names)``."""
    for statement in graph.statements():
        if not isinstance(statement, ast.Assign):
            continue
        call = statement.value
        spec = next((s for s in specs if s.matches(call)), None)
        if spec is None:
            continue
        names: Set[str] = set()
        for target in statement.targets:
            names |= _flow._target_names(target)
        if not names:
            continue  # attribute/subscript target: escapes at birth
        yield statement, call, spec, names


def find_leaks(
    module: ParsedModule, project: Project, specs: Sequence[LeaseSpec]
) -> Iterator[Tuple[ast.Call, LeaseSpec]]:
    """Yield ``(creation_call, spec)`` for every may-leak in a module."""
    for scope in project.scopes(module):
        graph = project.flow(scope)
        for statement, call, spec, names in _tracked_creations(graph, specs):
            aliases = _flow.taint_names(graph, lambda e, c=call: e is c) | names
            stops = {
                id(candidate)
                for candidate in graph.statements()
                if candidate is not statement
                and statement_stops_leak(candidate, aliases, spec.verbs)
            }

            def allow(block, successor, g=graph, a=aliases):
                """Prune branch edges refuted by a live-resource guard."""
                if not block.statements:
                    return True
                last = block.statements[-1]
                if not isinstance(last, ast.If):
                    return True
                return _refuted_successor(g, last, a) is not successor

            if _flow.reaches_exit_without(graph, statement, stops, allow):
                yield call, spec


#: Constructor families checked by the ``resource-lease`` rule.  The shm
#: family lives in :mod:`repro.analysis.shmlifecycle` (its own rule id).
LEASE_SPECS: Tuple[LeaseSpec, ...] = (
    LeaseSpec(
        label="host_store() storage lease",
        callee=frozenset({"host_store"}),
        verbs=frozenset({"close"}),
        remedy="close the lease or use `with host_store(...) as lease:`",
    ),
    LeaseSpec(
        label="multiprocessing.Pipe() connection",
        callee=frozenset({"Pipe"}),
        verbs=frozenset({"close"}),
        remedy="close both ends or hand them to the owning process",
    ),
    LeaseSpec(
        label="multiprocessing.Process handle",
        callee=frozenset({"Process"}),
        verbs=frozenset({"join", "terminate", "kill", "close"}),
        remedy="join/terminate the process or store the handle for shutdown",
    ),
    LeaseSpec(
        label="open() file handle",
        callee=frozenset({"open"}),
        verbs=frozenset({"close"}),
        remedy="use `with open(...) as handle:` or close it",
        bare_name_only=True,
    ),
)


@register
class ResourceLeaseRule(Rule):
    """Flag leak-prone handles that can reach scope exit without cleanup."""

    id = "resource-lease"
    summary = (
        "storage leases, pipe ends, process handles and files must reach "
        "close()/join()/a with block/an ownership transfer on every "
        "non-exceptional path"
    )

    def check(self, module: ParsedModule, project: Project) -> Iterator[Finding]:
        """Yield a finding per creation with a cleanup-free normal path."""
        active = tuple(
            spec
            for spec in LEASE_SPECS
            if any(name in module.source for name in spec.callee)
        )
        if not active:
            return  # cheap pre-filter: no constructor name, no CFG work
        for call, spec in find_leaks(module, project, active):
            yield module.finding(
                self.id,
                call,
                f"{spec.label} may leak: a non-exceptional path reaches "
                f"scope exit without cleanup or ownership transfer; "
                f"{spec.remedy}",
            )
