"""View-mutation rule: zero-copy scene views must never be written.

``SceneStore.get_scene``/``get_cloud`` return :class:`numpy.ndarray` views
over the store's own buffers — and under the shared storage tier those
buffers live in one ``/dev/shm`` segment mapped by every worker.  A write
through such a view (``cloud.positions[0] = ...``) is not a local mutation:
it tears the scene for every attached process at once, with no error at
the write site.  The serving stack therefore treats views as read-only by
contract (the shared tier even arms ``writeable=False`` where it can); this
rule enforces the contract statically, including through aliases.

Per scope, forward alias tracking (the same closure the
:mod:`repro.analysis.flow` engine provides) marks every name that may hold
a view:

* results of ``<x>.get_scene(...)`` / ``<x>.get_cloud(...)`` method calls;
* results of ``<x>.build_substore(...)`` when the receiver is a known
  shared store (``SharedSceneStore(...)``/``SharedStoreView(...)`` value)
  or itself a view;
* ``SharedStoreView(...)`` instances — their fields alias the segment;
* projections of any of the above: an attribute or subscript load out of a
  view is a view (``scene.cloud.positions``).

Flagged sinks are subscript/attribute stores rooted in a view (including
direct chains like ``store.get_cloud(0).positions[0] = v``), augmented
assignment on a view, ``np.copyto(view, ...)`` and ``view.fill(...)``.
Deliberate writes (e.g. a test asserting the read-only contract raises)
carry ``# repro: ignore[view-mutation]``.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Set, Tuple

from repro.analysis.core import Finding, ParsedModule, Project, Rule, register
from repro.analysis.flow import (
    _target_names,
    iter_scopes,
    projection_root,
    walk_scope,
)

#: Zero-copy accessor method names (any receiver: every store's views
#: alias its buffers, shared tier or not).
_VIEW_METHODS = frozenset({"get_scene", "get_cloud"})

#: Constructors whose results are shared stores (valid ``build_substore``
#: receivers); ``SharedStoreView`` instances are additionally views.
_SHARED_STORE_CALLEES = frozenset({"SharedSceneStore", "SharedStoreView"})


def _callee_name(node: ast.expr) -> str:
    """The final name component of a call target (empty when unnamed)."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return ""


class _ScopeViews:
    """Alias analysis of one scope: which names/expressions hold views."""

    def __init__(self, scope):
        self.scope = scope
        self.tainted: Set[str] = set()
        self.shared_stores: Set[str] = set()
        self._assignments: List[Tuple[Set[str], ast.expr]] = []
        self._collect()
        self._solve()

    def _collect(self) -> None:
        """Gather the scope's name bindings once."""
        for node in walk_scope(self.scope):
            if isinstance(node, ast.Assign):
                names: Set[str] = set()
                for target in node.targets:
                    names |= _target_names(target)
                if names:
                    self._assignments.append((names, node.value))
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                names = _target_names(node.target)
                if names:
                    self._assignments.append((names, node.value))
            elif isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    if item.optional_vars is not None:
                        names = _target_names(item.optional_vars)
                        if names:
                            self._assignments.append((names, item.context_expr))
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                names = _target_names(node.target)
                if names:
                    self._assignments.append((names, node.iter))

    def is_view_call(self, node: ast.expr) -> bool:
        """Whether a call expression produces a zero-copy view/substore."""
        if not isinstance(node, ast.Call):
            return False
        callee = _callee_name(node.func)
        if callee == "SharedStoreView":
            return True
        if not isinstance(node.func, ast.Attribute):
            # Bare-name calls (``get_scene(...)``) are unrelated module
            # functions — ``repro.datasets`` has one — never views.
            return False
        if callee in _VIEW_METHODS:
            return True
        if callee == "build_substore":
            receiver = node.func.value
            if isinstance(receiver, ast.Name):
                return (
                    receiver.id in self.shared_stores
                    or receiver.id in self.tainted
                )
            return self.is_view_call(receiver)
        return False

    def expression_is_view(self, node: ast.expr) -> bool:
        """Whether an expression may denote a view (aliases + projections)."""
        root = projection_root(node)
        if isinstance(root, ast.Name):
            return root.id in self.tainted
        if isinstance(root, ast.Call):
            return self.is_view_call(root)
        return False

    def _solve(self) -> None:
        """Fixpoint: taint names bound to views, shared stores by name."""
        changed = True
        while changed:
            changed = False
            for names, value in self._assignments:
                if (
                    isinstance(value, ast.Call)
                    and _callee_name(value.func) in _SHARED_STORE_CALLEES
                    and not names <= self.shared_stores
                ):
                    self.shared_stores |= names
                    changed = True
                if names <= self.tainted:
                    continue
                if self.expression_is_view(value):
                    self.tainted |= names
                    changed = True


def _sink_description(statement: ast.AST) -> str:
    """Short description of the mutating operation for the message."""
    if isinstance(statement, ast.AugAssign):
        return "augmented assignment"
    if isinstance(statement, (ast.Assign, ast.AnnAssign)):
        return "store into"
    return "in-place write"


@register
class ViewMutationRule(Rule):
    """Flag writes through zero-copy scene/cloud views."""

    id = "view-mutation"
    summary = (
        "values aliased from get_scene()/get_cloud()/build_substore() "
        "views must never be written — a write tears the scene for every "
        "process attached to the shared segment"
    )

    _MESSAGE = (
        "write through a zero-copy view ({what} {target}); views alias "
        "the store's buffers (one shared segment under the shared tier) "
        "— copy first (.copy()) or go through the owning store's API"
    )

    def _finding(self, module: ParsedModule, node: ast.AST, what: str,
                 target: str) -> Finding:
        """Build the rule's finding for one mutating site."""
        return module.finding(
            self.id, node, self._MESSAGE.format(what=what, target=target)
        )

    def check(self, module: ParsedModule, project: Project) -> Iterator[Finding]:
        """Yield a finding per write rooted in a view alias."""
        source = module.source
        if not any(
            token in source
            for token in ("get_scene", "get_cloud", "build_substore",
                          "SharedStoreView")
        ):
            return  # cheap pre-filter: no view accessor, nothing to taint
        for scope in iter_scopes(module.tree):
            views = _ScopeViews(scope)
            for node in walk_scope(scope):
                if isinstance(node, (ast.Assign, ast.AnnAssign)):
                    targets = (
                        node.targets
                        if isinstance(node, ast.Assign)
                        else [node.target]
                    )
                    for target in targets:
                        if isinstance(
                            target, (ast.Attribute, ast.Subscript)
                        ) and views.expression_is_view(target):
                            yield self._finding(
                                module, node, "store into",
                                ast.unparse(target),
                            )
                elif isinstance(node, ast.AugAssign):
                    target = node.target
                    is_view = (
                        isinstance(target, ast.Name)
                        and target.id in views.tainted
                    ) or (
                        isinstance(target, (ast.Attribute, ast.Subscript))
                        and views.expression_is_view(target)
                    )
                    if is_view:
                        yield self._finding(
                            module, node, "augmented assignment on",
                            ast.unparse(target),
                        )
                elif isinstance(node, ast.Call):
                    func = node.func
                    if not isinstance(func, ast.Attribute):
                        continue
                    if (
                        func.attr == "copyto"
                        and node.args
                        and views.expression_is_view(node.args[0])
                    ):
                        yield self._finding(
                            module, node, "np.copyto into",
                            ast.unparse(node.args[0]),
                        )
                    elif func.attr == "fill" and views.expression_is_view(
                        func.value
                    ):
                        yield self._finding(
                            module, node, ".fill() on",
                            ast.unparse(func.value),
                        )
