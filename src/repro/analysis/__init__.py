"""AST-based invariant linter for the repro codebase.

The serving stack rests on contracts that used to be enforced only by
convention — and PRs 4/5 each paid for a violation after the fact (cache
keys retrofitted with ``level``; a ~6-second dataclass repr of gathered
frames).  This package machine-checks those contracts at CI time with a
small static-analysis framework (stdlib ``ast`` only) — since PR 10 with
a per-function dataflow engine (:mod:`repro.analysis.flow`: CFGs,
reaching definitions, forward alias tracking) underneath — and eight rule
families targeting the codebase's proven bug classes:

* ``determinism`` — all randomness must flow through explicitly seeded
  ``np.random.Generator`` objects (seeded replay and golden tests depend
  on it);
* ``cache-key`` — every frame-cache / coalescing / covariance-cache key
  must carry every ``RenderRequest`` dimension, so adding a request field
  (like the upcoming scene ``epoch``) fails the build until every key
  site is updated;
* ``async-blocking`` / ``async-state`` — ``async def`` bodies must not
  block the event loop, and instance state must not be read before an
  ``await`` and written back after it without an ``asyncio.Lock``;
* ``repr-hygiene`` — dataclass ndarray fields must be ``repr=False`` (or
  the class must define ``__repr__``);
* ``shm-lifecycle`` — every ``SharedMemory(...)`` creation must pair with
  ``close()``/``unlink()`` in a ``finally``/context manager or register a
  finalizer (leaked segments survive process death under ``/dev/shm``);
* ``pipe-protocol`` — every ``connection.send(("<tag>", ...))`` needs a
  worker-side handler with matching payload arity and vice versa, and
  worker replies must fit the ``("ok"|"error", payload)`` grammar;
* ``resource-lease`` — storage leases, pipe ends, process handles and
  files must reach ``close()``/``join()``/a ``with`` block/an ownership
  transfer on every non-exceptional path (CFG-based may-leak analysis);
* ``view-mutation`` — values aliased from zero-copy view APIs
  (``get_scene``/``get_cloud``/``build_substore``) must never be written.

Entry points: ``repro lint`` (CLI subcommand), ``python -m
repro.analysis``, or the library API below.  Suppressions:
``# repro: ignore[rule-id]`` per line, ``# repro: ignore-file[rule-id]``
per file, and an optional JSON baseline for grandfathered findings (this
repo keeps its baseline empty).

Usage::

    from repro.analysis import lint_source

    findings = lint_source(
        "import numpy as np\\nrng = np.random.default_rng()\\n"
    )
    findings[0].rule        # "determinism"
    findings[0].line        # 2
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.analysis.core import (
    Baseline,
    Finding,
    ParsedModule,
    Project,
    Rule,
    RULES,
    lint_modules,
    register,
    resolve_rules,
)

# Importing the rule modules populates the RULES registry.
from repro.analysis import asyncsafety     # noqa: F401
from repro.analysis import cachekeys       # noqa: F401
from repro.analysis import determinism     # noqa: F401
from repro.analysis import leases          # noqa: F401
from repro.analysis import protocol        # noqa: F401
from repro.analysis import reprhygiene     # noqa: F401
from repro.analysis import shmlifecycle    # noqa: F401
from repro.analysis import viewmutation    # noqa: F401

from repro.analysis import flow            # noqa: F401
from repro.analysis.report import (
    JSON_SCHEMA_VERSION,
    render_github,
    render_json,
    render_text,
)
from repro.analysis.runner import lint_paths, main, run

__all__ = [
    "Baseline",
    "Finding",
    "JSON_SCHEMA_VERSION",
    "ParsedModule",
    "Project",
    "RULES",
    "Rule",
    "flow",
    "lint_modules",
    "lint_paths",
    "lint_source",
    "main",
    "register",
    "render_github",
    "render_json",
    "render_text",
    "resolve_rules",
    "run",
]


def lint_source(
    source: str,
    path: str = "<string>",
    rules: Optional[Sequence[str]] = None,
) -> List[Finding]:
    """Lint one source string and return its findings.

    The convenience entry point for tests, docs and tooling: the snippet
    is parsed as a single-file project, so rules needing cross-file
    context (``cache-key``) resolve against the snippet itself.
    """
    module = ParsedModule(path, source)
    return lint_modules([module], rules=resolve_rules(rules))
