"""Per-function control-flow graphs and dataflow facts for the linter.

The PR-7 rules were per-file pattern matchers; the contracts PRs 8–9
introduced (pipe protocols, resource leases, read-only shared views) are
*flow* properties: "every non-exceptional path reaches ``close()``",
"this name aliases a zero-copy view".  This module is the small dataflow
engine those rules share, built on stdlib ``ast`` only:

* :func:`build_flow` turns one scope (a module body or one function) into
  a :class:`FlowGraph` of :class:`BasicBlock`\\ s with branch, loop and
  try edges.  Edges are tagged :data:`NORMAL` or :data:`EXCEPTION`, so
  analyses can reason about non-exceptional paths only.
* :class:`ReachingDefinitions` is a classic forward may-analysis over the
  graph: which assignments of a name can reach a statement.
* :func:`taint_names` is forward alias tracking: the closure of local
  names that may be bound to a value matching a seed predicate
  (optionally following projections — attribute/subscript loads — which
  is how "a field of a view is a view" is expressed).
* :func:`reaches_exit_without` answers the may-leak query: can control
  reach the scope's normal exit from a statement without passing one of
  a given set of statements.

Scopes nest but graphs do not: a nested ``def`` appears in its parent's
graph as one simple statement (it defines a name), and gets a graph of
its own via :func:`iter_scopes`.  Every function here is total on any
tree ``ast.parse`` accepts — the linter must degrade to "no finding",
never crash the build (pinned by a hypothesis suite).

Usage::

    import ast
    from repro.analysis.flow import build_flow, iter_scopes

    tree = ast.parse(source)
    for scope in iter_scopes(tree):
        graph = build_flow(scope)
        graph.exit_block in graph.blocks   # True
"""

from __future__ import annotations

import ast
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Set, Tuple, Union

#: Edge kinds: ordinary control transfer vs. propagating-exception transfer.
NORMAL = "normal"
EXCEPTION = "exception"

#: AST nodes that open a scope of their own (given a FlowGraph each).
Scope = Union[ast.Module, ast.FunctionDef, ast.AsyncFunctionDef]

#: Sentinel definition site for names bound by the function header
#: (parameters): reaching-definition sets contain it instead of a statement.
PARAMETER = "<parameter>"


class BasicBlock:
    """A straight-line run of statements with tagged successor edges.

    ``statements`` holds simple statements plus the *headers* of compound
    statements (the ``If``/``While``/``For``/``With``/``Try``/``Match``
    node itself, positioned where its test or items evaluate).  Analyses
    treating a header must only consider the header's own expressions —
    the branch bodies live in successor blocks.
    """

    __slots__ = ("index", "statements", "successors", "predecessors")

    def __init__(self, index: int):
        self.index = index
        self.statements: List[ast.stmt] = []
        self.successors: List[Tuple["BasicBlock", str]] = []
        self.predecessors: List[Tuple["BasicBlock", str]] = []

    def link(self, successor: "BasicBlock", kind: str = NORMAL) -> None:
        """Add one ``kind``-tagged edge to ``successor`` (deduplicated)."""
        if (successor, kind) not in self.successors:
            self.successors.append((successor, kind))
            successor.predecessors.append((self, kind))

    def __repr__(self) -> str:
        """Compact summary used in test failure output."""
        return f"<block {self.index}: {len(self.statements)} stmts>"


class FlowGraph:
    """The control-flow graph of one scope plus cached dataflow facts."""

    def __init__(self, scope: Scope):
        self.scope = scope
        self.blocks: List[BasicBlock] = []
        self.entry = self._new_block()
        self.exit_block = self._new_block()
        self.raise_exit = self._new_block()
        self._location: Dict[int, Tuple[BasicBlock, int]] = {}
        self._reaching: Optional["ReachingDefinitions"] = None
        #: ``id(if_node) -> (true_target, false_target)`` for every ``if``
        #: header, letting path queries prune branches whose condition they
        #: can refute (the resource-lease rule and ``if x is not None`` guards).
        self.branch_targets: Dict[int, Tuple[BasicBlock, BasicBlock]] = {}
        _Builder(self).build()

    def _new_block(self) -> BasicBlock:
        """Append and return a fresh empty block."""
        block = BasicBlock(len(self.blocks))
        self.blocks.append(block)
        return block

    def _place(self, statement: ast.stmt, block: BasicBlock) -> None:
        """Record that ``statement`` lives in ``block`` (at its current end)."""
        self._location[id(statement)] = (block, len(block.statements))
        block.statements.append(statement)

    def locate(self, statement: ast.stmt) -> Optional[Tuple[BasicBlock, int]]:
        """The ``(block, index)`` holding a statement, or ``None``."""
        return self._location.get(id(statement))

    def statements(self) -> Iterator[ast.stmt]:
        """Every statement of the scope, in block order."""
        for block in self.blocks:
            yield from block.statements

    def reaching_definitions(self) -> "ReachingDefinitions":
        """The scope's reaching-definitions analysis (computed once)."""
        if self._reaching is None:
            self._reaching = ReachingDefinitions(self)
        return self._reaching


class _LoopContext:
    """Break/continue targets of the innermost enclosing loop."""

    __slots__ = ("header", "after")

    def __init__(self, header: BasicBlock, after: BasicBlock):
        self.header = header
        self.after = after


class _FinallyContext:
    """One active ``finally`` region and the continuations routed through it."""

    __slots__ = ("entry", "continuations")

    def __init__(self, entry: BasicBlock):
        self.entry = entry
        self.continuations: List[Tuple[BasicBlock, str]] = []

    def route(self, target: BasicBlock, kind: str = NORMAL) -> None:
        """Ask the region to continue to ``target`` after its body runs."""
        if (target, kind) not in self.continuations:
            self.continuations.append((target, kind))


class _Builder:
    """Single-pass CFG construction over one scope's statement list."""

    def __init__(self, graph: FlowGraph):
        self.graph = graph
        self.current: Optional[BasicBlock] = None
        self.loops: List[_LoopContext] = []
        self.finallies: List[_FinallyContext] = []

    # ------------------------------------------------------------------ #
    # Plumbing
    # ------------------------------------------------------------------ #
    def build(self) -> None:
        """Construct the graph for the scope's body."""
        graph = self.graph
        first = graph._new_block()
        graph.entry.link(first)
        self.current = first
        for statement in getattr(graph.scope, "body", []):
            self.statement(statement)
        if self.current is not None:
            self.current.link(graph.exit_block)

    def _fresh(self) -> BasicBlock:
        """A new block, not yet connected."""
        return self.graph._new_block()

    def _append(self, statement: ast.stmt) -> BasicBlock:
        """Place a statement in the current block (starting one if needed).

        Statements after a ``return``/``raise``/``break`` are unreachable;
        they still get a (predecessor-less) block so ``locate`` stays total.
        """
        if self.current is None:
            self.current = self._fresh()
        self.graph._place(statement, self.current)
        return self.current

    def _terminate(self, target: BasicBlock, kind: str = NORMAL) -> None:
        """End the current block with an edge to ``target``."""
        if self.current is not None:
            self.current.link(target, kind)
        self.current = None

    def _route_through_finallies(self, target: BasicBlock, kind: str) -> BasicBlock:
        """The immediate jump target honouring active ``finally`` regions.

        A ``return``/``break``/``continue`` under a ``finally`` first runs
        the finally body; the region records where to continue afterwards.
        Only the innermost region is threaded — enough precision for the
        lint queries, and never *missing* a cleanup that does run.
        """
        if not self.finallies:
            return target
        innermost = self.finallies[-1]
        innermost.route(target, kind)
        return innermost.entry

    # ------------------------------------------------------------------ #
    # Statement dispatch
    # ------------------------------------------------------------------ #
    def statement(self, node: ast.stmt) -> None:
        """Lower one statement into blocks and edges."""
        if isinstance(node, (ast.If,)):
            self._if(node)
        elif isinstance(node, (ast.While,)):
            self._while(node)
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            self._for(node)
        elif isinstance(node, (ast.Try, getattr(ast, "TryStar", ast.Try))):
            self._try(node)
        elif isinstance(node, (ast.With, ast.AsyncWith)):
            self._with(node)
        elif isinstance(node, ast.Match):
            self._match(node)
        elif isinstance(node, ast.Return):
            self._append(node)
            self._terminate(
                self._route_through_finallies(self.graph.exit_block, NORMAL)
            )
        elif isinstance(node, ast.Raise):
            self._append(node)
            self._terminate(self.graph.raise_exit, EXCEPTION)
        elif isinstance(node, ast.Break):
            self._append(node)
            if self.loops:
                self._terminate(
                    self._route_through_finallies(self.loops[-1].after, NORMAL)
                )
            else:  # broken code; keep the graph total
                self._terminate(self.graph.exit_block)
        elif isinstance(node, ast.Continue):
            self._append(node)
            if self.loops:
                self._terminate(
                    self._route_through_finallies(self.loops[-1].header, NORMAL)
                )
            else:
                self._terminate(self.graph.exit_block)
        else:
            # Simple statements — including nested def/class (one name
            # definition; their bodies are separate scopes).
            self._append(node)

    def _if(self, node: ast.If) -> None:
        """``if``/``elif``/``else`` branching."""
        header = self._append(node)
        after = self._fresh()
        then_entry = self._fresh()
        header.link(then_entry)
        self.current = then_entry
        for statement in node.body:
            self.statement(statement)
        self._terminate(after)
        if node.orelse:
            else_entry = self._fresh()
            header.link(else_entry)
            self.current = else_entry
            for statement in node.orelse:
                self.statement(statement)
            self._terminate(after)
        else:
            else_entry = after
            header.link(after)
        self.graph.branch_targets[id(node)] = (then_entry, else_entry)
        self.current = after

    @staticmethod
    def _is_true_constant(test: ast.expr) -> bool:
        """Whether a loop test is the literal ``True`` (no fall-through edge)."""
        return isinstance(test, ast.Constant) and test.value is True

    def _while(self, node: ast.While) -> None:
        """``while`` loop with back edge, break/continue and else clause."""
        header = self._fresh()
        self._terminate(header)
        self.graph._place(node, header)
        after = self._fresh()
        body_entry = self._fresh()
        header.link(body_entry)
        self.loops.append(_LoopContext(header, after))
        self.current = body_entry
        for statement in node.body:
            self.statement(statement)
        self._terminate(header)
        self.loops.pop()
        if node.orelse:
            else_entry = self._fresh()
            header.link(else_entry)
            self.current = else_entry
            for statement in node.orelse:
                self.statement(statement)
            self._terminate(after)
        elif not self._is_true_constant(node.test):
            header.link(after)
        self.current = after

    def _for(self, node: Union[ast.For, ast.AsyncFor]) -> None:
        """``for`` loop; the header defines the loop target names."""
        header = self._fresh()
        self._terminate(header)
        self.graph._place(node, header)
        after = self._fresh()
        body_entry = self._fresh()
        header.link(body_entry)
        self.loops.append(_LoopContext(header, after))
        self.current = body_entry
        for statement in node.body:
            self.statement(statement)
        self._terminate(header)
        self.loops.pop()
        if node.orelse:
            else_entry = self._fresh()
            header.link(else_entry)
            self.current = else_entry
            for statement in node.orelse:
                self.statement(statement)
            self._terminate(after)
        else:
            header.link(after)
        self.current = after

    def _with(self, node: Union[ast.With, ast.AsyncWith]) -> None:
        """``with`` block: the header evaluates items, the body flows on."""
        self._append(node)
        for statement in node.body:
            self.statement(statement)

    def _match(self, node: ast.Match) -> None:
        """``match``: each case body is one branch off the dispatch block."""
        header = self._append(node)
        after = self._fresh()
        for case in node.cases:
            case_entry = self._fresh()
            header.link(case_entry)
            self.current = case_entry
            for statement in case.body:
                self.statement(statement)
            self._terminate(after)
        header.link(after)  # conservatively: no case may match
        self.current = after

    def _try(self, node: ast.Try) -> None:
        """``try``/``except``/``else``/``finally`` lowering.

        Body blocks get :data:`EXCEPTION` edges to every handler entry (or
        to the finally region when there is no handler); ``finally`` runs
        on the normal path and on every continuation routed through it.
        """
        after = self._fresh()
        finally_context: Optional[_FinallyContext] = None
        if node.finalbody:
            finally_context = _FinallyContext(self._fresh())
            self.finallies.append(finally_context)
        normal_target = finally_context.entry if finally_context else after

        body_entry = self._fresh()
        self._terminate(body_entry)
        body_start_index = len(self.graph.blocks)
        self.current = body_entry
        for statement in node.body:
            self.statement(statement)
        body_end = self.current
        body_blocks = [body_entry] + self.graph.blocks[body_start_index:]

        handler_entries: List[BasicBlock] = []
        for handler in node.handlers:
            handler_entry = self._fresh()
            handler_entries.append(handler_entry)
            # The handler clause binds its ``as`` name at entry.
            self.graph._place(handler, handler_entry)
            self.current = handler_entry
            for statement in handler.body:
                self.statement(statement)
            self._terminate(normal_target)

        exception_targets = handler_entries or (
            [finally_context.entry] if finally_context else [self.graph.raise_exit]
        )
        for block in body_blocks:
            for target in exception_targets:
                block.link(target, EXCEPTION)
        if not handler_entries and finally_context is not None:
            # An unhandled exception still runs finally, then propagates.
            finally_context.route(self.graph.raise_exit, EXCEPTION)

        self.current = body_end
        if node.orelse:
            if self.current is None:
                self.current = self._fresh()  # body always leaves; else dead
            for statement in node.orelse:
                self.statement(statement)
        self._terminate(normal_target)

        if finally_context is not None:
            self.finallies.pop()
            self.current = finally_context.entry
            for statement in node.finalbody:
                self.statement(statement)
            finally_end = self.current
            if finally_end is not None:
                finally_end.link(after)
                for target, kind in finally_context.continuations:
                    finally_end.link(target, kind)
            self.current = after
        else:
            self.current = after


def build_flow(scope: Scope) -> FlowGraph:
    """Build the :class:`FlowGraph` of one scope (module or function node)."""
    return FlowGraph(scope)


# ---------------------------------------------------------------------- #
# Definitions and uses
# ---------------------------------------------------------------------- #
def _target_names(target: ast.expr) -> Set[str]:
    """Plain names bound by one assignment target (unpacking included)."""
    if isinstance(target, ast.Name):
        return {target.id}
    if isinstance(target, (ast.Tuple, ast.List)):
        names: Set[str] = set()
        for element in target.elts:
            names |= _target_names(element)
        return names
    if isinstance(target, ast.Starred):
        return _target_names(target.value)
    return set()  # attribute / subscript targets bind no local name


def _pattern_names(pattern: ast.AST) -> Set[str]:
    """Names bound by a ``match`` pattern subtree."""
    names: Set[str] = set()
    for node in ast.walk(pattern):
        if isinstance(node, ast.MatchAs) and node.name:
            names.add(node.name)
        elif isinstance(node, ast.MatchStar) and node.name:
            names.add(node.name)
        elif isinstance(node, ast.MatchMapping) and node.rest:
            names.add(node.rest)
    return names


def statement_definitions(statement: ast.stmt) -> Set[str]:
    """The local names a statement (or compound header) binds.

    For compound statements only the *header* bindings count — a ``for``
    target, a ``with ... as`` name, an ``except ... as`` name, ``match``
    pattern captures — because the body's definitions live in their own
    blocks.
    """
    if isinstance(statement, ast.Assign):
        names: Set[str] = set()
        for target in statement.targets:
            names |= _target_names(target)
        return names
    if isinstance(statement, (ast.AugAssign, ast.AnnAssign)):
        return _target_names(statement.target)
    if isinstance(statement, (ast.For, ast.AsyncFor)):
        return _target_names(statement.target)
    if isinstance(statement, (ast.With, ast.AsyncWith)):
        names = set()
        for item in statement.items:
            if item.optional_vars is not None:
                names |= _target_names(item.optional_vars)
        return names
    if isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
        return {statement.name}
    if isinstance(statement, ast.Import):
        return {alias.asname or alias.name.split(".")[0] for alias in statement.names}
    if isinstance(statement, ast.ImportFrom):
        return {alias.asname or alias.name for alias in statement.names if alias.name != "*"}
    if isinstance(statement, ast.ExceptHandler):
        return {statement.name} if statement.name else set()
    if isinstance(statement, ast.Match):
        names = set()
        for case in statement.cases:
            names |= _pattern_names(case.pattern)
        return names
    if isinstance(
        statement, (ast.Expr, ast.Return, ast.Assert, ast.Delete, ast.Raise)
    ):
        # Walrus assignments inside simple statements still bind names.
        return {
            node.target.id
            for node in ast.walk(statement)
            if isinstance(node, ast.NamedExpr) and isinstance(node.target, ast.Name)
        }
    return set()


def _scope_parameters(scope: Scope) -> Set[str]:
    """Parameter names bound at a function scope's entry (empty for modules)."""
    arguments = getattr(scope, "args", None)
    if arguments is None:
        return set()
    names = {
        argument.arg
        for argument in (
            list(arguments.posonlyargs) + list(arguments.args) + list(arguments.kwonlyargs)
        )
    }
    if arguments.vararg is not None:
        names.add(arguments.vararg.arg)
    if arguments.kwarg is not None:
        names.add(arguments.kwarg.arg)
    return names


class ReachingDefinitions:
    """Forward may-analysis: which definitions of a name reach a statement.

    Definition sites are the defining statement nodes themselves, with
    :data:`PARAMETER` standing in for names bound by the function header.
    The analysis runs over *all* edges (a definition reaches through an
    exceptional transfer too) with the standard union-merge worklist.
    """

    def __init__(self, graph: FlowGraph):
        self.graph = graph
        self._in: Dict[int, Dict[str, frozenset]] = {
            block.index: {} for block in graph.blocks
        }
        entry_state = {
            name: frozenset([PARAMETER]) for name in _scope_parameters(graph.scope)
        }
        self._in[graph.entry.index] = entry_state
        self._solve()

    @staticmethod
    def _transfer(
        state: Dict[str, frozenset], statements: Sequence[ast.stmt]
    ) -> Dict[str, frozenset]:
        """Apply a block's statements to one dataflow state."""
        result = dict(state)
        for statement in statements:
            for name in statement_definitions(statement):
                result[name] = frozenset([statement])
        return result

    def _solve(self) -> None:
        """Worklist fixpoint over the block graph."""
        pending = list(self.graph.blocks)
        while pending:
            block = pending.pop()
            state = self._transfer(self._in[block.index], block.statements)
            for successor, _kind in block.successors:
                target = self._in[successor.index]
                changed = False
                for name, sites in state.items():
                    merged = target.get(name, frozenset()) | sites
                    if merged != target.get(name):
                        target[name] = merged
                        changed = True
                if changed:
                    pending.append(successor)

    def at(self, statement: ast.stmt) -> Dict[str, frozenset]:
        """The reaching-definition state just *before* a statement."""
        location = self.graph.locate(statement)
        if location is None:
            return {}
        block, index = location
        return self._transfer(self._in[block.index], block.statements[:index])

    def resolve(self, statement: ast.stmt, name: str) -> Optional[ast.stmt]:
        """The unique non-parameter definition reaching ``statement``.

        Returns ``None`` when no definition or several candidates reach —
        callers use this for "what does this name unambiguously hold here"
        queries (the pipe-protocol rule resolving ``command = message[0]``).
        """
        sites = self.at(statement).get(name, frozenset())
        concrete = [site for site in sites if site is not PARAMETER]
        if len(concrete) == 1:
            return concrete[0]
        return None


# ---------------------------------------------------------------------- #
# Scope iteration and alias tracking
# ---------------------------------------------------------------------- #
def iter_scopes(tree: ast.Module) -> Iterator[Scope]:
    """The module plus every (sync or async) function definition inside it."""
    yield tree
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def walk_scope(scope: Scope) -> Iterator[ast.AST]:
    """Walk one scope's statements without entering nested def/class bodies."""
    stack: List[ast.AST] = list(getattr(scope, "body", []))
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            continue
        stack.extend(ast.iter_child_nodes(node))


def projection_root(node: ast.expr) -> Optional[ast.expr]:
    """The base expression of an attribute/subscript chain (or ``None``).

    ``scene.cloud.positions[0]`` projects from ``scene``; a chain rooted in
    a call — ``store.get_cloud(0).positions`` — roots at the call itself.
    """
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    return node


def taint_names(
    graph: FlowGraph,
    is_source: Callable[[ast.expr], bool],
    projections: bool = False,
) -> Set[str]:
    """Forward alias tracking: names that may hold a source-matching value.

    Runs a fixpoint over the scope's assignments: a name becomes tainted
    when it is assigned an expression that matches ``is_source``, names an
    already-tainted value, or (with ``projections``) projects — via
    attribute or subscript loads — out of a tainted value.  The closure is
    flow-insensitive within the scope, which over-approximates (a name
    re-bound to something harmless later stays tainted) and therefore
    never misses an alias.
    """
    assignments: List[Tuple[Set[str], ast.expr]] = []
    for node in walk_scope(graph.scope):
        if isinstance(node, ast.Assign):
            names: Set[str] = set()
            for target in node.targets:
                names |= _target_names(target)
            if names and node.value is not None:
                assignments.append((names, node.value))
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            names = _target_names(node.target)
            if names:
                assignments.append((names, node.value))
        elif isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                if item.optional_vars is not None:
                    names = _target_names(item.optional_vars)
                    if names:
                        assignments.append((names, item.context_expr))
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            names = _target_names(node.target)
            if names:
                assignments.append((names, node.iter))

    tainted: Set[str] = set()

    def expression_tainted(expression: ast.expr) -> bool:
        """Whether one right-hand side may name a tainted/source value."""
        if is_source(expression):
            return True
        if isinstance(expression, ast.Name):
            return expression.id in tainted
        if projections and isinstance(expression, (ast.Attribute, ast.Subscript)):
            return expression_tainted(expression.value)
        return False

    changed = True
    while changed:
        changed = False
        for names, value in assignments:
            if names <= tainted:
                continue
            if expression_tainted(value):
                tainted |= names
                changed = True
    return tainted


def reaches_exit_without(
    graph: FlowGraph,
    start: ast.stmt,
    stops: Set[int],
    edge_filter: Optional[Callable[[BasicBlock, BasicBlock], bool]] = None,
) -> bool:
    """May-leak query: does a normal path from after ``start`` dodge ``stops``?

    Walks :data:`NORMAL` edges from the statement *after* ``start``; a path
    ending at the scope's normal exit without passing a statement whose
    ``id`` is in ``stops`` makes the answer ``True``.  Exceptional paths
    (handler entries, propagating raises) are excluded by construction —
    the resource-lease contract is about non-exceptional flow.  An
    ``edge_filter(block, successor)`` returning ``False`` prunes an edge;
    callers use it with :attr:`FlowGraph.branch_targets` to refute branches
    (``if x is not None`` cannot take its false edge while ``x`` holds the
    resource).
    """
    location = graph.locate(start)
    if location is None:
        return False
    start_block, start_index = location

    def scan(block: BasicBlock, begin: int) -> bool:
        """Whether the block falls through (no stop at or after ``begin``)."""
        for statement in block.statements[begin:]:
            if id(statement) in stops:
                return False
        return True

    def onward(block: BasicBlock) -> List[BasicBlock]:
        """The block's surviving normal successors."""
        return [
            successor
            for successor, kind in block.successors
            if kind == NORMAL
            and (edge_filter is None or edge_filter(block, successor))
        ]

    if not scan(start_block, start_index + 1):
        return False
    if start_block is graph.exit_block:
        return True
    seen: Set[int] = set()
    frontier = onward(start_block)
    while frontier:
        block = frontier.pop()
        if block.index in seen:
            continue
        seen.add(block.index)
        if block is graph.exit_block:
            return True
        if not scan(block, 0):
            continue
        frontier.extend(onward(block))
    return False
