"""Async-safety rules: the gateway's event loop must never block or race.

The asyncio gateway (:mod:`repro.serving.gateway`) is single-threaded
cooperative scheduling: one blocking call in a coroutine stalls *every*
in-flight request, and state shared between tasks is only safe when no
``await`` separates a read from its dependent write.  Two rules enforce
that contract statically:

* ``async-blocking`` — inside ``async def`` bodies, flag calls that block
  the event loop: ``time.sleep`` (use ``asyncio.sleep``), ``subprocess``
  calls, blocking ``os`` helpers, builtin ``open`` (run file I/O in an
  executor, as the dispatcher does with ``run_in_executor``), synchronous
  pipe/socket ``recv``/``recv_bytes``/``send_bytes``, and lock
  ``.acquire()`` calls that are not awaited.
* ``async-state`` — flag the *lost-update* race: instance state read into
  a local, an ``await`` (a scheduling point where another task can run),
  then the stale value written back (``self.x = stale + 1``).  Writes made
  while holding an ``async with <...lock...>`` block are exempt; so are
  plain overwrites that do not depend on the stale read — rebinding a flag
  after an await is idempotent, not a race.

Both rules are flow-insensitive approximations (statements are scanned in
source order, branches are not path-split); the bad/good fixture pairs in
``tests/fixtures/analysis/`` pin exactly which shapes they catch.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.analysis.core import Finding, ParsedModule, Project, Rule, register

#: ``os`` helpers that block (or spawn and wait on) the calling thread.
_BLOCKING_OS = {"system", "popen", "wait", "waitpid", "spawnl", "spawnv"}

#: Method names of synchronous pipe/connection transfers
#: (``multiprocessing.connection.Connection`` and raw sockets).
_BLOCKING_TRANSFER = {"recv", "recv_bytes", "send_bytes"}


def _module_aliases(tree: ast.Module) -> Dict[str, Set[str]]:
    """Local aliases of the blocking-prone stdlib modules."""
    aliases: Dict[str, Set[str]] = {
        "time": set(), "subprocess": set(), "os": set(), "sleep": set(),
    }
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                root = alias.name.split(".")[0]
                if root in aliases:
                    aliases[root].add(alias.asname or root)
        elif isinstance(node, ast.ImportFrom):
            if node.module == "time":
                for alias in node.names:
                    if alias.name == "sleep":
                        aliases["sleep"].add(alias.asname or "sleep")
    return aliases


def _async_functions(tree: ast.Module) -> List[ast.AsyncFunctionDef]:
    """Every ``async def`` in the module (methods and nested included)."""
    return [
        node for node in ast.walk(tree)
        if isinstance(node, ast.AsyncFunctionDef)
    ]


def _own_statements(function: ast.AsyncFunctionDef) -> List[ast.stmt]:
    """The function's statements in source order, excluding nested defs.

    Nested function bodies are separate execution contexts (usually
    executor targets or sub-coroutines with their own scan), so their
    statements must not be attributed to the enclosing coroutine.
    """
    collected: List[ast.stmt] = []

    def descend(body: List[ast.stmt]) -> None:
        for statement in body:
            if isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            collected.append(statement)
            for field_body in ("body", "orelse", "finalbody"):
                descend(getattr(statement, field_body, []) or [])
            for handler in getattr(statement, "handlers", []) or []:
                descend(handler.body)

    descend(function.body)
    return collected


def _walk_own(node) -> Iterator[ast.AST]:
    """Depth-first walk that does not descend into nested function defs."""
    for child in ast.iter_child_nodes(node):
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        yield child
        yield from _walk_own(child)


def _awaited_calls(function: ast.AsyncFunctionDef) -> Set[int]:
    """The ``id()`` of every Call node directly under an ``await``."""
    return {
        id(node.value)
        for node in ast.walk(function)
        if isinstance(node, ast.Await) and isinstance(node.value, ast.Call)
    }


def _statement_expressions(statement: ast.stmt) -> List[ast.AST]:
    """The expressions evaluated by the statement *itself*.

    For compound statements this is the header only (the test of an ``if``,
    the iterable of a ``for``, the context managers of a ``with``); their
    bodies are separate entries of the flattened statement list and must
    not be attributed to the header's position.
    """
    if isinstance(statement, (ast.If, ast.While)):
        return [statement.test]
    if isinstance(statement, (ast.For, ast.AsyncFor)):
        return [statement.iter]
    if isinstance(statement, (ast.With, ast.AsyncWith)):
        return [item.context_expr for item in statement.items]
    if isinstance(statement, ast.Try):
        return []
    return [statement]


def _statement_awaits(statement: ast.stmt) -> bool:
    """Whether executing the statement itself reaches a scheduling point.

    ``async for`` / ``async with`` headers await implicitly (``__anext__``
    / ``__aenter__``) even without a literal ``await`` expression.
    """
    if isinstance(statement, (ast.AsyncFor, ast.AsyncWith)):
        return True
    return any(
        isinstance(node, ast.Await)
        for expression in _statement_expressions(statement)
        for node in ast.walk(expression)
    )


def _self_reads(node: ast.AST) -> Set[str]:
    """Names of ``self.<attr>`` attributes read inside an expression."""
    return {
        sub.attr
        for sub in ast.walk(node)
        if isinstance(sub, ast.Attribute)
        and isinstance(sub.ctx, ast.Load)
        and isinstance(sub.value, ast.Name)
        and sub.value.id == "self"
    }


def _is_lockish(expression: ast.AST) -> bool:
    """Whether a context-manager expression looks like a lock/semaphore."""
    mention = " ".join(_self_reads(expression) | {
        node.id for node in ast.walk(expression) if isinstance(node, ast.Name)
    } | {
        node.attr for node in ast.walk(expression)
        if isinstance(node, ast.Attribute)
    })
    lowered = mention.lower()
    return any(word in lowered for word in ("lock", "semaphore", "mutex"))


@register
class AsyncBlockingRule(Rule):
    """Flag event-loop-blocking calls inside ``async def`` bodies."""

    id = "async-blocking"
    summary = (
        "async def bodies must not call blocking primitives (time.sleep, "
        "subprocess, open, sync recv, un-awaited acquire)"
    )

    def check(self, module: ParsedModule, project: Project) -> Iterator[Finding]:
        """Yield a finding per blocking call found inside a coroutine."""
        aliases = _module_aliases(module.tree)
        for function in _async_functions(module.tree):
            awaited = _awaited_calls(function)
            for node in _walk_own(function):
                if not isinstance(node, ast.Call):
                    continue
                message = self._blocking_reason(node, aliases, awaited)
                if message is not None:
                    yield module.finding(self.id, node, message)

    def _blocking_reason(self, call, aliases, awaited) -> Optional[str]:
        """Why a call blocks the loop, or None if it is loop-safe."""
        func = call.func
        if isinstance(func, ast.Name):
            if func.id == "open":
                return (
                    "open() performs blocking file I/O on the event loop; "
                    "run it in an executor (loop.run_in_executor)"
                )
            if func.id in aliases["sleep"]:
                return "time.sleep blocks the event loop; use asyncio.sleep"
            return None
        if not isinstance(func, ast.Attribute):
            return None
        base = func.value
        if isinstance(base, ast.Name):
            if base.id in aliases["time"] and func.attr == "sleep":
                return "time.sleep blocks the event loop; use asyncio.sleep"
            if base.id in aliases["subprocess"]:
                return (
                    f"subprocess.{func.attr} blocks the event loop; use "
                    f"asyncio.create_subprocess_* or an executor"
                )
            if base.id in aliases["os"] and func.attr in _BLOCKING_OS:
                return (
                    f"os.{func.attr} blocks the event loop; use an executor"
                )
        if func.attr in _BLOCKING_TRANSFER and id(call) not in awaited:
            return (
                f".{func.attr}() is a synchronous pipe/socket transfer that "
                f"blocks the event loop; use an executor or an async "
                f"transport"
            )
        if func.attr == "acquire" and id(call) not in awaited:
            return (
                "un-awaited .acquire() either blocks the loop "
                "(threading.Lock) or silently returns a coroutine "
                "(asyncio.Lock); use 'async with lock:'"
            )
        return None


@register
class AsyncSharedStateRule(Rule):
    """Flag lost-update races on instance state across ``await`` points."""

    id = "async-state"
    summary = (
        "instance state read before an await must not be written back "
        "after it without an asyncio.Lock (lost-update race)"
    )

    def check(self, module: ParsedModule, project: Project) -> Iterator[Finding]:
        """Yield a finding per stale write-back detected in a coroutine."""
        for function in _async_functions(module.tree):
            yield from self._check_function(module, function)

    def _check_function(self, module, function) -> Iterator[Finding]:
        """Scan one coroutine's statements in source order for the race."""
        # taint: local name -> {(self attribute it was read from, step)}
        taint: Dict[str, Set[Tuple[str, int]]] = {}
        await_steps: List[int] = []
        statements = _own_statements(function)
        statement_index = {id(s): i for i, s in enumerate(statements)}
        locked: Set[int] = set()

        # Pre-pass: which statement indices sit inside an async-with lock.
        def mark_lock_regions(body, inside):
            for statement in body:
                if isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue
                index = statement_index.get(id(statement))
                if index is not None and inside:
                    locked.add(index)
                now_inside = inside or (
                    isinstance(statement, ast.AsyncWith)
                    and any(_is_lockish(item.context_expr)
                            for item in statement.items)
                )
                for field_body in ("body", "orelse", "finalbody"):
                    mark_lock_regions(
                        getattr(statement, field_body, []) or [], now_inside
                    )
                for handler in getattr(statement, "handlers", []) or []:
                    mark_lock_regions(handler.body, now_inside)

        mark_lock_regions(function.body, False)

        for step, statement in enumerate(statements):
            has_await = _statement_awaits(statement)
            if isinstance(statement, ast.Assign):
                sources = self._value_sources(statement.value, taint)
                for target in statement.targets:
                    if isinstance(target, ast.Name):
                        reads = _self_reads(statement.value)
                        merged = {
                            (attribute, step) for attribute in reads
                        } | sources
                        if merged:
                            taint[target.id] = merged
                        else:
                            taint.pop(target.id, None)
                    elif self._is_self_attribute(target):
                        attribute = target.attr
                        finding = self._stale_write(
                            module, statement, attribute, sources,
                            await_steps, step, locked,
                        )
                        if finding is not None:
                            yield finding
            elif isinstance(statement, ast.AugAssign):
                if self._is_self_attribute(statement.target) and has_await:
                    if step not in locked:
                        yield module.finding(
                            self.id, statement,
                            f"augmented write to self.{statement.target.attr} "
                            f"spans an await (read and write are separated "
                            f"by a scheduling point); guard it with an "
                            f"asyncio.Lock",
                        )
            if has_await:
                await_steps.append(step)

    @staticmethod
    def _is_self_attribute(node: ast.AST) -> bool:
        """Whether an assignment target is a direct ``self.<attr>``."""
        return (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
        )

    @staticmethod
    def _value_sources(value, taint) -> Set[Tuple[str, int]]:
        """Stale instance reads flowing into an expression via locals."""
        sources: Set[Tuple[str, int]] = set()
        for node in ast.walk(value):
            if isinstance(node, ast.Name) and node.id in taint:
                sources |= taint[node.id]
        return sources

    def _stale_write(
        self, module, statement, attribute, sources, await_steps, step, locked
    ):
        """The finding for one ``self.X = ...`` write, or None."""
        if step in locked:
            return None
        direct_reads = _self_reads(statement.value)
        if attribute in direct_reads and any(
            isinstance(node, ast.Await) for node in ast.walk(statement.value)
        ):
            # self.x = self.x + await f(): read and write straddle the await.
            return module.finding(
                self.id, statement,
                f"self.{attribute} is read and written back around an await "
                f"in the same statement — another task may update it at the "
                f"scheduling point (lost update); guard it with an "
                f"asyncio.Lock",
            )
        for source_attribute, origin in sources:
            if source_attribute != attribute:
                continue
            if any(origin <= a < step for a in await_steps):
                return module.finding(
                    self.id, statement,
                    f"self.{attribute} was read before an await and is "
                    f"written back after it — another task may have updated "
                    f"it in between (lost update); recompute after the "
                    f"await or guard the section with an asyncio.Lock",
                )
        return None
