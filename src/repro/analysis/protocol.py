"""Pipe-protocol rule: senders, worker dispatch and replies must agree.

The sharded fleet (:mod:`repro.serving.sharded`) speaks a string-tagged
tuple protocol over ``multiprocessing`` pipes: the dispatcher sends
``("serve", payload)``/``("add_scene", store)``/... and each worker loop
receives a message, dispatches on ``message[0]``, and replies
``("ok", payload)`` or ``("error", traceback_text)``.  Nothing ties the
two sides together at runtime — an unknown tag just surfaces as an
``("error", "unknown command ...")`` reply mid-serve, and a forgotten
sender leaves dead handler code.  PR 8 grew the vocabulary twice
(``add_scene``/``remove_scene``); this rule makes the contract static.

The analysis is project-wide (computed once per lint run, cached on the
:class:`~repro.analysis.core.Project`):

* **Workers** are scopes that assign a name from ``<conn>.recv()`` and
  compare ``message[0]`` — directly or through an alias resolved with the
  flow engine's reaching definitions (``command = message[0]``) — against
  string constants.  Each ``if``/``elif`` arm contributes a handled tag
  and a payload-arity demand (the largest constant ``message[N]`` index
  its body reads).
* **Request sends** are ``<conn>.send(("<tag>", ...))`` tuple literals
  outside worker scopes — including through one *forwarder* hop: a
  function that sends one of its parameters verbatim (``_call(self,
  shard, message)``) turns its call sites' tuple-literal arguments into
  send sites.
* **Replies** are the worker's own sends, checked against the
  ``("ok"|"error", payload)`` two-tuple grammar.

Findings: a sent tag no worker handles, a handled tag nothing sends, a
send whose tuple is shorter than the handler's ``message[N]`` demand, and
a reply literal outside the grammar.  The rule stays silent in projects
with no worker loop at all, so linting a lone client file cannot
cross-check against nothing.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.analysis.core import Finding, ParsedModule, Project, Rule, register
from repro.analysis.flow import iter_scopes, walk_scope

#: Reply tags allowed by the ``("ok"|"error", payload)`` grammar.
_REPLY_TAGS = frozenset({"ok", "error"})

_CACHE_KEY = "pipe-protocol"


@dataclass
class _Handler:
    """One handled tag in one worker: where, and how much payload it reads."""

    path: str
    node: ast.AST
    demand: int  # minimum tuple arity the handler body requires


@dataclass
class _SendSite:
    """One request-send site: ``conn.send(("<tag>", ...))`` or forwarded."""

    path: str
    node: ast.AST
    tag: str
    arity: int


@dataclass
class _ProtocolFacts:
    """The project's whole message vocabulary, swept once per lint run."""

    handlers: Dict[str, List[_Handler]] = field(default_factory=dict)
    sends: List[_SendSite] = field(default_factory=list)
    reply_findings: List[Tuple[str, ast.AST, str]] = field(default_factory=list)
    worker_scopes: int = 0


def _recv_names(scope) -> Dict[str, str]:
    """``message name -> connection name`` for ``X = <conn>.recv()`` binds."""
    names: Dict[str, str] = {}
    for node in walk_scope(scope):
        if not (isinstance(node, ast.Assign) and isinstance(node.value, ast.Call)):
            continue
        func = node.value.func
        if not (isinstance(func, ast.Attribute) and func.attr == "recv"):
            continue
        if not isinstance(func.value, ast.Name):
            continue
        for target in node.targets:
            if isinstance(target, ast.Name):
                names[target.id] = func.value.id
    return names


def _is_message_head(node: ast.expr, message_names: Set[str]) -> bool:
    """Whether an expression is ``message[0]`` for a recv-bound name."""
    return (
        isinstance(node, ast.Subscript)
        and isinstance(node.value, ast.Name)
        and node.value.id in message_names
        and isinstance(node.slice, ast.Constant)
        and node.slice.value == 0
    )


def _compare_tags(test: ast.expr) -> Optional[Tuple[ast.expr, List[str]]]:
    """``(dispatch expression, tags)`` for an equality/membership test."""
    if not (
        isinstance(test, ast.Compare)
        and len(test.ops) == 1
        and len(test.comparators) == 1
    ):
        return None
    comparator = test.comparators[0]
    if isinstance(test.ops[0], ast.Eq):
        if isinstance(comparator, ast.Constant) and isinstance(
            comparator.value, str
        ):
            return test.left, [comparator.value]
        return None
    if isinstance(test.ops[0], ast.In) and isinstance(
        comparator, (ast.Tuple, ast.List, ast.Set)
    ):
        tags = [
            element.value
            for element in comparator.elts
            if isinstance(element, ast.Constant)
            and isinstance(element.value, str)
        ]
        return (test.left, tags) if tags else None
    return None


def _branch_demand(branch: ast.stmt, message_names: Set[str]) -> int:
    """The tuple arity a handler arm requires (1 + max ``message[N]``)."""
    demand = 1
    for node in ast.walk(branch):
        if (
            isinstance(node, ast.Subscript)
            and isinstance(node.value, ast.Name)
            and node.value.id in message_names
            and isinstance(node.slice, ast.Constant)
            and isinstance(node.slice.value, int)
        ):
            demand = max(demand, node.slice.value + 1)
    return demand


def _scan_worker(
    module: ParsedModule, project: Project, scope, facts: _ProtocolFacts
) -> bool:
    """Record a scope's handlers/replies if it is a worker loop."""
    recv = _recv_names(scope)
    if not recv:
        return False
    message_names = set(recv)
    graph = project.flow(scope)
    reaching = None
    handled: List[Tuple[str, ast.AST, int]] = []
    for node in walk_scope(scope):
        if not isinstance(node, ast.If):
            continue
        matched = _compare_tags(node.test)
        if matched is None:
            continue
        dispatch, tags = matched
        is_dispatch = _is_message_head(dispatch, message_names)
        if not is_dispatch and isinstance(dispatch, ast.Name):
            # ``command == "serve"`` — resolve the alias back through the
            # CFG's reaching definitions to ``command = message[0]``.
            if reaching is None:
                reaching = graph.reaching_definitions()
            definition = reaching.resolve(node, dispatch.id)
            is_dispatch = (
                isinstance(definition, ast.Assign)
                and _is_message_head(definition.value, message_names)
            )
        if is_dispatch:
            demand = _branch_demand(node, message_names)
            for tag in tags:
                handled.append((tag, node.test, demand))
    if not handled:
        return False
    facts.worker_scopes += 1
    for tag, test_node, demand in handled:
        facts.handlers.setdefault(tag, []).append(
            _Handler(path=module.path, node=test_node, demand=demand)
        )
    # Reply grammar: the worker's own sends on its connection name(s).
    connections = set(recv.values())
    for node in walk_scope(scope):
        if not (isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute)):
            continue
        if node.func.attr != "send" or not isinstance(node.func.value, ast.Name):
            continue
        if node.func.value.id not in connections or not node.args:
            continue
        reply = node.args[0]
        if not isinstance(reply, ast.Tuple):
            continue
        head = reply.elts[0] if reply.elts else None
        head_tag = (
            head.value
            if isinstance(head, ast.Constant) and isinstance(head.value, str)
            else None
        )
        if len(reply.elts) != 2 or head_tag not in _REPLY_TAGS:
            facts.reply_findings.append(
                (
                    module.path,
                    node,
                    f"worker reply {ast.unparse(reply)} does not match the "
                    f'("ok"|"error", payload) two-tuple grammar',
                )
            )
    return True


def _forwarder_positions(scope) -> Optional[Tuple[str, int, bool]]:
    """``(name, arg index, skips self)`` if the scope forwards a parameter.

    A forwarder is a function with a ``<conn>.send(param)`` statement whose
    argument is one of its own parameters — ``_call(self, shard, message)``
    — so its call sites are really send sites.
    """
    if not isinstance(scope, (ast.FunctionDef, ast.AsyncFunctionDef)):
        return None
    parameters = [argument.arg for argument in scope.args.args]
    for node in walk_scope(scope):
        if not (isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute)):
            continue
        if node.func.attr != "send" or len(node.args) != 1:
            continue
        argument = node.args[0]
        if isinstance(argument, ast.Name) and argument.id in parameters:
            index = parameters.index(argument.id)
            skips_self = bool(parameters) and parameters[0] in ("self", "cls")
            if skips_self:
                index -= 1
            return scope.name, index, skips_self
    return None


def _tuple_send(node: ast.Call) -> Optional[Tuple[str, int]]:
    """``(tag, arity)`` when a call's first argument is a tagged tuple."""
    if not node.args or not isinstance(node.args[0], ast.Tuple):
        return None
    elements = node.args[0].elts
    if not elements:
        return None
    head = elements[0]
    if isinstance(head, ast.Constant) and isinstance(head.value, str):
        return head.value, len(elements)
    return None


def _collect_facts(project: Project) -> _ProtocolFacts:
    """Sweep the whole project once for workers, send sites and replies."""
    facts = _ProtocolFacts()
    worker_scope_ids: Set[int] = set()
    forwarders: Dict[str, int] = {}

    relevant = [
        module
        for module in project.modules
        if ".send(" in module.source or ".recv(" in module.source
    ]
    for module in relevant:
        for scope in iter_scopes(module.tree):
            if _scan_worker(module, project, scope, facts):
                worker_scope_ids.add(id(scope))
            else:
                forwarder = _forwarder_positions(scope)
                if forwarder is not None:
                    forwarders[forwarder[0]] = forwarder[1]

    for module in relevant:
        for scope in iter_scopes(module.tree):
            if id(scope) in worker_scope_ids:
                continue  # worker sends are replies, recorded above
            for node in walk_scope(scope):
                if not (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, (ast.Attribute, ast.Name))
                ):
                    continue
                callee = (
                    node.func.attr
                    if isinstance(node.func, ast.Attribute)
                    else node.func.id
                )
                if callee == "send":
                    send = _tuple_send(node)
                    if send is not None:
                        facts.sends.append(
                            _SendSite(module.path, node, send[0], send[1])
                        )
                elif callee in forwarders:
                    position = forwarders[callee]
                    if 0 <= position < len(node.args):
                        argument = node.args[position]
                        if isinstance(argument, ast.Tuple) and argument.elts:
                            head = argument.elts[0]
                            if isinstance(head, ast.Constant) and isinstance(
                                head.value, str
                            ):
                                facts.sends.append(
                                    _SendSite(
                                        module.path,
                                        node,
                                        head.value,
                                        len(argument.elts),
                                    )
                                )
    return facts


def protocol_facts(project: Project) -> _ProtocolFacts:
    """The project's cached :class:`_ProtocolFacts` (one sweep per run)."""
    if _CACHE_KEY not in project.analysis_cache:
        project.analysis_cache[_CACHE_KEY] = _collect_facts(project)
    return project.analysis_cache[_CACHE_KEY]


@register
class PipeProtocolRule(Rule):
    """Cross-check pipe message vocabulary: sends vs. dispatch vs. replies."""

    id = "pipe-protocol"
    summary = (
        'every connection.send(("<tag>", ...)) needs a worker-side handler '
        "with matching payload arity (and vice versa); replies must be "
        '("ok"|"error", payload)'
    )

    def check(self, module: ParsedModule, project: Project) -> Iterator[Finding]:
        """Yield this module's share of the project-wide protocol findings."""
        facts = protocol_facts(project)
        if not facts.worker_scopes:
            return  # no worker loop in the project: nothing to check against
        handled_tags = set(facts.handlers)
        sent_tags = {site.tag for site in facts.sends}
        for site in facts.sends:
            if site.path != module.path:
                continue
            if site.tag not in handled_tags:
                known = ", ".join(sorted(handled_tags))
                yield module.finding(
                    self.id,
                    site.node,
                    f"sent command {site.tag!r} has no worker-side handler "
                    f"(handled: {known})",
                )
                continue
            demand = max(h.demand for h in facts.handlers[site.tag])
            if site.arity < demand:
                yield module.finding(
                    self.id,
                    site.node,
                    f"payload arity mismatch for {site.tag!r}: sends a "
                    f"{site.arity}-tuple but a handler reads "
                    f"message[{demand - 1}]",
                )
        for tag, handlers in sorted(facts.handlers.items()):
            if tag in sent_tags:
                continue
            for handler in handlers:
                if handler.path != module.path:
                    continue
                yield module.finding(
                    self.id,
                    handler.node,
                    f"handler for command {tag!r} has no sender anywhere "
                    f"in the project (dead protocol arm)",
                )
        for path, node, message in facts.reply_findings:
            if path == module.path:
                yield module.finding(self.id, node, message)
