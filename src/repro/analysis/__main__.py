"""``python -m repro.analysis`` — run the invariant linter standalone.

Identical behavior to the ``repro lint`` subcommand: both delegate to
:func:`repro.analysis.runner.run`, so the exit-code contract (0 clean,
1 findings, 2 internal error) holds for either entry point.
"""

from __future__ import annotations

import sys

from repro.analysis.runner import main

if __name__ == "__main__":
    sys.exit(main())
