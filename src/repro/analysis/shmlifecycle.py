"""Shm-lifecycle rule: every SharedMemory creation must pair with cleanup.

A named ``multiprocessing.shared_memory.SharedMemory`` segment outlives the
process that created it: until someone calls ``unlink()``, the kernel keeps
the backing pages under ``/dev/shm`` — a leak that survives crashes,
``kill -9`` and interpreter exit.  The shared storage tier
(:mod:`repro.serving.storage.shared`) therefore treats segment lifecycle as
a hard contract (owner unlinks, every holder closes), and this rule
machine-checks the half of the contract that is visible statically.

Since PR 10 the rule runs on the :mod:`repro.analysis.leases` may-leak
engine instead of the original scope-level heuristic: a segment assigned to
a local name is followed through the scope's control-flow graph, and a
non-exceptional path that reaches the scope's exit without a
``close()``/``unlink()`` on an alias, a managing ``with`` block, or an
ownership transfer (returned, passed to a callee such as
``weakref.finalize``/``atexit.register``, stored into object state) is a
finding.  Factories that *return* a fresh segment are now understood as
transferring ownership to the caller and are no longer flagged — the old
rule needed a ``# repro: ignore[shm-lifecycle]`` for that idiom.

Deliberate exceptions still carry ``# repro: ignore[shm-lifecycle]`` on the
creation line.
"""

from __future__ import annotations

from typing import Iterator

from repro.analysis.core import Finding, ParsedModule, Project, Rule, register
from repro.analysis.leases import LeaseSpec, find_leaks

#: The SharedMemory constructor family, on the shared may-leak engine.
SHM_SPEC = LeaseSpec(
    label="SharedMemory segment",
    callee=frozenset({"SharedMemory"}),
    verbs=frozenset({"close", "unlink"}),
    remedy=(
        "pair the creation with close()/unlink() (finally/context manager) "
        "or register a finalizer; leaked segments survive process death "
        "under /dev/shm"
    ),
)


@register
class ShmLifecycleRule(Rule):
    """Flag SharedMemory creations that may leak on a normal path."""

    id = "shm-lifecycle"
    summary = (
        "SharedMemory(...) creation must pair with close()/unlink() in a "
        "finally/context manager (or register a finalizer); leaked "
        "segments survive process death under /dev/shm"
    )

    def check(self, module: ParsedModule, project: Project) -> Iterator[Finding]:
        """Yield a finding per ``SharedMemory(...)`` that may leak."""
        if "SharedMemory" not in module.source:
            return  # cheap pre-filter: no constructor, no CFG work
        for call, spec in find_leaks(module, project, (SHM_SPEC,)):
            yield module.finding(
                self.id,
                call,
                f"{spec.label} may leak: a non-exceptional path reaches "
                f"scope exit without cleanup or ownership transfer; "
                f"{spec.remedy}",
            )
