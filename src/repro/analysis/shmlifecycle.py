"""Shm-lifecycle rule: every SharedMemory creation must pair with cleanup.

A named ``multiprocessing.shared_memory.SharedMemory`` segment outlives the
process that created it: until someone calls ``unlink()``, the kernel keeps
the backing pages under ``/dev/shm`` — a leak that survives crashes,
``kill -9`` and interpreter exit.  The shared storage tier
(:mod:`repro.serving.storage.shared`) therefore treats segment lifecycle as
a hard contract (owner unlinks, every holder closes), and this rule
machine-checks the half of the contract that is visible statically.

Every call expression that constructs a ``SharedMemory(...)`` is flagged
unless the surrounding code shows one of the accepted lifecycle idioms:

* the call is the context expression of a ``with`` item (the context
  manager closes the mapping);
* the innermost enclosing function (or the module, for top-level code)
  contains a ``try`` whose ``finally`` or ``except`` blocks call
  ``.close()`` or ``.unlink()``;
* that same scope registers a finalizer — ``weakref.finalize(...)`` or
  ``atexit.register(...)`` — which is how long-lived owners defer cleanup
  beyond the creating frame.

Deliberate exceptions carry ``# repro: ignore[shm-lifecycle]`` on the
creation line (for example a factory whose caller owns the lifecycle).
The heuristic is scope-level, not data-flow — it asks "does this scope
visibly participate in the lifecycle protocol", which is cheap, has no
false negatives on bare creations, and matches how the storage tier is
actually written.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Union

from repro.analysis.core import Finding, ParsedModule, Project, Rule, register

_Scope = Union[ast.Module, ast.FunctionDef, ast.AsyncFunctionDef]

#: Method names that count as participating in the segment lifecycle.
_CLEANUP_METHODS = frozenset({"close", "unlink"})


def _is_shared_memory_call(node: ast.AST) -> bool:
    """Whether a call expression constructs a ``SharedMemory``."""
    if not isinstance(node, ast.Call):
        return False
    target = node.func
    if isinstance(target, ast.Name):
        return target.id == "SharedMemory"
    if isinstance(target, ast.Attribute):
        return target.attr == "SharedMemory"
    return False


def _scope_nodes(scope: _Scope) -> Iterator[ast.AST]:
    """Walk a scope without descending into nested function/class scopes."""
    stack = list(scope.body)
    while stack:
        node = stack.pop()
        yield node
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            continue
        stack.extend(ast.iter_child_nodes(node))


def _calls_cleanup(node: ast.AST) -> bool:
    """Whether a subtree calls ``.close()``/``.unlink()`` on anything."""
    for child in ast.walk(node):
        if not isinstance(child, ast.Call):
            continue
        target = child.func
        if isinstance(target, ast.Attribute) and target.attr in _CLEANUP_METHODS:
            return True
    return False


def _registers_finalizer(node: ast.AST) -> bool:
    """Whether a node is a ``weakref.finalize``/``atexit.register`` call."""
    if not isinstance(node, ast.Call):
        return False
    target = node.func
    if isinstance(target, ast.Attribute):
        if target.attr == "finalize":
            return True
        if target.attr == "register" and isinstance(target.value, ast.Name):
            return target.value.id == "atexit"
    if isinstance(target, ast.Name):
        return target.id == "finalize"
    return False


def _scope_handles_lifecycle(scope: _Scope) -> bool:
    """Whether a scope visibly participates in the lifecycle protocol.

    True when the scope has a ``try`` whose ``finally``/``except`` blocks
    call a cleanup method, or registers a finalizer for deferred cleanup.
    """
    for node in _scope_nodes(scope):
        if isinstance(node, ast.Try):
            for handler in node.handlers:
                if any(_calls_cleanup(stmt) for stmt in handler.body):
                    return True
            if any(_calls_cleanup(stmt) for stmt in node.finalbody):
                return True
        if _registers_finalizer(node):
            return True
    return False


def _with_item_expressions(scope: _Scope) -> set:
    """Identity set of context expressions of every ``with`` in a scope."""
    expressions = set()
    for node in _scope_nodes(scope):
        if isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                expressions.add(id(item.context_expr))
    return expressions


def _innermost_scope(module: ParsedModule, creation: ast.AST) -> _Scope:
    """The function scope a creation call sits in (module for top level)."""
    scope: _Scope = module.tree
    candidate: Optional[_Scope] = None

    def visit(node: ast.AST, current: _Scope) -> None:
        nonlocal candidate
        for child in ast.iter_child_nodes(node):
            inner = current
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                inner = child
            if child is creation:
                candidate = current
            visit(child, inner)

    visit(module.tree, scope)
    return candidate if candidate is not None else scope


@register
class ShmLifecycleRule(Rule):
    """Flag SharedMemory creations with no visible cleanup pairing."""

    id = "shm-lifecycle"
    summary = (
        "SharedMemory(...) creation must pair with close()/unlink() in a "
        "finally/context manager (or register a finalizer); leaked "
        "segments survive process death under /dev/shm"
    )

    def check(self, module: ParsedModule, project: Project) -> Iterator[Finding]:
        """Yield a finding per unpaired ``SharedMemory(...)`` creation."""
        creations = [
            node for node in ast.walk(module.tree)
            if _is_shared_memory_call(node)
        ]
        if not creations:
            return
        for creation in creations:
            scope = _innermost_scope(module, creation)
            if id(creation) in _with_item_expressions(scope):
                continue
            if _scope_handles_lifecycle(scope):
                continue
            yield module.finding(
                self.id,
                creation,
                "SharedMemory segment created without a paired close()/"
                "unlink() (finally/context manager) or registered "
                "finalizer in this scope",
            )
