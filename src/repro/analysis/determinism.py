"""Determinism rule: all randomness must flow through seeded generators.

The repo's golden tests rest on contract 5 of ``docs/ARCHITECTURE.md``:
synthetic scenes and traffic streams are *pure functions of their seeds*.
One unseeded draw anywhere under ``src/repro/`` breaks seeded-replay
(``serve --seed`` would stop replaying the same trace) and turns golden
tests flaky.  This rule therefore flags every randomness source that is not
explicitly seeded:

* ``np.random.default_rng()`` (and bare ``default_rng()``) called without a
  seed — an unseeded generator draws from OS entropy;
* unseeded NumPy bit generators (``PCG64()``, ``MT19937()``, ...);
* *any* use of NumPy's legacy global-state API (``np.random.rand``,
  ``np.random.seed``, ``np.random.shuffle``, ...) — even seeded, global
  state leaks across call sites and makes replay order-dependent;
* *any* use of the stdlib ``random`` module's global functions, and
  ``random.Random()`` constructed without a seed.

The fix is always the same shape: accept or construct a seeded
``np.random.Generator`` (``np.random.default_rng(seed)``) and pass it down,
as :mod:`repro.gaussians.synthetic` and :mod:`repro.serving.traffic` do.
"""

from __future__ import annotations

import ast
from typing import Iterator, Set

from repro.analysis.core import Finding, ParsedModule, Project, Rule, register

#: NumPy bit-generator / generator constructors that take an optional seed
#: and fall back to OS entropy without one.
_SEEDABLE_CONSTRUCTORS = {
    "default_rng", "PCG64", "PCG64DXSM", "MT19937", "Philox", "SFC64",
    "SeedSequence", "RandomState",
}

#: Attributes of ``np.random`` that are part of the generator API (not the
#: legacy global-state convenience functions) and are not themselves draws.
_GENERATOR_API = _SEEDABLE_CONSTRUCTORS | {"Generator", "BitGenerator"}

#: Stdlib ``random`` attributes that are safe to touch (classes the caller
#: must still seed — ``Random()`` without arguments is flagged separately).
_STDLIB_SAFE = {"Random", "SystemRandom", "getstate", "setstate"}


def _call_is_seeded(call: ast.Call) -> bool:
    """Whether a seedable constructor call carries an explicit seed."""
    if call.args:
        return True
    return any(keyword.arg == "seed" for keyword in call.keywords)


class _ImportTracker(ast.NodeVisitor):
    """Collects the local aliases of the random-number modules/functions."""

    def __init__(self) -> None:
        self.numpy_aliases: Set[str] = set()
        self.numpy_random_aliases: Set[str] = set()
        self.stdlib_random_aliases: Set[str] = set()
        self.direct_constructors: Set[str] = set()
        self.direct_stdlib_functions: Set[str] = set()

    def visit_Import(self, node: ast.Import) -> None:
        """Track ``import numpy [as np]`` / ``import random [as rnd]``."""
        for alias in node.names:
            local = alias.asname or alias.name.split(".")[0]
            if alias.name == "numpy" or alias.name.startswith("numpy."):
                if alias.name == "numpy.random" and alias.asname:
                    self.numpy_random_aliases.add(alias.asname)
                else:
                    self.numpy_aliases.add(local)
            elif alias.name == "random":
                self.stdlib_random_aliases.add(local)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        """Track ``from numpy.random import default_rng`` style imports."""
        for alias in node.names:
            local = alias.asname or alias.name
            if node.module == "numpy" and alias.name == "random":
                self.numpy_random_aliases.add(local)
            elif node.module in ("numpy.random", "numpy.random._generator"):
                if alias.name in _SEEDABLE_CONSTRUCTORS:
                    self.direct_constructors.add(local)
            elif node.module == "random":
                if alias.name not in _STDLIB_SAFE:
                    self.direct_stdlib_functions.add(local)


@register
class DeterminismRule(Rule):
    """Flag unseeded or global-state randomness sources."""

    id = "determinism"
    summary = (
        "randomness must come from explicitly seeded np.random.Generator "
        "objects (seeded replay depends on it)"
    )

    def check(self, module: ParsedModule, project: Project) -> Iterator[Finding]:
        """Yield a finding for every unseeded randomness source."""
        imports = _ImportTracker()
        imports.visit(module.tree)
        relevant = (
            imports.numpy_aliases or imports.numpy_random_aliases
            or imports.stdlib_random_aliases or imports.direct_constructors
            or imports.direct_stdlib_functions
        )
        if not relevant:
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            finding = self._check_call(module, node, imports)
            if finding is not None:
                yield finding

    def _check_call(self, module, call, imports):
        """The finding for one call expression, or None."""
        func = call.func
        # Bare constructor calls: ``default_rng()`` after a from-import.
        if isinstance(func, ast.Name):
            if func.id in imports.direct_constructors:
                if not _call_is_seeded(call):
                    return module.finding(
                        self.id, call,
                        f"{func.id}() without a seed draws from OS entropy; "
                        f"pass an explicit seed (e.g. {func.id}(seed))",
                    )
            elif func.id in imports.direct_stdlib_functions:
                return module.finding(
                    self.id, call,
                    f"stdlib random.{func.id}() uses hidden global state; "
                    f"use a seeded np.random.default_rng(seed) instead",
                )
            return None
        if not isinstance(func, ast.Attribute):
            return None
        base = func.value
        # ``np.random.<fn>(...)`` — base is the attribute ``<numpy>.random``.
        is_np_random = (
            isinstance(base, ast.Attribute)
            and base.attr == "random"
            and isinstance(base.value, ast.Name)
            and base.value.id in imports.numpy_aliases
        ) or (
            isinstance(base, ast.Name)
            and base.id in imports.numpy_random_aliases
        )
        if is_np_random:
            if func.attr in _SEEDABLE_CONSTRUCTORS:
                if not _call_is_seeded(call):
                    return module.finding(
                        self.id, call,
                        f"np.random.{func.attr}() without a seed draws from "
                        f"OS entropy; pass an explicit seed",
                    )
            elif func.attr not in _GENERATOR_API:
                return module.finding(
                    self.id, call,
                    f"np.random.{func.attr}() uses the legacy global-state "
                    f"API; draw from a seeded np.random.default_rng(seed) "
                    f"generator instead",
                )
            return None
        # ``random.<fn>(...)`` on the stdlib module.
        if isinstance(base, ast.Name) and base.id in imports.stdlib_random_aliases:
            if func.attr == "Random":
                if not _call_is_seeded(call):
                    return module.finding(
                        self.id, call,
                        "random.Random() without a seed draws from OS "
                        "entropy; pass an explicit seed",
                    )
            elif func.attr not in _STDLIB_SAFE:
                return module.finding(
                    self.id, call,
                    f"stdlib random.{func.attr}() uses hidden global state; "
                    f"use a seeded np.random.default_rng(seed) instead",
                )
        return None
