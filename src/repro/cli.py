"""Command-line interface of the GauRast reproduction.

Eight subcommands cover the library's main flows::

    python -m repro evaluate [--algorithm original|optimized] [--scene NAME]
        Paper-scale baseline-vs-GauRast comparison (Table III / Figs. 10-11).

    python -m repro render [--gaussians N] [--width W] [--height H]
                           [--output image.ppm] [--save-scene scene.npz]
        Synthesise a scene, render it with the cycle-level hardware model,
        validate against the software renderer and optionally write outputs.

    python -m repro store [--scenes N] [--output store.npz] [--info PATH]
                          [--from PATH] [--shared] [--paged]
                          [--memory-budget BYTES]
        Build a multi-scene SceneStore archive of synthetic scenes, or
        inspect an existing archive (any format version, including the
        version-4 paged directory).  --paged writes --output as a paged
        directory instead of one .npz; --shared re-hosts the catalog in a
        shared-memory segment and reports it; the inspect output reports
        allocated capacity next to payload bytes.

    python -m repro compress [--store PATH] [--codec fp64|fp16|int8]
                             [--levels K] [--keep R] [--output out.npz]
                             [--info PATH] [--quality]
        Quantize a scene store into a CompressedSceneStore tier (.npz
        format v3) with K nested LOD levels, report per-level sizes and
        compression ratios, and optionally measure per-level PSNR.

    python -m repro serve [--requests N] [--store PATH] [--workers N]
                          [--traffic uniform|zipf|hotspot] [--seed N]
                          [--replicate-hot K] [--rebalance]
                          [--kill-at POS:WORKER[,..]]
                          [--lod] [--codec C] [--naive] [--hardware]
                          [--async] [--queue-depth N]
                          [--overload-policy block|shed-oldest|reject]
                          [--storage memory|shared|paged]
                          [--memory-budget BYTES]
        Serve a synthetic render-request trace through the RenderService
        (or, with --workers > 1, the sharded multi-process fleet) and report
        throughput, latency and cache statistics.  --seed makes the traffic
        deterministic, so a trace can be replayed exactly.  --lod serves
        from a compressed store with footprint-driven detail levels.
        --async fronts the service with the RenderGateway (in-flight
        coalescing, bounded admission queue, priority lanes) and reports
        coalesce/shed/reject counters plus queue-depth percentiles.
        --replicate-hot K makes the traffic model's hot scenes resident on
        K shards with load-aware routing, --rebalance promotes/demotes
        replicas live from observed traffic, and --kill-at injects seeded
        worker deaths mid-stream (requeued, never lost) with a fault-
        accounting printout.  --storage serves from a residency tier:
        'shared' hosts one zero-copy catalog for every worker, 'paged'
        pages scenes from disk under a --memory-budget byte budget.

    python -m repro experiments [NAME ...]
        Run the experiment harness (all experiments by default).

    python -m repro validate [--fp16]
        Hardware-vs-software output validation sweep (Section V-A).

    python -m repro lint [PATH ...] [--format text|json|github]
                         [--rules ID,...] [--baseline PATH]
                         [--update-baseline] [--exclude NAME]
                         [--list-rules]
        Run the AST-based invariant linter (repro.analysis) over the tree:
        determinism, cache-key completeness, async-safety, repr-hygiene,
        shm-lifecycle, pipe-protocol, resource-lease, view-mutation.
        Exits 0 when clean, 1 on findings, 2 on analyzer-internal errors;
        --update-baseline rewrites the baseline to the current findings
        (pruning stale fingerprints) and exits 0.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

import numpy as np

from repro.compression import (
    CODECS,
    CompressedSceneStore,
    DEFAULT_CODEC,
    DEFAULT_KEEP_RATIO,
    DEFAULT_LOD_LEVELS,
    load_store,
)
from repro.core.gaurast import GauRastSystem
from repro.datasets.nerf360 import SCENE_NAMES
from repro.experiments import ALL_EXPERIMENTS
from repro.experiments.common import fmt, format_table
from repro.gaussians.io import save_image_ppm, save_scene
from repro.gaussians.metrics import compare_images
from repro.gaussians.pipeline import render as functional_render
from repro.gaussians.rasterize import BACKENDS, DEFAULT_BACKEND
from repro.gaussians.synthetic import SyntheticConfig, make_synthetic_scene
from repro.hardware.config import GauRastConfig, PROTOTYPE_CONFIG
from repro.hardware.fp import Precision
from repro.hardware.validation import validate_against_software
from repro.serving import (
    OVERLOAD_POLICIES,
    STORAGE_TIERS,
    TRAFFIC_PATTERNS,
    FailurePlan,
    PagedSceneStore,
    RenderGateway,
    RenderService,
    SceneStore,
    ShardedRenderService,
    generate_requests,
    host_store,
    popularity_priority,
    write_paged,
)


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="GauRast reproduction: models, experiments and rendering.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    evaluate = subparsers.add_parser(
        "evaluate", help="paper-scale baseline vs GauRast comparison"
    )
    evaluate.add_argument(
        "--algorithm", choices=("original", "optimized"), default="original"
    )
    evaluate.add_argument(
        "--scene", choices=SCENE_NAMES, default=None,
        help="evaluate a single scene (default: all seven)",
    )

    render = subparsers.add_parser(
        "render", help="render a synthetic scene with the hardware model"
    )
    render.add_argument("--gaussians", type=int, default=800)
    render.add_argument("--width", type=int, default=160)
    render.add_argument("--height", type=int, default=120)
    render.add_argument("--seed", type=int, default=0)
    render.add_argument("--instances", type=int, default=4)
    render.add_argument(
        "--backend", choices=BACKENDS, default=DEFAULT_BACKEND,
        help="functional rasterization backend (bit-identical; "
             "'vectorized' is faster)",
    )
    render.add_argument("--output", default=None, help="write the image as PPM")
    render.add_argument("--save-scene", default=None, help="write the scene as .npz")

    store = subparsers.add_parser(
        "store", help="build or inspect a multi-scene SceneStore archive"
    )
    store.add_argument("--scenes", type=int, default=3,
                       help="number of synthetic scenes to build")
    store.add_argument("--gaussians", type=int, default=600,
                       help="Gaussians per scene")
    store.add_argument("--width", type=int, default=120)
    store.add_argument("--height", type=int, default=90)
    store.add_argument("--cameras", type=int, default=4,
                       help="viewpoints per scene")
    store.add_argument("--seed", type=int, default=0)
    store.add_argument("--output", default=None,
                       help="write the store as a .npz archive")
    store.add_argument("--info", default=None, metavar="PATH",
                       help="inspect an existing archive instead of building")
    store.add_argument("--from", dest="source", default=None, metavar="PATH",
                       help="load scenes from an existing archive (any format "
                            "version) instead of synthesising")
    store.add_argument("--shared", action="store_true",
                       help="re-host the catalog in a shared-memory segment "
                            "and report it (released on exit)")
    store.add_argument("--paged", action="store_true",
                       help="write --output as a version-4 paged directory "
                            "(the out-of-core tier) instead of one .npz")
    store.add_argument("--memory-budget", type=int, default=None,
                       metavar="BYTES",
                       help="resident-set byte budget when opening a paged "
                            "store")

    compress = subparsers.add_parser(
        "compress", help="quantize a scene store into a compressed LOD tier"
    )
    compress.add_argument("--store", default=None, metavar="PATH",
                          help="compress an existing archive "
                               "(default: synthesise scenes)")
    compress.add_argument("--scenes", type=int, default=3)
    compress.add_argument("--gaussians", type=int, default=600)
    compress.add_argument("--width", type=int, default=120)
    compress.add_argument("--height", type=int, default=90)
    compress.add_argument("--cameras", type=int, default=4)
    compress.add_argument("--seed", type=int, default=0)
    compress.add_argument("--codec", choices=CODECS, default=DEFAULT_CODEC,
                          help="quantization codec (fp64 = lossless tier)")
    compress.add_argument("--levels", type=int, default=DEFAULT_LOD_LEVELS,
                          help="LOD pyramid depth (level 0 = full detail)")
    compress.add_argument("--keep", type=float, default=DEFAULT_KEEP_RATIO,
                          help="fraction of Gaussians each level keeps "
                               "from the previous one")
    compress.add_argument("--output", default=None,
                          help="write the compressed tier (.npz format v3)")
    compress.add_argument("--info", default=None, metavar="PATH",
                          help="inspect an existing compressed archive "
                               "instead of building")
    compress.add_argument("--quality", action="store_true",
                          help="render each level against the original "
                               "and report PSNR/SSIM")

    serve = subparsers.add_parser(
        "serve", help="serve a render-request trace against a scene store"
    )
    serve.add_argument("--store", default=None, metavar="PATH",
                       help="load scenes from an archive (default: synthesise)")
    serve.add_argument("--scenes", type=int, default=3)
    serve.add_argument("--gaussians", type=int, default=600)
    serve.add_argument("--width", type=int, default=120)
    serve.add_argument("--height", type=int, default=90)
    serve.add_argument("--cameras", type=int, default=4)
    serve.add_argument("--requests", type=int, default=60,
                       help="length of the synthetic request trace")
    serve.add_argument("--seed", type=int, default=0,
                       help="traffic seed; the same seed replays the exact "
                            "same request stream")
    serve.add_argument(
        "--backend", choices=BACKENDS, default=DEFAULT_BACKEND,
        help="functional rasterization backend",
    )
    serve.add_argument("--workers", type=int, default=1,
                       help="shard the stream across N worker processes "
                            "with scene affinity (default: 1, in-process)")
    serve.add_argument("--replicate-hot", type=int, default=1, metavar="K",
                       help="make each hot scene (from the seeded traffic "
                            "popularity model) resident on K shards with "
                            "load-aware routing (needs --workers > 1)")
    serve.add_argument("--rebalance", action="store_true",
                       help="promote/demote replicas live from observed "
                            "traffic (needs --workers > 1)")
    serve.add_argument("--kill-at", default=None, metavar="POS:WORKER[,..]",
                       help="chaos injection: kill WORKER once POS requests "
                            "have been dispatched, e.g. 30:1,45:0 "
                            "(needs --workers > 1); in-flight requests are "
                            "requeued, no response is lost")
    serve.add_argument(
        "--traffic", choices=TRAFFIC_PATTERNS, default="uniform",
        help="scene-popularity skew of the synthetic trace",
    )
    serve.add_argument("--zipf-exponent", type=float, default=1.1,
                       help="popularity exponent of --traffic zipf")
    serve.add_argument("--hotspot-fraction", type=float, default=0.8,
                       help="share of requests hitting the hot scene "
                            "under --traffic hotspot")
    serve.add_argument("--lod", action="store_true",
                       help="serve from a compressed store with "
                            "footprint-driven detail levels")
    serve.add_argument("--codec", choices=CODECS, default=DEFAULT_CODEC,
                       dest="lod_codec", metavar="CODEC",
                       help="quantization codec used when --lod compresses "
                            "the store here")
    serve.add_argument("--lod-levels", type=int, default=DEFAULT_LOD_LEVELS,
                       help="LOD pyramid depth under --lod")
    serve.add_argument("--lod-keep", type=float, default=DEFAULT_KEEP_RATIO,
                       help="per-level keep fraction under --lod")
    serve.add_argument("--async", dest="use_async", action="store_true",
                       help="serve through the asyncio RenderGateway: "
                            "in-flight request coalescing, a bounded "
                            "admission queue, and priority lanes")
    serve.add_argument("--queue-depth", type=int, default=64,
                       help="admission-queue bound of the async gateway")
    serve.add_argument("--overload-policy", choices=OVERLOAD_POLICIES,
                       default="block",
                       help="what a full gateway queue does to new "
                            "arrivals (block, shed-oldest, or reject)")
    serve.add_argument("--storage", choices=STORAGE_TIERS, default="memory",
                       help="residency tier to serve from: 'shared' hosts "
                            "one zero-copy catalog for all workers, 'paged' "
                            "pages scenes from disk under a byte budget")
    serve.add_argument("--memory-budget", type=int, default=None,
                       metavar="BYTES",
                       help="resident-set byte budget of the paged tier")
    serve.add_argument("--naive", action="store_true",
                       help="also time the naive per-request render loop")
    serve.add_argument("--hardware", action="store_true",
                       help="replay the trace on the cycle-level hardware model")

    experiments = subparsers.add_parser(
        "experiments", help="run the table/figure experiment harness"
    )
    experiments.add_argument(
        "names", nargs="*", metavar="NAME",
        help=f"experiments to run (default: all). Known: {', '.join(ALL_EXPERIMENTS)}",
    )

    validate = subparsers.add_parser(
        "validate", help="hardware-vs-software output validation"
    )
    validate.add_argument("--fp16", action="store_true",
                          help="validate the FP16 datapath instead of FP32")
    validate.add_argument("--scenes", type=int, default=2,
                          help="number of random Gaussian scenes")

    lint = subparsers.add_parser(
        "lint", help="run the AST-based invariant linter (repro.analysis)"
    )
    lint.add_argument("paths", nargs="*", metavar="PATH",
                      help="files or directories to lint "
                           "(default: the repro package)")
    lint.add_argument("--format", choices=("text", "json", "github"),
                      default="text",
                      help="report format (json follows the documented "
                           "v1 schema; github emits ::error workflow "
                           "annotations)")
    lint.add_argument("--rules", default=None, metavar="ID[,ID...]",
                      help="comma-separated subset of rules to run "
                           "(default: all)")
    lint.add_argument("--baseline", default=None, metavar="PATH",
                      help="JSON baseline of grandfathered finding "
                           "fingerprints")
    lint.add_argument("--update-baseline", action="store_true",
                      help="rewrite the baseline to the current findings, "
                           "pruning stale fingerprints, and exit 0")
    lint.add_argument("--exclude", action="append", default=None,
                      metavar="NAME",
                      help="directory name to skip during discovery "
                           "(repeatable), e.g. --exclude fixtures")
    lint.add_argument("--list-rules", action="store_true",
                      help="list the registered rules and exit")
    return parser


def _command_evaluate(args: argparse.Namespace) -> int:
    system = GauRastSystem()
    if args.scene:
        evaluations = [system.evaluate_scene(args.scene, args.algorithm)]
    else:
        evaluations = system.evaluate_all(args.algorithm)

    headers = [
        "Scene", "Baseline raster (ms)", "GauRast raster (ms)", "Speedup",
        "Energy eff.", "Baseline FPS", "GauRast FPS",
    ]
    rows = []
    for evaluation in evaluations:
        raster = evaluation.rasterization
        end_to_end = evaluation.end_to_end
        rows.append(
            (
                evaluation.scene_name,
                fmt(raster.baseline_time_s * 1e3, 1),
                fmt(raster.gaurast_time_s * 1e3, 1),
                fmt(raster.speedup, 1) + "x",
                fmt(raster.energy_improvement, 1) + "x",
                fmt(end_to_end.baseline_fps, 1),
                fmt(end_to_end.gaurast_fps, 1),
            )
        )
    print(f"algorithm: {args.algorithm}")
    print(format_table(headers, rows))
    if len(evaluations) > 1:
        mean_speedup = sum(e.rasterization.speedup for e in evaluations) / len(evaluations)
        mean_fps = sum(e.end_to_end.gaurast_fps for e in evaluations) / len(evaluations)
        print(f"mean rasterization speedup {mean_speedup:.1f}x, "
              f"mean FPS with GauRast {mean_fps:.1f}")
    return 0


def _command_render(args: argparse.Namespace) -> int:
    config = SyntheticConfig(
        num_gaussians=args.gaussians, width=args.width, height=args.height,
        seed=args.seed,
    )
    scene = make_synthetic_scene(config, name="cli-scene")
    start = time.perf_counter()
    software = functional_render(scene, backend=args.backend)
    software_seconds = time.perf_counter() - start

    system = GauRastSystem(config=GauRastConfig(num_instances=args.instances))
    image, report = system.render(scene, backend=args.backend)
    comparison = compare_images(software.image, image)
    print(f"rendered {scene.num_gaussians} Gaussians at {args.width}x{args.height} "
          f"in {report.frame_cycles} cycles on {args.instances} instances")
    print(f"functional render ({args.backend} backend): "
          f"{software_seconds * 1e3:.1f} ms")
    print(f"validation vs software renderer: max |err| = "
          f"{comparison.max_abs_error:.2e}, SSIM = {comparison.ssim:.4f}")

    if args.save_scene:
        path = save_scene(scene, args.save_scene)
        print(f"scene written to {path}")
    if args.output:
        path = save_image_ppm(np.clip(image, 0.0, 1.0), args.output)
        print(f"image written to {path}")
    return 0


def _build_store(args: argparse.Namespace) -> SceneStore:
    """Synthesise a store of small multi-camera scenes from CLI arguments."""
    store = SceneStore()
    for index in range(args.scenes):
        config = SyntheticConfig(
            num_gaussians=args.gaussians, width=args.width, height=args.height,
            seed=args.seed + index,
        )
        store.add_scene(
            make_synthetic_scene(
                config, name=f"scene-{index}", num_cameras=args.cameras
            )
        )
    return store


def _print_store_summary(store: SceneStore) -> None:
    headers = ["#", "Scene", "Gaussians", "Cameras", "SH coeffs", "KiB"]
    rows = []
    for index in range(len(store)):
        scene = store.get_scene(index)
        rows.append(
            (
                str(index),
                scene.name,
                str(scene.num_gaussians),
                str(len(scene.cameras)),
                str(scene.cloud.sh_coeffs.shape[1]),
                fmt(store.scene_nbytes(index) / 1024.0, 1),
            )
        )
    print(format_table(headers, rows))
    print(f"total: {len(store)} scenes, {store.num_gaussians} Gaussians, "
          f"{store.num_cameras} cameras, {store.nbytes / 1024.0:.1f} KiB payload")
    print(f"memory: {store.capacity_bytes / 1024.0:.1f} KiB allocated for "
          f"{store.nbytes / 1024.0:.1f} KiB payload")
    if isinstance(store, PagedSceneStore):
        budget = store.memory_budget
        budget_text = "unbounded" if budget is None else f"{budget / 1024.0:.1f} KiB"
        print(f"paged tier: {store.resident_bytes / 1024.0:.1f} KiB resident "
              f"(budget {budget_text}) from {store.path}")


def _command_store(args: argparse.Namespace) -> int:
    if args.info:
        store = load_store(args.info)
        print(f"archive: {args.info}")
    elif args.source:
        store = load_store(args.source)
        print(f"source: {args.source}")
    else:
        store = _build_store(args)
    if args.memory_budget is not None and isinstance(store, PagedSceneStore):
        store = PagedSceneStore(store.path, memory_budget=args.memory_budget)
    _print_store_summary(store)
    if args.shared:
        try:
            with host_store(store, "shared") as lease:
                hosted = lease.store
                print(f"shared segment: {hosted.segment_name} "
                      f"({hosted.segment_bytes} bytes, unlinked on exit)")
        except ValueError as error:
            print(str(error), file=sys.stderr)
            return 2
    if args.output:
        if args.paged:
            path = write_paged(store, args.output)
            print(f"paged store written to {path}")
        else:
            path = store.save(args.output)
            print(f"store written to {path}")
    return 0


def _print_compressed_summary(store: CompressedSceneStore) -> None:
    """Print the per-scene, per-level breakdown of a compressed tier."""
    headers = ["#", "Scene", "Codec", "Levels (Gaussians)", "KiB", "Ratio"]
    rows = []
    for index in range(len(store)):
        sizes = " > ".join(str(s) for s in store.level_sizes(index))
        raw = store.scene_raw_nbytes(index)
        compressed = store.scene_nbytes(index)
        rows.append(
            (
                str(index),
                store.names[index],
                store.codec,
                sizes,
                fmt(compressed / 1024.0, 1),
                fmt(raw / max(compressed, 1), 1) + "x",
            )
        )
    print(format_table(headers, rows))
    print(f"total: {len(store)} scenes, {store.num_gaussians} Gaussians, "
          f"{store.nbytes / 1024.0:.1f} KiB payload, "
          f"cloud compression {store.compression_ratio:.1f}x")


def _print_level_quality(store: CompressedSceneStore, original=None) -> None:
    """Render every level of every scene and report quality vs a reference.

    ``original`` is the uncompressed store the tier was built from, so the
    comparison covers the codec's own loss too; without it (inspecting an
    archive whose original is gone) the stored full-detail representation
    is the best available reference, and level 0 is exact by construction.
    """
    headers = ["Level", "Gaussians", "Min PSNR (dB)", "Min SSIM"]
    max_levels = max(store.num_levels(i) for i in range(len(store)))
    references = {}
    for index in range(len(store)):
        cameras = store.get_cameras(index)
        if not cameras:
            continue
        reference_scene = (
            original.get_scene(index) if original is not None
            else store.get_scene(index, 0)
        )
        references[index] = functional_render(
            reference_scene, camera=cameras[0]
        ).image
    rows = []
    for level in range(max_levels):
        psnrs, ssims, counts = [], [], 0
        for index, reference in references.items():
            if level >= store.num_levels(index):
                continue
            test = functional_render(
                store.get_scene(index, level),
                camera=store.get_cameras(index)[0],
            )
            comparison = compare_images(reference, test.image)
            psnrs.append(comparison.psnr_db)
            ssims.append(comparison.ssim)
            counts += store.level_sizes(index)[level]
        if not psnrs:
            continue
        min_psnr = min(psnrs)
        rows.append(
            (
                str(level),
                str(counts),
                "inf" if min_psnr == float("inf") else fmt(min_psnr, 1),
                fmt(min(ssims), 4),
            )
        )
    against = (
        "the original uncompressed scenes" if original is not None
        else "the stored full-detail representation"
    )
    print(f"quality vs {against} (worst over scenes, first camera):")
    print(format_table(headers, rows))


def _command_compress(args: argparse.Namespace) -> int:
    original = None
    if args.info:
        store = CompressedSceneStore.load(args.info)
        print(f"archive: {args.info}")
    else:
        if args.store:
            original = load_store(args.store)
        else:
            original = _build_store(args)
        store = CompressedSceneStore.from_store(
            original, codec=args.codec, levels=args.levels, keep_ratio=args.keep
        )
    _print_compressed_summary(store)
    if args.quality:
        _print_level_quality(store, original=original)
    if args.output:
        path = store.save(args.output)
        print(f"compressed store written to {path}")
    return 0


def _parse_kill_plan(spec: str) -> FailurePlan:
    """Parse ``--kill-at POS:WORKER[,POS:WORKER...]`` into a FailurePlan."""
    kills = []
    for part in spec.split(","):
        position, _, worker = part.partition(":")
        if not worker:
            raise ValueError(
                f"bad --kill-at entry {part!r}; expected POS:WORKER"
            )
        kills.append((int(position), int(worker)))
    return FailurePlan.at(*kills)


def _command_serve(args: argparse.Namespace) -> int:
    if args.workers < 1:
        print("--workers must be at least 1", file=sys.stderr)
        return 2
    if args.replicate_hot < 1:
        print("--replicate-hot must be at least 1", file=sys.stderr)
        return 2
    fleet_flags = (
        args.replicate_hot > 1 or args.rebalance or args.kill_at is not None
    )
    if fleet_flags and args.workers < 2:
        print("--replicate-hot/--rebalance/--kill-at need --workers > 1",
              file=sys.stderr)
        return 2
    if args.kill_at is not None and args.use_async:
        print("--kill-at drives the fleet dispatcher directly; "
              "it cannot be combined with --async", file=sys.stderr)
        return 2
    failure_plan = None
    if args.kill_at is not None:
        try:
            failure_plan = _parse_kill_plan(args.kill_at)
            for _, worker in failure_plan.kills:
                if worker >= args.workers:
                    raise ValueError(
                        f"--kill-at targets worker {worker}, but there are "
                        f"only {args.workers}"
                    )
        except ValueError as error:
            print(str(error), file=sys.stderr)
            return 2
    if args.store:
        store = load_store(args.store)
    else:
        store = _build_store(args)
    lod_policy = None
    if args.lod:
        if not isinstance(store, CompressedSceneStore):
            store = CompressedSceneStore.from_store(
                store, codec=args.lod_codec, levels=args.lod_levels,
                keep_ratio=args.lod_keep,
            )
        lod_policy = "footprint"
    lease = None
    if args.storage != "memory":
        try:
            lease = host_store(
                store, args.storage, memory_budget=args.memory_budget
            )
        except ValueError as error:
            print(str(error), file=sys.stderr)
            return 2
        store = lease.store
    trace = generate_requests(
        store, args.requests, pattern=args.traffic, seed=args.seed,
        zipf_exponent=args.zipf_exponent,
        hotspot_fraction=args.hotspot_fraction,
    )
    print(f"serving {len(trace)} requests over {len(store)} scenes "
          f"({store.num_cameras} viewpoints, traffic={args.traffic}, "
          f"seed={args.seed}, backend={args.backend}, "
          f"workers={args.workers}"
          + (f", storage={args.storage}" if args.storage != "memory" else "")
          + (", async gateway" if args.use_async else "") + ")")

    gateway = None
    if args.workers > 1:
        hot_scenes = None
        if args.replicate_hot > 1:
            # Hot set from the same seeded popularity model the trace was
            # drawn from, so replication targets the scenes that are
            # actually hot in this stream.
            hot_scenes = popularity_priority(
                store, pattern=args.traffic, seed=args.seed,
                zipf_exponent=args.zipf_exponent,
                hotspot_fraction=args.hotspot_fraction,
            )
        service = ShardedRenderService(
            store, num_workers=args.workers, backend=args.backend,
            lod_policy=lod_policy, replication=args.replicate_hot,
            hot_scenes=hot_scenes, rebalance=args.rebalance,
        )
    else:
        service = RenderService(
            store, backend=args.backend, lod_policy=lod_policy
        )
    try:
        if args.use_async:
            priority_of = None
            if args.traffic != "uniform":
                # Hotspot/zipf traffic rides priority lanes derived from
                # the same seeded popularity model the trace was drawn from.
                priority_of = popularity_priority(
                    store, pattern=args.traffic, seed=args.seed,
                    zipf_exponent=args.zipf_exponent,
                    hotspot_fraction=args.hotspot_fraction,
                )
            gateway = RenderGateway(
                service, queue_depth=args.queue_depth,
                overload_policy=args.overload_policy,
                priority_of=priority_of,
            )
            report = gateway.serve(trace)
            print(f"gateway: {report.num_completed}/{report.num_requests} "
                  f"requests completed, coalesce rate "
                  f"{report.coalesce_rate:.0%}, {report.num_shed} shed, "
                  f"{report.num_rejected} rejected, "
                  f"{report.num_expired} expired "
                  f"(policy {report.overload_policy}, "
                  f"depth {report.queue_depth})")
            print(f"queue depth p50 "
                  f"{report.queue_depth_percentile(50):.0f}, p95 "
                  f"{report.queue_depth_percentile(95):.0f} over "
                  f"{len(report.queue_depth_samples)} admissions")
        elif args.workers > 1:
            report = service.serve(trace, failure_plan=failure_plan)
        else:
            report = service.serve(trace)
        _print_serve_report(args, store, report)

        if args.naive:
            start = time.perf_counter()
            for request in trace:
                functional_render(
                    store.get_scene(request.scene_id), camera=request.camera,
                    backend=args.backend, collect_stats=True,
                )
            naive_seconds = time.perf_counter() - start
            naive_rps = len(trace) / naive_seconds
            print(f"naive per-request loop: {naive_seconds * 1e3:.1f} ms "
                  f"({naive_rps:.1f} req/s); serving layer is "
                  f"{report.requests_per_second / naive_rps:.1f}x faster")

        if args.hardware:
            system = GauRastSystem()
            if gateway is not None:
                evaluation = system.evaluate_trace(store, trace, gateway=gateway)
            else:
                evaluation = system.evaluate_trace(
                    store, trace, backend=args.backend, workers=args.workers,
                    lod_policy=lod_policy,
                )
            print(f"hardware model: {evaluation.served_cycles} cycles served "
                  f"vs {evaluation.naive_cycles} naive "
                  f"({evaluation.hardware_speedup:.1f}x fewer cycles, "
                  f"{evaluation.requests_per_second:.0f} req/s at "
                  f"{system.config.clock_hz / 1e6:.0f} MHz)")
            if args.lod and len(evaluation.frames_by_level) > 1:
                for level in sorted(evaluation.frames_by_level):
                    mean_cycles = evaluation.mean_cycles_per_frame_by_level[level]
                    traffic = evaluation.traffic_by_level[level]
                    frames = evaluation.frames_by_level[level]
                    print(f"  level {level}: {frames} distinct frames, "
                          f"{mean_cycles:.0f} cycles/frame, "
                          f"{traffic / 1024.0:.0f} KiB traffic")
    finally:
        if args.workers > 1:
            service.close()
        if lease is not None:
            if isinstance(store, PagedSceneStore):
                stats = store.resident_stats()
                budget = store.memory_budget
                budget_text = (
                    "unbounded" if budget is None
                    else f"{budget / 1024.0:.0f} KiB"
                )
                print(f"paged tier: {store.resident_bytes / 1024.0:.1f} KiB "
                      f"resident (budget {budget_text}), "
                      f"{stats.evictions} evictions")
            lease.close()
    return 0


def _print_serve_report(args: argparse.Namespace, store, report) -> None:
    """Shared throughput/latency/cache printout of the serve subcommand."""
    print(f"served {report.num_requests} requests in "
          f"{report.wall_seconds * 1e3:.1f} ms: "
          f"{report.requests_per_second:.1f} req/s, "
          f"{report.num_batches} batches, "
          f"{report.num_cache_hits} requests answered by memoization")
    print(f"latency: p50 {report.latency_percentile(50) * 1e3:.1f} ms, "
          f"mean {report.mean_latency_s * 1e3:.1f} ms, "
          f"p95 {report.latency_percentile(95) * 1e3:.1f} ms, "
          f"max {report.max_latency_s * 1e3:.1f} ms")
    frame_cache = report.frame_cache
    print(f"frame cache: {frame_cache.entries} entries, "
          f"{frame_cache.current_bytes / 1024.0:.0f} KiB, "
          f"LRU hit rate across serve calls {frame_cache.hit_rate:.0%}")
    if args.lod:
        by_level = report.requests_by_level
        levels = ", ".join(
            f"L{level}: {count}" for level, count in sorted(by_level.items())
        )
        print(f"detail levels served (footprint policy): {levels}; "
              f"store compression {store.compression_ratio:.1f}x "
              f"({store.codec})")
    # Per-shard breakdown exists only for a direct fleet serve (a gateway
    # report aggregates its per-batch fleet reports away).
    if args.workers > 1 and hasattr(report, "shards"):
        for shard in report.shards:
            scenes = ",".join(str(i) for i in shard.scene_indices) or "-"
            print(f"  shard {shard.shard_id}: scenes [{scenes}], "
                  f"{shard.num_requests} requests, "
                  f"{shard.num_batches} batches, "
                  f"busy {shard.busy_seconds * 1e3:.1f} ms, "
                  f"utilization "
                  f"{report.utilization[shard.shard_id]:.0%}"
                  + ("" if shard.alive else " [dead]"))
        print(f"fleet critical path {report.critical_path_seconds * 1e3:.1f} ms "
              f"-> {report.modeled_requests_per_second:.1f} req/s "
              f"with one core per worker")
        if report.killed or report.requeued or report.placement:
            print(f"fault accounting: {report.dispatched} dispatched = "
                  f"{report.num_requests} completed + "
                  f"{report.requeued} requeued; "
                  f"killed {list(report.killed) or '[]'}, "
                  f"{report.respawned} respawned")
            for event in report.placement:
                scene = "" if event.scene is None else f" scene {event.scene}"
                print(f"  @{event.position}: {event.kind}{scene} "
                      f"on shard {event.shard}")


def _command_lint(args: argparse.Namespace) -> int:
    # Imported lazily: the linter is pure stdlib and must stay usable
    # even if heavier subsystems fail to import.
    from repro.analysis.runner import run as run_lint

    return run_lint(
        paths=args.paths,
        output_format=args.format,
        rules=args.rules,
        baseline=args.baseline,
        list_rules=args.list_rules,
        update_baseline=args.update_baseline,
        exclude=args.exclude,
    )


def _command_experiments(args: argparse.Namespace) -> int:
    from repro.experiments.__main__ import main as run_experiments

    return run_experiments(args.names)


def _command_validate(args: argparse.Namespace) -> int:
    config = PROTOTYPE_CONFIG
    if args.fp16:
        config = config.with_precision(Precision.FP16)
    report = validate_against_software(config, num_gaussian_scenes=args.scenes)
    for case in report.cases:
        comparison = case.comparison
        psnr_text = "inf" if comparison.psnr_db == float("inf") else f"{comparison.psnr_db:.1f}"
        print(f"{case.name:<22s} {case.primitive_type:<9s} "
              f"PSNR {psnr_text:>6s} dB  SSIM {comparison.ssim:.4f}  "
              f"{'pass' if case.passed else 'FAIL'}")
    print(f"overall: {'pass' if report.all_passed else 'FAIL'} "
          f"({config.precision.value})")
    return 0 if report.all_passed or args.fp16 else 1


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    handlers = {
        "evaluate": _command_evaluate,
        "render": _command_render,
        "store": _command_store,
        "compress": _command_compress,
        "serve": _command_serve,
        "experiments": _command_experiments,
        "validate": _command_validate,
        "lint": _command_lint,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
