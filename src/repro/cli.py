"""Command-line interface of the GauRast reproduction.

Four subcommands cover the library's main flows::

    python -m repro evaluate [--algorithm original|optimized] [--scene NAME]
        Paper-scale baseline-vs-GauRast comparison (Table III / Figs. 10-11).

    python -m repro render [--gaussians N] [--width W] [--height H]
                           [--output image.ppm] [--save-scene scene.npz]
        Synthesise a scene, render it with the cycle-level hardware model,
        validate against the software renderer and optionally write outputs.

    python -m repro experiments [NAME ...]
        Run the experiment harness (all experiments by default).

    python -m repro validate [--fp16]
        Hardware-vs-software output validation sweep (Section V-A).
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

import numpy as np

from repro.core.gaurast import GauRastSystem
from repro.datasets.nerf360 import SCENE_NAMES
from repro.experiments import ALL_EXPERIMENTS
from repro.experiments.common import fmt, format_table
from repro.gaussians.io import save_image_ppm, save_scene
from repro.gaussians.metrics import compare_images
from repro.gaussians.pipeline import render as functional_render
from repro.gaussians.rasterize import BACKENDS, DEFAULT_BACKEND
from repro.gaussians.synthetic import SyntheticConfig, make_synthetic_scene
from repro.hardware.config import GauRastConfig, PROTOTYPE_CONFIG
from repro.hardware.fp import Precision
from repro.hardware.validation import validate_against_software


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="GauRast reproduction: models, experiments and rendering.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    evaluate = subparsers.add_parser(
        "evaluate", help="paper-scale baseline vs GauRast comparison"
    )
    evaluate.add_argument(
        "--algorithm", choices=("original", "optimized"), default="original"
    )
    evaluate.add_argument(
        "--scene", choices=SCENE_NAMES, default=None,
        help="evaluate a single scene (default: all seven)",
    )

    render = subparsers.add_parser(
        "render", help="render a synthetic scene with the hardware model"
    )
    render.add_argument("--gaussians", type=int, default=800)
    render.add_argument("--width", type=int, default=160)
    render.add_argument("--height", type=int, default=120)
    render.add_argument("--seed", type=int, default=0)
    render.add_argument("--instances", type=int, default=4)
    render.add_argument(
        "--backend", choices=BACKENDS, default=DEFAULT_BACKEND,
        help="functional rasterization backend (bit-identical; "
             "'vectorized' is faster)",
    )
    render.add_argument("--output", default=None, help="write the image as PPM")
    render.add_argument("--save-scene", default=None, help="write the scene as .npz")

    experiments = subparsers.add_parser(
        "experiments", help="run the table/figure experiment harness"
    )
    experiments.add_argument(
        "names", nargs="*", metavar="NAME",
        help=f"experiments to run (default: all). Known: {', '.join(ALL_EXPERIMENTS)}",
    )

    validate = subparsers.add_parser(
        "validate", help="hardware-vs-software output validation"
    )
    validate.add_argument("--fp16", action="store_true",
                          help="validate the FP16 datapath instead of FP32")
    validate.add_argument("--scenes", type=int, default=2,
                          help="number of random Gaussian scenes")
    return parser


def _command_evaluate(args: argparse.Namespace) -> int:
    system = GauRastSystem()
    if args.scene:
        evaluations = [system.evaluate_scene(args.scene, args.algorithm)]
    else:
        evaluations = system.evaluate_all(args.algorithm)

    headers = [
        "Scene", "Baseline raster (ms)", "GauRast raster (ms)", "Speedup",
        "Energy eff.", "Baseline FPS", "GauRast FPS",
    ]
    rows = []
    for evaluation in evaluations:
        raster = evaluation.rasterization
        end_to_end = evaluation.end_to_end
        rows.append(
            (
                evaluation.scene_name,
                fmt(raster.baseline_time_s * 1e3, 1),
                fmt(raster.gaurast_time_s * 1e3, 1),
                fmt(raster.speedup, 1) + "x",
                fmt(raster.energy_improvement, 1) + "x",
                fmt(end_to_end.baseline_fps, 1),
                fmt(end_to_end.gaurast_fps, 1),
            )
        )
    print(f"algorithm: {args.algorithm}")
    print(format_table(headers, rows))
    if len(evaluations) > 1:
        mean_speedup = sum(e.rasterization.speedup for e in evaluations) / len(evaluations)
        mean_fps = sum(e.end_to_end.gaurast_fps for e in evaluations) / len(evaluations)
        print(f"mean rasterization speedup {mean_speedup:.1f}x, "
              f"mean FPS with GauRast {mean_fps:.1f}")
    return 0


def _command_render(args: argparse.Namespace) -> int:
    config = SyntheticConfig(
        num_gaussians=args.gaussians, width=args.width, height=args.height,
        seed=args.seed,
    )
    scene = make_synthetic_scene(config, name="cli-scene")
    start = time.perf_counter()
    software = functional_render(scene, backend=args.backend)
    software_seconds = time.perf_counter() - start

    system = GauRastSystem(config=GauRastConfig(num_instances=args.instances))
    image, report = system.render(scene, backend=args.backend)
    comparison = compare_images(software.image, image)
    print(f"rendered {scene.num_gaussians} Gaussians at {args.width}x{args.height} "
          f"in {report.frame_cycles} cycles on {args.instances} instances")
    print(f"functional render ({args.backend} backend): "
          f"{software_seconds * 1e3:.1f} ms")
    print(f"validation vs software renderer: max |err| = "
          f"{comparison.max_abs_error:.2e}, SSIM = {comparison.ssim:.4f}")

    if args.save_scene:
        path = save_scene(scene, args.save_scene)
        print(f"scene written to {path}")
    if args.output:
        path = save_image_ppm(np.clip(image, 0.0, 1.0), args.output)
        print(f"image written to {path}")
    return 0


def _command_experiments(args: argparse.Namespace) -> int:
    from repro.experiments.__main__ import main as run_experiments

    return run_experiments(args.names)


def _command_validate(args: argparse.Namespace) -> int:
    config = PROTOTYPE_CONFIG
    if args.fp16:
        config = config.with_precision(Precision.FP16)
    report = validate_against_software(config, num_gaussian_scenes=args.scenes)
    for case in report.cases:
        comparison = case.comparison
        psnr_text = "inf" if comparison.psnr_db == float("inf") else f"{comparison.psnr_db:.1f}"
        print(f"{case.name:<22s} {case.primitive_type:<9s} "
              f"PSNR {psnr_text:>6s} dB  SSIM {comparison.ssim:.4f}  "
              f"{'pass' if case.passed else 'FAIL'}")
    print(f"overall: {'pass' if report.all_passed else 'FAIL'} "
          f"({config.precision.value})")
    return 0 if report.all_passed or args.fp16 else 1


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    handlers = {
        "evaluate": _command_evaluate,
        "render": _command_render,
        "experiments": _command_experiments,
        "validate": _command_validate,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
