"""Multi-scene hosting and render-request serving.

This package is the production-serving layer of the reproduction, built in
three tiers:

* :class:`~repro.serving.store.SceneStore` packs many Gaussian scenes into
  flattened arrays (O(1) zero-copy scene views, amortized growth, one
  ``.npz`` archive for the whole fleet of scenes);
* :class:`~repro.serving.service.RenderService` serves a stream of
  ``(scene_id, camera, backend)`` render requests against the store with
  same-scene batching and byte-budgeted LRU memoization of per-scene
  covariances and rendered frames;
* :class:`~repro.serving.sharded.ShardedRenderService` partitions the
  stream across N worker processes with scene affinity, merging per-shard
  results into a fleet-level report — frames stay bit-identical to the
  single-worker service.  A :class:`~repro.serving.placement.PlacementMap`
  replicates hot scenes across shards with load-aware routing, replicas
  rebalance live, and a :class:`~repro.serving.traffic.FailurePlan` (or
  ``fleet.kill_worker``) injects worker deaths whose in-flight requests
  are requeued to surviving replicas without losing a response;
* :class:`~repro.serving.gateway.RenderGateway` is the asyncio front end
  over either service: in-flight request coalescing, bounded admission
  queues with configurable overload policies (block / shed-oldest /
  reject), and priority lanes with deadline-aware dropping.

:mod:`repro.serving.traffic` generates the seeded request streams (uniform
/ zipf / hot-spot scene popularity) that drive benchmarks and the CLI, and
derives gateway lane assignments from the same popularity model
(:func:`~repro.serving.traffic.popularity_priority`).

:mod:`repro.serving.storage` supplies the *residency* tiers underneath the
store API: :class:`~repro.serving.storage.shared.SharedSceneStore` hosts
one catalog in named shared memory that every worker process maps
zero-copy, and :class:`~repro.serving.storage.paged.PagedSceneStore` pages
scenes lazily from chunked on-disk files under a byte-budgeted LRU.
:func:`~repro.serving.storage.host_store` re-hosts any store on a tier by
name (``"memory"`` / ``"shared"`` / ``"paged"``).

Typical usage::

    from repro.serving import (
        RenderService, SceneStore, ShardedRenderService, generate_requests,
    )

    store = SceneStore([scene_a, scene_b, scene_c])
    trace = generate_requests(store, 200, pattern="zipf", seed=7)

    report = RenderService(store).serve(trace)          # one worker
    with ShardedRenderService(store, num_workers=4) as fleet:
        fleet_report = fleet.serve(trace)               # four workers
"""

from repro.serving.cache import CacheStats, LRUByteCache
from repro.serving.gateway import (
    OVERLOAD_POLICIES,
    GatewayReport,
    GatewayResponse,
    RenderGateway,
)
from repro.serving.placement import (
    NoLiveOwnerError,
    PlacementEvent,
    PlacementMap,
)
from repro.serving.service import (
    RenderRequest,
    RenderResponse,
    RenderService,
    ServiceReport,
)
from repro.serving.sharded import (
    FleetReport,
    ShardReport,
    ShardedRenderService,
    merge_cache_stats,
)
from repro.serving.storage import (
    STORAGE_TIERS,
    PagedSceneStore,
    SharedSceneStore,
    StorageLease,
    host_store,
    write_paged,
)
from repro.serving.store import SceneStore
from repro.serving.traffic import (
    TRAFFIC_PATTERNS,
    FailurePlan,
    generate_requests,
    popularity_priority,
    scene_popularity,
    synthetic_request_trace,
)

__all__ = [
    "CacheStats",
    "FailurePlan",
    "FleetReport",
    "GatewayReport",
    "GatewayResponse",
    "LRUByteCache",
    "NoLiveOwnerError",
    "OVERLOAD_POLICIES",
    "PagedSceneStore",
    "PlacementEvent",
    "PlacementMap",
    "RenderGateway",
    "RenderRequest",
    "RenderResponse",
    "RenderService",
    "STORAGE_TIERS",
    "SceneStore",
    "ServiceReport",
    "ShardReport",
    "ShardedRenderService",
    "SharedSceneStore",
    "StorageLease",
    "TRAFFIC_PATTERNS",
    "generate_requests",
    "host_store",
    "merge_cache_stats",
    "popularity_priority",
    "scene_popularity",
    "synthetic_request_trace",
    "write_paged",
]
