"""Multi-scene hosting and render-request serving.

This package is the production-serving layer of the reproduction: a
:class:`~repro.serving.store.SceneStore` packs many Gaussian scenes into
flattened arrays (O(1) zero-copy scene views, amortized growth, one ``.npz``
archive for the whole fleet of scenes), and a
:class:`~repro.serving.service.RenderService` serves a stream of
``(scene_id, camera, backend)`` render requests against the store with
same-scene batching and byte-budgeted LRU memoization of per-scene
covariances and rendered frames.

Typical usage::

    from repro.serving import RenderService, SceneStore, synthetic_request_trace

    store = SceneStore([scene_a, scene_b, scene_c])
    service = RenderService(store)
    report = service.serve(synthetic_request_trace(store, 60))
    print(report.requests_per_second, report.mean_latency_s)
"""

from repro.serving.cache import CacheStats, LRUByteCache
from repro.serving.service import (
    RenderRequest,
    RenderResponse,
    RenderService,
    ServiceReport,
    synthetic_request_trace,
)
from repro.serving.store import SceneStore

__all__ = [
    "CacheStats",
    "LRUByteCache",
    "RenderRequest",
    "RenderResponse",
    "RenderService",
    "SceneStore",
    "ServiceReport",
    "synthetic_request_trace",
]
