"""Render-request serving layer over a :class:`~repro.serving.store.SceneStore`.

A :class:`RenderService` accepts a stream of ``(scene_id, camera, backend)``
requests against the scenes of a store and serves them faster than a naive
per-request :func:`repro.gaussians.pipeline.render` loop by exploiting the
structure of real traffic:

* **Same-scene batching** — requests for one scene are grouped into a single
  :func:`~repro.gaussians.pipeline.render_batch` call, so the scene-level
  (camera-independent) half of preprocessing is paid once per group.
* **Covariance memoization** — the world-space covariances of each scene are
  kept in a byte-budgeted LRU cache across calls, so even a lone request for
  a recently served scene skips the quaternion/covariance arithmetic.
* **Frame memoization** — heavy multi-user traffic concentrates on popular
  viewpoints; fully rendered frames are kept in a second byte-budgeted LRU
  cache keyed by (scene, camera, render settings) and repeated requests are
  answered without touching the pipeline at all.  The rasterization backends
  are bit-identical in FP64 (see PR 1's golden-equivalence suite), so a
  cached frame is *exactly* the image a fresh render would produce.

* **Budget-aware LOD** — served over a
  :class:`~repro.compression.store.CompressedSceneStore`, a ``lod_policy``
  picks a detail level per request (from the camera's screen-space scene
  footprint or an explicit Gaussian budget); cache keys carry the level,
  so levels never cross-contaminate and the lossless tier stays
  bit-identical to an uncompressed serve.

Every response records its latency (time from ``serve()`` accepting the
stream to the request's completion), and the report aggregates throughput
and cache statistics.

Usage::

    from repro.serving import RenderService, SceneStore, generate_requests

    store = SceneStore([scene_a, scene_b, scene_c])
    service = RenderService(store)
    report = service.serve(generate_requests(store, 60, pattern="zipf"))
    report.requests_per_second      # throughput of the whole stream
    report.latency_percentile(95)   # tail latency
    report.frame_cache.hit_rate     # memoization effectiveness

To scale beyond one process, :class:`~repro.serving.sharded.ShardedRenderService`
runs one ``RenderService`` per worker, sharded by scene.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Tuple

import numpy as np

from repro.gaussians.camera import Camera
from repro.gaussians.pipeline import RenderResult, render_batch
from repro.gaussians.rasterize import BACKENDS, DEFAULT_BACKEND
from repro.serving.cache import CacheStats, LRUByteCache
from repro.serving.store import SceneStore

#: Default byte budget of the per-scene covariance cache (a 100k-Gaussian
#: scene's (N, 3, 3) float64 covariances are ~7 MiB).
DEFAULT_COVARIANCE_CACHE_BYTES = 64 * 1024 * 1024

#: Default byte budget of the rendered-frame cache.
DEFAULT_FRAME_CACHE_BYTES = 256 * 1024 * 1024


@dataclass(frozen=True)
class RenderRequest:
    """One render request of the stream.

    Attributes
    ----------
    scene_id:
        Index (or name) of the scene in the service's store.
    camera:
        Viewpoint to render.
    backend:
        Optional Stage-3 backend override (``"scalar"``/``"vectorized"``);
        defaults to the service's backend.
    level:
        Optional explicit detail level (an explicit quality budget).  When
        ``None`` the service's LOD policy decides (full detail if there is
        no policy); an out-of-range explicit level is an error.
    """

    scene_id: object
    camera: Camera
    backend: Optional[str] = None
    level: Optional[int] = None


@dataclass
class RenderResponse:
    """Completed request: the frame plus serving metadata."""

    request: RenderRequest
    scene_index: int
    result: RenderResult
    from_cache: bool
    latency_s: float = 0.0
    frame_key: tuple = field(default=(), repr=False)
    level: int = 0

    @property
    def image(self) -> np.ndarray:
        """The rendered ``(H, W, 3)`` frame."""
        return self.result.image


class ResponseStreamStats:
    """Shared accounting over a served response stream.

    Mixed into :class:`ServiceReport` and the fleet-level
    :class:`~repro.serving.sharded.FleetReport`, both of which carry
    ``responses`` (in request order) and ``wall_seconds``, so the two
    reports can never diverge on what throughput or a percentile means.
    """

    responses: List[RenderResponse]
    wall_seconds: float

    @property
    def num_requests(self) -> int:
        """Requests served (responses are in request order)."""
        return len(self.responses)

    @property
    def num_cache_hits(self) -> int:
        """Requests answered from a frame cache."""
        return sum(1 for r in self.responses if r.from_cache)

    @property
    def num_rendered(self) -> int:
        """Requests that required a fresh render."""
        return self.num_requests - self.num_cache_hits

    @property
    def requests_by_level(self) -> dict:
        """Requests served per detail level (``{level: count}``).

        ``{0: num_requests}`` for a serve without LOD; multiple keys when a
        LOD policy (or explicit request levels) split the stream.
        """
        counts: dict = {}
        for response in self.responses:
            counts[response.level] = counts.get(response.level, 0) + 1
        return counts

    @property
    def requests_per_second(self) -> float:
        """Throughput over the whole serve call."""
        if self.wall_seconds <= 0:
            return float("inf")
        return self.num_requests / self.wall_seconds

    @property
    def mean_latency_s(self) -> float:
        """Mean request latency (queueing plus service time)."""
        if not self.responses:
            return 0.0
        return sum(r.latency_s for r in self.responses) / len(self.responses)

    @property
    def max_latency_s(self) -> float:
        """Worst request latency of the stream."""
        if not self.responses:
            return 0.0
        return max(r.latency_s for r in self.responses)

    def latency_percentile(self, percentile: float) -> float:
        """Latency percentile (e.g. ``95``) over all requests."""
        if not self.responses:
            return 0.0
        return float(
            np.percentile([r.latency_s for r in self.responses], percentile)
        )


@dataclass
class ServiceReport(ResponseStreamStats):
    """Aggregate outcome of serving one request stream."""

    responses: List[RenderResponse]
    wall_seconds: float
    num_batches: int
    covariance_cache: CacheStats
    frame_cache: CacheStats


def _result_nbytes(result: RenderResult) -> int:
    """Approximate retained bytes of a cached render result."""
    projected = result.projected
    arrays = (
        result.image, projected.means, projected.cov_inverses,
        projected.depths, projected.colors, projected.opacities,
        projected.radii,
    )
    total = sum(a.nbytes for a in arrays)
    # Tile lists hold int64 indices, one per sort key.
    total += 8 * result.binning.num_keys
    return total


class RenderService:
    """Serves render-request streams against a :class:`SceneStore`.

    Parameters
    ----------
    store:
        The scene store to serve from.
    backend:
        Default Stage-3 backend for requests that do not specify one.
    background, sh_degree, collect_stats:
        Render settings applied to every request (uniform settings are what
        make same-scene batching and frame memoization sound).
    covariance_cache_bytes:
        Byte budget of the per-scene covariance LRU cache, keyed by
        ``(scene, level)`` (``0`` disables it, ``None`` unbounded).
    frame_cache_bytes:
        Byte budget of the rendered-frame LRU cache (``0`` disables frame
        memoization, ``None`` unbounded).
    lod_policy:
        Optional budget-aware detail-level selection for requests that do
        not pin a level themselves: ``None``/``"full"`` always serves full
        detail, ``"footprint"`` picks the finest level justified by the
        camera's screen-space scene footprint, or pass any object with a
        ``select_level(store, scene_index, camera)`` method (see
        :mod:`repro.compression.lod`).  Levels beyond 0 require a store
        with LOD tiers (:class:`~repro.compression.store.CompressedSceneStore`).
    """

    def __init__(
        self,
        store: SceneStore,
        backend: Optional[str] = None,
        background=(0.0, 0.0, 0.0),
        sh_degree: Optional[int] = None,
        collect_stats: bool = True,
        covariance_cache_bytes: Optional[int] = DEFAULT_COVARIANCE_CACHE_BYTES,
        frame_cache_bytes: Optional[int] = DEFAULT_FRAME_CACHE_BYTES,
        lod_policy=None,
    ):
        if backend is not None and backend not in BACKENDS:
            raise ValueError(f"unknown backend {backend!r}; choose from {BACKENDS}")
        self.store = store
        self.backend = backend or DEFAULT_BACKEND
        self.background = tuple(float(v) for v in background)
        self.sh_degree = sh_degree
        self.collect_stats = collect_stats
        self.covariance_cache = LRUByteCache(covariance_cache_bytes)
        self.frame_cache = LRUByteCache(frame_cache_bytes)
        # Imported lazily so the serving layer has no hard dependency on
        # the compression package (which itself builds on serving.store).
        from repro.compression.lod import resolve_lod_policy

        self.lod_policy = resolve_lod_policy(lod_policy)

    # ------------------------------------------------------------------ #
    # Caching helpers
    # ------------------------------------------------------------------ #
    def scene_covariances(
        self, scene_index: int, level: int = 0, cloud=None
    ) -> Optional[np.ndarray]:
        """Covariances of one scene's detail level, memoized across calls.

        ``cloud`` lets a caller that already holds the decoded level (e.g.
        :meth:`serve`) avoid a second fetch: against a compressed store
        ``get_cloud`` is a full O(N) decode, not a zero-copy view, and on a
        cache hit no cloud is needed at all.
        """
        if self.store.level_sizes(scene_index)[level] == 0:
            return None
        covariances = self.covariance_cache.get((scene_index, level))
        if covariances is None:
            if cloud is None:
                cloud = self.store.get_cloud(scene_index, level)
            covariances = cloud.covariances()
            self.covariance_cache.put(
                (scene_index, level), covariances, covariances.nbytes
            )
        return covariances

    def _request_level(self, request: RenderRequest, scene_index: int) -> int:
        """Detail level a request is served at (explicit, policy, or 0)."""
        if request.level is not None:
            level = int(request.level)
            if not 0 <= level < self.store.num_levels(scene_index):
                raise ValueError(
                    f"request pins level {level} but scene {scene_index} "
                    f"has {self.store.num_levels(scene_index)} levels"
                )
            return level
        if self.lod_policy is None:
            return 0
        level = int(
            self.lod_policy.select_level(self.store, scene_index, request.camera)
        )
        return min(max(level, 0), self.store.num_levels(scene_index) - 1)

    def _frame_key(self, scene_index: int, level: int, camera: Camera) -> tuple:
        """Cache key identifying a rendered frame.

        The Stage-3 backend is deliberately *not* part of the key: the
        backends are bit-identical in FP64, so a frame rendered by either
        one answers requests for both.  The detail level *is* part of the
        key — frames of different levels are different images.
        """
        pose = np.ascontiguousarray(camera.world_to_camera)
        return (
            scene_index, level, camera.width, camera.height, camera.fx,
            camera.fy, camera.cx, camera.cy, camera.znear, camera.zfar,
            pose.tobytes(), self.sh_degree, self.background,
        )

    # ------------------------------------------------------------------ #
    # Serving
    # ------------------------------------------------------------------ #
    def serve(self, requests: Iterable[RenderRequest]) -> ServiceReport:
        """Serve a request stream and return the aggregate report.

        Requests are grouped by (scene, backend, detail level) so each
        group pays the scene-level preprocessing once; responses come back
        in request order, each bit-identical to a standalone
        :func:`repro.gaussians.pipeline.render` of its request at its level.
        """
        start = time.perf_counter()
        requests = list(requests)
        responses: List[Optional[RenderResponse]] = [None] * len(requests)

        # Group request indices by (scene, backend, level), preserving
        # first-seen group order so the stream is served roughly FIFO.
        groups: "OrderedDict[Tuple[int, str, int], List[int]]" = OrderedDict()
        for position, request in enumerate(requests):
            scene_index = self.store.resolve_index(request.scene_id)
            backend = request.backend or self.backend
            if backend not in BACKENDS:
                raise ValueError(
                    f"unknown backend {backend!r}; choose from {BACKENDS}"
                )
            level = self._request_level(request, scene_index)
            groups.setdefault((scene_index, backend, level), []).append(position)

        num_batches = 0
        for (scene_index, backend, level), members in groups.items():
            # Answer repeated viewpoints from the frame cache; collect the
            # distinct frames that actually need rendering.  Duplicates of a
            # frame already pending in this call are deduplicated without
            # consulting the LRU, so its hit/miss counters track only
            # cross-call reuse.
            pending: "OrderedDict[tuple, List[int]]" = OrderedDict()
            for position in members:
                request = requests[position]
                key = self._frame_key(scene_index, level, request.camera)
                if key in pending:
                    pending[key].append(position)
                    continue
                cached = self.frame_cache.get(key)
                if cached is not None:
                    responses[position] = RenderResponse(
                        request=request, scene_index=scene_index,
                        result=cached, from_cache=True, frame_key=key,
                        level=level,
                    )
                else:
                    pending[key] = [position]

            if pending:
                scene = self.store.get_scene(scene_index, level)
                cameras = [
                    requests[positions[0]].camera
                    for positions in pending.values()
                ]
                batch = render_batch(
                    scene,
                    cameras=cameras,
                    background=self.background,
                    sh_degree=self.sh_degree,
                    collect_stats=self.collect_stats,
                    backend=backend,
                    covariances=self.scene_covariances(
                        scene_index, level, cloud=scene.cloud
                    ),
                )
                num_batches += 1
                for (key, positions), result in zip(
                    pending.items(), batch.results
                ):
                    self.frame_cache.put(key, result, _result_nbytes(result))
                    for rank, position in enumerate(positions):
                        responses[position] = RenderResponse(
                            request=requests[position],
                            scene_index=scene_index,
                            result=result,
                            # The first request of a viewpoint triggered the
                            # render; later duplicates in the same group were
                            # answered by memoization.
                            from_cache=rank > 0,
                            frame_key=key,
                            level=level,
                        )

            group_done = time.perf_counter() - start
            for position in members:
                responses[position].latency_s = group_done

        wall_seconds = time.perf_counter() - start
        return ServiceReport(
            responses=[r for r in responses if r is not None],
            wall_seconds=wall_seconds,
            num_batches=num_batches,
            covariance_cache=self.covariance_cache.stats(),
            frame_cache=self.frame_cache.stats(),
        )

    def submit(self, request: RenderRequest) -> RenderResponse:
        """Serve a single request (sharing the service's caches)."""
        return self.serve([request]).responses[0]

    # ------------------------------------------------------------------ #
    # Live scene membership (replication / rebalancing)
    # ------------------------------------------------------------------ #
    def adopt_scene(self, source: SceneStore, index=0) -> int:
        """Adopt one scene of ``source`` into the served store; return its index.

        Tier-preserving (see :meth:`SceneStore.adopt_scene
        <repro.serving.store.SceneStore.adopt_scene>`): a compressed store
        carries the quantized payload verbatim, so a replica shard serves
        bit-identical frames to the scene's primary owner.  Adding never
        renumbers existing scenes, so both caches stay valid as-is.
        """
        return self.store.adopt_scene(source, index)

    def remove_scene(self, scene_id) -> int:
        """Remove a scene from the served store; return its old index.

        Removal compacts the store, renumbering every later scene, so both
        caches are re-keyed in lockstep: entries of the removed scene are
        dropped, entries of later scenes shift down with their new indices,
        and entries of earlier scenes are untouched.  Frame and covariance
        keys both lead with the scene index, which is what makes one shift
        rule sound for both caches.
        """
        index = self.store.resolve_index(scene_id)
        self.store.remove_scene(index)

        def shift(key: tuple):
            """Shift a scene-leading cache key across the removal."""
            scene = key[0]
            if scene == index:
                return None
            if scene > index:
                return (scene - 1,) + tuple(key[1:])
            return key

        self.covariance_cache.rekey(shift)
        self.frame_cache.rekey(shift)
        return index

    def cache_stats(self) -> Tuple[CacheStats, CacheStats]:
        """Current ``(covariance, frame)`` cache counters.

        The shared cache-introspection surface of the serving layer:
        :class:`~repro.serving.sharded.ShardedRenderService` exposes the
        same method with fleet-merged counters, so callers (e.g. the async
        gateway) need not care which tier they front.
        """
        return self.covariance_cache.stats(), self.frame_cache.stats()

    def reset_caches(self) -> None:
        """Drop both caches (fresh budgets, zeroed counters).

        Lets benchmarks measure cold-trace behaviour from a warm service,
        and gives deployments a knob to release memory between tenants.
        """
        self.covariance_cache = LRUByteCache(self.covariance_cache.max_bytes)
        self.frame_cache = LRUByteCache(self.frame_cache.max_bytes)
