"""Flattened multi-scene container with O(1) zero-copy scene views.

A :class:`SceneStore` packs any number of Gaussian clouds into *single*
contiguous NumPy arrays — one array per field (positions, scales, rotations,
opacities, SH coefficients) shared by every scene — plus per-scene
``start``/``length`` index arrays that carve the flat arrays into scenes.
Camera poses and intrinsics are flattened the same way.  The layout follows
the flattened-storage pattern of pyiron's ``StructureContainer``: growing the
store reallocates capacity geometrically, so adding N scenes costs amortized
O(total Gaussians), and reading a scene back is a constant-time slice that
*shares memory* with the store (no copies).

The store also owns the ``.npz`` persistence format (version 2), which
supersedes the one-scene archives of :mod:`repro.gaussians.io`;
``save_scene``/``load_scene`` remain as thin single-scene wrappers.

Spherical-harmonics coefficient counts may differ between scenes (1, 4, 9 or
16 per Gaussian).  The shared SH array is as wide as the widest scene stored
so far and zero-padded for narrower scenes; the per-scene coefficient count
is recorded so that views slice back to exactly the original shape.

Usage::

    from repro.serving import SceneStore

    store = SceneStore([bicycle_scene, garden_scene])
    store.add_scene(kitchen_scene)

    view = store.get_scene("garden")      # O(1) zero-copy view
    store.save("fleet.npz")               # one archive, all scenes
    store = SceneStore.load("fleet.npz")
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, Iterator, List, Optional, Union

import numpy as np

from repro.gaussians.camera import Camera
from repro.gaussians.gaussian import GaussianCloud
from repro.gaussians.scene import GaussianScene

#: Format identifier of multi-scene store archives.
STORE_FORMAT_VERSION = 2

#: Per-camera intrinsics packed into one row of the flat camera array:
#: ``width, height, fx, fy, cx, cy, znear, zfar``.
CAMERA_FIELDS = 8


def _grown(array: np.ndarray, rows: int) -> np.ndarray:
    """Return ``array`` with its first dimension enlarged to ``rows``."""
    grown = np.zeros((rows,) + array.shape[1:], dtype=array.dtype)
    grown[: len(array)] = array
    return grown


def bounding_sphere(positions: np.ndarray):
    """Bounding sphere ``(center, radius)`` of ``(N, 3)`` points.

    The single definition shared by every store tier — footprint-driven
    LOD policies compare against it, so plain and compressed stores must
    agree.  An empty point set reports a zero-radius sphere at the origin.
    """
    if len(positions) == 0:
        return np.zeros(3), 0.0
    center = positions.mean(axis=0)
    radius = float(np.sqrt(((positions - center) ** 2).sum(axis=1).max()))
    return center, radius


class SceneStore:
    """Many Gaussian scenes in flattened arrays with amortized growth.

    Usage::

        store = SceneStore()
        bicycle_id = store.add_scene(bicycle_scene)
        store.add_scene(garden_scene)

        view = store.get_scene(bicycle_id)   # O(1), shares memory
        store.save("scenes.npz")
        reloaded = SceneStore.load("scenes.npz")

    ``get_scene`` returns :class:`~repro.gaussians.scene.GaussianScene`
    objects whose cloud arrays are *views* into the store; treat them as
    read-only.  Like any array-backed container with geometric growth, a
    later ``add_scene`` may reallocate the flat buffers, at which point
    previously handed-out views keep the (still correct) old buffer but no
    longer share memory with the store — re-fetch views after adding scenes
    if store identity matters.
    """

    def __init__(
        self,
        scenes: Optional[Iterable[GaussianScene]] = None,
        gaussian_capacity: int = 0,
        scene_capacity: int = 0,
        camera_capacity: int = 0,
    ):
        self._num_scenes = 0
        self._num_gaussians = 0
        self._num_cameras = 0
        self._sh_width = 1

        gaussian_capacity = max(int(gaussian_capacity), 1)
        scene_capacity = max(int(scene_capacity), 1)
        camera_capacity = max(int(camera_capacity), 1)

        # Per-Gaussian flat arrays (first dimension: total Gaussians).
        self._positions = np.zeros((gaussian_capacity, 3))
        self._scales = np.zeros((gaussian_capacity, 3))
        self._rotations = np.zeros((gaussian_capacity, 4))
        self._opacities = np.zeros(gaussian_capacity)
        self._sh = np.zeros((gaussian_capacity, self._sh_width, 3))

        # Per-scene index arrays (first dimension: scenes).
        self._start = np.zeros(scene_capacity, dtype=np.int64)
        self._length = np.zeros(scene_capacity, dtype=np.int64)
        self._sh_k = np.zeros(scene_capacity, dtype=np.int64)
        self._cam_start = np.zeros(scene_capacity, dtype=np.int64)
        self._cam_length = np.zeros(scene_capacity, dtype=np.int64)
        self._names: List[str] = []
        self._descriptors: List[Optional[str]] = []

        # Per-camera flat arrays (first dimension: total cameras).
        self._poses = np.zeros((camera_capacity, 4, 4))
        self._intrinsics = np.zeros((camera_capacity, CAMERA_FIELDS))

        if scenes is not None:
            self.extend(scenes)

    # ------------------------------------------------------------------ #
    # Size and introspection
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return self._num_scenes

    def __iter__(self) -> Iterator[GaussianScene]:
        for index in range(self._num_scenes):
            yield self.get_scene(index)

    @property
    def num_gaussians(self) -> int:
        """Total Gaussians across all stored scenes."""
        return self._num_gaussians

    @property
    def num_cameras(self) -> int:
        """Total cameras across all stored scenes."""
        return self._num_cameras

    @property
    def names(self) -> List[str]:
        """Names of the stored scenes, in insertion order."""
        return list(self._names)

    @property
    def nbytes(self) -> int:
        """Bytes of payload currently used (excluding spare capacity).

        SH bytes are charged at each scene's own coefficient count, not the
        padded store-wide width, so this equals the sum of
        :meth:`scene_nbytes` plus the per-scene index slots.
        """
        n, c, s = self._num_gaussians, self._num_cameras, self._num_scenes
        sh_values = 3 * int(np.dot(self._length[:s], self._sh_k[:s]))
        per_gaussian = (3 + 3 + 4 + 1) * 8
        per_camera = (16 + CAMERA_FIELDS) * 8
        per_scene = 5 * 8
        return n * per_gaussian + sh_values * 8 + c * per_camera + s * per_scene

    @property
    def capacity_bytes(self) -> int:
        """Bytes currently allocated, including spare capacity."""
        arrays = (
            self._positions, self._scales, self._rotations, self._opacities,
            self._sh, self._start, self._length, self._sh_k, self._cam_start,
            self._cam_length, self._poses, self._intrinsics,
        )
        return sum(a.nbytes for a in arrays)

    def scene_index(self, name: str) -> int:
        """Index of the first scene called ``name`` (KeyError if absent)."""
        try:
            return self._names.index(name)
        except ValueError:
            raise KeyError(f"no scene named {name!r} in the store") from None

    def resolve_index(self, index: Union[int, str]) -> int:
        """Normalise an index or name to a 0-based position in the store."""
        if isinstance(index, str):
            return self.scene_index(index)
        index = int(index)
        if index < 0:
            index += self._num_scenes
        if not 0 <= index < self._num_scenes:
            raise IndexError(
                f"scene index {index} out of range for {self._num_scenes} scenes"
            )
        return index

    # ------------------------------------------------------------------ #
    # Growth
    # ------------------------------------------------------------------ #
    def _require_gaussians(self, extra: int) -> None:
        needed = self._num_gaussians + extra
        if needed > len(self._positions):
            rows = max(needed, 2 * len(self._positions))
            self._positions = _grown(self._positions, rows)
            self._scales = _grown(self._scales, rows)
            self._rotations = _grown(self._rotations, rows)
            self._opacities = _grown(self._opacities, rows)
            self._sh = _grown(self._sh, rows)

    def _require_scenes(self, extra: int) -> None:
        needed = self._num_scenes + extra
        if needed > len(self._start):
            rows = max(needed, 2 * len(self._start))
            self._start = _grown(self._start, rows)
            self._length = _grown(self._length, rows)
            self._sh_k = _grown(self._sh_k, rows)
            self._cam_start = _grown(self._cam_start, rows)
            self._cam_length = _grown(self._cam_length, rows)

    def _require_cameras(self, extra: int) -> None:
        needed = self._num_cameras + extra
        if needed > len(self._poses):
            rows = max(needed, 2 * len(self._poses))
            self._poses = _grown(self._poses, rows)
            self._intrinsics = _grown(self._intrinsics, rows)

    def _require_sh_width(self, width: int) -> None:
        if width > self._sh_width:
            widened = np.zeros((len(self._sh), width, 3))
            widened[:, : self._sh_width, :] = self._sh
            self._sh = widened
            self._sh_width = width

    # ------------------------------------------------------------------ #
    # Writing
    # ------------------------------------------------------------------ #
    def add_scene(self, scene: GaussianScene) -> int:
        """Append a scene and return its index in the store."""
        cloud = scene.cloud
        n = len(cloud)
        k = cloud.sh_coeffs.shape[1]
        num_cams = len(scene.cameras)

        self._require_sh_width(k)
        self._require_gaussians(n)
        self._require_scenes(1)
        self._require_cameras(num_cams)

        start = self._num_gaussians
        self._positions[start : start + n] = cloud.positions
        self._scales[start : start + n] = cloud.scales
        self._rotations[start : start + n] = cloud.rotations
        self._opacities[start : start + n] = cloud.opacities
        self._sh[start : start + n, :k, :] = cloud.sh_coeffs
        self._sh[start : start + n, k:, :] = 0.0

        cam_start = self._num_cameras
        for offset, camera in enumerate(scene.cameras):
            self._poses[cam_start + offset] = camera.world_to_camera
            self._intrinsics[cam_start + offset] = (
                camera.width, camera.height, camera.fx, camera.fy,
                camera.cx, camera.cy, camera.znear, camera.zfar,
            )

        index = self._num_scenes
        self._start[index] = start
        self._length[index] = n
        self._sh_k[index] = k
        self._cam_start[index] = cam_start
        self._cam_length[index] = num_cams
        self._names.append(scene.name)
        self._descriptors.append(scene.descriptor_name)

        self._num_gaussians += n
        self._num_cameras += num_cams
        self._num_scenes += 1
        return index

    def extend(self, scenes: Iterable[GaussianScene]) -> List[int]:
        """Append several scenes; returns their indices."""
        return [self.add_scene(scene) for scene in scenes]

    def remove_scene(self, index: Union[int, str]) -> None:
        """Remove a scene, compacting the flat arrays in place.

        Every array row of later scenes shifts down to close the gap, so
        the store stays densely packed and a removed scene's slot can be
        reused by the next ``add_scene`` — this is what lets a compressed
        tier replace an original scene without leaking its storage.

        Compaction mutates the shared flat buffers, so **all previously
        handed-out views become invalid** (they may now show other scenes'
        data); re-fetch views after removing scenes.
        """
        index = self.resolve_index(index)
        start = int(self._start[index])
        length = int(self._length[index])
        cam_start = int(self._cam_start[index])
        cam_length = int(self._cam_length[index])
        n, c, s = self._num_gaussians, self._num_cameras, self._num_scenes

        for array in (
            self._positions, self._scales, self._rotations,
            self._opacities, self._sh,
        ):
            array[start : n - length] = array[start + length : n]
        for array in (self._poses, self._intrinsics):
            array[cam_start : c - cam_length] = array[cam_start + cam_length : c]

        self._start[index : s - 1] = self._start[index + 1 : s] - length
        self._length[index : s - 1] = self._length[index + 1 : s]
        self._sh_k[index : s - 1] = self._sh_k[index + 1 : s]
        self._cam_start[index : s - 1] = self._cam_start[index + 1 : s] - cam_length
        self._cam_length[index : s - 1] = self._cam_length[index + 1 : s]
        self._names.pop(index)
        self._descriptors.pop(index)

        self._num_gaussians -= length
        self._num_cameras -= cam_length
        self._num_scenes -= 1
        self._maybe_shrink()

    def _maybe_shrink(self) -> None:
        """Auto-compact once under a quarter of an allocated axis is used.

        The shrink twin of the geometric growth rule: invoked after every
        removal, it keeps ``capacity_bytes`` tracking ``nbytes`` under heavy
        removal while staying amortized O(1) (a store oscillating around a
        size never thrashes — shrink only fires at <= 1/4 occupancy and the
        next growth doubles from the exact size).
        """
        sparse_gaussians = (
            len(self._positions) > 1
            and 4 * self._num_gaussians <= len(self._positions)
        )
        sparse_cameras = (
            len(self._poses) > 1 and 4 * self._num_cameras <= len(self._poses)
        )
        sparse_scenes = (
            len(self._start) > 1 and 4 * self._num_scenes <= len(self._start)
        )
        if sparse_gaussians or sparse_cameras or sparse_scenes:
            self.compact()

    def compact(self) -> int:
        """Trim spare capacity so ``capacity_bytes`` tracks ``nbytes``.

        Reallocates every flat array to exactly the rows in use (and narrows
        the shared SH width to the widest stored scene); returns the bytes
        freed.  Runs automatically after removals once occupancy drops to a
        quarter (see :meth:`remove_scene`), and can be called explicitly
        after bulk removal.  Like growth reallocation, compaction leaves
        previously handed-out views on the old buffers — re-fetch views
        afterwards if store identity matters.
        """
        before = self.capacity_bytes
        n, s, c = self._num_gaussians, self._num_scenes, self._num_cameras
        width = 1
        if s:
            width = max(int(np.max(self._sh_k[:s])), 1)

        sh = np.zeros((max(n, 1), width, 3))
        sh[:n] = self._sh[:n, :width, :]
        self._sh = sh
        self._sh_width = width
        for attr, rows in (
            ("_positions", n), ("_scales", n), ("_rotations", n),
            ("_opacities", n),
            ("_start", s), ("_length", s), ("_sh_k", s),
            ("_cam_start", s), ("_cam_length", s),
            ("_poses", c), ("_intrinsics", c),
        ):
            array = getattr(self, attr)
            setattr(self, attr, np.array(array[: max(rows, 1)]))
        return before - self.capacity_bytes

    def build_substore(self, indices: Iterable[Union[int, str]]) -> "SceneStore":
        """Build a new store holding copies of the given scenes, in order.

        Used by the sharded serving layer to hand each worker exactly the
        scenes it owns; subclasses override it so a sub-store preserves the
        parent's storage tier (e.g. quantized payloads and LOD pyramids).
        """
        return SceneStore(self.get_scene(index) for index in indices)

    def adopt_scene(self, source: "SceneStore", index: Union[int, str] = 0) -> int:
        """Copy scene ``index`` of ``source`` into this store; return its index.

        The tier-preserving twin of :meth:`add_scene` for store-to-store
        transfer: a plain store copies the decoded scene, while tiers like
        :class:`~repro.compression.store.CompressedSceneStore` override it
        to carry the source's payload *verbatim* (never re-encoding a lossy
        codec).  This is what lets the sharded dispatcher ship a hot scene
        to a replica shard over a pipe — as a one-scene
        :meth:`build_substore` — with fleet frames staying bit-identical
        per detail level.
        """
        return self.add_scene(source.get_scene(index))

    # ------------------------------------------------------------------ #
    # Reading (zero-copy)
    # ------------------------------------------------------------------ #
    def _check_level(self, index: int, level: int) -> int:
        """Validate a detail level against :meth:`num_levels`."""
        level = int(level)
        if not 0 <= level < self.num_levels(index):
            raise IndexError(
                f"detail level {level} out of range for scene {index} "
                f"({self.num_levels(index)} levels)"
            )
        return level

    def num_levels(self, index: Union[int, str]) -> int:
        """Detail levels available for scene ``index``.

        A plain store holds only the full-detail representation, so this is
        always 1; :class:`~repro.compression.store.CompressedSceneStore`
        returns its LOD pyramid depth.
        """
        self.resolve_index(index)
        return 1

    def level_sizes(self, index: Union[int, str]) -> tuple:
        """Gaussian count of each detail level, finest first."""
        index = self.resolve_index(index)
        return (int(self._length[index]),)

    def scene_bounds(self, index: Union[int, str]):
        """Bounding sphere ``(center, radius)`` of a scene's Gaussian centres.

        Used by footprint-driven LOD policies; an empty scene reports a
        zero-radius sphere at the origin.
        """
        index = self.resolve_index(index)
        start = self._start[index]
        stop = start + self._length[index]
        return bounding_sphere(self._positions[start:stop])

    def get_cloud(self, index: Union[int, str], level: int = 0) -> GaussianCloud:
        """Cloud of scene ``index`` as views into the flat arrays (O(1)).

        Valid until the next growth reallocation (see the class docstring).
        ``level`` selects a detail level; a plain store only has level 0.
        """
        index = self.resolve_index(index)
        self._check_level(index, level)
        start = self._start[index]
        stop = start + self._length[index]
        k = self._sh_k[index]
        return GaussianCloud(
            positions=self._positions[start:stop],
            scales=self._scales[start:stop],
            rotations=self._rotations[start:stop],
            opacities=self._opacities[start:stop],
            sh_coeffs=self._sh[start:stop, :k, :],
        )

    def get_cameras(self, index: Union[int, str]) -> List[Camera]:
        """Cameras of scene ``index`` (poses are views into the store)."""
        index = self.resolve_index(index)
        start = self._cam_start[index]
        cameras = []
        for row in range(start, start + self._cam_length[index]):
            width, height, fx, fy, cx, cy, znear, zfar = self._intrinsics[row]
            cameras.append(
                Camera(
                    width=int(width), height=int(height), fx=fx, fy=fy,
                    cx=cx, cy=cy, world_to_camera=self._poses[row],
                    znear=znear, zfar=zfar,
                )
            )
        return cameras

    def get_scene(self, index: Union[int, str], level: int = 0) -> GaussianScene:
        """Scene ``index`` (or name) as a zero-copy view into the store.

        ``level`` selects a detail level; a plain store only has level 0.
        """
        resolved = self.resolve_index(index)
        return GaussianScene(
            cloud=self.get_cloud(resolved, level=level),
            cameras=self.get_cameras(resolved),
            name=self._names[resolved],
            descriptor_name=self._descriptors[resolved],
        )

    def scene_nbytes(self, index: Union[int, str]) -> int:
        """Payload bytes of one stored scene."""
        index = self.resolve_index(index)
        n = int(self._length[index])
        c = int(self._cam_length[index])
        per_gaussian = (3 + 3 + 4 + 1 + 3 * int(self._sh_k[index])) * 8
        return n * per_gaussian + c * (16 + CAMERA_FIELDS) * 8

    # ------------------------------------------------------------------ #
    # Persistence
    # ------------------------------------------------------------------ #
    def save(self, path: Union[str, Path]) -> Path:
        """Write the store to an ``.npz`` archive (format version 2)."""
        path = Path(path)
        if path.suffix != ".npz":
            path = path.with_suffix(".npz")
        s, n, c = self._num_scenes, self._num_gaussians, self._num_cameras
        metadata = {
            "format_version": STORE_FORMAT_VERSION,
            "names": self._names[:s],
            "descriptor_names": self._descriptors[:s],
        }
        np.savez_compressed(
            path,
            metadata=json.dumps(metadata),
            positions=self._positions[:n],
            scales=self._scales[:n],
            rotations=self._rotations[:n],
            opacities=self._opacities[:n],
            sh_coeffs=self._sh[:n],
            scene_start=self._start[:s],
            scene_length=self._length[:s],
            scene_sh_k=self._sh_k[:s],
            camera_start=self._cam_start[:s],
            camera_length=self._cam_length[:s],
            camera_poses=self._poses[:c],
            camera_intrinsics=self._intrinsics[:c],
        )
        return path

    @classmethod
    def load(cls, path: Union[str, Path]) -> "SceneStore":
        """Load a store written by :meth:`save`."""
        path = Path(path)
        if not path.exists():
            raise FileNotFoundError(f"scene store archive not found: {path}")
        with np.load(path, allow_pickle=False) as archive:
            metadata = json.loads(str(archive["metadata"]))
            return cls.from_archive(archive, metadata)

    @classmethod
    def from_archive(cls, archive, metadata: dict) -> "SceneStore":
        """Build a store from an already-open ``np.load`` archive.

        Lets callers that have to sniff the format version first (e.g.
        :func:`repro.gaussians.io.load_scene`) read the file once.
        """
        version = metadata.get("format_version")
        if version != STORE_FORMAT_VERSION:
            hint = ""
            if version == 3:
                hint = (
                    "; this is a compressed archive — use "
                    "repro.compression.CompressedSceneStore.load"
                )
            raise ValueError(
                f"unsupported scene store format version {version!r}{hint}"
            )
        store = cls.__new__(cls)
        store._positions = np.array(archive["positions"])
        store._scales = np.array(archive["scales"])
        store._rotations = np.array(archive["rotations"])
        store._opacities = np.array(archive["opacities"])
        store._sh = np.array(archive["sh_coeffs"])
        store._start = np.array(archive["scene_start"], dtype=np.int64)
        store._length = np.array(archive["scene_length"], dtype=np.int64)
        store._sh_k = np.array(archive["scene_sh_k"], dtype=np.int64)
        store._cam_start = np.array(archive["camera_start"], dtype=np.int64)
        store._cam_length = np.array(archive["camera_length"], dtype=np.int64)
        store._poses = np.array(archive["camera_poses"])
        store._intrinsics = np.array(archive["camera_intrinsics"])
        store._names = list(metadata["names"])
        store._descriptors = list(metadata["descriptor_names"])
        store._num_scenes = len(store._start)
        store._num_gaussians = len(store._positions)
        store._num_cameras = len(store._poses)
        store._sh_width = store._sh.shape[1] if store._sh.ndim == 3 else 1
        return store
