"""Asynchronous render gateway: coalescing, bounded queues, priority lanes.

The synchronous serving stack (:class:`~repro.serving.service.RenderService`
and the sharded fleet) is an *offline* loop: ``serve(requests)`` receives the
whole stream up front and replays it.  Real deployments are *online* — many
users submit concurrently, duplicate requests overlap in flight, and bursts
can outrun the renderer.  :class:`RenderGateway` is the asyncio front end
that models (and manages) exactly that, without touching the render path:

* **In-flight coalescing** — concurrent requests for the same
  ``(scene, camera, backend, level)`` attach to one *flight*: a single
  render (and a single frame-cache fill) answers all of them.  This is what
  the frame cache cannot do on its own: a cache entry only exists once the
  first render *completes*, while coalescing collapses duplicates that are
  simultaneously in flight.
* **Bounded admission with backpressure** — arrivals enter a bounded queue;
  when it is full the configured overload policy decides: ``"block"`` makes
  the submitter wait for space (classic backpressure), ``"shed-oldest"``
  drops the oldest queued request of the lowest-priority lane to admit the
  new one, ``"reject"`` refuses the new arrival outright.
* **Priority lanes with deadline-aware dropping** — each request rides a
  lane (0 = highest); the dispatcher always drains the highest-priority
  non-empty lane first, and a request that reaches the front of the queue
  past its deadline is dropped instead of rendered.
  :func:`repro.serving.traffic.popularity_priority` derives a lane
  assignment from the traffic model (hotspot scenes ride the high lane).

Every completed frame is **bit-identical** to the synchronous path: the
gateway only batches and deduplicates; rendering still happens through the
wrapped service, whose equivalence contracts hold transitively.

Usage::

    from repro.serving import RenderGateway, RenderService, generate_requests

    gateway = RenderGateway(RenderService(store), queue_depth=32,
                            overload_policy="shed-oldest")
    report = gateway.serve(generate_requests(store, 200, pattern="hotspot"))
    report.coalesce_rate              # fraction of requests that shared a flight
    report.num_shed                   # load-shedding visible, not silent
    report.queue_depth_percentile(95) # queueing behaviour under the burst
    report.latency_percentile(95)     # end-to-end tail latency

Async callers can drive the gateway directly::

    async with RenderGateway(service) as gateway:
        response = await gateway.submit(request, priority=0, deadline_s=0.5)
"""

from __future__ import annotations

import asyncio
import time
from collections import deque
from dataclasses import dataclass, field
from typing import (
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Union,
)

import numpy as np

from repro.gaussians.rasterize import BACKENDS
from repro.serving.cache import CacheStats
from repro.serving.service import RenderRequest, RenderResponse, RenderService
from repro.serving.sharded import ShardedRenderService

#: Admission-queue overload policies.
OVERLOAD_POLICIES = ("block", "shed-oldest", "reject")

#: Default bound of the admission queue (leaders only; coalesced duplicates
#: ride their flight and never occupy a slot).
DEFAULT_QUEUE_DEPTH = 64

#: Default number of queued requests drained into one ``service.serve`` call.
DEFAULT_MAX_BATCH = 16

#: Most recent queue-depth samples kept for the report's percentiles.
QUEUE_DEPTH_SAMPLE_WINDOW = 1 << 16

#: Lane index of the high-priority lane (lower = served first).
HIGH_PRIORITY = 0

#: Lane index of the default (normal) lane in a two-lane gateway.
NORMAL_PRIORITY = 1

#: Terminal statuses of a gateway request.
STATUS_OK = "ok"
STATUS_SHED = "shed"
STATUS_REJECTED = "rejected"
STATUS_EXPIRED = "expired"


@dataclass
class GatewayResponse:
    """Terminal outcome of one request submitted through the gateway.

    Attributes
    ----------
    request:
        The original :class:`~repro.serving.service.RenderRequest`.
    request_id:
        Monotonic submission index; ``serve`` reports responses sorted by
        it, so coalescing can never reorder a replayed stream.
    priority:
        Lane the request rode (0 = highest priority).
    status:
        ``"ok"`` (rendered or cache-answered), ``"shed"`` (dropped by the
        shed-oldest policy), ``"rejected"`` (refused at admission), or
        ``"expired"`` (reached the dispatcher past its deadline).
    response:
        The underlying :class:`~repro.serving.service.RenderResponse` for
        ``"ok"`` outcomes, ``None`` for dropped requests.
    latency_s:
        End-to-end seconds from submission to the terminal outcome
        (queueing + coalescing wait + render).
    coalesced:
        ``True`` when this request attached to another request's in-flight
        render instead of enqueueing its own.
    """

    # The request and the full render result are excluded from the repr:
    # they embed whole frames, and an accidental repr of a response list
    # (debugger, log line, asyncio's own task repr) would otherwise spend
    # seconds pretty-printing arrays.
    request: RenderRequest = field(repr=False)
    request_id: int = 0
    priority: int = 0
    status: str = STATUS_OK
    response: Optional[RenderResponse] = field(default=None, repr=False)
    latency_s: float = 0.0
    coalesced: bool = False

    @property
    def ok(self) -> bool:
        """Whether the request completed with a frame."""
        return self.status == STATUS_OK

    @property
    def image(self) -> np.ndarray:
        """The rendered frame (completed requests only)."""
        return self.response.image

    @property
    def result(self):
        """The underlying render result (completed requests only)."""
        return self.response.result

    @property
    def frame_key(self) -> tuple:
        """Frame-cache key of the served frame (completed requests only)."""
        return self.response.frame_key

    @property
    def level(self) -> int:
        """Detail level the request was served at (completed requests only)."""
        return self.response.level

    @property
    def from_cache(self) -> bool:
        """Whether the flight was answered by the service's frame cache."""
        return self.response is not None and self.response.from_cache


@dataclass
class GatewayReport:
    """Aggregate outcome of serving one request stream through the gateway.

    ``responses`` hold *every* submitted request in ``request_id`` order —
    completed and dropped alike — so the drop counters below reconcile
    exactly with the request stream by construction:
    ``num_completed + num_shed + num_rejected + num_expired ==
    num_requests``.

    Attributes
    ----------
    responses:
        One :class:`GatewayResponse` per submitted request, in request order.
    wall_seconds:
        Wall time of the whole serve call.
    num_batches:
        ``service.serve`` calls the dispatcher issued.
    queue_depth_samples:
        Admission-queue depth observed at each enqueue (see
        :meth:`queue_depth_percentile`).
    queue_depth, overload_policy:
        The gateway configuration the stream was served under.
    covariance_cache, frame_cache:
        Cache counters of the wrapped service after the serve.
    """

    responses: List[GatewayResponse]
    wall_seconds: float
    num_batches: int
    queue_depth_samples: List[int]
    queue_depth: int
    overload_policy: str
    covariance_cache: CacheStats
    frame_cache: CacheStats

    # ------------------------------------------------------------------ #
    # Stream accounting
    # ------------------------------------------------------------------ #
    @property
    def num_requests(self) -> int:
        """Requests submitted (completed plus dropped)."""
        return len(self.responses)

    @property
    def num_completed(self) -> int:
        """Requests that received a frame."""
        return sum(1 for r in self.responses if r.ok)

    @property
    def num_coalesced(self) -> int:
        """Requests that shared another request's in-flight render."""
        return sum(1 for r in self.responses if r.coalesced)

    @property
    def num_shed(self) -> int:
        """Requests dropped by the shed-oldest overload policy."""
        return sum(1 for r in self.responses if r.status == STATUS_SHED)

    @property
    def num_rejected(self) -> int:
        """Requests refused at admission by the reject overload policy."""
        return sum(1 for r in self.responses if r.status == STATUS_REJECTED)

    @property
    def num_expired(self) -> int:
        """Requests dropped at dispatch because their deadline had passed."""
        return sum(1 for r in self.responses if r.status == STATUS_EXPIRED)

    @property
    def num_dropped(self) -> int:
        """Requests that did not receive a frame (shed + rejected + expired)."""
        return self.num_shed + self.num_rejected + self.num_expired

    @property
    def num_cache_hits(self) -> int:
        """Completed requests whose flight was answered by the frame cache."""
        return sum(1 for r in self.responses if r.ok and r.from_cache)

    @property
    def coalesce_rate(self) -> float:
        """Fraction of submitted requests that coalesced onto a flight."""
        if not self.responses:
            return 0.0
        return self.num_coalesced / len(self.responses)

    @property
    def requests_by_level(self) -> Dict[int, int]:
        """Completed requests per detail level (``{level: count}``)."""
        counts: Dict[int, int] = {}
        for response in self.responses:
            if response.ok:
                counts[response.level] = counts.get(response.level, 0) + 1
        return counts

    # ------------------------------------------------------------------ #
    # Throughput and latency
    # ------------------------------------------------------------------ #
    @property
    def requests_per_second(self) -> float:
        """Completed-request throughput over the whole serve call."""
        if self.wall_seconds <= 0:
            return float("inf")
        return self.num_completed / self.wall_seconds

    def _completed_latencies(self) -> List[float]:
        """End-to-end latencies of the completed requests."""
        return [r.latency_s for r in self.responses if r.ok]

    @property
    def mean_latency_s(self) -> float:
        """Mean end-to-end latency of completed requests."""
        latencies = self._completed_latencies()
        if not latencies:
            return 0.0
        return sum(latencies) / len(latencies)

    @property
    def max_latency_s(self) -> float:
        """Worst end-to-end latency of completed requests."""
        latencies = self._completed_latencies()
        if not latencies:
            return 0.0
        return max(latencies)

    def latency_percentile(self, percentile: float) -> float:
        """End-to-end latency percentile over completed requests."""
        latencies = self._completed_latencies()
        if not latencies:
            return 0.0
        return float(np.percentile(latencies, percentile))

    def queue_depth_percentile(self, percentile: float) -> float:
        """Queue-depth percentile over the admission-time samples."""
        if not self.queue_depth_samples:
            return 0.0
        return float(np.percentile(self.queue_depth_samples, percentile))


class _QueueEntry:
    """One admitted flight leader waiting in a priority lane."""

    __slots__ = ("request", "key", "priority", "deadline", "future", "submitted")

    def __init__(self, request, key, priority, deadline, future, submitted):
        self.request = request
        self.key = key
        self.priority = priority
        self.deadline = deadline
        self.future = future
        self.submitted = submitted


class RenderGateway:
    """Asyncio front end over a render service: admission, coalescing, lanes.

    Parameters
    ----------
    service:
        The synchronous service the gateway fronts — a
        :class:`~repro.serving.service.RenderService` or a
        :class:`~repro.serving.sharded.ShardedRenderService`.  The gateway
        issues at most one ``service.serve`` call at a time, so the wrapped
        service needs no thread safety of its own.
    queue_depth:
        Bound of the admission queue (flight leaders only; coalesced
        duplicates never occupy a slot).
    overload_policy:
        What a full queue does to a new arrival: ``"block"`` (wait for
        space), ``"shed-oldest"`` (drop the oldest queued request of the
        lowest-priority occupied lane — unless everything queued outranks
        the arrival, in which case the arrival itself is shed rather than
        inverting the lanes), or ``"reject"`` (refuse the arrival).
    max_batch:
        Queued requests drained into a single ``service.serve`` call; the
        batch inherits all of the service's same-scene grouping and
        within-call frame deduplication.
    num_lanes:
        Number of priority lanes (lane 0 is drained first).
    priority_of:
        Optional default lane assignment, ``request -> lane``; see
        :func:`repro.serving.traffic.popularity_priority`.  Requests without
        an assignment ride the lowest-priority lane.
    """

    def __init__(
        self,
        service: Union[RenderService, ShardedRenderService],
        queue_depth: int = DEFAULT_QUEUE_DEPTH,
        overload_policy: str = "block",
        max_batch: int = DEFAULT_MAX_BATCH,
        num_lanes: int = 2,
        priority_of: Optional[Callable[[RenderRequest], int]] = None,
    ):
        if queue_depth < 1:
            raise ValueError("queue_depth must be at least 1")
        if overload_policy not in OVERLOAD_POLICIES:
            raise ValueError(
                f"unknown overload policy {overload_policy!r}; "
                f"choose from {OVERLOAD_POLICIES}"
            )
        if max_batch < 1:
            raise ValueError("max_batch must be at least 1")
        if num_lanes < 1:
            raise ValueError("num_lanes must be at least 1")
        self.service = service
        self.queue_depth = int(queue_depth)
        self.overload_policy = overload_policy
        self.max_batch = int(max_batch)
        self.num_lanes = int(num_lanes)
        self.priority_of = priority_of

        # Lifetime counters (per-serve reports snapshot deltas).
        self._num_batches = 0
        self._next_request_id = 0
        # Admission-time depth samples of the current serving session; a
        # bounded deque so a long-lived `async with` gateway cannot grow
        # without bound (the report keeps the most recent window).
        self._queue_depth_samples: "deque[int]" = deque(
            maxlen=QUEUE_DEPTH_SAMPLE_WINDOW
        )

        # Loop-bound state, created by _start() for each serving loop.
        self._lanes: List[deque] = []
        self._in_flight: Dict[tuple, asyncio.Future] = {}
        self._admission_waiters: "deque[asyncio.Future]" = deque()
        self._wakeup: Optional[asyncio.Event] = None
        self._dispatcher: Optional[asyncio.Task] = None
        self._closing = False

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    async def _start(self) -> None:
        """Bind queues to the running loop and spawn the dispatcher."""
        if self._dispatcher is not None:
            raise RuntimeError("the gateway is already serving")
        self._lanes = [deque() for _ in range(self.num_lanes)]
        self._in_flight = {}
        self._admission_waiters = deque()
        self._queue_depth_samples.clear()
        self._wakeup = asyncio.Event()
        self._closing = False
        self._dispatcher = asyncio.get_running_loop().create_task(
            self._dispatch_loop()
        )

    async def _stop(self) -> None:
        """Drain the queue, stop the dispatcher, unbind from the loop."""
        if self._dispatcher is None:
            return
        self._closing = True
        self._wakeup.set()
        try:
            await self._dispatcher
        finally:
            self._dispatcher = None
            self._wakeup = None

    async def __aenter__(self) -> "RenderGateway":
        await self._start()
        return self

    async def __aexit__(self, exc_type, exc_value, exc_traceback) -> None:
        await self._stop()

    def close(self) -> None:
        """Close the wrapped service (a sharded fleet's workers)."""
        close = getattr(self.service, "close", None)
        if close is not None:
            close()

    def __enter__(self) -> "RenderGateway":
        return self

    def __exit__(self, exc_type, exc_value, exc_traceback) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # Coalescing and admission
    # ------------------------------------------------------------------ #
    def _coalesce_key(self, request: RenderRequest) -> tuple:
        """Identity of a flight: ``(scene, camera, backend, level)``.

        Two requests with equal keys are the *same work*; the explicit
        ``request.level`` (``None`` when a LOD policy decides) is part of
        the key, and deterministic policies map equal (scene, camera) pairs
        to equal levels, so coalesced duplicates always share their
        leader's exact frame.
        """
        camera = request.camera
        backend = request.backend or self.service.backend
        if backend not in BACKENDS:
            raise ValueError(
                f"unknown backend {backend!r}; choose from {BACKENDS}"
            )
        pose = np.ascontiguousarray(camera.world_to_camera)
        return (
            self.service.store.resolve_index(request.scene_id),
            camera.width, camera.height, camera.fx, camera.fy,
            camera.cx, camera.cy, camera.znear, camera.zfar,
            pose.tobytes(), backend, request.level,
        )

    def _depth(self) -> int:
        """Current admission-queue depth across all lanes."""
        return sum(len(lane) for lane in self._lanes)

    def _lowest_priority_occupied_lane(self) -> int:
        """Index of the lowest-priority lane that has queued entries."""
        for lane_index in range(self.num_lanes - 1, -1, -1):
            if self._lanes[lane_index]:
                return lane_index
        raise RuntimeError("no lane is occupied")  # unreachable when full

    def _shed_one(self) -> None:
        """Drop the oldest queued entry of the lowest-priority lane."""
        victim = self._lanes[self._lowest_priority_occupied_lane()].popleft()
        del self._in_flight[victim.key]
        victim.future.set_result((STATUS_SHED, None))

    def _release_admission_slots(self) -> None:
        """Wake blocked submitters, one per free queue slot."""
        free = self.queue_depth - self._depth()
        while free > 0 and self._admission_waiters:
            waiter = self._admission_waiters.popleft()
            if not waiter.done():
                waiter.set_result(None)
                free -= 1

    async def _admit(self, entry: _QueueEntry) -> str:
        """Apply the overload policy; enqueue on success.

        Returns the admission outcome: :data:`STATUS_OK` (enqueued),
        :data:`STATUS_REJECTED` (refused by the reject policy) or
        :data:`STATUS_SHED` (the shed-oldest policy found only *higher*
        priority work queued — shedding that to admit a lower-priority
        arrival would invert the lanes, so the arrival itself is shed).
        """
        while self._depth() >= self.queue_depth:
            if self.overload_policy == "reject":
                return STATUS_REJECTED
            if self.overload_policy == "shed-oldest":
                if self._lowest_priority_occupied_lane() < entry.priority:
                    return STATUS_SHED
                self._shed_one()
                continue
            waiter = asyncio.get_running_loop().create_future()
            self._admission_waiters.append(waiter)
            await waiter
        self._lanes[entry.priority].append(entry)
        self._queue_depth_samples.append(self._depth())
        self._wakeup.set()
        return STATUS_OK

    def _resolve_priority(self, request: RenderRequest, priority) -> int:
        """Lane of a request: explicit, via ``priority_of``, or lowest."""
        if priority is None:
            if self.priority_of is not None:
                priority = self.priority_of(request)
            else:
                priority = self.num_lanes - 1
        return min(max(int(priority), 0), self.num_lanes - 1)

    async def submit(
        self,
        request: RenderRequest,
        priority: Optional[int] = None,
        deadline_s: Optional[float] = None,
    ) -> GatewayResponse:
        """Submit one request and await its terminal outcome.

        Requires a running gateway (``async with`` or via
        :meth:`serve_async`).  ``priority`` overrides the lane assignment
        for this request; ``deadline_s`` is a relative deadline — if the
        request is still queued when it comes up for dispatch after the
        deadline, it is dropped as ``"expired"``.  A request that coalesces
        onto an in-flight leader shares the leader's fate (including
        shedding and expiry); its own deadline is not separately enforced.
        """
        if self._dispatcher is None:
            raise RuntimeError(
                "the gateway is not running; use serve()/serve_async() "
                "or 'async with gateway:'"
            )
        submitted = time.perf_counter()
        request_id = self._next_request_id
        self._next_request_id += 1
        lane = self._resolve_priority(request, priority)
        key = self._coalesce_key(request)

        flight = self._in_flight.get(key)
        if flight is not None:
            status, response = await asyncio.shield(flight)
            return GatewayResponse(
                request=request, request_id=request_id, priority=lane,
                status=status, response=response,
                latency_s=time.perf_counter() - submitted, coalesced=True,
            )

        future = asyncio.get_running_loop().create_future()
        deadline = None if deadline_s is None else submitted + deadline_s
        entry = _QueueEntry(request, key, lane, deadline, future, submitted)
        # Register the flight before (possibly) blocking on admission, so
        # duplicates arriving meanwhile coalesce instead of double-rendering.
        self._in_flight[key] = future
        admission = await self._admit(entry)
        if admission != STATUS_OK:
            del self._in_flight[key]
            future.set_result((admission, None))
            status, response = future.result()
        else:
            status, response = await asyncio.shield(future)
        return GatewayResponse(
            request=request, request_id=request_id, priority=lane,
            status=status, response=response,
            latency_s=time.perf_counter() - submitted, coalesced=False,
        )

    # ------------------------------------------------------------------ #
    # Dispatch
    # ------------------------------------------------------------------ #
    def _pop_next(self) -> Optional[_QueueEntry]:
        """Next entry to dispatch: highest-priority non-empty lane, FIFO."""
        for lane in self._lanes:
            if lane:
                return lane.popleft()
        return None

    async def _dispatch_loop(self) -> None:
        """Drain lanes into batched ``service.serve`` calls until closed."""
        loop = asyncio.get_running_loop()
        while True:
            await self._wakeup.wait()
            self._wakeup.clear()
            while self._depth():
                batch: List[_QueueEntry] = []
                now = time.perf_counter()
                while self._depth() and len(batch) < self.max_batch:
                    entry = self._pop_next()
                    if entry.deadline is not None and now > entry.deadline:
                        del self._in_flight[entry.key]
                        entry.future.set_result((STATUS_EXPIRED, None))
                        continue
                    batch.append(entry)
                self._release_admission_slots()
                if not batch:
                    continue
                requests = [entry.request for entry in batch]
                try:
                    report = await loop.run_in_executor(
                        None, self.service.serve, requests
                    )
                except Exception as error:  # surface to every waiter
                    for entry in batch:
                        del self._in_flight[entry.key]
                        entry.future.set_exception(error)
                    continue
                self._num_batches += 1
                for entry, response in zip(batch, report.responses):
                    del self._in_flight[entry.key]
                    entry.future.set_result((STATUS_OK, response))
            if self._closing:
                return

    # ------------------------------------------------------------------ #
    # Stream serving
    # ------------------------------------------------------------------ #
    async def serve_async(
        self,
        requests: Iterable[RenderRequest],
        priorities: Union[None, Sequence[int], Callable] = None,
        deadlines: Union[None, float, Sequence[Optional[float]]] = None,
        arrival_interval_s: float = 0.0,
    ) -> GatewayReport:
        """Serve a request stream through the gateway (async flavour).

        See :meth:`serve` for the parameters and the report contract.
        """
        requests = list(requests)
        if callable(priorities):
            lane_of = [priorities(request) for request in requests]
        elif priorities is not None:
            lane_of = list(priorities)
            if len(lane_of) != len(requests):
                raise ValueError("priorities must align with requests")
        else:
            lane_of = [None] * len(requests)
        if deadlines is None or isinstance(deadlines, (int, float)):
            deadline_of: List[Optional[float]] = [deadlines] * len(requests)
        else:
            deadline_of = list(deadlines)
            if len(deadline_of) != len(requests):
                raise ValueError("deadlines must align with requests")

        batches_before = self._num_batches
        start = time.perf_counter()
        await self._start()
        try:

            async def submit_one(position: int) -> GatewayResponse:
                if arrival_interval_s > 0:
                    await asyncio.sleep(position * arrival_interval_s)
                return await self.submit(
                    requests[position],
                    priority=lane_of[position],
                    deadline_s=deadline_of[position],
                )

            responses = list(
                await asyncio.gather(
                    *(submit_one(position) for position in range(len(requests)))
                )
            )
        finally:
            await self._stop()
        responses.sort(key=lambda response: response.request_id)
        covariance_stats, frame_stats = self.service.cache_stats()
        return GatewayReport(
            responses=responses,
            wall_seconds=time.perf_counter() - start,
            num_batches=self._num_batches - batches_before,
            # _start() cleared the samples, so the whole (bounded) window
            # belongs to this serve call.
            queue_depth_samples=list(self._queue_depth_samples),
            queue_depth=self.queue_depth,
            overload_policy=self.overload_policy,
            covariance_cache=covariance_stats,
            frame_cache=frame_stats,
        )

    def serve(
        self,
        requests: Iterable[RenderRequest],
        priorities: Union[None, Sequence[int], Callable] = None,
        deadlines: Union[None, float, Sequence[Optional[float]]] = None,
        arrival_interval_s: float = 0.0,
    ) -> GatewayReport:
        """Serve a request stream through the async machinery (sync driver).

        All requests are submitted as concurrent tasks (a burst) unless
        ``arrival_interval_s`` spaces the arrivals out; ``priorities`` is an
        optional per-request lane assignment (sequence or callable) and
        ``deadlines`` an optional relative deadline (scalar applied to all,
        or a per-request sequence).  The report's ``responses`` are in
        request order regardless of how coalescing and priority lanes
        reordered the work, and every drop is accounted:
        ``num_completed + num_shed + num_rejected + num_expired ==
        num_requests``.
        """
        return asyncio.run(
            self.serve_async(
                requests,
                priorities=priorities,
                deadlines=deadlines,
                arrival_interval_s=arrival_interval_s,
            )
        )

