"""Byte-budgeted LRU cache used by the render-request serving layer.

The cache is deliberately tiny and dependency-free: an ordered dict of
``key -> (value, nbytes)`` with least-recently-used eviction once the byte
budget is exceeded.  :class:`~repro.serving.service.RenderService` keeps two
of these — one for per-scene world-space covariances, one for rendered
frames — so that a long request stream runs with bounded memory no matter
how many scenes or viewpoints it touches.

Usage::

    from repro.serving import LRUByteCache

    cache = LRUByteCache(max_bytes=1 << 20)
    cache.put("frame-0", image, image.nbytes)
    cache.get("frame-0")          # the image, now most recently used
    cache.stats().hit_rate        # activity counters for reports
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Hashable, Optional


@dataclass(frozen=True)
class CacheStats:
    """Snapshot of a cache's activity counters.

    ``rejections`` counts ``put`` calls whose value exceeded the whole byte
    budget and was therefore never stored (see :meth:`LRUByteCache.put`).
    """

    hits: int
    misses: int
    evictions: int
    entries: int
    current_bytes: int
    max_bytes: Optional[int]
    rejections: int = 0

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache."""
        total = self.hits + self.misses
        if total == 0:
            return 0.0
        return self.hits / total


class LRUByteCache:
    """LRU cache bounded by total payload bytes rather than entry count.

    ``max_bytes=None`` disables the bound; ``max_bytes=0`` disables caching
    entirely (every ``get`` misses, ``put`` is a no-op).
    """

    def __init__(self, max_bytes: Optional[int]):
        if max_bytes is not None and max_bytes < 0:
            raise ValueError("max_bytes must be non-negative (or None)")
        self.max_bytes = max_bytes
        self._entries: "OrderedDict[Hashable, tuple]" = OrderedDict()
        self.current_bytes = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.rejections = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries

    def get(self, key: Hashable) -> Optional[Any]:
        """Return the cached value (marking it most recently used) or None."""
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return entry[0]

    def put(self, key: Hashable, value: Any, nbytes: int) -> None:
        """Insert ``value`` under ``key``, evicting LRU entries if needed.

        A value larger than the whole budget is not stored at all — caching
        it would immediately evict everything else for a single entry that
        cannot even fit.  The rejection is counted, and any *stale* value
        already cached under the same key is evicted (leaving it would make
        later ``get`` calls return outdated data), with its bytes returned
        to the budget.  On an unbounded cache (``max_bytes=None``) nothing
        is ever oversized, but a put under an existing key still replaces
        the stale entry.  A disabled cache (``max_bytes=0``) stores
        nothing; its dropped puts are counted as rejections so the
        counters reveal that caching was requested but turned off, instead
        of showing a cache that was simply never written to.
        """
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        if self.max_bytes == 0:
            self.rejections += 1
            return
        if self.max_bytes is not None and nbytes > self.max_bytes:
            self.rejections += 1
            if key in self._entries:
                self.current_bytes -= self._entries.pop(key)[1]
                self.evictions += 1
            return
        if key in self._entries:
            self.current_bytes -= self._entries.pop(key)[1]
        self._entries[key] = (value, nbytes)
        self.current_bytes += nbytes
        if self.max_bytes is not None:
            while self.current_bytes > self.max_bytes:
                _, (_, evicted_bytes) = self._entries.popitem(last=False)
                self.current_bytes -= evicted_bytes
                self.evictions += 1

    def rekey(self, transform) -> None:
        """Rewrite every key through ``transform``, dropping ``None`` results.

        Used when the identity space of the keys shifts under the cache —
        e.g. a scene removed from a worker's store renumbers every later
        scene, so frame/covariance keys must shift with it (entries of the
        removed scene map to ``None`` and are dropped, counted as
        evictions).  LRU order, payload bytes and activity counters are
        preserved; ``transform`` must be injective over the surviving keys.
        """
        entries: "OrderedDict[Hashable, tuple]" = OrderedDict()
        for key, entry in self._entries.items():
            new_key = transform(key)
            if new_key is None:
                self.current_bytes -= entry[1]
                self.evictions += 1
                continue
            if new_key in entries:
                raise ValueError(
                    f"rekey transform collided on {new_key!r}"
                )
            entries[new_key] = entry
        self._entries = entries

    def stats(self) -> CacheStats:
        """Snapshot the activity counters."""
        return CacheStats(
            hits=self.hits,
            misses=self.misses,
            evictions=self.evictions,
            entries=len(self._entries),
            current_bytes=self.current_bytes,
            max_bytes=self.max_bytes,
            rejections=self.rejections,
        )
