"""Deterministic synthetic traffic generation for the serving layer.

Real multi-user render traffic is not uniform: a deployment hosting many
scenes sees a few *popular* scenes absorb most requests while the long tail
idles.  This module generates seeded request streams whose scene-popularity
skew is configurable, so benchmarks and capacity planning exercise realistic
load shapes instead of the uniform best case:

* ``"uniform"`` — every scene equally likely (the PR-2 behaviour, and what
  :func:`synthetic_request_trace` still produces for compatibility);
* ``"zipf"`` — scene ``r`` in a seeded popularity ranking receives traffic
  proportional to ``1 / (r + 1) ** zipf_exponent``, the classic web/CDN
  popularity law;
* ``"hotspot"`` — one seeded hot scene receives ``hotspot_fraction`` of all
  requests, the rest share the remainder uniformly (a viral-scene spike).

Streams are fully deterministic functions of ``(store contents, pattern,
seed)``: the same arguments always produce the same request list, which is
what makes traffic *replay* possible (``python -m repro serve --seed N``)
and keeps the sharded-vs-single-worker bit-identity checks meaningful.

Usage::

    from repro.serving import SceneStore, generate_requests

    store = SceneStore([scene_a, scene_b, scene_c])
    trace = generate_requests(store, 200, pattern="zipf", seed=7)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.serving.service import RenderRequest
from repro.serving.store import SceneStore

#: Known scene-popularity patterns.
TRAFFIC_PATTERNS = ("uniform", "zipf", "hotspot")

#: Default Zipf popularity exponent (web-style traffic is typically ~1).
DEFAULT_ZIPF_EXPONENT = 1.1

#: Default fraction of requests absorbed by the hot scene.
DEFAULT_HOTSPOT_FRACTION = 0.8


def scene_popularity(
    num_scenes: int,
    pattern: str = "uniform",
    seed: int = 0,
    zipf_exponent: float = DEFAULT_ZIPF_EXPONENT,
    hotspot_fraction: float = DEFAULT_HOTSPOT_FRACTION,
) -> np.ndarray:
    """Probability each of ``num_scenes`` scenes receives a given request.

    The popularity *ranking* (which scene is hottest) is a seeded random
    permutation, so different seeds shift load to different scenes while the
    distribution's shape stays fixed.  Returns a ``(num_scenes,)`` float
    array summing to 1.
    """
    if num_scenes <= 0:
        raise ValueError("num_scenes must be positive")
    if pattern not in TRAFFIC_PATTERNS:
        raise ValueError(
            f"unknown traffic pattern {pattern!r}; choose from {TRAFFIC_PATTERNS}"
        )
    if pattern == "uniform":
        return np.full(num_scenes, 1.0 / num_scenes)

    # Seeded ranking: rank[i] is the popularity rank of scene i (0 = hottest).
    # A dedicated RNG keeps the ranking independent of how many draws the
    # request loop makes.
    rank = np.random.default_rng(seed).permutation(num_scenes)
    if pattern == "zipf":
        if zipf_exponent <= 0:
            raise ValueError("zipf_exponent must be positive")
        weights = 1.0 / (rank + 1.0) ** zipf_exponent
        return weights / weights.sum()

    # pattern == "hotspot"
    if not 0.0 < hotspot_fraction <= 1.0:
        raise ValueError("hotspot_fraction must be in (0, 1]")
    if num_scenes == 1:
        return np.ones(1)
    cold = (1.0 - hotspot_fraction) / (num_scenes - 1)
    weights = np.full(num_scenes, cold)
    weights[rank == 0] = hotspot_fraction
    return weights / weights.sum()


def _eligible_scenes(store: SceneStore) -> List[int]:
    """Store indices of the scenes traffic can target (those with cameras).

    The single definition shared by :func:`generate_requests` and
    :func:`popularity_priority` — both index :func:`scene_popularity` by
    position in this list, which is what keeps the lane assignment
    consistent with the streams the generator draws.
    """
    eligible = [
        index for index in range(len(store)) if store.get_cameras(index)
    ]
    if not eligible:
        raise ValueError("no scene in the store has cameras")
    return eligible


def generate_requests(
    store: SceneStore,
    num_requests: int,
    pattern: str = "uniform",
    seed: int = 0,
    zipf_exponent: float = DEFAULT_ZIPF_EXPONENT,
    hotspot_fraction: float = DEFAULT_HOTSPOT_FRACTION,
    backends: Optional[Sequence[str]] = None,
) -> List[RenderRequest]:
    """Generate a seeded request stream with configurable popularity skew.

    Scenes are drawn from :func:`scene_popularity` over the store's scenes
    that have cameras; the viewpoint is drawn uniformly from the chosen
    scene's own cameras (popular *scenes*, not popular frames, are what
    shard affinity exploits — frame-level reuse still emerges once
    ``num_requests`` exceeds the distinct viewpoint count).  When
    ``backends`` is given, each request's Stage-3 backend override is drawn
    uniformly from it.

    The stream is a pure function of the arguments: replaying the same
    ``(pattern, seed)`` pair against the same store reproduces the exact
    request list.
    """
    if num_requests < 0:
        raise ValueError("num_requests must be non-negative")
    if len(store) == 0:
        raise ValueError("cannot build a trace against an empty store")
    eligible = _eligible_scenes(store)

    popularity = scene_popularity(
        len(eligible),
        pattern=pattern,
        seed=seed,
        zipf_exponent=zipf_exponent,
        hotspot_fraction=hotspot_fraction,
    )
    rng = np.random.default_rng(seed)
    requests = []
    for _ in range(num_requests):
        if pattern == "uniform":
            # Kept call-for-call identical to the PR-2 generator so uniform
            # traces (and everything pinned to them) are unchanged.
            scene_index = int(rng.choice(eligible))
        else:
            scene_index = int(rng.choice(eligible, p=popularity))
        cameras = store.get_cameras(scene_index)
        camera = cameras[int(rng.integers(len(cameras)))]
        backend = None
        if backends:
            backend = backends[int(rng.integers(len(backends)))]
        requests.append(
            RenderRequest(scene_id=scene_index, camera=camera, backend=backend)
        )
    return requests


def popularity_priority(
    store: SceneStore,
    pattern: str = "hotspot",
    seed: int = 0,
    zipf_exponent: float = DEFAULT_ZIPF_EXPONENT,
    hotspot_fraction: float = DEFAULT_HOTSPOT_FRACTION,
    hot_threshold: float = 2.0,
):
    """Gateway lane assignment derived from the traffic model.

    Builds a ``request -> lane`` callable for
    :class:`~repro.serving.gateway.RenderGateway`: requests for *hot*
    scenes — those whose :func:`scene_popularity` share exceeds
    ``hot_threshold`` times the uniform share — ride the high-priority
    lane 0, everything else rides lane 1.  Under ``"hotspot"`` traffic this
    maps the seeded hot scene (the bulk of the load, and the most
    coalescible work) to the high lane; under ``"uniform"`` no scene
    qualifies and every request rides the normal lane.

    The popularity ranking is the same seeded function the request
    generator uses, so the lane assignment is deterministic and consistent
    with the traffic :func:`generate_requests` produces for the same
    ``(pattern, seed)``.  The returned callable exposes the chosen scene
    indices as its ``hot_scenes`` attribute.
    """
    if hot_threshold <= 0:
        raise ValueError("hot_threshold must be positive")
    eligible = _eligible_scenes(store)
    popularity = scene_popularity(
        len(eligible),
        pattern=pattern,
        seed=seed,
        zipf_exponent=zipf_exponent,
        hotspot_fraction=hotspot_fraction,
    )
    uniform_share = 1.0 / len(eligible)
    hot_scenes = frozenset(
        eligible[rank]
        for rank in range(len(eligible))
        if popularity[rank] > hot_threshold * uniform_share
    )

    def priority_of(request: RenderRequest) -> int:
        """Lane of one request: 0 for hot scenes, 1 otherwise."""
        return 0 if store.resolve_index(request.scene_id) in hot_scenes else 1

    priority_of.hot_scenes = hot_scenes
    return priority_of


@dataclass(frozen=True)
class FailurePlan:
    """Deterministic kill schedule for chaos-testing a sharded fleet.

    A plan is a sorted tuple of ``(position, worker)`` pairs: once the
    dispatcher has dispatched at least ``position`` requests, ``worker`` is
    killed mid-stream (its in-flight requests are requeued to surviving
    replicas, or the shard is respawned — see
    :meth:`~repro.serving.sharded.ShardedRenderService.serve`).  Like the
    request streams of this module, a plan is a pure value: the same plan
    replayed against the same seeded trace produces the same kill points,
    requeue counts and placement history, which is what the golden-replay
    chaos tests pin.

    Usage::

        plan = FailurePlan.at((10, 1))               # kill worker 1 at 10
        plan = FailurePlan.seeded(num_workers=4, num_requests=80,
                                  num_kills=2, seed=7)
    """

    kills: Tuple[Tuple[int, int], ...]

    def __post_init__(self):
        """Validate that kill positions are sorted and workers distinct."""
        previous = -1
        seen = set()
        for position, worker in self.kills:
            if position < 0:
                raise ValueError("kill positions must be non-negative")
            if position < previous:
                raise ValueError("kills must be sorted by position")
            if worker < 0:
                raise ValueError("worker ids must be non-negative")
            if worker in seen:
                raise ValueError(
                    f"worker {worker} is killed twice; each worker can "
                    "die at most once per plan"
                )
            seen.add(worker)
            previous = position

    @classmethod
    def at(cls, *kills: Tuple[int, int]) -> "FailurePlan":
        """Build a plan from explicit ``(position, worker)`` pairs."""
        return cls(kills=tuple(sorted((int(p), int(w)) for p, w in kills)))

    @classmethod
    def seeded(
        cls,
        num_workers: int,
        num_requests: int,
        num_kills: int = 1,
        seed: int = 0,
    ) -> "FailurePlan":
        """A seeded schedule killing ``num_kills`` distinct workers mid-stream.

        Victims are a seeded sample of the fleet (at most ``num_workers - 1``
        so one worker always survives without needing a respawn), and kill
        positions are seeded draws from the interior of the stream — never
        position 0, so every run serves at least one request before the
        first failure.  A pure function of its arguments.
        """
        if num_workers < 2:
            raise ValueError("seeded plans need at least 2 workers")
        if num_requests < 2:
            raise ValueError("seeded plans need at least 2 requests")
        num_kills = int(num_kills)
        if not 1 <= num_kills <= num_workers - 1:
            raise ValueError(
                f"num_kills must be in [1, {num_workers - 1}] "
                f"for {num_workers} workers"
            )
        rng = np.random.default_rng(seed)
        workers = rng.permutation(num_workers)[:num_kills]
        positions = rng.integers(1, num_requests, size=num_kills)
        return cls.at(*zip(positions.tolist(), workers.tolist()))

    def __len__(self) -> int:
        return len(self.kills)

    def due(self, position: int, fired: int) -> Tuple[Tuple[int, int], ...]:
        """Kills triggered once ``position`` requests have been dispatched.

        ``fired`` is how many kills the caller has already executed; the
        returned pairs are the next ones whose position has been reached.
        """
        return tuple(
            kill for kill in self.kills[fired:] if kill[0] <= position
        )


def synthetic_request_trace(
    store: SceneStore,
    num_requests: int,
    seed: int = 0,
    backends: Optional[Sequence[str]] = None,
) -> List[RenderRequest]:
    """Uniform random request trace (PR-2 compatible).

    Thin wrapper over :func:`generate_requests` with ``pattern="uniform"``;
    kept so existing callers and pinned traces keep working.
    """
    return generate_requests(
        store, num_requests, pattern="uniform", seed=seed, backends=backends
    )
