"""Shared-memory SceneStore tier: one hosted catalog, many zero-copy readers.

A :class:`SharedSceneStore` keeps the flattened Gaussian/pose arrays of a
:class:`~repro.serving.store.SceneStore` inside a single named
``multiprocessing.shared_memory`` segment instead of private process heap.
The dispatcher process *owns* the segment; every worker process attaches
read-only **by name** and maps the same physical pages, so an N-worker
fleet holds one copy of the catalog no matter how scenes are placed or
replicated — placement and replication control *routing and caches*, not
residency.  This is the DAQ-style buffer-pool shape: a fixed shared pool,
many reader processes, explicit ownership.

Three cooperating pieces:

* :class:`SharedSceneStore` — the catalog itself.  Owners construct it
  like a plain store; readers call :meth:`SharedSceneStore.attach` with a
  :class:`SharedStoreHandle` (or just unpickle the store, which reduces to
  an attach).
* :class:`SharedStoreHandle` — a tiny picklable pointer (segment name,
  epoch layout, counts, scene names) that crosses pipes instead of array
  payload.
* :class:`SharedStoreView` — what :meth:`SharedSceneStore.build_substore`
  returns: an ordered list of ``(catalog, global index)`` references
  implementing the ``SceneStore`` API.  Pickling a view ships handles and
  indices only; unpickling re-attaches.  Replicating a scene onto another
  view appends a reference, never a copy.

**Epoch scheme (copy-on-grow).**  The flat arrays of one epoch are never
reallocated in place.  ``add_scene`` within capacity appends past every
reader's snapshot counts, which tears nothing; growth, removal and
:meth:`SharedSceneStore.compact` allocate a *new* segment (epoch ``e+1``),
copy the payload across, and retire the old segment.  Retiring unlinks the
old name immediately — attached readers keep their (consistent, snapshot)
mapping alive until they drop it, while new attaches need a fresh handle.
See the "memory residency contract" in ``docs/ARCHITECTURE.md``.

**Lifecycle.**  ``close()`` (or the context manager, or garbage collection
via ``weakref.finalize``) detaches the mapping; the owner additionally
unlinks the segment.  Unlinking is guarded by the creating PID so a forked
child that inherited the owner object can never delete segments its parent
still serves.  Readers attach *untracked* — on Python < 3.13 the
``resource_tracker`` would otherwise unlink a live segment when any
attached process exits (CPython issue 82300, hit constantly under the
kill/respawn chaos of the sharded fleet).

Usage::

    from repro.serving.storage import SharedSceneStore

    with SharedSceneStore(scenes) as catalog:
        view = catalog.build_substore([0, 2])      # zero-copy routing view
        handle = catalog.handle()                  # picklable pointer
        reader = SharedSceneStore.attach(handle)   # other process: zero-copy
    # segment unlinked on exit; readers keep their mapping until they close
"""

from __future__ import annotations

import itertools
import os
import threading
import weakref
from dataclasses import dataclass
from multiprocessing import resource_tracker
from multiprocessing.shared_memory import SharedMemory
from typing import Iterable, List, Optional, Tuple, Union

import numpy as np

from repro.gaussians.camera import Camera
from repro.gaussians.gaussian import GaussianCloud
from repro.gaussians.scene import GaussianScene
from repro.serving.store import CAMERA_FIELDS, SceneStore

#: Byte alignment of every flat array inside a segment (cache-line sized,
#: and a multiple of every element size used, so dtype views are valid).
SEGMENT_ALIGNMENT = 64

#: Flat arrays hosted in a segment, with the capacity axis each one grows
#: along.  Order is the layout order inside the segment.
_FIELD_AXES = (
    ("_positions", "gaussians"),
    ("_scales", "gaussians"),
    ("_rotations", "gaussians"),
    ("_opacities", "gaussians"),
    ("_sh", "gaussians"),
    ("_start", "scenes"),
    ("_length", "scenes"),
    ("_sh_k", "scenes"),
    ("_cam_start", "scenes"),
    ("_cam_length", "scenes"),
    ("_poses", "cameras"),
    ("_intrinsics", "cameras"),
)

#: The int64 per-scene index arrays; everything else is float64.
_INT_FIELDS = frozenset({"_start", "_length", "_sh_k", "_cam_start", "_cam_length"})

#: Distinguishes segments of distinct stores created by one process.
_STORE_IDS = itertools.count()


def _segment_layout(gaussian_rows: int, scene_rows: int, camera_rows: int,
                    sh_width: int) -> Tuple[list, int]:
    """Aligned ``(name, offset, shape, dtype)`` layout of one epoch segment.

    Purely a function of the four capacity parameters, so owner and readers
    derive identical views from the numbers carried by a
    :class:`SharedStoreHandle` — no layout table is stored in the segment.
    """
    trailing = {
        "_positions": (3,), "_scales": (3,), "_rotations": (4,),
        "_opacities": (), "_sh": (sh_width, 3),
        "_start": (), "_length": (), "_sh_k": (),
        "_cam_start": (), "_cam_length": (),
        "_poses": (4, 4), "_intrinsics": (CAMERA_FIELDS,),
    }
    rows = {
        "gaussians": gaussian_rows, "scenes": scene_rows, "cameras": camera_rows,
    }
    layout = []
    offset = 0
    for name, axis in _FIELD_AXES:
        dtype = np.dtype(np.int64 if name in _INT_FIELDS else np.float64)
        shape = (rows[axis],) + trailing[name]
        layout.append((name, offset, shape, dtype))
        nbytes = int(np.prod(shape, dtype=np.int64)) * dtype.itemsize
        padded = -(-nbytes // SEGMENT_ALIGNMENT) * SEGMENT_ALIGNMENT
        offset += padded
    return layout, max(offset, SEGMENT_ALIGNMENT)


def _map_views(segment: SharedMemory, layout: list, writeable: bool) -> dict:
    """NumPy views over one segment, per the layout; read-only for readers."""
    views = {}
    for name, offset, shape, dtype in layout:
        count = int(np.prod(shape, dtype=np.int64))
        array = np.frombuffer(
            segment.buf, dtype=dtype, count=count, offset=offset
        ).reshape(shape)
        if not writeable:
            array.flags.writeable = False
        views[name] = array
    return views


#: Serializes the registration-suppressing attach below (module-global so
#: every attacher in the process shares one critical section).
_ATTACH_LOCK = threading.Lock()


def _attach_segment(name: str) -> SharedMemory:
    """Attach an existing segment by name, without tracker registration.

    Attaching normally registers the segment with the per-process resource
    tracker, which unlinks "leaked" segments when its process exits —
    correct for owners, catastrophic for readers (a worker exiting, or
    being killed and respawned by the chaos schedules, would delete the
    live catalog under the whole fleet; CPython issue 82300).  Python 3.13
    grows ``track=False``; on the interpreters CI runs we suppress the
    ``register`` call during attach instead, which also keeps the owner's
    own registration balanced when owner and reader share a process.
    """
    with _ATTACH_LOCK:
        original = resource_tracker.register
        resource_tracker.register = lambda *args, **kwargs: None
        try:
            # Lifecycle owned by the caller, which registers a finalizer;
            # the may-leak engine reads the return as ownership transfer.
            return SharedMemory(name=name)
        finally:
            resource_tracker.register = original


def _release_segment(segment: Optional[SharedMemory], unlink: bool,
                     owner_pid: Optional[int] = None) -> None:
    """Detach (and, for the owning process, delete) one segment.

    Tolerates live array exports — ``close()`` raising ``BufferError``
    while handed-out views are still alive just postpones the unmap to
    their garbage collection; the *unlink* (which is what keeps
    ``/dev/shm`` clean) succeeds regardless.  ``owner_pid`` guards unlink
    against forked children that inherited an owner object.
    """
    if segment is None:
        return
    try:
        segment.close()
    except (BufferError, ValueError):
        # Live exports pin the mapping; hand it to them (it unmaps when
        # the last view dies) and disarm close() retries at GC time.
        segment._mmap = None
        descriptor = getattr(segment, "_fd", -1)
        if descriptor >= 0:
            try:
                os.close(descriptor)
            except OSError:  # pragma: no cover - already closed
                pass
            segment._fd = -1
    if unlink and (owner_pid is None or owner_pid == os.getpid()):
        try:
            segment.unlink()
        except FileNotFoundError:
            pass


def _attach_store(handle: "SharedStoreHandle") -> "SharedSceneStore":
    """Module-level attach hook (pickle targets resolve by qualified name)."""
    return SharedSceneStore.attach(handle)


@dataclass(frozen=True)
class SharedStoreHandle:
    """Picklable pointer to one epoch of a hosted shared catalog.

    Carries everything a reader needs to map the segment and interpret it
    (name, capacity layout, used counts, scene names) and none of the
    payload.  A handle is a *snapshot*: it stays valid for attaching while
    its epoch is the catalog's current one — growth or removal on the
    owner retires the epoch, after which attaching raises
    ``FileNotFoundError`` and a fresh handle must be taken.
    """

    segment: str
    num_gaussians: int
    num_scenes: int
    num_cameras: int
    gaussian_rows: int
    scene_rows: int
    camera_rows: int
    sh_width: int
    names: Tuple[str, ...]
    descriptors: Tuple[Optional[str], ...]


class SharedSceneStore(SceneStore):
    """A :class:`~repro.serving.store.SceneStore` hosted in shared memory.

    Owners construct it exactly like a plain store; the flat arrays live in
    one named segment per *epoch* (see the module docstring for the
    copy-on-grow scheme).  Readers attach by name via :meth:`attach` — or
    simply by unpickling the store, which reduces to an attach — and see
    the identical arrays zero-copy, enforced read-only.

    Mutation (``add_scene``/``remove_scene``/``compact``) is owner-only;
    readers raise.  ``build_substore`` returns a :class:`SharedStoreView`
    (scene references, no payload) instead of a copying sub-store.
    """

    def __init__(
        self,
        scenes: Optional[Iterable[GaussianScene]] = None,
        gaussian_capacity: int = 0,
        scene_capacity: int = 0,
        camera_capacity: int = 0,
    ):
        self._num_scenes = 0
        self._num_gaussians = 0
        self._num_cameras = 0
        self._sh_width = 1
        self._names: List[str] = []
        self._descriptors: List[Optional[str]] = []

        self._owner = True
        self._pid = os.getpid()
        self._epoch = 0
        self._base_name = f"repro-shm-{os.getpid()}-{next(_STORE_IDS)}"
        self._segment: Optional[SharedMemory] = None
        self._finalizer = None
        self._allocate_epoch(
            max(int(gaussian_capacity), 1),
            max(int(scene_capacity), 1),
            max(int(camera_capacity), 1),
            1,
        )
        if scenes is not None:
            self.extend(scenes)

    # ------------------------------------------------------------------ #
    # Segment lifecycle
    # ------------------------------------------------------------------ #
    def _allocate_epoch(self, gaussian_rows: int, scene_rows: int,
                        camera_rows: int, sh_width: int) -> None:
        """Host the flat arrays in a fresh segment, copying the used payload.

        The copy-on-grow primitive behind growth, removal and compaction:
        the previous epoch's segment is retired (closed and unlinked) only
        *after* the new epoch is fully populated, and readers attached to
        it keep their consistent snapshot mapping until they detach.
        """
        old_segment = self._segment
        old_width = self._sh_width
        old_arrays = {name: getattr(self, name, None) for name, _ in _FIELD_AXES}

        layout, size = _segment_layout(
            gaussian_rows, scene_rows, camera_rows, sh_width
        )
        name = f"{self._base_name}-e{self._epoch}"
        segment = SharedMemory(name=name, create=True, size=size)
        try:
            views = _map_views(segment, layout, writeable=True)
            if old_segment is not None:
                used = {
                    "gaussians": self._num_gaussians,
                    "scenes": self._num_scenes,
                    "cameras": self._num_cameras,
                }
                copy_width = min(old_width, sh_width)
                for field_name, axis in _FIELD_AXES:
                    count = used[axis]
                    if field_name == "_sh":
                        views["_sh"][:count, :copy_width, :] = (
                            old_arrays["_sh"][:count, :copy_width, :]
                        )
                    else:
                        views[field_name][:count] = old_arrays[field_name][:count]
        except BaseException:
            segment.close()
            segment.unlink()
            raise

        for field_name, view in views.items():
            setattr(self, field_name, view)
        self._sh_width = sh_width
        self._segment = segment
        self._epoch += 1
        if self._finalizer is not None:
            self._finalizer.detach()
        self._finalizer = weakref.finalize(
            self, _release_segment, segment, True, self._pid
        )
        # Old arrays must drop their buffer exports before the old mapping
        # can actually unmap; the unlink below succeeds regardless.
        del old_arrays
        _release_segment(old_segment, unlink=True, owner_pid=self._pid)

    @property
    def segment_name(self) -> Optional[str]:
        """Name of the current epoch's segment (``None`` once closed)."""
        return self._segment.name if self._segment is not None else None

    @property
    def segment_bytes(self) -> int:
        """Allocated bytes of the current segment (0 once closed)."""
        return self._segment.size if self._segment is not None else 0

    @property
    def is_owner(self) -> bool:
        """Whether this process created (and may mutate/unlink) the catalog."""
        return self._owner

    def handle(self) -> SharedStoreHandle:
        """Picklable pointer to the current epoch (for readers to attach)."""
        if self._segment is None:
            raise RuntimeError("shared scene store is closed")
        return SharedStoreHandle(
            segment=self._segment.name,
            num_gaussians=self._num_gaussians,
            num_scenes=self._num_scenes,
            num_cameras=self._num_cameras,
            gaussian_rows=len(self._positions),
            scene_rows=len(self._start),
            camera_rows=len(self._poses),
            sh_width=self._sh_width,
            names=tuple(self._names),
            descriptors=tuple(self._descriptors),
        )

    @classmethod
    def attach(cls, handle: SharedStoreHandle) -> "SharedSceneStore":
        """Attach read-only to a hosted catalog by name (zero-copy).

        The reader maps the same physical pages as the owner; its arrays
        are marked non-writeable and every mutating method raises.  Close
        it (or let it be garbage collected) to drop the mapping; a reader
        never unlinks the segment.
        """
        segment = _attach_segment(handle.segment)
        try:
            layout, _ = _segment_layout(
                handle.gaussian_rows, handle.scene_rows,
                handle.camera_rows, handle.sh_width,
            )
            views = _map_views(segment, layout, writeable=False)
        except BaseException:
            segment.close()
            raise
        store = cls.__new__(cls)
        store._owner = False
        store._pid = os.getpid()
        store._epoch = 0
        store._base_name = handle.segment
        store._segment = segment
        store._num_scenes = handle.num_scenes
        store._num_gaussians = handle.num_gaussians
        store._num_cameras = handle.num_cameras
        store._sh_width = handle.sh_width
        store._names = list(handle.names)
        store._descriptors = list(handle.descriptors)
        for field_name, view in views.items():
            setattr(store, field_name, view)
        store._finalizer = weakref.finalize(
            store, _release_segment, segment, False
        )
        return store

    def close(self) -> None:
        """Detach the mapping; the owner also unlinks the segment.

        Idempotent.  Views already handed out keep the old pages alive
        until they are garbage collected, but the segment *name* is gone
        immediately (nothing is left under ``/dev/shm``), which is the
        cleanliness property the chaos tests assert.
        """
        if self._segment is None:
            return
        if self._finalizer is not None:
            self._finalizer.detach()
            self._finalizer = None
        for field_name, _ in _FIELD_AXES:
            setattr(self, field_name, None)
        _release_segment(self._segment, unlink=self._owner, owner_pid=self._pid)
        self._segment = None

    def __enter__(self) -> "SharedSceneStore":
        """Context-managed hosting: the segment is released on exit."""
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        """Release the segment (owners unlink it) on scope exit."""
        self.close()

    def __reduce__(self):
        """Pickle as an attach-by-name of the current epoch (no payload)."""
        return (_attach_store, (self.handle(),))

    # ------------------------------------------------------------------ #
    # Owner-only mutation (copy-on-grow overrides)
    # ------------------------------------------------------------------ #
    def _require_owner(self) -> None:
        """Reject mutation on readers and closed stores."""
        if self._segment is None:
            raise RuntimeError("shared scene store is closed")
        if not self._owner:
            raise RuntimeError(
                "attached shared store is read-only; mutate the owning store"
            )

    def add_scene(self, scene: GaussianScene) -> int:
        """Append a scene (owner only).

        Within capacity this writes only rows past every reader handle's
        snapshot counts, so existing reader views are never torn; when
        capacity must grow, a fresh epoch segment is allocated instead of
        resizing in place.
        """
        self._require_owner()
        return super().add_scene(scene)

    def remove_scene(self, index: Union[int, str]) -> None:
        """Remove a scene via a fresh epoch (owner only).

        In-place compaction would shift rows under attached readers, so
        the payload is first moved verbatim into a new epoch segment (which
        no reader maps yet) and compacted *there*; readers of the retired
        epoch keep their consistent pre-removal snapshot.
        """
        self._require_owner()
        self.resolve_index(index)
        self._allocate_epoch(
            len(self._positions), len(self._start), len(self._poses),
            self._sh_width,
        )
        super().remove_scene(index)

    def _require_gaussians(self, extra: int) -> None:
        needed = self._num_gaussians + extra
        if needed > len(self._positions):
            self._allocate_epoch(
                max(needed, 2 * len(self._positions)),
                len(self._start), len(self._poses), self._sh_width,
            )

    def _require_scenes(self, extra: int) -> None:
        needed = self._num_scenes + extra
        if needed > len(self._start):
            self._allocate_epoch(
                len(self._positions),
                max(needed, 2 * len(self._start)),
                len(self._poses), self._sh_width,
            )

    def _require_cameras(self, extra: int) -> None:
        needed = self._num_cameras + extra
        if needed > len(self._poses):
            self._allocate_epoch(
                len(self._positions), len(self._start),
                max(needed, 2 * len(self._poses)), self._sh_width,
            )

    def _require_sh_width(self, width: int) -> None:
        if width > self._sh_width:
            self._allocate_epoch(
                len(self._positions), len(self._start), len(self._poses), width
            )

    def compact(self) -> int:
        """Trim spare capacity into a right-sized fresh epoch (owner only).

        The shared-tier version of :meth:`SceneStore.compact`: instead of
        reallocating private arrays it moves the payload into a new,
        exactly-sized segment and retires the old epoch.  Returns the
        bytes freed (by :attr:`capacity_bytes` accounting).
        """
        self._require_owner()
        before = self.capacity_bytes
        width = 1
        if self._num_scenes:
            width = max(int(np.max(self._sh_k[: self._num_scenes])), 1)
        self._allocate_epoch(
            max(self._num_gaussians, 1),
            max(self._num_scenes, 1),
            max(self._num_cameras, 1),
            width,
        )
        return before - self.capacity_bytes

    def save(self, path):
        """Write the catalog to a plain ``.npz`` archive (format version 2).

        Shared residency is a hosting property, not a format: the archive
        is byte-identical to saving an equivalent plain store, and loading
        it back yields a plain store that can re-host anywhere.
        """
        self._require_owner()
        return super().save(path)

    # ------------------------------------------------------------------ #
    # Zero-copy routing views
    # ------------------------------------------------------------------ #
    def build_substore(self, indices: Iterable[Union[int, str]]) -> "SharedStoreView":
        """A zero-copy :class:`SharedStoreView` over the given scenes.

        Unlike the copying base implementation, no payload moves: the view
        routes reads into this catalog, and pickling it ships a handle
        plus indices so worker processes re-attach instead of re-copying.
        """
        return SharedStoreView(
            (self, self.resolve_index(index)) for index in indices
        )


class SharedStoreView(SceneStore):
    """Scene-membership view over shared catalogs: routing without residency.

    What the sharded dispatcher hands each worker instead of a private
    sub-store copy: an ordered list of ``(catalog, global index)``
    references.  The view implements the read side of the ``SceneStore``
    API by delegation, supports the worker-protocol membership operations
    (``adopt_scene`` appends a reference — replication never copies
    payload; ``remove_scene`` drops one), and pickles as segment handles
    plus indices, so crossing a pipe costs O(metadata).

    Entries are snapshots of spawn/replication time: global indices refer
    to the catalog epoch the view was built against.  The fleet rebuilds
    views at respawn and replication time, which is also when a new epoch
    is picked up.
    """

    def __init__(self, entries: Iterable[tuple]):
        self._entries: List[tuple] = list(entries)

    # -- identity (drives the inherited resolve_index/__len__/__iter__) -- #
    @property
    def _num_scenes(self) -> int:
        """Scene count, derived from the entry list."""
        return len(self._entries)

    @property
    def _names(self) -> List[str]:
        """Scene names, read through to the referenced catalogs."""
        return [catalog._names[index] for catalog, index in self._entries]

    def _entry(self, index: Union[int, str]) -> tuple:
        """The ``(catalog, global index)`` entry behind a local index."""
        return self._entries[self.resolve_index(index)]

    # ------------------------------------------------------------------ #
    # Read API (delegated, zero-copy)
    # ------------------------------------------------------------------ #
    def get_cloud(self, index: Union[int, str], level: int = 0) -> GaussianCloud:
        """Cloud of a referenced scene — views into the shared segment."""
        resolved = self.resolve_index(index)
        self._check_level(resolved, level)
        catalog, gindex = self._entries[resolved]
        return catalog.get_cloud(gindex)

    def get_cameras(self, index: Union[int, str]) -> List[Camera]:
        """Cameras of a referenced scene (poses view the shared segment)."""
        catalog, gindex = self._entry(index)
        return catalog.get_cameras(gindex)

    def get_scene(self, index: Union[int, str], level: int = 0) -> GaussianScene:
        """Referenced scene as a zero-copy view."""
        resolved = self.resolve_index(index)
        self._check_level(resolved, level)
        catalog, gindex = self._entries[resolved]
        return catalog.get_scene(gindex)

    def level_sizes(self, index: Union[int, str]) -> tuple:
        """Gaussian count per detail level of the referenced scene."""
        catalog, gindex = self._entry(index)
        return catalog.level_sizes(gindex)

    def scene_bounds(self, index: Union[int, str]):
        """Bounding sphere of the referenced scene."""
        catalog, gindex = self._entry(index)
        return catalog.scene_bounds(gindex)

    def scene_nbytes(self, index: Union[int, str]) -> int:
        """Payload bytes of the referenced scene (resident in the catalog)."""
        catalog, gindex = self._entry(index)
        return catalog.scene_nbytes(gindex)

    @property
    def num_gaussians(self) -> int:
        """Total Gaussians across the referenced scenes."""
        return sum(
            catalog.level_sizes(index)[0] for catalog, index in self._entries
        )

    @property
    def num_cameras(self) -> int:
        """Total cameras across the referenced scenes."""
        return sum(
            int(catalog._cam_length[index]) for catalog, index in self._entries
        )

    @property
    def nbytes(self) -> int:
        """Payload bytes the view *references* (resident in the catalogs)."""
        return sum(
            catalog.scene_nbytes(index) for catalog, index in self._entries
        )

    @property
    def capacity_bytes(self) -> int:
        """Bytes the view itself allocates for payload — always 0."""
        return 0

    @property
    def owned_bytes(self) -> int:
        """Private payload bytes of this view — always 0.

        The per-worker residency metric of the storage benchmark: a plain
        copying sub-store owns ``nbytes`` of private payload per worker,
        a shared view owns none (residency stays with the catalog
        segments, mapped once per machine).
        """
        return 0

    # ------------------------------------------------------------------ #
    # Membership (the worker-protocol surface)
    # ------------------------------------------------------------------ #
    def add_scene(self, scene: GaussianScene) -> int:
        """Unsupported: a view routes to shared catalogs, it owns no arrays."""
        raise RuntimeError(
            "SharedStoreView cannot host new payload; add scenes on the "
            "owning SharedSceneStore and reference them via adopt_scene"
        )

    def adopt_scene(self, source: SceneStore, index: Union[int, str] = 0) -> int:
        """Adopt a scene *reference* from another shared view or catalog.

        Replication in a shared-storage fleet: the dispatcher ships a
        one-scene view over the pipe and the worker appends the reference
        — zero payload copied, frames bit-identical by construction
        because every replica reads the same segment bytes.
        """
        if isinstance(source, SharedStoreView):
            self._entries.append(source._entry(index))
            return len(self._entries) - 1
        if isinstance(source, SharedSceneStore):
            self._entries.append((source, source.resolve_index(index)))
            return len(self._entries) - 1
        raise TypeError(
            "SharedStoreView can only adopt references to shared catalogs; "
            f"got {type(source).__name__}"
        )

    def remove_scene(self, index: Union[int, str]) -> None:
        """Drop one reference (later scenes renumber, payload untouched)."""
        self._entries.pop(self.resolve_index(index))

    def build_substore(self, indices: Iterable[Union[int, str]]) -> "SharedStoreView":
        """A narrower view over the same catalogs (still zero-copy)."""
        return SharedStoreView(
            self._entries[self.resolve_index(index)] for index in indices
        )

    def save(self, path):
        """Unsupported on a view; save the owning catalog instead."""
        raise RuntimeError(
            "SharedStoreView does not own payload to save; call save() on "
            "the owning SharedSceneStore"
        )

    # ------------------------------------------------------------------ #
    # Pickling (attach-on-unpickle)
    # ------------------------------------------------------------------ #
    def __getstate__(self) -> dict:
        """Serialize as segment handles plus indices — no payload."""
        handles = {}
        entries = []
        for catalog, index in self._entries:
            handle = catalog.handle()
            handles[handle.segment] = handle
            entries.append((handle.segment, index))
        return {"handles": handles, "entries": entries}

    def __setstate__(self, state: dict) -> None:
        """Re-attach each referenced catalog by name (zero-copy)."""
        catalogs = {
            segment: SharedSceneStore.attach(handle)
            for segment, handle in state["handles"].items()
        }
        self._entries = [
            (catalogs[segment], index) for segment, index in state["entries"]
        ]
