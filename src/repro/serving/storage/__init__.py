"""Storage tiers for scene catalogs: shared-memory residency and paging.

The serving stack reads scenes through the
:class:`~repro.serving.store.SceneStore` API; this package supplies two
composable *residency* tiers behind that same API, so services, sharded
fleets and the CLI do not care where catalog bytes physically live:

* :mod:`repro.serving.storage.shared` —
  :class:`~repro.serving.storage.shared.SharedSceneStore` hosts the
  flattened arrays in named POSIX shared memory.  One owner, N zero-copy
  reader processes, explicit segment lifecycle, copy-on-grow epochs.
* :mod:`repro.serving.storage.paged` —
  :class:`~repro.serving.storage.paged.PagedSceneStore` pages scenes
  lazily from chunked on-disk files (archive format v4) under a
  byte-budgeted LRU, bounding the resident set for catalogs larger than
  RAM.

:func:`host_store` is the one-call entry point used by
``GauRastSystem.evaluate_trace(storage=...)`` and the CLI ``--storage``
flag: it re-hosts an in-memory store on the requested tier and returns a
:class:`StorageLease` that owns the tier's lifetime.
"""

from __future__ import annotations

import shutil
import tempfile
from typing import Callable, Optional, Union

from repro.serving.store import SceneStore
from repro.serving.storage.paged import (
    DEFAULT_GROUP_SIZE,
    DEFAULT_MEMORY_BUDGET,
    PAGED_FORMAT_VERSION,
    PagedSceneStore,
    import_archive,
    is_paged_archive,
    write_paged,
)
from repro.serving.storage.shared import (
    SEGMENT_ALIGNMENT,
    SharedSceneStore,
    SharedStoreHandle,
    SharedStoreView,
)

#: Storage tiers accepted by :func:`host_store` (and the CLI ``--storage``).
STORAGE_TIERS = ("memory", "shared", "paged")


class StorageLease:
    """An opened storage tier plus ownership of its lifetime.

    ``store`` is ready to serve from; :meth:`close` releases whatever the
    lease created (a shared segment, a temporary paged directory) and is
    idempotent.  A lease over a store that was already on the requested
    tier owns nothing and its ``close`` is a no-op — the caller keeps
    responsibility for stores it built itself.
    """

    def __init__(self, store: SceneStore, cleanup: Optional[Callable] = None):
        self.store = store
        self._cleanup = cleanup

    def close(self) -> None:
        """Release everything this lease created (idempotent)."""
        cleanup, self._cleanup = self._cleanup, None
        if cleanup is not None:
            cleanup()

    def __enter__(self) -> "StorageLease":
        """Context-managed tier lifetime."""
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        """Release the tier on scope exit."""
        self.close()


def host_store(
    store: SceneStore,
    storage: Optional[str] = None,
    memory_budget: Optional[int] = None,
    workdir: Optional[str] = None,
) -> StorageLease:
    """Re-host a catalog on a storage tier; returns a :class:`StorageLease`.

    Parameters
    ----------
    store:
        The catalog to host.
    storage:
        ``None``/``"memory"`` leaves the store untouched; ``"shared"``
        hosts the flattened arrays in a shared-memory segment (the lease
        owns — and on close unlinks — the segment); ``"paged"`` writes the
        catalog to a temporary version-4 paged directory (or under
        ``workdir``) and opens it with ``memory_budget``.
    memory_budget:
        Resident-set byte budget of the paged tier (``None`` keeps the
        tier default).  Ignored by the other tiers.
    workdir:
        Directory to hold the paged archive.  When given, the archive is
        left in place on close; a lease over a temporary directory removes
        it.

    A store already on the requested tier passes through unchanged (no-op
    lease).  The shared tier hosts flat full-detail catalogs only:
    re-hosting a quantized (LOD) tier raw would silently decode it, so
    that combination is rejected — page it instead, which preserves the
    quantized payload verbatim.
    """
    if storage in (None, "memory"):
        return StorageLease(store)
    if storage == "shared":
        if isinstance(store, SharedSceneStore):
            return StorageLease(store)
        if hasattr(store, "scene_record"):
            raise ValueError(
                "the shared tier hosts flat full-detail catalogs; page a "
                "compressed store instead (storage='paged') to keep its "
                "quantized payload verbatim"
            )
        shared = SharedSceneStore(store.get_scene(i) for i in range(len(store)))
        return StorageLease(shared, cleanup=shared.close)
    if storage == "paged":
        if isinstance(store, PagedSceneStore):
            if memory_budget is None or memory_budget == store.memory_budget:
                return StorageLease(store)
            # Same archive, re-opened under the requested budget.
            return StorageLease(
                PagedSceneStore(store.path, memory_budget=memory_budget)
            )
        budget = DEFAULT_MEMORY_BUDGET if memory_budget is None else memory_budget
        if workdir is not None:
            path = write_paged(store, workdir)
            return StorageLease(PagedSceneStore(path, memory_budget=budget))
        tempdir = tempfile.mkdtemp(prefix="repro-paged-")
        path = write_paged(store, tempdir)
        paged = PagedSceneStore(path, memory_budget=budget)

        def _cleanup() -> None:
            """Drop the temporary archive (open mmaps stay valid on POSIX)."""
            shutil.rmtree(tempdir, ignore_errors=True)

        return StorageLease(paged, cleanup=_cleanup)
    raise ValueError(
        f"unknown storage tier {storage!r}; choose from {STORAGE_TIERS}"
    )


__all__ = [
    "DEFAULT_GROUP_SIZE",
    "DEFAULT_MEMORY_BUDGET",
    "PAGED_FORMAT_VERSION",
    "PagedSceneStore",
    "SEGMENT_ALIGNMENT",
    "STORAGE_TIERS",
    "SharedSceneStore",
    "SharedStoreHandle",
    "SharedStoreView",
    "StorageLease",
    "host_store",
    "import_archive",
    "is_paged_archive",
    "write_paged",
]
