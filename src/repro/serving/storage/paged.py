"""Out-of-core SceneStore tier: chunked on-disk catalog, bounded resident set.

A :class:`PagedSceneStore` serves catalogs larger than RAM.  Scene payloads
live in mmap-able chunk files on disk (one file per scene *group*, byte
offsets kept in a small in-memory index); cameras, names and per-scene
metadata stay resident.  ``get_cloud`` loads a scene's payload lazily and
parks it in a byte-budgeted LRU (:class:`~repro.serving.cache.LRUByteCache`
accounting), so the resident set never exceeds ``memory_budget`` no matter
how many scenes the request stream touches.

This is **archive format version 4** — a directory, not an ``.npz``::

    catalog.pstore/
        manifest.json     # format version, per-scene field specs + offsets
        cameras.npz       # flat camera arrays (always resident)
        chunk-00000.bin   # aligned raw bytes of one scene group
        chunk-00001.bin
        ...

:func:`write_paged` builds one from any existing tier: a plain
:class:`~repro.serving.store.SceneStore` pages raw float64 fields, a
:class:`~repro.compression.store.CompressedSceneStore` pages its quantized
payloads **verbatim** (never decoded or re-encoded), so a paged compressed
catalog serves frames bit-identical to its in-memory source, level by
level.  Version 1–3 ``.npz`` archives import through
:func:`import_archive` (sniffed by the same ``load_store`` entry point
that dispatches the older formats).

The tier is read-only with respect to the archive: ``remove_scene`` only
narrows the in-memory view, ``build_substore`` shares the same chunk files
with its own (small) resident budget, and pickling a sub-store ships field
specs — never payload — so sharded workers re-open the chunks lazily.

Usage::

    from repro.serving.storage import PagedSceneStore, write_paged

    write_paged(store, "catalog.pstore")
    paged = PagedSceneStore("catalog.pstore", memory_budget=64 << 20)
    paged.get_scene("garden")          # lazy load, then LRU-resident
    paged.resident_bytes               # always <= memory_budget
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, List, Optional, Union

import numpy as np

from repro.gaussians.gaussian import GaussianCloud
from repro.gaussians.scene import GaussianScene
from repro.serving.cache import CacheStats, LRUByteCache
from repro.serving.store import CAMERA_FIELDS, SceneStore

#: Format identifier of paged (directory) archives.
PAGED_FORMAT_VERSION = 4

#: Default resident-set byte budget of an opened paged store.
DEFAULT_MEMORY_BUDGET = 256 * 1024 * 1024

#: Scenes per chunk file written by :func:`write_paged`.
DEFAULT_GROUP_SIZE = 64

#: Byte alignment of every array inside a chunk file.
CHUNK_ALIGNMENT = 64

#: Raw-tier field names, in chunk layout order.
_RAW_FIELDS = ("positions", "scales", "rotations", "opacities", "sh_coeffs")


def is_paged_archive(path: Union[str, Path]) -> bool:
    """Whether ``path`` is a version-4 paged store directory."""
    path = Path(path)
    return path.is_dir() and (path / "manifest.json").is_file()


def _empty_shell_cloud() -> GaussianCloud:
    """Zero-Gaussian placeholder cloud for the parent store's bookkeeping."""
    return GaussianCloud(
        positions=np.zeros((0, 3)),
        scales=np.zeros((0, 3)),
        rotations=np.zeros((0, 4)),
        opacities=np.zeros(0),
        sh_coeffs=np.zeros((0, 1, 3)),
    )


@dataclass
class _PagedRecord:
    """Resident index entry of one paged scene (metadata only, no payload)."""

    uid: int
    kind: str
    chunk_path: str
    fields: dict
    sh_k: int
    length: int
    level_sizes: tuple
    center: tuple
    radius: float
    payload_nbytes: int
    codec: Optional[str] = None
    cloud_fields: Optional[dict] = None


def _descriptor_of(store: SceneStore, index: int) -> Optional[str]:
    """Descriptor name of one scene without forcing a payload load."""
    descriptors = getattr(store, "_descriptors", None)
    if descriptors is not None:
        return descriptors[index]
    return store.get_scene(index).descriptor_name


def _spec_nbytes(spec: dict) -> int:
    """Stored bytes of one field per its manifest spec."""
    count = int(np.prod(tuple(spec["shape"]), dtype=np.int64))
    return count * np.dtype(spec["dtype"]).itemsize


def _append_chunk_array(handle, array: np.ndarray, offset: int):
    """Append one array to an open chunk file; return ``(spec, new offset)``.

    Payloads are padded to :data:`CHUNK_ALIGNMENT` so every stored array
    starts aligned, which keeps dtype views over the mmap valid.
    """
    data = np.ascontiguousarray(array)
    spec = {
        "dtype": data.dtype.str,
        "shape": [int(dim) for dim in data.shape],
        "offset": int(offset),
    }
    payload = data.tobytes()
    handle.write(payload)
    padded = -(-len(payload) // CHUNK_ALIGNMENT) * CHUNK_ALIGNMENT
    handle.write(b"\0" * (padded - len(payload)))
    return spec, offset + padded


def _scene_payload(store: SceneStore, index: int):
    """One scene's payload as ``(meta, [(field name, array), ...])``.

    Chooses the verbatim-preserving representation for the source tier:
    quantized records for a compressed store, stored bytes for a paged
    store, raw float64 fields otherwise.  This is the single place that
    decides what "paging a tier" means, so every writer path agrees.
    """
    if isinstance(store, PagedSceneStore):
        record = store._records[index]
        meta = {
            "kind": record.kind,
            "sh_k": record.sh_k,
            "length": record.length,
            "level_sizes": list(record.level_sizes),
            "center": list(record.center),
            "radius": record.radius,
            "codec": record.codec,
            "cloud_fields": record.cloud_fields,
        }
        arrays = [
            (name, store._read_array(record.chunk_path, spec))
            for name, spec in record.fields.items()
        ]
        return meta, arrays
    if hasattr(store, "scene_record"):
        record = store.scene_record(index)
        cloud = record.cloud
        arrays = []
        cloud_fields = {}
        for name in sorted(cloud.fields):
            encoded = cloud.fields[name]
            arrays.append((f"{name}_data", encoded.data))
            if encoded.offsets is not None:
                arrays.append((f"{name}_offsets", encoded.offsets))
                arrays.append((f"{name}_steps", encoded.steps))
            cloud_fields[name] = {
                "shape": [int(dim) for dim in encoded.shape],
                "error_bound": float(encoded.error_bound),
            }
        arrays.append(("order", record.pyramid.order))
        sh_k = 1
        if cloud.num_gaussians:
            sh_k = int(cloud.fields["sh_coeffs"].shape[1])
        meta = {
            "kind": "compressed",
            "sh_k": sh_k,
            "length": int(cloud.num_gaussians),
            "level_sizes": [int(size) for size in record.pyramid.level_sizes],
            "center": [float(value) for value in record.center],
            "radius": float(record.radius),
            "codec": cloud.codec,
            "cloud_fields": cloud_fields,
        }
        return meta, arrays
    cloud = store.get_cloud(index)
    center, radius = store.scene_bounds(index)
    arrays = [
        ("positions", cloud.positions),
        ("scales", cloud.scales),
        ("rotations", cloud.rotations),
        ("opacities", cloud.opacities),
        ("sh_coeffs", cloud.sh_coeffs),
    ]
    meta = {
        "kind": "raw",
        "sh_k": int(cloud.sh_coeffs.shape[1]) if len(cloud) else 1,
        "length": int(len(cloud)),
        "level_sizes": [int(len(cloud))],
        "center": [float(value) for value in center],
        "radius": float(radius),
        "codec": None,
        "cloud_fields": None,
    }
    return meta, arrays


def write_paged(
    store: SceneStore,
    path: Union[str, Path],
    group_size: int = DEFAULT_GROUP_SIZE,
) -> Path:
    """Write any store tier to a version-4 paged directory; return its path.

    Scenes are grouped ``group_size`` per chunk file.  Compressed tiers
    (and already-paged tiers) are persisted payload-verbatim, so a round
    trip through the paged format never moves a quantization grid.
    """
    if group_size < 1:
        raise ValueError("group_size must be at least 1")
    path = Path(path)
    path.mkdir(parents=True, exist_ok=True)

    num_scenes = len(store)
    cam_start = np.zeros(num_scenes, dtype=np.int64)
    cam_length = np.zeros(num_scenes, dtype=np.int64)
    poses: List[np.ndarray] = []
    intrinsics: List[tuple] = []

    chunks: List[str] = []
    scenes_meta: List[dict] = []
    for group_start in range(0, max(num_scenes, 1), group_size):
        group = range(group_start, min(group_start + group_size, num_scenes))
        if len(group) == 0:
            break
        chunk_name = f"chunk-{len(chunks):05d}.bin"
        with open(path / chunk_name, "wb") as handle:
            offset = 0
            for index in group:
                meta, arrays = _scene_payload(store, index)
                specs = {}
                for field_name, array in arrays:
                    specs[field_name], offset = _append_chunk_array(
                        handle, array, offset
                    )
                meta["fields"] = specs
                meta["chunk"] = len(chunks)
                meta["name"] = store.names[index]
                meta["descriptor_name"] = _descriptor_of(store, index)
                scenes_meta.append(meta)
            if offset == 0:
                handle.write(b"\0" * CHUNK_ALIGNMENT)
        chunks.append(chunk_name)

    for index in range(num_scenes):
        cam_start[index] = len(poses)
        cameras = store.get_cameras(index)
        cam_length[index] = len(cameras)
        for camera in cameras:
            poses.append(np.asarray(camera.world_to_camera, dtype=np.float64))
            intrinsics.append(
                (camera.width, camera.height, camera.fx, camera.fy,
                 camera.cx, camera.cy, camera.znear, camera.zfar)
            )
    np.savez_compressed(
        path / "cameras.npz",
        camera_start=cam_start,
        camera_length=cam_length,
        camera_poses=(
            np.stack(poses) if poses else np.zeros((0, 4, 4))
        ),
        camera_intrinsics=(
            np.array(intrinsics, dtype=np.float64).reshape(-1, CAMERA_FIELDS)
        ),
    )
    manifest = {
        "format_version": PAGED_FORMAT_VERSION,
        "codec": getattr(store, "codec", None),
        "chunks": chunks,
        "scenes": scenes_meta,
    }
    (path / "manifest.json").write_text(json.dumps(manifest))
    return path


def import_archive(
    source: Union[str, Path],
    path: Union[str, Path],
    group_size: int = DEFAULT_GROUP_SIZE,
) -> Path:
    """Convert a version 1–3 ``.npz`` archive into a paged directory.

    The source is opened with the tier its format dictates (v3 stays
    quantized, v1/v2 stay raw) and re-persisted chunked; see
    :func:`write_paged` for the verbatim guarantee.
    """
    # Imported lazily: the storage layer must not hard-depend on the
    # compression package (which itself builds on serving.store).
    from repro.compression.store import load_store

    return write_paged(load_store(source), path, group_size=group_size)


class PagedSceneStore(SceneStore):
    """A :class:`~repro.serving.store.SceneStore` that pages scenes from disk.

    Parameters
    ----------
    path:
        A directory written by :func:`write_paged`.
    memory_budget:
        Byte budget of the resident payload set (``None`` unbounded,
        ``0`` disables caching so every request re-reads its scene).  A
        single scene larger than the whole budget is still served — it is
        loaded transiently and never cached.

    Cameras, names and per-scene field specs stay resident (the parent
    store's flattened machinery); Gaussian payloads load lazily through an
    LRU bounded by ``memory_budget``.  ``get_cloud``/``get_scene`` on a
    ``"compressed"``-kind scene decode the stored quantized payload with
    the same code path as :class:`~repro.compression.store.CompressedSceneStore`,
    so frames are bit-identical to serving the in-memory tier.
    """

    def __init__(
        self,
        path: Union[str, Path],
        memory_budget: Optional[int] = DEFAULT_MEMORY_BUDGET,
    ):
        path = Path(path)
        manifest_path = path / "manifest.json"
        if not manifest_path.is_file():
            raise FileNotFoundError(f"no paged store manifest at {manifest_path}")
        manifest = json.loads(manifest_path.read_text())
        version = manifest.get("format_version")
        if version != PAGED_FORMAT_VERSION:
            raise ValueError(
                f"unsupported paged store format version {version!r}"
            )

        self._path = path
        self._memory_budget = memory_budget
        self._resident = LRUByteCache(memory_budget)
        self._chunks: dict = {}
        self._records: List[_PagedRecord] = []
        super().__init__()

        with np.load(path / "cameras.npz", allow_pickle=False) as cameras:
            cam_start = np.array(cameras["camera_start"], dtype=np.int64)
            cam_length = np.array(cameras["camera_length"], dtype=np.int64)
            poses = np.array(cameras["camera_poses"])
            intrinsics = np.array(cameras["camera_intrinsics"])

        from repro.gaussians.camera import Camera

        for uid, meta in enumerate(manifest["scenes"]):
            row_range = range(
                int(cam_start[uid]), int(cam_start[uid] + cam_length[uid])
            )
            cameras_of_scene = []
            for row in row_range:
                width, height, fx, fy, cx, cy, znear, zfar = intrinsics[row]
                cameras_of_scene.append(
                    Camera(
                        width=int(width), height=int(height), fx=fx, fy=fy,
                        cx=cx, cy=cy, world_to_camera=poses[row],
                        znear=znear, zfar=zfar,
                    )
                )
            shell = GaussianScene(
                cloud=_empty_shell_cloud(),
                cameras=cameras_of_scene,
                name=meta["name"],
                descriptor_name=meta["descriptor_name"],
            )
            record = _PagedRecord(
                uid=uid,
                kind=meta["kind"],
                chunk_path=str(path / manifest["chunks"][meta["chunk"]]),
                fields=meta["fields"],
                sh_k=int(meta["sh_k"]),
                length=int(meta["length"]),
                level_sizes=tuple(int(s) for s in meta["level_sizes"]),
                center=tuple(float(v) for v in meta["center"]),
                radius=float(meta["radius"]),
                payload_nbytes=sum(
                    _spec_nbytes(spec) for spec in meta["fields"].values()
                ),
                codec=meta.get("codec"),
                cloud_fields=meta.get("cloud_fields"),
            )
            self._adopt_record(record, shell)

    # ------------------------------------------------------------------ #
    # Resident-set accounting
    # ------------------------------------------------------------------ #
    @property
    def path(self) -> Path:
        """Directory of the backing version-4 archive."""
        return self._path

    @property
    def memory_budget(self) -> Optional[int]:
        """Byte budget of the resident payload set."""
        return self._memory_budget

    @property
    def resident_bytes(self) -> int:
        """Payload bytes currently resident (always ``<= memory_budget``)."""
        return self._resident.current_bytes

    def resident_stats(self) -> CacheStats:
        """Activity counters of the resident set (hits/misses/evictions)."""
        return self._resident.stats()

    def drop_resident(self) -> None:
        """Evict every resident payload (counters reset with the cache)."""
        self._resident = LRUByteCache(self._memory_budget)

    # ------------------------------------------------------------------ #
    # Lazy payload loading
    # ------------------------------------------------------------------ #
    def _chunk(self, chunk_path: str) -> np.ndarray:
        """The mmap of one chunk file, opened lazily and kept per store."""
        chunk = self._chunks.get(chunk_path)
        if chunk is None:
            chunk = np.memmap(chunk_path, dtype=np.uint8, mode="r")
            self._chunks[chunk_path] = chunk
        return chunk

    def _read_array(self, chunk_path: str, spec: dict) -> np.ndarray:
        """One stored field as a private in-memory array (copied off disk).

        Copies are deliberate: resident bytes must be *owned* bytes for the
        budget to actually bound the process footprint, and eviction must
        genuinely release them rather than leave file-backed pages around.
        """
        chunk = self._chunk(chunk_path)
        dtype = np.dtype(spec["dtype"])
        shape = tuple(spec["shape"])
        nbytes = int(np.prod(shape, dtype=np.int64)) * dtype.itemsize
        start = int(spec["offset"])
        raw = np.array(chunk[start : start + nbytes])
        return raw.view(dtype).reshape(shape)

    def _load_payload(self, record: _PagedRecord) -> dict:
        """Load one scene's payload from its chunk file."""
        arrays = {
            name: self._read_array(record.chunk_path, spec)
            for name, spec in record.fields.items()
        }
        if record.kind == "raw":
            payload = dict(arrays)
            payload["nbytes"] = sum(array.nbytes for array in arrays.values())
            return payload
        # Imported lazily: see import_archive.
        from repro.compression.codecs import CompressedCloud, EncodedField
        from repro.compression.lod import LodPyramid

        fields = {}
        for name, field_meta in record.cloud_fields.items():
            fields[name] = EncodedField(
                codec=record.codec,
                data=arrays[f"{name}_data"],
                shape=tuple(field_meta["shape"]),
                offsets=arrays.get(f"{name}_offsets"),
                steps=arrays.get(f"{name}_steps"),
                error_bound=float(field_meta["error_bound"]),
            )
        cloud = CompressedCloud(
            codec=record.codec, fields=fields, num_gaussians=record.length
        )
        pyramid = LodPyramid(
            order=np.asarray(arrays["order"], dtype=np.int64),
            level_sizes=tuple(record.level_sizes),
        )
        return {
            "cloud": cloud,
            "pyramid": pyramid,
            "nbytes": cloud.nbytes + pyramid.order.nbytes,
        }

    def _fetch(self, record: _PagedRecord) -> dict:
        """Resident payload of one scene, loading (and caching) on miss."""
        key = (record.uid,)
        payload = self._resident.get(key)
        if payload is None:
            payload = self._load_payload(record)
            self._resident.put(key, payload, payload["nbytes"])
        return payload

    # ------------------------------------------------------------------ #
    # Read API
    # ------------------------------------------------------------------ #
    def num_levels(self, index: Union[int, str]) -> int:
        """Detail levels of scene ``index`` (1 for raw-kind scenes)."""
        index = self.resolve_index(index)
        return len(self._records[index].level_sizes)

    def level_sizes(self, index: Union[int, str]) -> tuple:
        """Gaussian count of each detail level, finest first."""
        index = self.resolve_index(index)
        return tuple(self._records[index].level_sizes)

    def scene_bounds(self, index: Union[int, str]):
        """Bounding sphere recorded in the manifest (no payload load)."""
        index = self.resolve_index(index)
        record = self._records[index]
        return np.array(record.center, dtype=np.float64), record.radius

    def get_cloud(self, index: Union[int, str], level: int = 0) -> GaussianCloud:
        """Cloud of scene ``index``, loaded lazily from its chunk file.

        Raw-kind scenes return views over the resident copy; compressed
        scenes decode with the exact
        :class:`~repro.compression.store.CompressedSceneStore` code path,
        so frames stay bit-identical per level across residency tiers.
        """
        index = self.resolve_index(index)
        level = self._check_level(index, level)
        record = self._records[index]
        payload = self._fetch(record)
        if record.kind == "raw":
            return GaussianCloud(
                positions=payload["positions"],
                scales=payload["scales"],
                rotations=payload["rotations"],
                opacities=payload["opacities"],
                sh_coeffs=payload["sh_coeffs"],
            )
        if level == 0:
            return payload["cloud"].decode()
        return payload["cloud"].decode(payload["pyramid"].level_indices(level))

    # ------------------------------------------------------------------ #
    # Size accounting
    # ------------------------------------------------------------------ #
    @property
    def num_gaussians(self) -> int:
        """Total (full-detail) Gaussians across the catalog, on disk."""
        return sum(record.length for record in self._records)

    def scene_nbytes(self, index: Union[int, str]) -> int:
        """Stored payload bytes of one scene (from the index, no load)."""
        index = self.resolve_index(index)
        cameras = int(self._cam_length[index]) * (16 + CAMERA_FIELDS) * 8
        return self._records[index].payload_nbytes + cameras

    @property
    def nbytes(self) -> int:
        """Catalog payload bytes (stored payloads + cameras + index slots).

        This is the *on-disk* catalog size; the in-memory footprint is
        :attr:`capacity_bytes` (resident index) plus :attr:`resident_bytes`
        (paged-in payload, bounded by the budget).
        """
        cameras = self._num_cameras * (16 + CAMERA_FIELDS) * 8
        per_scene = 5 * 8 * self._num_scenes
        payload = sum(record.payload_nbytes for record in self._records)
        return payload + cameras + per_scene

    # ------------------------------------------------------------------ #
    # Membership (read-only tier: views narrow, the archive never changes)
    # ------------------------------------------------------------------ #
    def add_scene(self, scene: GaussianScene) -> int:
        """Unsupported: the paged tier is read-only over its archive."""
        raise RuntimeError(
            "PagedSceneStore is a read-only on-disk tier; rebuild the "
            "archive with write_paged(...) to change its contents"
        )

    def _adopt_record(self, record: _PagedRecord, shell: GaussianScene) -> int:
        """Register a record (cameras/names via the parent's shell scene)."""
        index = SceneStore.add_scene(self, shell)
        self._records.append(record)
        return index

    def _shell(self, index: int) -> GaussianScene:
        """Zero-payload shell of one scene (cameras + identity only)."""
        return GaussianScene(
            cloud=_empty_shell_cloud(),
            cameras=self.get_cameras(index),
            name=self._names[index],
            descriptor_name=self._descriptors[index],
        )

    def adopt_scene(self, source: SceneStore, index: Union[int, str] = 0) -> int:
        """Adopt a scene *reference* from another paged store.

        The record (field specs and chunk-file pointer) is shared, so a
        replica shard reads the same stored bytes — frames bit-identical
        by construction.  Non-paged sources are rejected: hosting new
        payload would break the read-only archive contract.
        """
        if not isinstance(source, PagedSceneStore):
            raise TypeError(
                "PagedSceneStore can only adopt references from another "
                f"paged store; got {type(source).__name__}"
            )
        resolved = source.resolve_index(index)
        return self._adopt_record(
            source._records[resolved], source._shell(resolved)
        )

    def remove_scene(self, index: Union[int, str]) -> None:
        """Drop a scene from the in-memory view (the archive is untouched)."""
        index = self.resolve_index(index)
        uid = self._records[index].uid
        super().remove_scene(index)
        self._records.pop(index)
        self._resident.rekey(lambda key: None if key == (uid,) else key)

    def build_substore(self, indices: Iterable[Union[int, str]]) -> "PagedSceneStore":
        """A paged store over the same chunk files, narrowed to ``indices``.

        Each sub-store gets its *own* resident budget (equal to the
        parent's), so per-worker residency in a sharded fleet is bounded
        worker-by-worker; chunk files are shared through the filesystem.
        """
        substore = PagedSceneStore.__new__(PagedSceneStore)
        substore._path = self._path
        substore._memory_budget = self._memory_budget
        substore._resident = LRUByteCache(self._memory_budget)
        substore._chunks = {}
        substore._records = []
        SceneStore.__init__(substore)
        for index in indices:
            resolved = self.resolve_index(index)
            substore._adopt_record(self._records[resolved], self._shell(resolved))
        return substore

    # ------------------------------------------------------------------ #
    # Persistence and pickling
    # ------------------------------------------------------------------ #
    def save(self, path: Union[str, Path]) -> Path:
        """Re-write the (possibly narrowed) view as a new paged directory."""
        return write_paged(self, path)

    @classmethod
    def load(
        cls,
        path: Union[str, Path],
        memory_budget: Optional[int] = DEFAULT_MEMORY_BUDGET,
    ) -> "PagedSceneStore":
        """Open a paged directory (constructor alias, mirrors other tiers)."""
        return cls(path, memory_budget=memory_budget)

    def __getstate__(self) -> dict:
        """Pickle the resident index only — no mmaps, no paged-in payload."""
        state = self.__dict__.copy()
        state["_chunks"] = {}
        state["_resident"] = None
        return state

    def __setstate__(self, state: dict) -> None:
        """Restore with a fresh (empty) resident set and lazy chunk mmaps."""
        self.__dict__.update(state)
        self._resident = LRUByteCache(self._memory_budget)
