"""Scene-to-shard placement: affinity, replication, and failure tracking.

The sharded serving layer originally hard-coded *scene affinity* — scene
``i`` lives on shard ``i % num_workers`` and nowhere else.  That rule keeps
caches disjoint, but it pins every *hot* scene to a single worker: the
zipf/hotspot streams :mod:`repro.serving.traffic` generates then saturate
one shard while the rest idle.  A :class:`PlacementMap` generalises the
rule the way the DarkSide-20k DAQ treats its time-slice processors — data
may be resident on several redundant workers, and the dispatcher picks a
live one per request:

* every scene keeps its affinity shard as the **primary** owner;
* scenes flagged *hot* gain ``replication - 1`` additional **replica**
  owners on the next shards round-robin, so their traffic can be split;
* owners can be promoted/demoted at runtime (live rebalancing), and every
  mutation is recorded as a :class:`PlacementEvent`, which is what makes a
  chaos run's placement history replayable and golden-testable.

The map is pure bookkeeping: it never touches worker processes.  Death is
modelled as a *filter* (``dead`` sets passed by the caller), so a kill does
not mutate the placement — a respawned shard resumes exactly the scene set
it owned, and the invariant checks stay meaningful mid-outage.

Usage::

    from repro.serving.placement import PlacementMap

    placement = PlacementMap(num_scenes=6, num_workers=3,
                             replication=2, hot_scenes={4})
    placement.owners(4)                   # (1, 2): primary + one replica
    placement.route(4, load={1: 3, 2: 0}) # 2, the least-loaded live owner
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Set, Tuple

#: Kinds a :class:`PlacementEvent` may carry.
EVENT_KINDS = ("replicate", "demote", "kill", "respawn")


class NoLiveOwnerError(RuntimeError):
    """Raised by :meth:`PlacementMap.route` when every owner of a scene is dead.

    The sharded dispatcher treats this as "respawn required": it never
    surfaces to callers of ``ShardedRenderService.serve``, which restores
    coverage (see ``_ensure_coverage``) before routing.
    """


@dataclass(frozen=True)
class PlacementEvent:
    """One recorded placement mutation.

    Attributes
    ----------
    kind:
        ``"replicate"`` / ``"demote"`` (scene gained/lost an owner) or
        ``"kill"`` / ``"respawn"`` (a shard changed liveness).
    position:
        Requests dispatched by the fleet when the event happened, so a
        history reads as a timeline of the request stream.
    scene:
        Scene the event concerns (``None`` for kill/respawn events).
    shard:
        Shard the event concerns.
    """

    kind: str
    position: int
    scene: Optional[int]
    shard: int


class PlacementMap:
    """Which shards own which scenes, with replication and a history.

    Parameters
    ----------
    num_scenes:
        Scenes being placed (scene ids are ``0..num_scenes-1``).
    num_workers:
        Shards available (shard ids are ``0..num_workers-1``).
    replication:
        Owners per *hot* scene (clamped to ``num_workers``); cold scenes
        always have exactly one owner, their affinity shard.
    hot_scenes:
        Scene indices to replicate (e.g. from
        :func:`repro.serving.traffic.popularity_priority`'s
        ``hot_scenes``).  Ignored when ``replication`` is 1.
    """

    def __init__(
        self,
        num_scenes: int,
        num_workers: int,
        replication: int = 1,
        hot_scenes: Iterable[int] = (),
    ):
        if num_scenes < 0:
            raise ValueError("num_scenes must be non-negative")
        if num_workers < 1:
            raise ValueError("num_workers must be at least 1")
        if replication < 1:
            raise ValueError("replication must be at least 1")
        self.num_scenes = int(num_scenes)
        self.num_workers = int(num_workers)
        self.replication = min(int(replication), self.num_workers)
        hot = set()
        for scene in hot_scenes:
            scene = int(scene)
            if not 0 <= scene < self.num_scenes:
                raise ValueError(
                    f"hot scene {scene} out of range for {self.num_scenes} scenes"
                )
            hot.add(scene)
        self.hot_scenes = frozenset(hot)
        self.history: List[PlacementEvent] = []

        self._owners: List[List[int]] = []
        for scene in range(self.num_scenes):
            primary = scene % self.num_workers
            owners = [primary]
            if scene in self.hot_scenes:
                owners += [
                    (primary + offset) % self.num_workers
                    for offset in range(1, self.replication)
                ]
            self._owners.append(owners)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def owners(self, scene: int) -> Tuple[int, ...]:
        """Shards holding ``scene``, primary first, in promotion order."""
        return tuple(self._owners[self._check_scene(scene)])

    def primary(self, scene: int) -> int:
        """The scene's affinity shard (``scene % num_workers``)."""
        return self._owners[self._check_scene(scene)][0]

    def replica_count(self, scene: int) -> int:
        """Number of shards currently owning ``scene``."""
        return len(self._owners[self._check_scene(scene)])

    def scenes_of(self, shard: int) -> Tuple[int, ...]:
        """Scenes resident on ``shard``, in ascending scene order."""
        shard = self._check_shard(shard)
        return tuple(
            scene
            for scene in range(self.num_scenes)
            if shard in self._owners[scene]
        )

    def live_owners(self, scene: int, dead: Set[int] = frozenset()) -> Tuple[int, ...]:
        """Owners of ``scene`` that are not in the ``dead`` set."""
        return tuple(
            shard
            for shard in self._owners[self._check_scene(scene)]
            if shard not in dead
        )

    def snapshot(self) -> Dict[int, Tuple[int, ...]]:
        """Current ``{scene: owners}`` mapping (a defensive copy)."""
        return {
            scene: tuple(owners) for scene, owners in enumerate(self._owners)
        }

    # ------------------------------------------------------------------ #
    # Routing
    # ------------------------------------------------------------------ #
    def route(
        self,
        scene: int,
        load: Optional[Dict[int, int]] = None,
        dead: Set[int] = frozenset(),
    ) -> int:
        """Least-loaded live owner of ``scene`` (ties break to the lowest id).

        ``load`` maps shard -> outstanding request count; missing shards
        count as idle.  The signal is *dispatcher-side* queue depth, which
        is a deterministic function of the request stream — routing the
        same stream twice picks the same shards, which is what keeps chaos
        replays and their golden counters stable.

        Raises :class:`NoLiveOwnerError` when every owner is dead; the
        dispatcher responds by respawning a shard, never by dropping the
        request.
        """
        candidates = self.live_owners(scene, dead)
        if not candidates:
            raise NoLiveOwnerError(
                f"scene {scene} has no live owner "
                f"(owners {self.owners(scene)} all dead)"
            )
        load = load or {}
        return min(candidates, key=lambda shard: (load.get(shard, 0), shard))

    # ------------------------------------------------------------------ #
    # Mutation (live rebalancing, failure tracking)
    # ------------------------------------------------------------------ #
    def add_replica(self, scene: int, shard: int, position: int = 0) -> None:
        """Promote ``shard`` to an owner of ``scene`` (recorded in history)."""
        scene = self._check_scene(scene)
        shard = self._check_shard(shard)
        if shard in self._owners[scene]:
            raise ValueError(f"shard {shard} already owns scene {scene}")
        self._owners[scene].append(shard)
        self.record("replicate", position=position, scene=scene, shard=shard)

    def remove_replica(self, scene: int, shard: int, position: int = 0) -> None:
        """Demote ``shard`` from owning ``scene`` (recorded in history).

        The primary owner can never be removed: every scene keeps its
        affinity shard as an anchor at all times, dead or alive —
        liveness is the dispatcher's concern, coverage is this map's
        (and respawn always targets the primary).
        """
        scene = self._check_scene(scene)
        shard = self._check_shard(shard)
        if shard not in self._owners[scene]:
            raise ValueError(f"shard {shard} does not own scene {scene}")
        if shard == self._owners[scene][0]:
            raise ValueError(
                f"cannot demote the primary owner of scene {scene}"
            )
        self._owners[scene].remove(shard)
        self.record("demote", position=position, scene=scene, shard=shard)

    def record(
        self, kind: str, position: int, scene: Optional[int], shard: int
    ) -> None:
        """Append an event to the history (kills/respawns use scene=None)."""
        if kind not in EVENT_KINDS:
            raise ValueError(f"unknown event kind {kind!r}; choose from {EVENT_KINDS}")
        self.history.append(
            PlacementEvent(kind=kind, position=int(position), scene=scene,
                           shard=int(shard))
        )

    # ------------------------------------------------------------------ #
    # Invariants
    # ------------------------------------------------------------------ #
    def check_invariants(self) -> None:
        """Assert the structural invariants the property suite pins.

        Every scene has at least one owner, owners are distinct shards in
        range, and the primary owner is the affinity shard.  Raises
        ``AssertionError`` on violation (used by tests and debug builds;
        the serving layer maintains these by construction).
        """
        for scene, owners in enumerate(self._owners):
            assert owners, f"scene {scene} has no owner"
            assert len(set(owners)) == len(owners), (
                f"scene {scene} has duplicate owners {owners}"
            )
            assert all(0 <= shard < self.num_workers for shard in owners), (
                f"scene {scene} has out-of-range owners {owners}"
            )
            assert owners[0] == scene % self.num_workers, (
                f"scene {scene} lost its affinity primary: {owners}"
            )

    # ------------------------------------------------------------------ #
    # Helpers
    # ------------------------------------------------------------------ #
    def _check_scene(self, scene: int) -> int:
        scene = int(scene)
        if not 0 <= scene < self.num_scenes:
            raise IndexError(
                f"scene {scene} out of range for {self.num_scenes} scenes"
            )
        return scene

    def _check_shard(self, shard: int) -> int:
        shard = int(shard)
        if not 0 <= shard < self.num_workers:
            raise IndexError(
                f"shard {shard} out of range for {self.num_workers} workers"
            )
        return shard

    def __repr__(self) -> str:
        replicated = sum(1 for owners in self._owners if len(owners) > 1)
        return (
            f"PlacementMap(num_scenes={self.num_scenes}, "
            f"num_workers={self.num_workers}, replicated={replicated}, "
            f"events={len(self.history)})"
        )
