"""Sharded multi-worker render serving: N processes behind one dispatcher.

A :class:`ShardedRenderService` scales the single-process
:class:`~repro.serving.service.RenderService` across worker processes the
way the DarkSide-20k DAQ scales event building across time-slice processors:
a central dispatcher partitions the request stream, independent workers each
own a slice of the data, and a merge step reassembles an in-order result
stream.

Placement starts from **scene affinity**: scene ``i`` of the store is
primarily owned by shard ``i % num_workers``, so each worker's covariance
and frame caches stay hot for the scenes it serves.  On top of that a
:class:`~repro.serving.placement.PlacementMap` adds

* **replication** — scenes flagged *hot* (``hot_scenes``/``replication``)
  become resident on several shards, and the dispatcher routes each request
  to the least-loaded live owner, so one viral scene no longer saturates a
  single worker;
* **live rebalancing** (``rebalance=True``) — replicas are promoted and
  demoted from the traffic actually observed, without pausing the stream;
* **failure handling** — :meth:`ShardedRenderService.kill_worker` (or a
  seeded :class:`~repro.serving.traffic.FailurePlan`) terminates a worker
  mid-stream; the dispatcher requeues its in-flight requests to surviving
  replicas, or respawns the shard when a scene would otherwise lose its
  last owner.  No response is ever lost or duplicated, and the
  :class:`FleetReport` counters reconcile by construction
  (``dispatched == num_requests + requeued``).

Because any replica renders deterministically from a verbatim copy of the
scene payload, fleet frames are **bit-identical** to a single-worker serve
of the same stream regardless of placement, replication, rebalancing or
kill schedule.

Workers are long-lived ``multiprocessing`` processes, each holding its own
sub-:class:`~repro.serving.store.SceneStore` and ``RenderService``; the
dispatcher talks to them over pipes.  ``use_processes=False`` (or
``num_workers=1``) degrades gracefully to in-process shard services, which
is also how per-shard *busy time* is measured cleanly on machines with few
cores (see :attr:`FleetReport.critical_path_seconds`).

Usage::

    from repro.serving import FailurePlan, ShardedRenderService, generate_requests

    trace = generate_requests(store, 200, pattern="hotspot")
    with ShardedRenderService(store, num_workers=4, replication=2,
                              hot_scenes=[2]) as fleet:
        report = fleet.serve(trace, failure_plan=FailurePlan.at((50, 1)))
    report.requeued                   # in-flight requests re-routed
    report.placement                  # kill/respawn/replicate timeline
    report.latency_percentile(95)     # tail latency across all shards
"""

from __future__ import annotations

import multiprocessing
import time
import traceback
from collections import deque
from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Dict,
    FrozenSet,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.gaussians.rasterize import BACKENDS, DEFAULT_BACKEND
from repro.serving.cache import CacheStats
from repro.serving.placement import PlacementEvent, PlacementMap
from repro.serving.service import (
    DEFAULT_COVARIANCE_CACHE_BYTES,
    DEFAULT_FRAME_CACHE_BYTES,
    RenderRequest,
    RenderResponse,
    RenderService,
    ResponseStreamStats,
    ServiceReport,
)
from repro.serving.store import SceneStore

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for annotations
    from repro.serving.traffic import FailurePlan

#: Requests dispatched per round when a failure plan or rebalancing is
#: active (smaller rounds bound the in-flight loss per kill and give the
#: rebalancer traffic checkpoints); plain serves use one whole-stream round.
DEFAULT_DISPATCH_WINDOW = 8

#: Cache counters reported for a dead shard (its real counters died with it).
_DEAD_CACHE_STATS = CacheStats(
    hits=0, misses=0, evictions=0, entries=0, current_bytes=0, max_bytes=0
)


class _WorkerDied(RuntimeError):
    """A worker's pipe broke mid-conversation (crash or kill)."""


def merge_cache_stats(stats: Sequence[CacheStats]) -> CacheStats:
    """Aggregate per-shard cache counters into one fleet-level snapshot.

    Counters add; the byte budget adds too (each shard owns a full budget),
    unless any shard is unbounded, in which case the fleet is unbounded.
    """
    max_bytes: Optional[int] = 0
    for entry in stats:
        if entry.max_bytes is None:
            max_bytes = None
            break
        max_bytes += entry.max_bytes
    return CacheStats(
        hits=sum(s.hits for s in stats),
        misses=sum(s.misses for s in stats),
        evictions=sum(s.evictions for s in stats),
        entries=sum(s.entries for s in stats),
        current_bytes=sum(s.current_bytes for s in stats),
        max_bytes=max_bytes if stats else None,
        rejections=sum(s.rejections for s in stats),
    )


@dataclass(frozen=True)
class ShardReport:
    """One shard's contribution to a served stream.

    Attributes
    ----------
    shard_id:
        Position of the shard in the fleet.
    scene_indices:
        Global store indices of the scenes this shard owns (replicated
        scenes appear on every owner).
    num_requests, num_cache_hits, num_batches:
        Request accounting of this shard for the served stream.
    busy_seconds:
        Wall time the shard's own ``RenderService.serve`` took across all
        dispatch rounds (0 for a shard that received no requests).
    covariance_cache, frame_cache:
        The shard's cache counters after the serve (zeros for a shard that
        died — its counters died with it).
    alive:
        Whether the shard's worker was still live when the serve finished.
    """

    shard_id: int
    scene_indices: Tuple[int, ...]
    num_requests: int
    num_cache_hits: int
    num_batches: int
    busy_seconds: float
    covariance_cache: CacheStats
    frame_cache: CacheStats
    alive: bool = True

    @property
    def requests_per_second(self) -> float:
        """Throughput of this shard alone over the served stream."""
        if self.busy_seconds <= 0:
            return float("inf") if self.num_requests else 0.0
        return self.num_requests / self.busy_seconds


@dataclass
class FleetReport(ResponseStreamStats):
    """Aggregate outcome of serving one request stream across all shards.

    Mirrors :class:`~repro.serving.service.ServiceReport` (``responses`` are
    in request order with *global* scene indices and the same frame keys a
    single-worker serve would produce; the stream accounting — throughput,
    latency percentiles, cache-hit counts — comes from the shared
    :class:`~repro.serving.service.ResponseStreamStats`, with latencies
    measured within each owning shard's serve) and adds fleet-level views:
    per-shard utilization, the critical path, merged cache statistics, and
    the fault/placement accounting of the serve.

    The failure counters reconcile by construction::

        report.dispatched == report.num_requests + report.requeued

    every dispatched request was either collected (exactly one response)
    or requeued after its worker died, never both and never neither.
    """

    responses: List[RenderResponse]
    wall_seconds: float
    num_workers: int
    shards: List[ShardReport]
    #: Dispatches performed, counting each requeued request again.
    dispatched: int = 0
    #: In-flight requests re-routed after their worker died.
    requeued: int = 0
    #: Workers respawned to restore scene coverage during the serve.
    respawned: int = 0
    #: Shards that died during the serve (plan kills and detected crashes).
    killed: Tuple[int, ...] = ()
    #: Shards dead when the serve finished (dead and not respawned).
    dead_shards: Tuple[int, ...] = ()
    #: Placement/liveness events recorded during the serve, in order.
    placement: Tuple[PlacementEvent, ...] = ()
    #: ``{scene: owners}`` snapshot after the serve.
    placement_map: Dict[int, Tuple[int, ...]] = field(default_factory=dict)

    @property
    def num_batches(self) -> int:
        """Render batches issued across all shards."""
        return sum(s.num_batches for s in self.shards)

    @property
    def critical_path_seconds(self) -> float:
        """Busy time of the slowest shard.

        With one core per worker this is the fleet's ideal wall time: shards
        share no state, so a deployment is as slow as its busiest shard.
        Comparing it against a single worker's wall time gives the sharding
        speedup *independent of how many cores the measuring host has*.
        """
        if not self.shards:
            return 0.0
        return max(s.busy_seconds for s in self.shards)

    @property
    def modeled_requests_per_second(self) -> float:
        """Fleet throughput with one core per worker (critical-path bound)."""
        critical = self.critical_path_seconds
        if critical <= 0:
            return float("inf")
        return self.num_requests / critical

    @property
    def utilization(self) -> List[float]:
        """Per-shard busy fraction of the critical path (1.0 = bottleneck)."""
        critical = self.critical_path_seconds
        if critical <= 0:
            return [0.0 for _ in self.shards]
        return [s.busy_seconds / critical for s in self.shards]

    @property
    def covariance_cache(self) -> CacheStats:
        """Fleet-wide covariance cache counters."""
        return merge_cache_stats([s.covariance_cache for s in self.shards])

    @property
    def frame_cache(self) -> CacheStats:
        """Fleet-wide frame cache counters."""
        return merge_cache_stats([s.frame_cache for s in self.shards])


def _shard_worker_main(connection, store: SceneStore, service_kwargs: dict) -> None:
    """Worker-process loop: own one shard's scenes, answer serve commands.

    Protocol (request -> response over the pipe):

    * ``("serve", [(local_scene_index, camera, backend, level), ...])`` ->
      ``("ok", ServiceReport)``
    * ``("add_scene", one_scene_store)`` -> ``("ok", local_index)`` after
      adopting the scene (payload preserved verbatim — replication)
    * ``("remove_scene", local_index)`` -> ``("ok", None)`` after dropping
      the scene and re-keying the caches (demotion)
    * ``("reset",)`` -> ``("ok", None)`` after dropping both caches
    * ``("stats",)`` -> ``("ok", (covariance CacheStats, frame CacheStats))``
    * ``("close",)`` -> loop exit (no response)

    Any exception is caught and returned as ``("error", traceback_text)`` so
    a bad request cannot wedge the fleet.
    """
    service = RenderService(store, **service_kwargs)
    while True:
        try:
            message = connection.recv()
        except EOFError:
            break
        command = message[0]
        if command == "close":
            break
        try:
            if command == "serve":
                requests = [
                    RenderRequest(
                        scene_id=index, camera=camera, backend=backend,
                        level=level,
                    )
                    for index, camera, backend, level in message[1]
                ]
                connection.send(("ok", service.serve(requests)))
            elif command == "add_scene":
                connection.send(("ok", service.adopt_scene(message[1], 0)))
            elif command == "remove_scene":
                service.remove_scene(message[1])
                connection.send(("ok", None))
            elif command == "reset":
                service.reset_caches()
                connection.send(("ok", None))
            elif command == "stats":
                connection.send(
                    ("ok", (service.covariance_cache.stats(),
                            service.frame_cache.stats()))
                )
            else:
                connection.send(("error", f"unknown command {command!r}"))
        except Exception:
            connection.send(("error", traceback.format_exc()))
    connection.close()


class ShardedRenderService:
    """Partition render traffic across N scene-affine workers.

    Parameters
    ----------
    store:
        The scene store to serve.  The fleet snapshots the store's scenes at
        construction; scenes added afterwards are not visible to workers.
    num_workers:
        Number of shards.  Scene ``i``'s *primary* owner is shard
        ``i % num_workers``; workers beyond the scene count simply idle.
    replication:
        Owners per hot scene (clamped to ``num_workers``).  ``1`` (default)
        is plain scene affinity; higher values make every scene in
        ``hot_scenes`` resident on ``replication`` shards, with requests
        routed to the least-loaded live owner.
    hot_scenes:
        Scenes to replicate: an iterable of scene ids/names, or a priority
        callable from :func:`~repro.serving.traffic.popularity_priority`
        (its ``hot_scenes`` attribute is used).  Ignored when
        ``replication`` is 1.
    rebalance:
        ``True`` lets the dispatcher promote/demote replicas mid-stream
        from observed traffic (see :meth:`serve`); placement changes are
        recorded in ``placement.history`` and each ``FleetReport``.
    rebalance_threshold:
        A scene is promoted once its observed traffic share exceeds this
        multiple of the uniform share, and a replica is demoted once the
        share falls below the reciprocal multiple (hysteresis band).
    dispatch_window:
        Requests dispatched per round.  ``None`` (default) serves plain
        streams in one whole-stream round (the fastest path) and switches
        to :data:`DEFAULT_DISPATCH_WINDOW` when a failure plan or
        rebalancing is active.
    backend, background, sh_degree, collect_stats:
        Per-shard :class:`~repro.serving.service.RenderService` settings.
    covariance_cache_bytes, frame_cache_bytes:
        Per-shard cache budgets (each worker owns a full budget).
    lod_policy:
        Per-shard detail-level policy (see
        :class:`~repro.serving.service.RenderService`); levels beyond 0
        need a store with LOD tiers, whose sub-stores carry the quantized
        payloads verbatim (``SceneStore.build_substore``), so fleet frames
        stay bit-identical to a single-worker serve.
    use_processes:
        ``True`` (default) runs each shard in its own ``multiprocessing``
        process; ``False`` keeps the shard services in-process, which shares
        the exact routing/merge/failure code path while serving shards
        sequentially (useful for tests, single-core hosts and clean
        busy-time measurement).  ``num_workers=1`` always stays in-process.
    start_method:
        Optional ``multiprocessing`` start method (``"fork"``/``"spawn"``);
        defaults to the platform default.

    The service is a context manager; :meth:`close` shuts the workers down.
    ``serve`` is not reentrant — one stream at a time per fleet.
    """

    def __init__(
        self,
        store: SceneStore,
        num_workers: int = 2,
        replication: int = 1,
        hot_scenes=None,
        rebalance: bool = False,
        rebalance_threshold: float = 2.0,
        dispatch_window: Optional[int] = None,
        backend: Optional[str] = None,
        background=(0.0, 0.0, 0.0),
        sh_degree: Optional[int] = None,
        collect_stats: bool = True,
        covariance_cache_bytes: Optional[int] = DEFAULT_COVARIANCE_CACHE_BYTES,
        frame_cache_bytes: Optional[int] = DEFAULT_FRAME_CACHE_BYTES,
        lod_policy=None,
        use_processes: bool = True,
        start_method: Optional[str] = None,
    ):
        if num_workers < 1:
            raise ValueError("num_workers must be at least 1")
        if backend is not None and backend not in BACKENDS:
            raise ValueError(f"unknown backend {backend!r}; choose from {BACKENDS}")
        if replication < 1:
            raise ValueError("replication must be at least 1")
        if rebalance_threshold <= 1.0:
            raise ValueError("rebalance_threshold must be greater than 1")
        if dispatch_window is not None and dispatch_window < 1:
            raise ValueError("dispatch_window must be at least 1 (or None)")
        self.store = store
        self.num_workers = int(num_workers)
        self.backend = backend or DEFAULT_BACKEND
        self.background = tuple(float(v) for v in background)
        self.replication = min(int(replication), self.num_workers)
        self.rebalance = bool(rebalance)
        self.rebalance_threshold = float(rebalance_threshold)
        # Rebalancing with replication=1 still needs somewhere to promote to.
        self._target_replication = (
            max(self.replication, 2) if self.rebalance else self.replication
        )
        self.dispatch_window = (
            int(dispatch_window) if dispatch_window is not None else None
        )
        self._service_kwargs = dict(
            backend=backend,
            background=self.background,
            sh_degree=sh_degree,
            collect_stats=collect_stats,
            covariance_cache_bytes=covariance_cache_bytes,
            frame_cache_bytes=frame_cache_bytes,
            lod_policy=lod_policy,
        )

        # hot_scenes accepts scene ids/names or a popularity_priority
        # callable (which carries the chosen set as an attribute).
        if hot_scenes is None:
            hot: Tuple[int, ...] = ()
        else:
            chosen = getattr(hot_scenes, "hot_scenes", hot_scenes)
            hot = tuple(sorted(store.resolve_index(s) for s in chosen))
        self.placement = PlacementMap(
            len(store),
            self.num_workers,
            replication=self.replication,
            hot_scenes=hot,
        )

        self._closed = False
        self._use_processes = bool(use_processes) and self.num_workers > 1
        self._context = None
        if self._use_processes:
            self._context = (
                multiprocessing.get_context(start_method)
                if start_method
                else multiprocessing.get_context()
            )
        self._connections: List[Optional[object]] = [None] * self.num_workers
        self._processes: List[Optional[object]] = [None] * self.num_workers
        self._services: List[Optional[RenderService]] = [None] * self.num_workers
        # Per shard: global scene index -> index in the worker's sub-store.
        self._local_index: List[Dict[int, int]] = [
            {} for _ in range(self.num_workers)
        ]
        self._alive: List[bool] = [True] * self.num_workers
        # Lifetime dispatch counter; stamps placement events so histories
        # read as a timeline of the request stream.
        self._dispatched_total = 0
        for shard in range(self.num_workers):
            self._spawn_shard(shard)

    # ------------------------------------------------------------------ #
    # Worker lifecycle
    # ------------------------------------------------------------------ #
    def _spawn_shard(self, shard: int) -> None:
        """(Re)create one shard's worker with its current placement scenes.

        ``build_substore`` preserves the store's tier, so a compressed
        store's shards carry the quantized payloads and LOD pyramids
        verbatim — the root of the fleet's bit-identity guarantee.
        """
        indices = list(self.placement.scenes_of(shard))
        sub_store = self.store.build_substore(indices)
        self._local_index[shard] = {
            scene: local for local, scene in enumerate(indices)
        }
        if self._use_processes:
            parent_end, child_end = self._context.Pipe()
            process = self._context.Process(
                target=_shard_worker_main,
                args=(child_end, sub_store, self._service_kwargs),
                daemon=True,
            )
            process.start()
            child_end.close()
            self._connections[shard] = parent_end
            self._processes[shard] = process
        else:
            self._services[shard] = RenderService(
                sub_store, **self._service_kwargs
            )
        self._alive[shard] = True

    def kill_worker(self, shard: int) -> None:
        """Terminate one worker, as a fault injection.

        The shard's process is killed immediately (its in-flight work and
        cache contents are lost); the placement map is *not* changed —
        death is a liveness filter, so a later respawn resumes exactly the
        scene set the shard owned.  The next :meth:`serve` round requeues
        any of its in-flight requests to surviving replicas and respawns
        the shard if a scene would otherwise have no live owner.
        """
        self._check_open()
        shard = int(shard)
        if not 0 <= shard < self.num_workers:
            raise IndexError(
                f"shard {shard} out of range for {self.num_workers} workers"
            )
        if not self._alive[shard]:
            raise ValueError(f"worker {shard} is already dead")
        if self._use_processes:
            process = self._processes[shard]
            if process is not None and process.is_alive():
                process.terminate()
        self._mark_dead(shard)

    def _mark_dead(self, shard: int) -> None:
        """Record a worker's death and drop its endpoints (idempotent).

        Closing the parent pipe end discards any completed-but-uncollected
        reply, so the in-flight requests of a killed shard are *always*
        requeued — which is what makes the ``requeued`` counter a
        deterministic function of the stream and the kill schedule.
        """
        if not self._alive[shard]:
            return
        self._alive[shard] = False
        self.placement.record(
            "kill", position=self._dispatched_total, scene=None, shard=shard
        )
        if self._use_processes:
            connection = self._connections[shard]
            if connection is not None:
                try:
                    connection.close()
                except OSError:
                    pass
            self._connections[shard] = None
            process = self._processes[shard]
            if process is not None:
                process.join(timeout=5.0)
                if process.is_alive():
                    process.terminate()
                    process.join(timeout=5.0)
            self._processes[shard] = None
        else:
            self._services[shard] = None

    def _respawn(self, shard: int) -> None:
        """Bring a dead shard back with its placement scene set (cold caches)."""
        self._spawn_shard(shard)
        self.placement.record(
            "respawn", position=self._dispatched_total, scene=None, shard=shard
        )

    def _ensure_coverage(self) -> None:
        """Respawn primaries until every scene has a live owner again."""
        dead = self._dead_set()
        for scene in range(self.placement.num_scenes):
            if not self.placement.live_owners(scene, dead):
                self._respawn(self.placement.primary(scene))
                dead = self._dead_set()

    def _dead_set(self) -> FrozenSet[int]:
        """Shards currently dead (the placement map's liveness filter)."""
        return frozenset(
            shard for shard, alive in enumerate(self._alive) if not alive
        )

    @property
    def alive_workers(self) -> Tuple[int, ...]:
        """Ids of the workers currently live."""
        return tuple(
            shard for shard, alive in enumerate(self._alive) if alive
        )

    # ------------------------------------------------------------------ #
    # Worker RPC
    # ------------------------------------------------------------------ #
    def _call(self, shard: int, message: tuple):
        """Send one command to a shard worker and return its reply payload."""
        try:
            self._connections[shard].send(message)
        except (BrokenPipeError, OSError):
            raise _WorkerDied(f"shard {shard} worker exited unexpectedly")
        return self._receive(shard)

    def _receive(self, shard: int):
        """Receive one reply from a shard worker, raising on failure."""
        try:
            status, payload = self._connections[shard].recv()
        except (EOFError, OSError):
            raise _WorkerDied(f"shard {shard} worker exited unexpectedly")
        if status != "ok":
            raise RuntimeError(f"shard {shard} worker failed:\n{payload}")
        return payload

    def _check_open(self) -> None:
        if self._closed:
            raise RuntimeError("the sharded service has been closed")

    # ------------------------------------------------------------------ #
    # Serving
    # ------------------------------------------------------------------ #
    def serve(
        self,
        requests: Iterable[RenderRequest],
        failure_plan: Optional["FailurePlan"] = None,
        dispatch_window: Optional[int] = None,
    ) -> FleetReport:
        """Serve a request stream across the fleet.

        The stream is dispatched in rounds: each round routes a window of
        requests to the least-loaded live owner of each scene (dispatcher-
        side assigned-request counts — a deterministic function of the
        stream, so replays route identically), the owning shards serve
        concurrently (in process mode), and the responses are merged back
        into request-id order.  Each response is bit-identical to what a
        single-worker :class:`~repro.serving.service.RenderService` — or a
        standalone :func:`repro.gaussians.pipeline.render` — would produce
        for that request, whatever the placement or kill schedule.

        ``failure_plan`` injects worker deaths mid-stream: each plan entry
        fires once its dispatch position is reached, the killed shard's
        in-flight requests are requeued to surviving replicas, and a shard
        whose death leaves any scene with no live owner is respawned (cold
        caches, same scene set).  ``dispatch_window`` overrides the
        fleet's round size for this serve.  With ``rebalance=True``,
        round boundaries also promote/demote replicas from the traffic
        observed so far.
        """
        self._check_open()
        start = time.perf_counter()
        requests = list(requests)
        history_start = len(self.placement.history)

        # Resolve and validate up front so a bad request raises before any
        # dispatch, leaving no pipe desynced.
        resolved: List[int] = []
        for request in requests:
            scene_index = self.store.resolve_index(request.scene_id)
            backend = request.backend
            if backend is not None and backend not in BACKENDS:
                raise ValueError(
                    f"unknown backend {backend!r}; choose from {BACKENDS}"
                )
            resolved.append(scene_index)
        if failure_plan is not None:
            for _, worker in failure_plan.kills:
                if worker >= self.num_workers:
                    raise ValueError(
                        f"failure plan kills worker {worker}, but the fleet "
                        f"has only {self.num_workers} workers"
                    )

        window = (
            dispatch_window if dispatch_window is not None
            else self.dispatch_window
        )
        chaos = bool(failure_plan and len(failure_plan)) or self.rebalance
        if window is None:
            window = DEFAULT_DISPATCH_WINDOW if chaos else max(len(requests), 1)
        window = max(int(window), 1)

        responses: List[Optional[RenderResponse]] = [None] * len(requests)
        completed = [0] * self.num_workers
        cache_hits = [0] * self.num_workers
        batch_counts = [0] * self.num_workers
        busy = [0.0] * self.num_workers
        last_stats: List[Optional[Tuple[CacheStats, CacheStats]]] = (
            [None] * self.num_workers
        )
        # Deterministic load signal: requests assigned per shard this serve.
        assigned_load: Dict[int, int] = {
            shard: 0 for shard in range(self.num_workers)
        }
        scene_traffic = [0] * self.placement.num_scenes
        counted = [False] * len(requests)
        dispatched = 0
        requeued = 0
        fired = 0
        # A request is requeued at most once per kill, and each worker dies
        # at most once per plan — anything past this bound is a cycle.
        requeue_guard = 3 * max(len(requests), 1) + 2 * self.num_workers

        pending = deque(range(len(requests)))
        self._ensure_coverage()  # kills may have landed between serves

        while pending:
            round_positions = [
                pending.popleft() for _ in range(min(window, len(pending)))
            ]
            dead = self._dead_set()
            assignment: Dict[int, List[int]] = {}
            for position in round_positions:
                scene = resolved[position]
                shard = self.placement.route(
                    scene, load=assigned_load, dead=dead
                )
                assignment.setdefault(shard, []).append(position)
                assigned_load[shard] += 1
                if not counted[position]:
                    counted[position] = True
                    scene_traffic[scene] += 1

            # Dispatch to every assigned shard first (process mode), then
            # collect in the same order; in-process shards render at
            # collect time, so a kill landing between dispatch and collect
            # loses the same in-flight work in both modes.
            if self._use_processes:
                for shard in sorted(assignment):
                    payload = [
                        (
                            self._local_index[shard][resolved[position]],
                            requests[position].camera,
                            requests[position].backend,
                            requests[position].level,
                        )
                        for position in assignment[shard]
                    ]
                    try:
                        self._connections[shard].send(("serve", payload))
                    except (BrokenPipeError, OSError):
                        self._mark_dead(shard)  # crash detected at dispatch
            dispatched += len(round_positions)
            self._dispatched_total += len(round_positions)

            # Fire the kills the plan schedules at this point in the stream.
            if failure_plan is not None:
                for _, worker in failure_plan.due(dispatched, fired):
                    fired += 1
                    if self._alive[worker]:
                        self.kill_worker(worker)

            # Collect every dispatched shard even if one fails: leaving a
            # reply unread would desync that pipe.  In-flight work of any
            # shard that died this round is requeued.
            first_error: Optional[RuntimeError] = None
            requeue_positions: List[int] = []
            for shard in sorted(assignment):
                positions = assignment[shard]
                if not self._alive[shard]:
                    requeue_positions.extend(positions)
                    continue
                if self._use_processes:
                    try:
                        report: ServiceReport = self._receive(shard)
                    except _WorkerDied:
                        self._mark_dead(shard)
                        requeue_positions.extend(positions)
                        continue
                    except RuntimeError as error:
                        if first_error is None:
                            first_error = error
                        continue
                else:
                    local_requests = [
                        RenderRequest(
                            scene_id=self._local_index[shard][resolved[position]],
                            camera=requests[position].camera,
                            backend=requests[position].backend,
                            level=requests[position].level,
                        )
                        for position in positions
                    ]
                    report = self._services[shard].serve(local_requests)
                # Merge, restoring global identities so the fleet report
                # reads exactly like a single-worker one.
                for position, response in zip(positions, report.responses):
                    scene_index = resolved[position]
                    response.request = requests[position]
                    response.scene_index = scene_index
                    response.frame_key = (
                        (scene_index,) + tuple(response.frame_key[1:])
                    )
                    responses[position] = response
                completed[shard] += report.num_requests
                cache_hits[shard] += report.num_cache_hits
                batch_counts[shard] += report.num_batches
                busy[shard] += report.wall_seconds
                last_stats[shard] = (
                    report.covariance_cache, report.frame_cache
                )
            if first_error is not None:
                raise first_error

            if requeue_positions:
                requeued += len(requeue_positions)
                if requeued > requeue_guard:
                    raise RuntimeError(
                        "requeue limit exceeded; the fleet cannot stabilise"
                    )
                # Requeue to the front, in position order, so replays are
                # deterministic and merged output stays request-ordered.
                for position in sorted(requeue_positions, reverse=True):
                    pending.appendleft(position)

            # Restore coverage before the next routing pass, then let the
            # traffic observed so far adjust the placement.
            self._ensure_coverage()
            if self.rebalance:
                self._rebalance_step(
                    scene_traffic, sum(scene_traffic), assigned_load
                )

        events = tuple(self.placement.history[history_start:])
        shard_reports: List[ShardReport] = []
        for shard in range(self.num_workers):
            alive = self._alive[shard]
            if last_stats[shard] is not None:
                covariance_stats, frame_stats = last_stats[shard]
            elif alive:
                covariance_stats, frame_stats = self._idle_shard_stats(shard)
            else:
                covariance_stats = frame_stats = _DEAD_CACHE_STATS
            shard_reports.append(
                ShardReport(
                    shard_id=shard,
                    scene_indices=self.placement.scenes_of(shard),
                    num_requests=completed[shard],
                    num_cache_hits=cache_hits[shard],
                    num_batches=batch_counts[shard],
                    busy_seconds=busy[shard],
                    covariance_cache=covariance_stats,
                    frame_cache=frame_stats,
                    alive=alive,
                )
            )

        return FleetReport(
            responses=[r for r in responses if r is not None],
            wall_seconds=time.perf_counter() - start,
            num_workers=self.num_workers,
            shards=shard_reports,
            dispatched=dispatched,
            requeued=requeued,
            respawned=sum(1 for e in events if e.kind == "respawn"),
            killed=tuple(e.shard for e in events if e.kind == "kill"),
            dead_shards=tuple(sorted(self._dead_set())),
            placement=events,
            placement_map=self.placement.snapshot(),
        )

    # ------------------------------------------------------------------ #
    # Live rebalancing
    # ------------------------------------------------------------------ #
    def _rebalance_step(
        self,
        scene_traffic: List[int],
        observed: int,
        assigned_load: Dict[int, int],
    ) -> None:
        """Promote/demote replicas from the traffic observed so far.

        A scene whose observed share exceeds ``rebalance_threshold`` times
        the uniform share gains a replica on the least-loaded live
        non-owner (up to the target replication); a replicated scene whose
        share falls below the reciprocal multiple loses its most recently
        promoted replica.  The thresholds form a hysteresis band so the
        placement does not thrash around the boundary.
        """
        num_scenes = self.placement.num_scenes
        if num_scenes < 2 or observed < 2 * self.num_workers:
            return  # too little signal to act on
        uniform = observed / num_scenes
        hottest_first = sorted(
            range(num_scenes), key=lambda s: (-scene_traffic[s], s)
        )
        for scene in hottest_first:
            count = scene_traffic[scene]
            replicas = self.placement.replica_count(scene)
            if (
                count >= self.rebalance_threshold * uniform
                and replicas < self._target_replication
            ):
                candidates = [
                    shard
                    for shard in range(self.num_workers)
                    if self._alive[shard]
                    and shard not in self.placement.owners(scene)
                ]
                if candidates:
                    target = min(
                        candidates,
                        key=lambda shard: (assigned_load[shard], shard),
                    )
                    self._add_replica(scene, target)
            elif count * self.rebalance_threshold <= uniform and replicas > 1:
                self._remove_replica(scene, self.placement.owners(scene)[-1])

    def _add_replica(self, scene: int, shard: int) -> bool:
        """Make ``scene`` resident on ``shard`` without pausing the stream.

        Ships a one-scene sub-store over the pipe (payload preserved
        verbatim, so the replica renders bit-identically) and records the
        promotion.  Returns ``False`` if the worker died mid-transfer.
        """
        sub_store = self.store.build_substore([scene])
        if self._use_processes:
            try:
                local = self._call(shard, ("add_scene", sub_store))
            except _WorkerDied:
                self._mark_dead(shard)
                return False
        else:
            local = self._services[shard].adopt_scene(sub_store, 0)
        self._local_index[shard][scene] = local
        self.placement.add_replica(
            scene, shard, position=self._dispatched_total
        )
        return True

    def _remove_replica(self, scene: int, shard: int) -> None:
        """Drop ``scene`` from ``shard`` (demotion), re-keying its caches.

        The worker compacts its sub-store, which renumbers every later
        scene — the dispatcher shifts its local-index map the same way the
        worker re-keys its caches, so the two stay aligned.
        """
        local = self._local_index[shard].pop(scene)
        if self._alive[shard]:
            if self._use_processes:
                try:
                    self._call(shard, ("remove_scene", local))
                except _WorkerDied:
                    self._mark_dead(shard)
            else:
                self._services[shard].remove_scene(local)
        for other, index in self._local_index[shard].items():
            if index > local:
                self._local_index[shard][other] = index - 1
        self.placement.remove_replica(
            scene, shard, position=self._dispatched_total
        )

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def _idle_shard_stats(self, shard: int) -> Tuple[CacheStats, CacheStats]:
        """Current cache counters of a live shard that served no requests."""
        if self._use_processes:
            return self._call(shard, ("stats",))
        service = self._services[shard]
        return service.covariance_cache.stats(), service.frame_cache.stats()

    def submit(self, request: RenderRequest) -> RenderResponse:
        """Serve a single request through a live owner of its scene."""
        return self.serve([request]).responses[0]

    def cache_stats(self) -> Tuple[CacheStats, CacheStats]:
        """Fleet-merged ``(covariance, frame)`` cache counters (live shards).

        Mirrors :meth:`RenderService.cache_stats
        <repro.serving.service.RenderService.cache_stats>` so gateway-style
        callers can front either tier interchangeably.
        """
        self._check_open()
        per_shard = [
            self._idle_shard_stats(shard)
            for shard in range(self.num_workers)
            if self._alive[shard]
        ]
        return (
            merge_cache_stats([stats[0] for stats in per_shard]),
            merge_cache_stats([stats[1] for stats in per_shard]),
        )

    def reset_caches(self) -> None:
        """Drop every live shard's caches (cold-trace benchmarking)."""
        self._check_open()
        for shard in range(self.num_workers):
            if not self._alive[shard]:
                continue
            if self._use_processes:
                self._call(shard, ("reset",))
            else:
                self._services[shard].reset_caches()

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Shut the worker processes down (idempotent).

        Safe to call with replies still in flight — e.g. when ``serve``
        raised between dispatch and collect: pending replies are drained
        first so a worker blocked sending a large frame can exit, and a
        worker that still does not exit is terminated.  Dead shards are
        skipped.
        """
        if self._closed:
            return
        self._closed = True
        if not self._use_processes:
            return
        for connection in self._connections:
            if connection is None:
                continue
            try:
                while connection.poll(0):
                    connection.recv()
            except (EOFError, OSError):
                pass
            try:
                connection.send(("close",))
            except (BrokenPipeError, OSError):
                pass
        for process in self._processes:
            if process is None:
                continue
            process.join(timeout=5.0)
            if process.is_alive():
                process.terminate()
                process.join(timeout=5.0)
        for connection in self._connections:
            if connection is not None:
                connection.close()

    def __enter__(self) -> "ShardedRenderService":
        return self

    def __exit__(self, exc_type, exc_value, exc_traceback) -> None:
        self.close()

    def __del__(self) -> None:
        try:
            self.close()
        except Exception:
            pass
