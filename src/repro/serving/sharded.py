"""Sharded multi-worker render serving: N processes behind one dispatcher.

A :class:`ShardedRenderService` scales the single-process
:class:`~repro.serving.service.RenderService` across worker processes the
way the DarkSide-20k DAQ scales event building across time-slice processors:
a central dispatcher partitions the request stream, independent workers each
own a disjoint slice of the data, and a merge step reassembles an in-order
result stream.

The partitioning is **scene affinity**: scene ``i`` of the store is owned by
shard ``i % num_workers``, every request for a scene is routed to its one
owner, and therefore each worker's covariance and frame caches stay hot for
exactly the scenes it serves — no cache entry is ever duplicated across
workers, so N workers give N times the aggregate cache budget, not N copies
of the same working set.  Within a shard, requests keep all of
``RenderService``'s batching and memoization, which is why the fleet's
frames are bit-identical to a single-worker serve of the same stream.

Workers are long-lived ``multiprocessing`` processes, each holding its own
sub-:class:`~repro.serving.store.SceneStore` and ``RenderService``; the
dispatcher talks to them over pipes.  ``use_processes=False`` (or
``num_workers=1``) degrades gracefully to in-process shard services, which
is also how per-shard *busy time* is measured cleanly on machines with few
cores (see :attr:`FleetReport.critical_path_seconds`).

Usage::

    from repro.serving import ShardedRenderService, generate_requests

    with ShardedRenderService(store, num_workers=4) as fleet:
        report = fleet.serve(generate_requests(store, 200, pattern="zipf"))
    report.requests_per_second        # measured fleet throughput
    report.latency_percentile(95)     # tail latency across all shards
    report.utilization                # per-shard busy fraction
"""

from __future__ import annotations

import multiprocessing
import time
import traceback
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.gaussians.rasterize import BACKENDS, DEFAULT_BACKEND
from repro.serving.cache import CacheStats
from repro.serving.service import (
    DEFAULT_COVARIANCE_CACHE_BYTES,
    DEFAULT_FRAME_CACHE_BYTES,
    RenderRequest,
    RenderResponse,
    RenderService,
    ResponseStreamStats,
    ServiceReport,
)
from repro.serving.store import SceneStore


def merge_cache_stats(stats: Sequence[CacheStats]) -> CacheStats:
    """Aggregate per-shard cache counters into one fleet-level snapshot.

    Counters add; the byte budget adds too (each shard owns a full budget),
    unless any shard is unbounded, in which case the fleet is unbounded.
    """
    max_bytes: Optional[int] = 0
    for entry in stats:
        if entry.max_bytes is None:
            max_bytes = None
            break
        max_bytes += entry.max_bytes
    return CacheStats(
        hits=sum(s.hits for s in stats),
        misses=sum(s.misses for s in stats),
        evictions=sum(s.evictions for s in stats),
        entries=sum(s.entries for s in stats),
        current_bytes=sum(s.current_bytes for s in stats),
        max_bytes=max_bytes if stats else None,
        rejections=sum(s.rejections for s in stats),
    )


@dataclass(frozen=True)
class ShardReport:
    """One shard's contribution to a served stream.

    Attributes
    ----------
    shard_id:
        Position of the shard in the fleet.
    scene_indices:
        Global store indices of the scenes this shard owns.
    num_requests, num_cache_hits, num_batches:
        Request accounting of this shard for the served stream.
    busy_seconds:
        Wall time the shard's own ``RenderService.serve`` took (0 for a
        shard that received no requests).
    covariance_cache, frame_cache:
        The shard's cache counters after the serve.
    """

    shard_id: int
    scene_indices: Tuple[int, ...]
    num_requests: int
    num_cache_hits: int
    num_batches: int
    busy_seconds: float
    covariance_cache: CacheStats
    frame_cache: CacheStats

    @property
    def requests_per_second(self) -> float:
        """Throughput of this shard alone over the served stream."""
        if self.busy_seconds <= 0:
            return float("inf") if self.num_requests else 0.0
        return self.num_requests / self.busy_seconds


@dataclass
class FleetReport(ResponseStreamStats):
    """Aggregate outcome of serving one request stream across all shards.

    Mirrors :class:`~repro.serving.service.ServiceReport` (``responses`` are
    in request order with *global* scene indices and the same frame keys a
    single-worker serve would produce; the stream accounting — throughput,
    latency percentiles, cache-hit counts — comes from the shared
    :class:`~repro.serving.service.ResponseStreamStats`, with latencies
    measured within each owning shard's serve) and adds fleet-level views:
    per-shard utilization, the critical path, and merged cache statistics.
    """

    responses: List[RenderResponse]
    wall_seconds: float
    num_workers: int
    shards: List[ShardReport]

    @property
    def num_batches(self) -> int:
        """Render batches issued across all shards."""
        return sum(s.num_batches for s in self.shards)

    @property
    def critical_path_seconds(self) -> float:
        """Busy time of the slowest shard.

        With one core per worker this is the fleet's ideal wall time: shards
        share no state, so a deployment is as slow as its busiest shard.
        Comparing it against a single worker's wall time gives the sharding
        speedup *independent of how many cores the measuring host has*.
        """
        if not self.shards:
            return 0.0
        return max(s.busy_seconds for s in self.shards)

    @property
    def modeled_requests_per_second(self) -> float:
        """Fleet throughput with one core per worker (critical-path bound)."""
        critical = self.critical_path_seconds
        if critical <= 0:
            return float("inf")
        return self.num_requests / critical

    @property
    def utilization(self) -> List[float]:
        """Per-shard busy fraction of the critical path (1.0 = bottleneck)."""
        critical = self.critical_path_seconds
        if critical <= 0:
            return [0.0 for _ in self.shards]
        return [s.busy_seconds / critical for s in self.shards]

    @property
    def covariance_cache(self) -> CacheStats:
        """Fleet-wide covariance cache counters."""
        return merge_cache_stats([s.covariance_cache for s in self.shards])

    @property
    def frame_cache(self) -> CacheStats:
        """Fleet-wide frame cache counters."""
        return merge_cache_stats([s.frame_cache for s in self.shards])


def _shard_worker_main(connection, store: SceneStore, service_kwargs: dict) -> None:
    """Worker-process loop: own one shard's scenes, answer serve commands.

    Protocol (request -> response over the pipe):

    * ``("serve", [(local_scene_index, camera, backend, level), ...])`` ->
      ``("ok", ServiceReport)``
    * ``("reset",)`` -> ``("ok", None)`` after dropping both caches
    * ``("stats",)`` -> ``("ok", (covariance CacheStats, frame CacheStats))``
    * ``("close",)`` -> loop exit (no response)

    Any exception is caught and returned as ``("error", traceback_text)`` so
    a bad request cannot wedge the fleet.
    """
    service = RenderService(store, **service_kwargs)
    while True:
        try:
            message = connection.recv()
        except EOFError:
            break
        command = message[0]
        if command == "close":
            break
        try:
            if command == "serve":
                requests = [
                    RenderRequest(
                        scene_id=index, camera=camera, backend=backend,
                        level=level,
                    )
                    for index, camera, backend, level in message[1]
                ]
                connection.send(("ok", service.serve(requests)))
            elif command == "reset":
                service.reset_caches()
                connection.send(("ok", None))
            elif command == "stats":
                connection.send(
                    ("ok", (service.covariance_cache.stats(),
                            service.frame_cache.stats()))
                )
            else:
                connection.send(("error", f"unknown command {command!r}"))
        except Exception:
            connection.send(("error", traceback.format_exc()))
    connection.close()


class ShardedRenderService:
    """Partition render traffic across N scene-affine workers.

    Parameters
    ----------
    store:
        The scene store to serve.  The fleet snapshots the store's scenes at
        construction; scenes added afterwards are not visible to workers.
    num_workers:
        Number of shards.  Scene ``i`` is owned by shard
        ``i % num_workers``; workers beyond the scene count simply idle.
    backend, background, sh_degree, collect_stats:
        Per-shard :class:`~repro.serving.service.RenderService` settings.
    covariance_cache_bytes, frame_cache_bytes:
        Per-shard cache budgets (each worker owns a full budget).
    lod_policy:
        Per-shard detail-level policy (see
        :class:`~repro.serving.service.RenderService`); levels beyond 0
        need a store with LOD tiers, whose sub-stores carry the quantized
        payloads verbatim (``SceneStore.build_substore``), so fleet frames
        stay bit-identical to a single-worker serve.
    use_processes:
        ``True`` (default) runs each shard in its own ``multiprocessing``
        process; ``False`` keeps the shard services in-process, which shares
        the exact routing/merge code path while serving shards sequentially
        (useful for tests, single-core hosts and clean busy-time
        measurement).  ``num_workers=1`` always stays in-process.
    start_method:
        Optional ``multiprocessing`` start method (``"fork"``/``"spawn"``);
        defaults to the platform default.

    The service is a context manager; :meth:`close` shuts the workers down.
    ``serve`` is not reentrant — one stream at a time per fleet.
    """

    def __init__(
        self,
        store: SceneStore,
        num_workers: int = 2,
        backend: Optional[str] = None,
        background=(0.0, 0.0, 0.0),
        sh_degree: Optional[int] = None,
        collect_stats: bool = True,
        covariance_cache_bytes: Optional[int] = DEFAULT_COVARIANCE_CACHE_BYTES,
        frame_cache_bytes: Optional[int] = DEFAULT_FRAME_CACHE_BYTES,
        lod_policy=None,
        use_processes: bool = True,
        start_method: Optional[str] = None,
    ):
        if num_workers < 1:
            raise ValueError("num_workers must be at least 1")
        if backend is not None and backend not in BACKENDS:
            raise ValueError(f"unknown backend {backend!r}; choose from {BACKENDS}")
        self.store = store
        self.num_workers = int(num_workers)
        self.backend = backend or DEFAULT_BACKEND
        self.background = tuple(float(v) for v in background)
        self._service_kwargs = dict(
            backend=backend,
            background=self.background,
            sh_degree=sh_degree,
            collect_stats=collect_stats,
            covariance_cache_bytes=covariance_cache_bytes,
            frame_cache_bytes=frame_cache_bytes,
            lod_policy=lod_policy,
        )

        # Scene-affinity sharding: global scene i -> (owner shard, index in
        # the shard's own sub-store).
        self._shard_of_scene: List[int] = []
        self._local_index: List[int] = []
        self._scenes_of_shard: List[List[int]] = [
            [] for _ in range(self.num_workers)
        ]
        for index in range(len(store)):
            shard = index % self.num_workers
            self._shard_of_scene.append(shard)
            self._local_index.append(len(self._scenes_of_shard[shard]))
            self._scenes_of_shard[shard].append(index)

        # build_substore preserves the store's tier: a compressed store's
        # shards carry the quantized payloads and LOD pyramids verbatim.
        sub_stores = [
            store.build_substore(indices) for indices in self._scenes_of_shard
        ]

        self._closed = False
        self._use_processes = bool(use_processes) and self.num_workers > 1
        if self._use_processes:
            context = (
                multiprocessing.get_context(start_method)
                if start_method
                else multiprocessing.get_context()
            )
            self._connections = []
            self._processes = []
            for sub_store in sub_stores:
                parent_end, child_end = context.Pipe()
                process = context.Process(
                    target=_shard_worker_main,
                    args=(child_end, sub_store, self._service_kwargs),
                    daemon=True,
                )
                process.start()
                child_end.close()
                self._connections.append(parent_end)
                self._processes.append(process)
            self._services = None
        else:
            self._connections = None
            self._processes = None
            self._services = [
                RenderService(sub_store, **self._service_kwargs)
                for sub_store in sub_stores
            ]

    # ------------------------------------------------------------------ #
    # Worker RPC
    # ------------------------------------------------------------------ #
    def _call(self, shard: int, message: tuple):
        """Send one command to a shard worker and return its reply payload."""
        self._connections[shard].send(message)
        return self._receive(shard)

    def _receive(self, shard: int):
        """Receive one reply from a shard worker, raising on failure."""
        try:
            status, payload = self._connections[shard].recv()
        except EOFError:
            raise RuntimeError(f"shard {shard} worker exited unexpectedly")
        if status != "ok":
            raise RuntimeError(f"shard {shard} worker failed:\n{payload}")
        return payload

    def _check_open(self) -> None:
        if self._closed:
            raise RuntimeError("the sharded service has been closed")

    # ------------------------------------------------------------------ #
    # Serving
    # ------------------------------------------------------------------ #
    def serve(self, requests: Iterable[RenderRequest]) -> FleetReport:
        """Serve a request stream across the fleet.

        Requests are routed to their scene's owning shard, all active shards
        serve concurrently (in process mode), and the responses are merged
        back into request order.  Each response is bit-identical to what a
        single-worker :class:`~repro.serving.service.RenderService` — or a
        standalone :func:`repro.gaussians.pipeline.render` — would produce
        for that request.
        """
        self._check_open()
        start = time.perf_counter()
        requests = list(requests)

        # Route each request to its scene's owner shard.
        positions_of_shard: Dict[int, List[int]] = {}
        resolved: List[int] = []
        for position, request in enumerate(requests):
            scene_index = self.store.resolve_index(request.scene_id)
            backend = request.backend
            if backend is not None and backend not in BACKENDS:
                raise ValueError(
                    f"unknown backend {backend!r}; choose from {BACKENDS}"
                )
            resolved.append(scene_index)
            shard = self._shard_of_scene[scene_index]
            positions_of_shard.setdefault(shard, []).append(position)

        active = sorted(positions_of_shard)
        payloads = {
            shard: [
                (
                    self._local_index[resolved[position]],
                    requests[position].camera,
                    requests[position].backend,
                    requests[position].level,
                )
                for position in positions_of_shard[shard]
            ]
            for shard in active
        }

        # Dispatch to every active shard first, then collect: in process
        # mode the workers overlap; in-process mode serves them in turn.
        shard_results: Dict[int, ServiceReport] = {}
        busy_seconds: Dict[int, float] = {}
        if self._use_processes:
            for shard in active:
                self._connections[shard].send(("serve", payloads[shard]))
            # Collect from every dispatched shard even if one fails: leaving
            # a reply unread would desync that pipe and hand a later command
            # a stale report.
            first_error = None
            for shard in active:
                try:
                    report = self._receive(shard)
                except RuntimeError as error:
                    if first_error is None:
                        first_error = error
                    continue
                shard_results[shard] = report
                busy_seconds[shard] = report.wall_seconds
            if first_error is not None:
                raise first_error
        else:
            for shard in active:
                local_requests = [
                    RenderRequest(
                        scene_id=index, camera=camera, backend=backend,
                        level=level,
                    )
                    for index, camera, backend, level in payloads[shard]
                ]
                report = self._services[shard].serve(local_requests)
                shard_results[shard] = report
                busy_seconds[shard] = report.wall_seconds

        # Merge, restoring global identities so the fleet report reads
        # exactly like a single-worker one.
        responses: List[Optional[RenderResponse]] = [None] * len(requests)
        shard_reports: List[ShardReport] = []
        for shard in range(self.num_workers):
            report = shard_results.get(shard)
            if report is not None:
                for position, response in zip(
                    positions_of_shard[shard], report.responses
                ):
                    scene_index = resolved[position]
                    response.request = requests[position]
                    response.scene_index = scene_index
                    response.frame_key = (
                        (scene_index,) + tuple(response.frame_key[1:])
                    )
                    responses[position] = response
                covariance_stats = report.covariance_cache
                frame_stats = report.frame_cache
                num_requests = report.num_requests
                num_cache_hits = report.num_cache_hits
                num_batches = report.num_batches
            else:
                covariance_stats, frame_stats = self._idle_shard_stats(shard)
                num_requests = num_cache_hits = num_batches = 0
            shard_reports.append(
                ShardReport(
                    shard_id=shard,
                    scene_indices=tuple(self._scenes_of_shard[shard]),
                    num_requests=num_requests,
                    num_cache_hits=num_cache_hits,
                    num_batches=num_batches,
                    busy_seconds=busy_seconds.get(shard, 0.0),
                    covariance_cache=covariance_stats,
                    frame_cache=frame_stats,
                )
            )

        return FleetReport(
            responses=[r for r in responses if r is not None],
            wall_seconds=time.perf_counter() - start,
            num_workers=self.num_workers,
            shards=shard_reports,
        )

    def _idle_shard_stats(self, shard: int) -> Tuple[CacheStats, CacheStats]:
        """Current cache counters of a shard that served no requests."""
        if self._use_processes:
            return self._call(shard, ("stats",))
        service = self._services[shard]
        return service.covariance_cache.stats(), service.frame_cache.stats()

    def submit(self, request: RenderRequest) -> RenderResponse:
        """Serve a single request through its owning shard."""
        return self.serve([request]).responses[0]

    def cache_stats(self) -> Tuple[CacheStats, CacheStats]:
        """Fleet-merged ``(covariance, frame)`` cache counters.

        Mirrors :meth:`RenderService.cache_stats
        <repro.serving.service.RenderService.cache_stats>` so gateway-style
        callers can front either tier interchangeably.
        """
        self._check_open()
        per_shard = [
            self._idle_shard_stats(shard) for shard in range(self.num_workers)
        ]
        return (
            merge_cache_stats([stats[0] for stats in per_shard]),
            merge_cache_stats([stats[1] for stats in per_shard]),
        )

    def reset_caches(self) -> None:
        """Drop every shard's caches (cold-trace benchmarking, tenant swap)."""
        self._check_open()
        if self._use_processes:
            for connection in self._connections:
                connection.send(("reset",))
            for shard in range(self.num_workers):
                self._receive(shard)
        else:
            for service in self._services:
                service.reset_caches()

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Shut the worker processes down (idempotent)."""
        if self._closed:
            return
        self._closed = True
        if not self._use_processes:
            return
        for connection in self._connections:
            try:
                connection.send(("close",))
            except (BrokenPipeError, OSError):
                pass
        for process in self._processes:
            process.join(timeout=5.0)
            if process.is_alive():
                process.terminate()
                process.join(timeout=5.0)
        for connection in self._connections:
            connection.close()

    def __enter__(self) -> "ShardedRenderService":
        return self

    def __exit__(self, exc_type, exc_value, exc_traceback) -> None:
        self.close()

    def __del__(self) -> None:
        try:
            self.close()
        except Exception:
            pass
