"""GauRast reproduction library.

A Python reproduction of *GauRast: Enhancing GPU Triangle Rasterizers to
Accelerate 3D Gaussian Splatting* (DAC 2025): the 3D Gaussian Splatting
rendering pipeline, a triangle-rendering substrate, a cycle-level model of
the GauRast enhanced rasterizer with area and energy models, baseline edge-
GPU and accelerator models, and the experiment harness that regenerates the
paper's tables and figures.

Package map
-----------
``repro.core``
    Public API (:class:`~repro.core.gaurast.GauRastSystem`) and metrics.
``repro.gaussians``
    Functional 3DGS pipeline (preprocess, sort, rasterize) and synthetic
    scene generation.
``repro.serving``
    Multi-scene ``SceneStore`` and the ``RenderService`` request-serving
    layer (flattened storage, batching, LRU memoization).
``repro.compression``
    Quantization codecs, importance-pruned LOD pyramids, and the
    ``CompressedSceneStore`` tier with budget-aware level selection.
``repro.triangles``
    Triangle mesh rendering substrate.
``repro.hardware``
    GauRast PE/rasterizer cycle model, area model, energy model.
``repro.baselines``
    Jetson Orin NX, GSCore and Apple M2 Pro models.
``repro.scheduling``
    CUDA-collaborative pipelined scheduling.
``repro.profiling``
    Workload statistics and per-stage runtime breakdowns.
``repro.datasets``
    NeRF-360 scene descriptors.
``repro.experiments``
    One module per table/figure of the paper's evaluation.
"""

from repro.core import GauRastSystem

__all__ = ["GauRastSystem", "__version__"]

__version__ = "0.1.0"
