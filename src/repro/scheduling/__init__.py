"""CUDA-collaborative scheduling of the 3DGS pipeline (Fig. 8).

With GauRast in place, the pipeline's stages run on two different resources:
Stages 1-2 (preprocessing and sorting) stay on the CUDA cores while Stage 3
(Gaussian rasterization) runs on the enhanced rasterizer.  The two resources
are pipelined across frames: the CUDA cores start Stages 1-2 of frame
``i + 1`` as soon as they hand frame ``i`` to the rasterizer.
"""

from repro.scheduling.collaborative import (
    FrameTimeline,
    ScheduleResult,
    schedule_frames,
    serial_schedule,
    steady_state_fps,
)
from repro.scheduling.trace import (
    TraceStatistics,
    schedule_trace,
    schedule_workload_trace,
)

__all__ = [
    "FrameTimeline",
    "ScheduleResult",
    "TraceStatistics",
    "schedule_frames",
    "schedule_trace",
    "schedule_workload_trace",
    "serial_schedule",
    "steady_state_fps",
]
