"""Trace-driven scheduling: frame sequences with per-frame workloads.

The steady-state analysis in :mod:`repro.scheduling.collaborative` assumes
every frame costs the same.  Real applications (a robot driving through a
scene, a user turning their head in VR) produce viewpoint-dependent
workloads, so this module schedules a *trace* — a sequence of per-frame
(stage 1-2, stage 3) durations — through the same two-resource pipeline and
reports latency and frame-rate statistics over the trace.  It is the tool
behind latency-sensitive analyses such as "does every frame of this
trajectory meet its deadline?".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.baselines.jetson import JetsonOrinNX
from repro.hardware.multi import ScaledGauRast
from repro.profiling.workload import WorkloadStatistics
from repro.scheduling.collaborative import FrameTimeline


@dataclass(frozen=True)
class TraceStatistics:
    """Latency/throughput statistics of a scheduled frame trace."""

    timelines: List[FrameTimeline]
    pipelined: bool

    @property
    def num_frames(self) -> int:
        """Number of frames in the trace."""
        return len(self.timelines)

    @property
    def makespan(self) -> float:
        """Completion time of the last frame."""
        if not self.timelines:
            return 0.0
        return max(t.stage3_end for t in self.timelines)

    @property
    def mean_fps(self) -> float:
        """Average throughput over the trace."""
        if self.makespan == 0:
            return float("inf")
        return self.num_frames / self.makespan

    @property
    def latencies(self) -> List[float]:
        """Per-frame latency (input available to pixels done)."""
        return [t.latency for t in self.timelines]

    @property
    def mean_latency(self) -> float:
        """Average frame latency."""
        if not self.timelines:
            return 0.0
        return sum(self.latencies) / self.num_frames

    @property
    def worst_latency(self) -> float:
        """Worst-case frame latency."""
        if not self.timelines:
            return 0.0
        return max(self.latencies)

    def deadline_miss_rate(self, deadline_s: float) -> float:
        """Fraction of frames whose latency exceeds ``deadline_s``."""
        if deadline_s <= 0:
            raise ValueError("deadline_s must be positive")
        if not self.timelines:
            return 0.0
        misses = sum(1 for latency in self.latencies if latency > deadline_s)
        return misses / self.num_frames


def schedule_trace(
    frame_times: Sequence[Tuple[float, float]],
    pipelined: bool = True,
) -> TraceStatistics:
    """Schedule a sequence of per-frame (stage 1-2, stage 3) durations.

    With ``pipelined=True`` the CUDA cores and the rasterizer overlap across
    frames exactly as in :func:`repro.scheduling.collaborative.schedule_frames`;
    with ``pipelined=False`` each frame runs its stages back to back.
    """
    if not frame_times:
        raise ValueError("frame_times must contain at least one frame")

    timelines: List[FrameTimeline] = []
    cuda_free = 0.0
    rasterizer_free = 0.0
    for index, (stage12, stage3) in enumerate(frame_times):
        if stage12 < 0 or stage3 < 0:
            raise ValueError("stage times must be non-negative")
        stage12_start = cuda_free
        stage12_end = stage12_start + stage12
        stage3_start = max(stage12_end, rasterizer_free)
        stage3_end = stage3_start + stage3

        if pipelined:
            cuda_free = max(stage12_end, stage3_start - stage12)
        else:
            cuda_free = stage3_end
        rasterizer_free = stage3_end
        timelines.append(
            FrameTimeline(
                frame_index=index,
                stage12_start=stage12_start,
                stage12_end=stage12_end,
                stage3_start=stage3_start,
                stage3_end=stage3_end,
            )
        )
    return TraceStatistics(timelines=timelines, pipelined=pipelined)


def schedule_workload_trace(
    workloads: Iterable[WorkloadStatistics],
    baseline: Optional[JetsonOrinNX] = None,
    rasterizer: Optional[ScaledGauRast] = None,
    pipelined: bool = True,
) -> TraceStatistics:
    """Schedule a trace of per-frame workloads on the GauRast-enhanced SoC.

    Stages 1-2 of each frame are timed with the baseline CUDA model, Stage 3
    with the GauRast throughput model, then the per-frame durations are fed
    through :func:`schedule_trace`.
    """
    baseline = baseline or JetsonOrinNX()
    rasterizer = rasterizer or ScaledGauRast()
    frame_times = []
    for workload in workloads:
        stage_times = baseline.stage_times(workload)
        frame_times.append(
            (stage_times.non_rasterize, rasterizer.estimate_runtime(workload))
        )
    return schedule_trace(frame_times, pipelined=pipelined)
