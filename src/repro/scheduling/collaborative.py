"""Event-level model of the CUDA-collaborative schedule.

Two variants are modelled:

* :func:`schedule_frames` — the pipelined schedule of Fig. 8: the CUDA cores
  run Stages 1-2 of frame ``i + 1`` while the rasterizer runs Stage 3 of
  frame ``i``.  In steady state the frame interval is the maximum of the two
  stage groups' durations.
* :func:`serial_schedule` — the non-overlapped reference in which each frame
  runs Stages 1-3 back to back on the two resources; this is what the
  end-to-end baseline (no GauRast) effectively does on the CUDA cores alone,
  and it is also used by the scheduling ablation to quantify the benefit of
  pipelining.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List


@dataclass(frozen=True)
class FrameTimeline:
    """Start/end times of one frame's two stage groups, in seconds."""

    frame_index: int
    stage12_start: float
    stage12_end: float
    stage3_start: float
    stage3_end: float

    @property
    def latency(self) -> float:
        """Time from the frame entering the pipeline to its pixels being done."""
        return self.stage3_end - self.stage12_start


@dataclass(frozen=True)
class ScheduleResult:
    """Outcome of scheduling a sequence of frames."""

    timelines: List[FrameTimeline]
    stage12_time: float
    stage3_time: float
    pipelined: bool

    @property
    def num_frames(self) -> int:
        """Number of frames scheduled."""
        return len(self.timelines)

    @property
    def makespan(self) -> float:
        """Completion time of the last frame."""
        if not self.timelines:
            return 0.0
        return self.timelines[-1].stage3_end

    @property
    def steady_state_interval(self) -> float:
        """Time between successive frame completions once the pipeline fills."""
        if self.pipelined:
            return max(self.stage12_time, self.stage3_time)
        return self.stage12_time + self.stage3_time

    @property
    def fps(self) -> float:
        """Steady-state frames per second."""
        interval = self.steady_state_interval
        if interval == 0:
            return float("inf")
        return 1.0 / interval

    @property
    def throughput_fps(self) -> float:
        """Average FPS over the scheduled frames (includes pipeline fill)."""
        if self.makespan == 0:
            return float("inf")
        return self.num_frames / self.makespan

    @property
    def frame_latency(self) -> float:
        """Latency of one frame (identical for every frame in steady state)."""
        return self.stage12_time + self.stage3_time

    @property
    def cuda_utilization(self) -> float:
        """Fraction of the makespan the CUDA cores are busy."""
        if self.makespan == 0:
            return 0.0
        return self.num_frames * self.stage12_time / self.makespan

    @property
    def rasterizer_utilization(self) -> float:
        """Fraction of the makespan the rasterizer is busy."""
        if self.makespan == 0:
            return 0.0
        return self.num_frames * self.stage3_time / self.makespan


def _validate(stage12_time: float, stage3_time: float, num_frames: int) -> None:
    if stage12_time < 0 or stage3_time < 0:
        raise ValueError("stage times must be non-negative")
    if num_frames <= 0:
        raise ValueError("num_frames must be positive")


def schedule_frames(
    stage12_time: float, stage3_time: float, num_frames: int = 8
) -> ScheduleResult:
    """Build the pipelined (CUDA-collaborative) schedule of Fig. 8.

    The CUDA cores process Stages 1-2 of consecutive frames back to back
    except when the rasterizer still holds the previous frame's data (the
    hand-off is double-buffered one frame deep); the rasterizer starts a
    frame's Stage 3 as soon as both its Stages 1-2 are done and the previous
    frame has left the rasterizer.
    """
    _validate(stage12_time, stage3_time, num_frames)

    timelines: List[FrameTimeline] = []
    cuda_free = 0.0
    rasterizer_free = 0.0
    for frame in range(num_frames):
        stage12_start = cuda_free
        stage12_end = stage12_start + stage12_time
        stage3_start = max(stage12_end, rasterizer_free)
        stage3_end = stage3_start + stage3_time

        # The CUDA cores may start the next frame immediately after handing
        # this one off; the single-frame hand-off buffer means they never
        # run more than one frame ahead of the rasterizer.
        cuda_free = max(stage12_end, stage3_start - stage12_time)
        rasterizer_free = stage3_end
        timelines.append(
            FrameTimeline(
                frame_index=frame,
                stage12_start=stage12_start,
                stage12_end=stage12_end,
                stage3_start=stage3_start,
                stage3_end=stage3_end,
            )
        )
    return ScheduleResult(
        timelines=timelines,
        stage12_time=stage12_time,
        stage3_time=stage3_time,
        pipelined=True,
    )


def serial_schedule(
    stage12_time: float, stage3_time: float, num_frames: int = 8
) -> ScheduleResult:
    """Build the non-overlapped schedule (no cross-frame pipelining)."""
    _validate(stage12_time, stage3_time, num_frames)

    timelines: List[FrameTimeline] = []
    clock = 0.0
    for frame in range(num_frames):
        stage12_start = clock
        stage12_end = stage12_start + stage12_time
        stage3_start = stage12_end
        stage3_end = stage3_start + stage3_time
        clock = stage3_end
        timelines.append(
            FrameTimeline(
                frame_index=frame,
                stage12_start=stage12_start,
                stage12_end=stage12_end,
                stage3_start=stage3_start,
                stage3_end=stage3_end,
            )
        )
    return ScheduleResult(
        timelines=timelines,
        stage12_time=stage12_time,
        stage3_time=stage3_time,
        pipelined=False,
    )


def steady_state_fps(stage12_time: float, stage3_time: float) -> float:
    """Steady-state FPS of the pipelined schedule without building a timeline."""
    _validate(stage12_time, stage3_time, 1)
    interval = max(stage12_time, stage3_time)
    if interval == 0:
        return float("inf")
    return 1.0 / interval
