"""Tests for the async render gateway (repro.serving.gateway).

The contracts pinned here:

* **Bit-identity** — every frame a gateway serve completes is
  ``np.array_equal`` to the synchronous :class:`RenderService` (and
  sharded fleet) response for the same request, whatever the queue bound,
  overload policy, or lane assignment.
* **Ordering** — coalescing and priority lanes may reorder the *work*,
  never the *report*: responses come back sorted by submission id, aligned
  one-to-one with the request stream.
* **Reconciliation** — every submitted request terminates as exactly one
  of completed / shed / rejected / expired, and the coalesce count equals
  the stream's in-flight duplicate count.
* **Backpressure semantics** — ``block`` completes everything, ``reject``
  refuses arrivals beyond the bound, ``shed-oldest`` drops the oldest
  queued work of the lowest-priority lane, deadlines drop stale entries.
"""

import asyncio

import numpy as np
import pytest

from repro.gaussians.synthetic import SyntheticConfig, make_synthetic_scene
from repro.serving import (
    OVERLOAD_POLICIES,
    RenderGateway,
    RenderRequest,
    RenderService,
    SceneStore,
    ShardedRenderService,
    generate_requests,
    popularity_priority,
)


@pytest.fixture(scope="module")
def store() -> SceneStore:
    scenes = [
        make_synthetic_scene(
            SyntheticConfig(num_gaussians=80, width=32, height=24, seed=seed),
            name=f"scene-{seed}",
            num_cameras=3,
        )
        for seed in range(3)
    ]
    return SceneStore(scenes)


@pytest.fixture(scope="module")
def trace(store):
    """A duplicate-heavy hotspot burst (40 requests, ~9 distinct frames)."""
    return generate_requests(store, 40, pattern="hotspot", seed=3)


def _distinct_flights(store, trace):
    return len({
        (store.resolve_index(r.scene_id), r.camera.world_to_camera.tobytes())
        for r in trace
    })


class TestBitIdentityAndOrdering:
    def test_gateway_frames_match_the_synchronous_service(self, store, trace):
        report = RenderGateway(RenderService(store)).serve(trace)
        reference = RenderService(store).serve(trace)
        assert report.num_completed == len(trace)
        for mine, ref in zip(report.responses, reference.responses):
            assert np.array_equal(mine.image, ref.image)
            assert mine.frame_key == ref.frame_key
            assert mine.level == ref.level

    def test_coalescing_does_not_reorder_responses(self, store, trace):
        report = RenderGateway(RenderService(store)).serve(trace)
        for position, response in enumerate(report.responses):
            assert response.request_id == position
            assert response.request is trace[position]

    def test_gateway_over_the_sharded_fleet_is_bit_identical(self, store, trace):
        fleet = ShardedRenderService(store, num_workers=2, use_processes=False)
        report = RenderGateway(fleet).serve(trace)
        reference = RenderService(store).serve(trace)
        assert report.num_completed == len(trace)
        for mine, ref in zip(report.responses, reference.responses):
            assert np.array_equal(mine.image, ref.image)

    def test_seeded_replay_through_the_gateway_is_deterministic(self, store):
        # The determinism contract behind `serve --seed`: the same seed
        # regenerates the same stream, and two gateway serves of it (fresh
        # services, so nothing is answered from a warm cache) produce the
        # same frames in the same order.
        first_trace = generate_requests(store, 30, pattern="zipf", seed=11)
        replay_trace = generate_requests(store, 30, pattern="zipf", seed=11)
        first = RenderGateway(RenderService(store)).serve(first_trace)
        replay = RenderGateway(RenderService(store)).serve(replay_trace)
        assert [r.request_id for r in replay.responses] == list(range(30))
        for mine, ref in zip(replay.responses, first.responses):
            assert np.array_equal(mine.image, ref.image)
            assert mine.status == ref.status == "ok"


class TestCoalescing:
    def test_burst_duplicates_share_one_flight(self, store, trace):
        distinct = _distinct_flights(store, trace)
        # Disable the frame cache so reuse can only come from coalescing.
        service = RenderService(store, frame_cache_bytes=0)
        report = RenderGateway(service, queue_depth=len(trace)).serve(trace)
        assert report.num_completed == len(trace)
        assert report.num_coalesced == len(trace) - distinct
        assert report.coalesce_rate == pytest.approx(
            (len(trace) - distinct) / len(trace)
        )
        # One cache fill per flight: the underlying service rendered each
        # distinct frame exactly once (no put ever replaced an entry, and
        # with the cache disabled every render counted one rejection).
        covariance_stats, frame_stats = service.cache_stats()
        assert frame_stats.rejections == distinct

    def test_sequential_submits_do_not_coalesce(self, store, trace):
        # Coalescing is an *in-flight* phenomenon: one-at-a-time submits
        # always find an empty flight table (the previous request already
        # completed) and are answered by the frame cache instead.
        gateway = RenderGateway(RenderService(store))

        async def sequential():
            async with gateway:
                return [await gateway.submit(request) for request in trace[:8]]

        responses = asyncio.run(sequential())
        assert all(not response.coalesced for response in responses)

    def test_coalesced_response_is_the_leaders_frame(self, store):
        request = generate_requests(store, 1, seed=5)[0]
        duplicate = RenderRequest(
            scene_id=request.scene_id, camera=request.camera
        )
        service = RenderService(store, frame_cache_bytes=0)
        report = RenderGateway(service).serve([request, duplicate])
        leader, follower = report.responses
        assert follower.coalesced and not leader.coalesced
        assert follower.response.result is leader.response.result


class TestBackpressure:
    def test_block_policy_completes_everything(self, store, trace):
        # Queue bound far below the distinct-flight count: admissions must
        # wait for space, but nothing is ever dropped.
        report = RenderGateway(
            RenderService(store, frame_cache_bytes=0),
            queue_depth=2, max_batch=2, overload_policy="block",
        ).serve(trace)
        assert report.num_completed == len(trace)
        assert report.num_dropped == 0
        assert max(report.queue_depth_samples) <= 2

    def test_shed_oldest_drops_are_reconciled(self, store, trace):
        report = RenderGateway(
            RenderService(store, frame_cache_bytes=0),
            queue_depth=3, overload_policy="shed-oldest",
        ).serve(trace)
        assert report.num_shed > 0
        assert (
            report.num_completed + report.num_shed + report.num_rejected
            + report.num_expired == len(trace)
        )
        for response in report.responses:
            if response.status == "shed":
                assert response.response is None and not response.ok
        # Completed frames are still bit-identical to the sync service.
        reference = RenderService(store).serve(trace)
        for mine, ref in zip(report.responses, reference.responses):
            if mine.ok:
                assert np.array_equal(mine.image, ref.image)

    def test_shed_oldest_never_evicts_higher_priority_work(self, store):
        # Regression (review): with only high-priority work queued, a new
        # low-priority arrival must be shed itself — not evict the hot
        # request it is outranked by.
        first, second = generate_requests(store, 2, pattern="uniform", seed=9)
        assert _distinct_flights(store, [first, second]) == 2
        report = RenderGateway(
            RenderService(store), queue_depth=1, overload_policy="shed-oldest"
        ).serve([first, second], priorities=[0, 1])
        high, low = report.responses
        assert high.status == "ok"
        assert low.status == "shed"
        # The mirror case: a high-priority arrival may shed queued
        # low-priority work.
        report = RenderGateway(
            RenderService(store), queue_depth=1, overload_policy="shed-oldest"
        ).serve([first, second], priorities=[1, 0])
        low, high = report.responses
        assert low.status == "shed"
        assert high.status == "ok"

    def test_reject_policy_refuses_excess_arrivals(self, store, trace):
        report = RenderGateway(
            RenderService(store, frame_cache_bytes=0),
            queue_depth=2, overload_policy="reject",
        ).serve(trace)
        assert report.num_rejected > 0
        assert report.num_completed + report.num_rejected == len(trace)

    def test_expired_deadline_drops_the_request(self, store, trace):
        report = RenderGateway(RenderService(store)).serve(
            trace, deadlines=0.0
        )
        assert report.num_expired == len(trace)
        assert report.num_completed == 0

    def test_generous_deadline_changes_nothing(self, store, trace):
        report = RenderGateway(RenderService(store)).serve(
            trace, deadlines=3600.0
        )
        assert report.num_completed == len(trace)
        assert report.num_expired == 0


class TestPriorityLanes:
    def test_high_lane_is_served_first(self, store):
        # Two distinct frames, submitted low-priority first; with
        # max_batch=1 the dispatcher must still serve the high lane first,
        # so the low-priority request finishes strictly later.
        low, high = generate_requests(store, 2, pattern="uniform", seed=9)[:2]
        assert _distinct_flights(store, [low, high]) == 2
        report = RenderGateway(
            RenderService(store), max_batch=1
        ).serve([low, high], priorities=[1, 0])
        low_response, high_response = report.responses
        assert high_response.priority == 0 and low_response.priority == 1
        assert high_response.latency_s < low_response.latency_s

    def test_popularity_priority_maps_hot_scenes_to_lane_zero(self, store):
        priority_of = popularity_priority(store, pattern="hotspot", seed=3)
        assert len(priority_of.hot_scenes) == 1
        (hot,) = priority_of.hot_scenes
        camera = store.get_cameras(hot)[0]
        assert priority_of(RenderRequest(scene_id=hot, camera=camera)) == 0
        cold = next(i for i in range(len(store)) if i != hot)
        assert priority_of(
            RenderRequest(scene_id=cold, camera=camera)
        ) == 1

    def test_uniform_traffic_has_no_hot_scenes(self, store):
        priority_of = popularity_priority(store, pattern="uniform")
        assert priority_of.hot_scenes == frozenset()

    def test_lane_assignment_flows_into_the_report(self, store, trace):
        priority_of = popularity_priority(store, pattern="hotspot", seed=3)
        report = RenderGateway(
            RenderService(store), priority_of=priority_of
        ).serve(trace)
        for response in report.responses:
            expected = priority_of(response.request)
            assert response.priority == expected


class TestReportAndValidation:
    def test_empty_serve_yields_an_empty_report(self, store):
        report = RenderGateway(RenderService(store)).serve([])
        assert report.num_requests == 0
        assert report.coalesce_rate == 0.0
        assert report.latency_percentile(95) == 0.0
        assert report.queue_depth_percentile(95) == 0.0
        assert report.mean_latency_s == report.max_latency_s == 0.0

    def test_constructor_validation(self, store):
        service = RenderService(store)
        with pytest.raises(ValueError, match="queue_depth"):
            RenderGateway(service, queue_depth=0)
        with pytest.raises(ValueError, match="overload policy"):
            RenderGateway(service, overload_policy="drop-newest")
        with pytest.raises(ValueError, match="max_batch"):
            RenderGateway(service, max_batch=0)
        with pytest.raises(ValueError, match="num_lanes"):
            RenderGateway(service, num_lanes=0)
        assert set(OVERLOAD_POLICIES) == {"block", "shed-oldest", "reject"}

    def test_unknown_backend_is_rejected(self, store, trace):
        bad = RenderRequest(
            scene_id=0, camera=store.get_cameras(0)[0], backend="cuda"
        )
        with pytest.raises(ValueError, match="unknown backend"):
            RenderGateway(RenderService(store)).serve([bad])

    def test_submit_outside_a_running_gateway_raises(self, store, trace):
        gateway = RenderGateway(RenderService(store))
        with pytest.raises(RuntimeError, match="not running"):
            asyncio.run(gateway.submit(trace[0]))

    def test_misaligned_priorities_and_deadlines_raise(self, store, trace):
        gateway = RenderGateway(RenderService(store))
        with pytest.raises(ValueError, match="priorities"):
            gateway.serve(trace, priorities=[0])
        with pytest.raises(ValueError, match="deadlines"):
            gateway.serve(trace, deadlines=[1.0])

    def test_cache_stats_surface(self, store, trace):
        service = RenderService(store)
        gateway = RenderGateway(service)
        report = gateway.serve(trace)
        covariance_stats, frame_stats = service.cache_stats()
        assert report.frame_cache == frame_stats
        assert report.covariance_cache == covariance_stats
        fleet = ShardedRenderService(store, num_workers=2, use_processes=False)
        fleet_cov, fleet_frame = fleet.cache_stats()
        assert fleet_cov.hits == fleet_cov.misses == 0

    def test_spaced_arrivals_serve_like_a_burst(self, store):
        short = generate_requests(store, 6, pattern="hotspot", seed=3)
        report = RenderGateway(RenderService(store)).serve(
            short, arrival_interval_s=0.002
        )
        assert report.num_completed == len(short)
        reference = RenderService(store).serve(short)
        for mine, ref in zip(report.responses, reference.responses):
            assert np.array_equal(mine.image, ref.image)


class TestHardwareReplay:
    def test_evaluate_trace_accepts_a_gateway(self, store, trace):
        from repro.core import GauRastSystem

        system = GauRastSystem()
        via_gateway = system.evaluate_trace(
            store, trace, gateway=RenderGateway(RenderService(store))
        )
        direct = system.evaluate_trace(store, trace)
        # Bit-identical frames -> identical distinct-frame replay.
        assert via_gateway.served_cycles == direct.served_cycles
        assert via_gateway.naive_cycles == direct.naive_cycles
        assert via_gateway.service.num_completed == len(trace)

    def test_evaluate_trace_rejects_service_and_gateway_together(self, store, trace):
        from repro.core import GauRastSystem

        system = GauRastSystem()
        with pytest.raises(ValueError, match="not both"):
            system.evaluate_trace(
                store, trace,
                service=RenderService(store),
                gateway=RenderGateway(RenderService(store)),
            )

    def test_dropped_requests_are_excluded_from_the_replay(self, store, trace):
        from repro.core import GauRastSystem

        system = GauRastSystem()
        gateway = RenderGateway(
            RenderService(store), queue_depth=2, overload_policy="reject"
        )
        evaluation = system.evaluate_trace(store, trace, gateway=gateway)
        completed = evaluation.service.num_completed
        assert completed < len(trace)
        assert len(evaluation.request_cycles) == completed
