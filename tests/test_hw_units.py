"""Tests for the FP precision model and the functional-unit cost models."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hardware.fp import Precision, max_relative_error, quantize
from repro.hardware.units import (
    Adder,
    DatapathUnits,
    Divider,
    Exponent,
    Multiplier,
    OperationTally,
    UNIT_COSTS,
    unit_cost,
)


class TestPrecision:
    def test_bit_widths(self):
        assert Precision.FP32.bits == 32
        assert Precision.FP16.bits == 16
        assert Precision.FP32.bytes == 4
        assert Precision.FP16.bytes == 2

    def test_quantize_fp32_precision_loss_is_tiny(self):
        value = np.pi
        quantized = quantize(value, Precision.FP32)
        assert abs(quantized - value) / value < max_relative_error(Precision.FP32)

    def test_quantize_fp16_loses_more_precision_than_fp32(self):
        value = np.array([1.0 / 3.0])
        err16 = abs(quantize(value, Precision.FP16) - value)
        err32 = abs(quantize(value, Precision.FP32) - value)
        assert err16 > err32

    def test_quantize_returns_float64(self):
        quantized = quantize([1.5, 2.5], Precision.FP16)
        assert quantized.dtype == np.float64

    @given(value=st.floats(min_value=-1e4, max_value=1e4, allow_nan=False))
    @settings(max_examples=80, deadline=None)
    def test_quantization_error_bounded(self, value):
        for precision in Precision:
            quantized = float(quantize(value, precision))
            if value != 0:
                assert abs(quantized - value) <= abs(value) * 2 * max_relative_error(
                    precision
                ) + 1e-7


class TestUnitCosts:
    def test_all_kinds_present_for_both_precisions(self):
        for precision in Precision:
            for kind in ("add", "mul", "div", "exp", "mux", "staging"):
                cost = unit_cost(kind, precision)
                assert cost.area_um2 > 0
                assert cost.energy_pj >= 0

    def test_fp16_units_are_smaller_and_cheaper(self):
        for kind in ("add", "mul", "div", "exp"):
            fp32 = unit_cost(kind, Precision.FP32)
            fp16 = unit_cost(kind, Precision.FP16)
            assert fp16.area_um2 < fp32.area_um2
            assert fp16.energy_pj < fp32.energy_pj

    def test_multiplier_larger_than_adder(self):
        assert (
            unit_cost("mul", Precision.FP32).area_um2
            > unit_cost("add", Precision.FP32).area_um2
        )

    def test_unknown_kind_rejected(self):
        with pytest.raises(KeyError, match="unknown unit kind"):
            unit_cost("sqrt", Precision.FP32)


class TestOperationTally:
    def test_record_and_total(self):
        tally = OperationTally()
        tally.record("add", 3)
        tally.record("mul")
        tally.record("add", 2)
        assert tally.get("add") == 5
        assert tally.get("mul") == 1
        assert tally.get("exp") == 0
        assert tally.total() == 6

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            OperationTally().record("add", -1)

    def test_merge(self):
        a = OperationTally({"add": 2})
        b = OperationTally({"add": 1, "mul": 4})
        merged = a.merged_with(b)
        assert merged.get("add") == 3
        assert merged.get("mul") == 4
        # The originals are untouched.
        assert a.get("add") == 2

    def test_energy_accumulates_per_op(self):
        tally = OperationTally({"add": 10, "mul": 5})
        expected = (
            10 * UNIT_COSTS[Precision.FP32]["add"].energy_pj
            + 5 * UNIT_COSTS[Precision.FP32]["mul"].energy_pj
        )
        assert tally.energy_pj(Precision.FP32) == pytest.approx(expected)


class TestFunctionalUnits:
    def test_adder_counts_elementwise_operations(self):
        tally = OperationTally()
        adder = Adder(Precision.FP32, tally)
        result = adder.add(np.array([1.0, 2.0, 3.0]), 1.0)
        assert np.allclose(result, [2.0, 3.0, 4.0])
        assert tally.get("add") == 3

    def test_subtraction_counts_as_add(self):
        tally = OperationTally()
        adder = Adder(Precision.FP32, tally)
        result = adder.sub(5.0, 2.0)
        assert result == pytest.approx(3.0)
        assert tally.get("add") == 1

    def test_multiplier(self):
        tally = OperationTally()
        result = Multiplier(Precision.FP32, tally).mul(np.array([2.0, 4.0]), 3.0)
        assert np.allclose(result, [6.0, 12.0])
        assert tally.get("mul") == 2

    def test_divider_guards_against_zero(self):
        tally = OperationTally()
        result = Divider(Precision.FP32, tally).div(1.0, 0.0)
        # Division by zero saturates (IEEE infinity) rather than producing NaN.
        assert not np.isnan(result)
        assert tally.get("div") == 1

    def test_exponent(self):
        tally = OperationTally()
        result = Exponent(Precision.FP32, tally).exp(np.array([0.0, 1.0]))
        assert result[0] == pytest.approx(1.0)
        assert result[1] == pytest.approx(np.e, rel=1e-6)
        assert tally.get("exp") == 2

    def test_fp16_quantizes_results(self):
        tally = OperationTally()
        result = Multiplier(Precision.FP16, tally).mul(1.0 / 3.0, 1.0)
        assert result != pytest.approx(1.0 / 3.0, abs=1e-9)
        assert result == pytest.approx(1.0 / 3.0, rel=1e-3)

    def test_datapath_units_share_one_tally(self):
        units = DatapathUnits(Precision.FP32)
        units.adder.add(1.0, 1.0)
        units.multiplier.mul(2.0, 2.0)
        units.exponent.exp(0.0)
        assert units.tally.total() == 3
        units.reset()
        assert units.tally.total() == 0
