"""End-to-end tests for the ``store``/``compress``/``serve`` CLI subcommands."""

import pytest

from repro.cli import main
from repro.compression import CompressedSceneStore, load_store
from repro.serving import SceneStore

#: Small-scene arguments shared by every CLI invocation to keep tests fast.
SMALL = [
    "--scenes", "3", "--gaussians", "80", "--width", "32", "--height", "24",
    "--cameras", "2",
]


class TestStoreCommand:
    def test_build_prints_summary(self, capsys):
        assert main(["store", *SMALL]) == 0
        out = capsys.readouterr().out
        assert "scene-0" in out and "scene-2" in out
        assert "total: 3 scenes" in out

    def test_build_save_and_inspect_roundtrip(self, tmp_path, capsys):
        archive = tmp_path / "fleet.npz"
        assert main(["store", *SMALL, "--output", str(archive)]) == 0
        assert archive.exists()
        store = SceneStore.load(archive)
        assert len(store) == 3 and store.num_cameras == 6
        capsys.readouterr()

        assert main(["store", "--info", str(archive)]) == 0
        out = capsys.readouterr().out
        assert f"archive: {archive}" in out
        assert "total: 3 scenes" in out


class TestCompressCommand:
    def test_build_prints_levels_and_ratio(self, capsys):
        assert main(["compress", *SMALL, "--codec", "fp16"]) == 0
        out = capsys.readouterr().out
        assert "Levels (Gaussians)" in out
        assert "cloud compression" in out and "4.0x" in out

    def test_compress_archive_roundtrip(self, tmp_path, capsys):
        plain = tmp_path / "fleet.npz"
        compressed = tmp_path / "fleet-q.npz"
        assert main(["store", *SMALL, "--output", str(plain)]) == 0
        capsys.readouterr()
        assert main([
            "compress", "--store", str(plain), "--codec", "int8",
            "--levels", "2", "--keep", "0.5", "--output", str(compressed),
        ]) == 0
        out = capsys.readouterr().out
        assert "compressed store written to" in out
        store = CompressedSceneStore.load(compressed)
        assert store.codec == "int8"
        assert store.num_levels(0) == 2
        assert len(store) == 3

        assert main(["compress", "--info", str(compressed)]) == 0
        out = capsys.readouterr().out
        assert "int8" in out and "total: 3 scenes" in out

    def test_quality_report(self, capsys):
        assert main(["compress", *SMALL, "--codec", "fp64", "--quality"]) == 0
        out = capsys.readouterr().out
        assert "Min PSNR (dB)" in out
        assert "inf" in out  # the lossless tier's level 0 is exact


class TestServeCommand:
    def test_single_worker_serve(self, capsys):
        assert main(["serve", *SMALL, "--requests", "12", "--seed", "4"]) == 0
        out = capsys.readouterr().out
        assert "served 12 requests" in out
        assert "traffic=uniform, seed=4" in out
        assert "workers=1" in out
        assert "p95" in out and "frame cache" in out
        assert "shard" not in out

    def test_serve_from_archive(self, tmp_path, capsys):
        archive = tmp_path / "fleet.npz"
        assert main(["store", *SMALL, "--output", str(archive)]) == 0
        capsys.readouterr()
        assert main(
            ["serve", "--store", str(archive), "--requests", "8"]
        ) == 0
        out = capsys.readouterr().out
        assert "served 8 requests" in out
        assert "over 3 scenes" in out

    @pytest.mark.parametrize("traffic", ["zipf", "hotspot"])
    def test_sharded_serve_with_skewed_traffic(self, capsys, traffic):
        assert main([
            "serve", *SMALL, "--requests", "15", "--workers", "2",
            "--traffic", traffic, "--seed", "1",
        ]) == 0
        out = capsys.readouterr().out
        assert f"traffic={traffic}" in out
        assert "workers=2" in out
        assert "served 15 requests" in out
        assert "shard 0:" in out and "shard 1:" in out
        assert "fleet critical path" in out
        assert "utilization" in out

    def test_seed_replays_the_same_trace(self, capsys):
        # Deterministic replay: the same seed routes the same requests to
        # the same shards; a different seed routes differently (with a
        # zipf-skewed 40-request stream the per-shard split is stable).
        args = ["serve", *SMALL, "--requests", "40", "--workers", "2",
                "--traffic", "zipf"]

        def shard_lines(seed):
            assert main([*args, "--seed", str(seed)]) == 0
            out = capsys.readouterr().out
            return [
                line.split("busy")[0]  # drop timing, keep routing counts
                for line in out.splitlines() if "shard" in line
            ]

        assert shard_lines(7) == shard_lines(7)
        assert shard_lines(7) != shard_lines(8)

    def test_naive_and_hardware_with_workers(self, capsys):
        assert main([
            "serve", *SMALL, "--requests", "10", "--workers", "2",
            "--naive", "--hardware",
        ]) == 0
        out = capsys.readouterr().out
        assert "naive per-request loop" in out
        assert "hardware model:" in out

    def test_workers_must_be_positive(self, capsys):
        assert main(["serve", *SMALL, "--workers", "0"]) == 2
        assert "--workers must be at least 1" in capsys.readouterr().err

    def test_serve_with_lod(self, capsys):
        assert main([
            "serve", *SMALL, "--requests", "10", "--lod",
            "--codec", "fp16", "--lod-levels", "3", "--lod-keep", "0.6",
        ]) == 0
        out = capsys.readouterr().out
        assert "served 10 requests" in out
        assert "detail levels served (footprint policy):" in out
        assert "store compression" in out and "fp16" in out

    def test_serve_lod_from_compressed_archive_with_hardware(
        self, tmp_path, capsys
    ):
        archive = tmp_path / "q.npz"
        assert main([
            "compress", *SMALL, "--codec", "fp16", "--output", str(archive),
        ]) == 0
        capsys.readouterr()
        assert main([
            "serve", "--store", str(archive), "--requests", "8", "--lod",
            "--hardware",
        ]) == 0
        out = capsys.readouterr().out
        assert "served 8 requests" in out
        assert "detail levels served" in out
        assert "hardware model:" in out

    def test_serve_lod_sharded(self, capsys):
        assert main([
            "serve", *SMALL, "--requests", "12", "--lod", "--workers", "2",
        ]) == 0
        out = capsys.readouterr().out
        assert "shard 0:" in out and "detail levels served" in out


class TestServeChaosFlags:
    def test_replicate_hot_and_kill_at(self, capsys):
        assert main([
            "serve", *SMALL, "--requests", "24", "--workers", "2",
            "--traffic", "hotspot", "--seed", "1",
            "--replicate-hot", "2", "--kill-at", "10:1",
        ]) == 0
        out = capsys.readouterr().out
        assert "served 24 requests" in out
        assert "fault accounting:" in out
        assert "killed [1]" in out
        assert "kill on shard 1" in out
        # dispatched = completed + requeued is printed straight from the
        # report, whose counters reconcile by construction.
        assert "dispatched = 24 completed" in out

    def test_rebalance_flag(self, capsys):
        assert main([
            "serve", *SMALL, "--requests", "30", "--workers", "2",
            "--traffic", "hotspot", "--seed", "1", "--rebalance",
        ]) == 0
        out = capsys.readouterr().out
        assert "served 30 requests" in out

    def test_chaos_flags_need_workers(self, capsys):
        for flags in (["--replicate-hot", "2"], ["--rebalance"],
                      ["--kill-at", "5:0"]):
            assert main(["serve", *SMALL, "--requests", "6", *flags]) == 2
            err = capsys.readouterr().err
            assert "need --workers > 1" in err

    def test_kill_at_rejects_bad_specs(self, capsys):
        assert main([
            "serve", *SMALL, "--requests", "6", "--workers", "2",
            "--kill-at", "oops",
        ]) == 2
        assert "expected POS:WORKER" in capsys.readouterr().err
        assert main([
            "serve", *SMALL, "--requests", "6", "--workers", "2",
            "--kill-at", "3:9",
        ]) == 2
        assert "only 2" in capsys.readouterr().err

    def test_kill_at_is_incompatible_with_async(self, capsys):
        assert main([
            "serve", *SMALL, "--requests", "6", "--workers", "2",
            "--async", "--kill-at", "3:1",
        ]) == 2
        assert "--async" in capsys.readouterr().err


class TestServeAsyncGateway:
    def test_async_serve_reports_gateway_counters(self, capsys):
        assert main([
            "serve", *SMALL, "--requests", "14", "--traffic", "hotspot",
            "--seed", "3", "--async", "--queue-depth", "16",
        ]) == 0
        out = capsys.readouterr().out
        assert "async gateway" in out
        assert "gateway: 14/14 requests completed" in out
        assert "coalesce rate" in out
        assert "queue depth p50" in out
        assert "policy block" in out
        assert "served 14 requests" in out

    def test_async_overload_policy_sheds(self, capsys):
        assert main([
            "serve", *SMALL, "--requests", "20", "--traffic", "uniform",
            "--async", "--queue-depth", "1", "--overload-policy",
            "shed-oldest",
        ]) == 0
        out = capsys.readouterr().out
        assert "policy shed-oldest" in out
        assert " shed, " in out

    def test_async_seed_replay_is_deterministic(self, capsys):
        # `serve --seed --async` replays the exact stream: the gateway's
        # coalesce accounting (a pure function of the stream under a burst)
        # comes out identical run over run.
        args = ["serve", *SMALL, "--requests", "30", "--traffic", "hotspot",
                "--async", "--seed", "9"]

        def gateway_line():
            assert main(args) == 0
            out = capsys.readouterr().out
            return [
                line for line in out.splitlines()
                if line.startswith("gateway:")
            ]

        assert gateway_line() == gateway_line()

    def test_async_with_workers_and_hardware(self, capsys):
        assert main([
            "serve", *SMALL, "--requests", "10", "--workers", "2",
            "--async", "--hardware",
        ]) == 0
        out = capsys.readouterr().out
        assert "gateway: 10/10 requests completed" in out
        assert "hardware model:" in out
        # The per-shard breakdown belongs to the direct fleet serve only.
        assert "shard 0:" not in out


class TestLintCommand:
    """Exit-code contract of ``repro lint``: 0 clean, 1 findings, 2 error."""

    FIXTURES = "tests/fixtures/analysis"

    def test_clean_tree_exits_zero(self, capsys):
        assert main(["lint", "src/repro/analysis"]) == 0
        out = capsys.readouterr().out
        assert "repro lint: clean" in out

    def test_findings_exit_one(self, capsys):
        assert main(["lint", f"{self.FIXTURES}/bad_determinism.py"]) == 1
        out = capsys.readouterr().out
        assert "determinism:" in out
        assert "finding(s)" in out

    def test_missing_path_exits_two(self, capsys):
        assert main(["lint", "does/not/exist.py"]) == 2

    def test_unknown_rule_exits_two(self, capsys):
        assert main([
            "lint", "src/repro/analysis", "--rules", "bogus-rule",
        ]) == 2

    def test_json_format(self, capsys):
        import json

        assert main([
            "lint", f"{self.FIXTURES}/bad_repr.py", "--format", "json",
        ]) == 1
        report = json.loads(capsys.readouterr().out)
        assert report["version"] == 1
        assert report["summary"]["clean"] is False
        assert all(
            entry["rule"] == "repr-hygiene" for entry in report["findings"]
        )

    def test_list_rules(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("determinism", "cache-key", "repr-hygiene"):
            assert f"{rule_id}:" in out

    def test_rule_subset_runs_only_that_rule(self, capsys):
        assert main([
            "lint", f"{self.FIXTURES}/bad_determinism.py",
            "--rules", "repr-hygiene",
        ]) == 0

    def test_baseline_grandfathers_findings(self, tmp_path, capsys):
        from repro.analysis import Baseline, lint_paths

        bad = f"{self.FIXTURES}/bad_cachekey.py"
        findings, _ = lint_paths([bad])
        baseline = tmp_path / "baseline.json"
        Baseline(
            fingerprints={finding.fingerprint for finding in findings}
        ).save(baseline)
        assert main(["lint", bad, "--baseline", str(baseline)]) == 0
        out = capsys.readouterr().out
        assert "baselined" in out


class TestStorageFlags:
    """CLI surface of the storage tiers: store --shared/--paged, serve --storage."""

    def test_store_reports_capacity_and_payload(self, capsys):
        assert main(["store", *SMALL]) == 0
        out = capsys.readouterr().out
        assert "KiB allocated for" in out and "KiB payload" in out

    def test_store_paged_write_and_inspect(self, tmp_path, capsys):
        archive = tmp_path / "paged-store"
        assert main([
            "store", *SMALL, "--paged", "--output", str(archive),
        ]) == 0
        out = capsys.readouterr().out
        assert "paged store written to" in out
        assert (archive / "manifest.json").exists()

        assert main([
            "store", "--info", str(archive), "--memory-budget", "65536",
        ]) == 0
        out = capsys.readouterr().out
        assert "paged tier:" in out and "budget 64.0 KiB" in out
        assert "total: 3 scenes" in out

    def test_store_from_archive_source(self, tmp_path, capsys):
        flat = tmp_path / "flat.npz"
        assert main(["store", *SMALL, "--output", str(flat)]) == 0
        capsys.readouterr()
        paged = tmp_path / "paged"
        assert main([
            "store", "--from", str(flat), "--paged", "--output", str(paged),
        ]) == 0
        out = capsys.readouterr().out
        assert f"source: {flat}" in out
        assert "paged store written to" in out
        loaded = load_store(paged)
        assert len(loaded) == 3

    def test_store_shared_reports_segment(self, capsys):
        assert main(["store", *SMALL, "--shared"]) == 0
        out = capsys.readouterr().out
        assert "shared segment: repro-shm-" in out
        assert "unlinked on exit" in out

    def test_serve_with_paged_storage_and_tiny_budget(self, capsys):
        assert main([
            "serve", *SMALL, "--requests", "12", "--storage", "paged",
            "--memory-budget", "32768",
        ]) == 0
        out = capsys.readouterr().out
        assert "storage=paged" in out
        assert "served 12 requests" in out
        assert "paged tier:" in out

    def test_serve_with_shared_storage_and_workers(self, capsys):
        assert main([
            "serve", *SMALL, "--requests", "12", "--workers", "2",
            "--storage", "shared",
        ]) == 0
        out = capsys.readouterr().out
        assert "storage=shared" in out
        assert "served 12 requests" in out

    def test_serve_shared_rejects_lod(self, capsys):
        assert main([
            "serve", *SMALL, "--requests", "4", "--lod",
            "--storage", "shared",
        ]) == 2
        err = capsys.readouterr().err
        assert "paged" in err
