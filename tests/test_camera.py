"""Tests for the pinhole camera model."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gaussians.camera import Camera, look_at


class TestCameraConstruction:
    def test_principal_point_defaults_to_center(self):
        camera = Camera(width=640, height=480, fx=500.0, fy=500.0)
        assert camera.cx == 320.0
        assert camera.cy == 240.0

    def test_invalid_sizes_rejected(self):
        with pytest.raises(ValueError):
            Camera(width=0, height=480, fx=500.0, fy=500.0)
        with pytest.raises(ValueError):
            Camera(width=640, height=480, fx=-1.0, fy=500.0)

    def test_invalid_clip_planes_rejected(self):
        with pytest.raises(ValueError):
            Camera(width=64, height=64, fx=50, fy=50, znear=1.0, zfar=0.5)

    def test_world_to_camera_must_be_4x4(self):
        with pytest.raises(ValueError):
            Camera(width=64, height=64, fx=50, fy=50, world_to_camera=np.eye(3))


class TestProjection:
    def test_point_on_axis_projects_to_principal_point(self):
        camera = Camera(width=100, height=80, fx=90.0, fy=90.0)
        pixels, depths = camera.project(np.array([[0.0, 0.0, 2.0]]))
        assert pixels[0] == pytest.approx([camera.cx, camera.cy])
        assert depths[0] == pytest.approx(2.0)

    def test_projection_scales_inversely_with_depth(self):
        camera = Camera(width=100, height=80, fx=90.0, fy=90.0)
        near, _ = camera.project(np.array([[0.5, 0.0, 1.0]]))
        far, _ = camera.project(np.array([[0.5, 0.0, 2.0]]))
        near_offset = near[0, 0] - camera.cx
        far_offset = far[0, 0] - camera.cx
        assert near_offset == pytest.approx(2.0 * far_offset)

    def test_camera_center_is_origin_for_identity_extrinsics(self):
        camera = Camera(width=64, height=64, fx=50.0, fy=50.0)
        assert camera.camera_center == pytest.approx([0.0, 0.0, 0.0])

    def test_to_camera_space_applies_translation(self):
        pose = np.eye(4)
        pose[:3, 3] = [1.0, -2.0, 3.0]
        camera = Camera(width=64, height=64, fx=50.0, fy=50.0, world_to_camera=pose)
        transformed = camera.to_camera_space(np.array([[0.0, 0.0, 0.0]]))
        assert transformed[0] == pytest.approx([1.0, -2.0, 3.0])

    def test_tan_half_fov(self):
        camera = Camera(width=100, height=50, fx=100.0, fy=100.0)
        tan_x, tan_y = camera.tan_half_fov
        assert tan_x == pytest.approx(0.5)
        assert tan_y == pytest.approx(0.25)

    def test_projection_matrix_unaffected_by_principal_point(self):
        # The projection matrix describes the symmetric on-axis image
        # extent; the conservative culling bound of tan_half_fov must not
        # leak into it.
        centered = Camera(width=100, height=50, fx=100.0, fy=100.0)
        shifted = Camera(
            width=100, height=50, fx=100.0, fy=100.0, cx=20.0, cy=40.0
        )
        assert np.allclose(
            centered.projection_matrix(), shifted.projection_matrix()
        )

    def test_tan_half_fov_covers_off_center_principal_point(self):
        # With cx = 20 the frustum reaches 80 pixels right of the principal
        # point; the symmetric bound must cover that wider side.
        camera = Camera(
            width=100, height=50, fx=100.0, fy=100.0, cx=20.0, cy=40.0
        )
        tan_x, tan_y = camera.tan_half_fov
        assert tan_x == pytest.approx(0.8)
        assert tan_y == pytest.approx(0.4)

    def test_projection_matrix_maps_near_plane(self):
        camera = Camera(width=64, height=64, fx=64.0, fy=64.0, znear=0.1, zfar=100.0)
        matrix = camera.projection_matrix()
        point = np.array([0.0, 0.0, camera.znear, 1.0])
        clip = matrix @ point
        ndc_z = clip[2] / clip[3]
        assert ndc_z == pytest.approx(-1.0, abs=1e-9)

    def test_full_projection_combines_extrinsics(self):
        pose = look_at(eye=(0, 0, -5), target=(0, 0, 0))
        camera = Camera(width=64, height=64, fx=60, fy=60, world_to_camera=pose)
        full = camera.full_projection()
        assert full.shape == (4, 4)
        assert np.allclose(full, camera.projection_matrix() @ pose)


class TestLookAt:
    def test_target_is_straight_ahead(self):
        pose = look_at(eye=(0.0, 0.0, -3.0), target=(0.0, 0.0, 1.0))
        camera = Camera(width=64, height=64, fx=60.0, fy=60.0, world_to_camera=pose)
        pixels, depths = camera.project(np.array([[0.0, 0.0, 1.0]]))
        assert depths[0] == pytest.approx(4.0)
        assert pixels[0] == pytest.approx([camera.cx, camera.cy])

    def test_rotation_is_orthonormal(self):
        pose = look_at(eye=(1.0, 2.0, 3.0), target=(-2.0, 0.5, 7.0))
        rotation = pose[:3, :3]
        assert np.allclose(rotation @ rotation.T, np.eye(3), atol=1e-12)
        assert np.linalg.det(rotation) == pytest.approx(1.0)

    def test_eye_equals_target_rejected(self):
        with pytest.raises(ValueError):
            look_at(eye=(1.0, 1.0, 1.0), target=(1.0, 1.0, 1.0))

    def test_up_parallel_to_view_rejected(self):
        with pytest.raises(ValueError):
            look_at(eye=(0, 0, 0), target=(0, 1, 0), up=(0, 1, 0))

    @given(
        eye=st.lists(
            st.floats(min_value=-10, max_value=10, allow_nan=False),
            min_size=3,
            max_size=3,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_camera_center_recovers_eye(self, eye):
        eye = np.asarray(eye)
        target = eye + np.array([0.3, -0.2, 1.0])
        pose = look_at(eye=eye, target=target)
        camera = Camera(width=32, height=32, fx=30, fy=30, world_to_camera=pose)
        assert camera.camera_center == pytest.approx(eye, abs=1e-9)
